// Encoded-column kernel baseline: what do compressed snapshot columns cost
// to scan, and what do the encoding-aware fast paths buy back? Times
//
//   * sequential scans (for_each sums) of plain vs encoded columns straight
//     out of a small-world snapshot image,
//   * group-by over a dictionary-encoded key column via the code-grouping
//     fast path vs the span radix-sort path, and
//   * the big DITL /24 join sort, single-threaded LSD vs radix-partitioned
//     over the pool (identical permutation by construction),
//
// and exports an ac-bench-v1 BENCH_table.json gated by ci/check_bench.py.
//
//   bench_table [--threads N] [--repeat R] [--out FILE]
#include <chrono>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <utility>
#include <vector>

#define AC_BENCH_NO_HARNESS
#include "bench/bench_common.h"
#include "src/core/world.h"
#include "src/snapshot/world_io.h"
#include "src/table/table.h"

namespace {

using namespace ac;

/// Keeps results observable so the compiler cannot drop a timed pass.
volatile double g_sink = 0.0;

void time_into(bench::metric& samples, int repeat, const auto& fn) {
    for (int i = 0; i < repeat; ++i) {
        const auto start = std::chrono::steady_clock::now();
        fn();
        samples.add(bench::ms_since(start));
    }
}

/// Scans are microseconds on the small world; loop them inside each timed
/// pass so one sample is comfortably above timer resolution.
constexpr int scan_loops = 50;

} // namespace

int main(int argc, char** argv) {
    const auto args = bench::bench_args::parse(argc, argv, "bench_table", 5, "BENCH_table.json");

    std::cerr << "building small world (serial)...\n";
    auto config = core::world_config::small();
    config.threads = 1;
    const core::world w{std::move(config)};

    std::cerr << "archiving + reopening (columns come back encoded)...\n";
    const auto bundle = snapshot::bundle::from_bytes(snapshot::encode_world(w));

    // One encoded double column per DITL letter (delta-encoded qpd), plus
    // its materialized plain twin.
    std::vector<table::column<double>> encoded_qpd;
    std::vector<std::vector<double>> plain_qpd;
    const auto letter_count = bundle->scalar<std::uint32_t>("ditl/letter_count");
    for (std::uint32_t i = 0; i < letter_count; ++i) {
        auto col = bundle->typed_column<double>("ditl/" + std::to_string(i) + "/rec/qpd");
        plain_qpd.push_back(col.materialize());
        encoded_qpd.push_back(std::move(col));
    }

    // Dictionary-encoded key column (server ASNs) and its plain twin.
    const auto asn_col = bundle->typed_column<std::uint32_t>("server/asn");
    const auto asn_plain = asn_col.materialize();

    // The DITL /24 join key column, concatenated across letters, then tiled
    // past detail::parallel_sort_min_rows so the partitioned path engages
    // (the small world alone sits just under the threshold).
    std::vector<std::uint32_t> base_keys;
    for (const auto& t : w.filtered_tables()) {
        t.source_ip.for_each([&](std::uint32_t ip) { base_keys.push_back(ip >> 8); });
    }
    std::vector<std::uint32_t> s24;
    while (s24.size() < 2 * table::detail::parallel_sort_min_rows) {
        s24.insert(s24.end(), base_keys.begin(), base_keys.end());
    }

    bench::report report{"table", "small", args.repeat};
    report.set_note("scan = for_each sum x" + std::to_string(scan_loops) +
                    "; encoded columns decode straight out of the snapshot image; "
                    "partitioned sort returns the exact serial permutation");
    using bench::direction;

    std::cerr << "timing scans...\n";
    auto& plain_scan = report.add_metric("scan.plain_ms", "ms", direction::lower_is_better, 2.0);
    time_into(plain_scan, args.repeat, [&] {
        double total = 0.0;
        for (int loop = 0; loop < scan_loops; ++loop) {
            for (const auto& values : plain_qpd) {
                for (const double v : values) total += v;
            }
        }
        g_sink = total;
    });
    auto& encoded_scan =
        report.add_metric("scan.encoded_ms", "ms", direction::lower_is_better, 2.0);
    time_into(encoded_scan, args.repeat, [&] {
        double total = 0.0;
        for (int loop = 0; loop < scan_loops; ++loop) {
            for (const auto& col : encoded_qpd) {
                col.for_each([&](double v) { total += v; });
            }
        }
        g_sink = total;
    });

    std::cerr << "timing group-by...\n";
    auto& span_groupby =
        report.add_metric("groupby.span_sort_ms", "ms", direction::lower_is_better, 2.0);
    time_into(span_groupby, args.repeat, [&] {
        for (int loop = 0; loop < scan_loops; ++loop) {
            const auto g = table::make_grouping(std::span<const std::uint32_t>{asn_plain});
            g_sink = static_cast<double>(g.groups());
        }
    });
    auto& dict_groupby =
        report.add_metric("groupby.dict_codes_ms", "ms", direction::lower_is_better, 2.0);
    time_into(dict_groupby, args.repeat, [&] {
        for (int loop = 0; loop < scan_loops; ++loop) {
            const auto g = table::make_grouping(asn_col);
            g_sink = static_cast<double>(g.groups());
        }
    });

    std::cerr << "timing join sort over " << s24.size() << " keys (serial vs "
              << args.threads << " threads)...\n";
    auto& serial_sort =
        report.add_metric("join.serial_sort_ms", "ms", direction::lower_is_better, 2.0);
    time_into(serial_sort, args.repeat, [&] {
        for (int loop = 0; loop < scan_loops; ++loop) {
            const auto perm = table::sort_permutation(std::span<const std::uint32_t>{s24});
            g_sink = static_cast<double>(perm.size());
        }
    });
    engine::thread_pool pool{args.threads};
    auto& partitioned_sort = report.add_metric("join.partitioned_sort_ms", "ms",
                                               direction::lower_is_better, 2.0);
    time_into(partitioned_sort, args.repeat, [&] {
        for (int loop = 0; loop < scan_loops; ++loop) {
            const auto perm = table::sort_permutation(std::span<const std::uint32_t>{s24}, &pool);
            g_sink = static_cast<double>(perm.size());
        }
    });

    report.add_scalar("groupby.dict_speedup", "x", direction::higher_is_better, 0.6,
                      span_groupby.median() / dict_groupby.median());
    report.add_scalar("join.partitioned_speedup", "x", direction::higher_is_better, 0.6,
                      serial_sort.median() / partitioned_sort.median());

    std::ostringstream info;
    info << "{\"join_rows\": " << s24.size() << ", \"threads\": " << args.threads << "}";
    report.add_details("workload", info.str());
    return report.write_file_and_stdout(args.out_path);
}
