// Table 1: root-operator survey tallies, plus the growth numbers quoted in
// §4.1/§7.3 (sites more than doubled: 516 -> 1367 over five years).
#include "bench/bench_common.h"
#include "src/core/survey.h"

namespace {

using namespace ac;

void print_figure(std::ostream& os) {
    const auto responses = core::survey_responses();
    const auto t = core::tally(responses);
    os << "=== Table 1: root DNS operator survey (" << t.respondents
       << " of 12 orgs responded) ===\n";
    os << "  Reason for growth         #orgs   | Future growth trend   #orgs\n";
    os << "  Latency                   " << t.latency << "       | Acceleration          "
       << t.accelerate << "\n";
    os << "  DDoS Resilience           " << t.ddos_resilience
       << "       | Deceleration          " << t.decelerate << "\n";
    os << "  ISP Resilience            " << t.isp_resilience
       << "       | Maintain Rate         " << t.maintain << "\n";
    os << "  Other                     " << t.other << "       | Cannot Share          "
       << t.cannot_share << "\n";
    const core::root_growth growth;
    os << "  Root sites 2016 -> 2021: " << growth.sites_2016 << " -> " << growth.sites_2021
       << "\n";
}

void BM_Tally(benchmark::State& state) {
    const auto responses = core::survey_responses();
    for (auto _ : state) {
        auto t = core::tally(responses);
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_Tally);

} // namespace

AC_BENCH_MAIN(print_figure)
