// Load subsystem baseline: route-plan construction, per-bucket assignment
// under both policies, and the full load frontier sweep.
//
//   * route_plan.build_ms     — freeze per-(location, ring) front-ends/RTTs
//     and the inverse CSR membership for the small world
//   * assign.latency_ms       — one bucket, latency-only policy
//   * assign.load_aware_ms    — one bucket, load-aware waterfall at 400%
//     demand (every ring saturates, so this is the worst-case shed path)
//   * frontier.compute_ms     — the whole acctx-load sweep: both policies,
//     five demand levels, every timeline bucket
//   * shed/unserved "conn" scalars — deterministic integer outputs of the
//     400% load-aware bucket, gated at zero tolerance on every machine
//     (ci/check_bench.py treats "conn" as machine-independent)
//
//   bench_load [--threads N] [--repeat R] [--out FILE]
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>

#define AC_BENCH_NO_HARNESS
#include "bench/bench_common.h"
#include "src/analysis/load_frontier.h"
#include "src/core/world.h"
#include "src/load/capacity.h"
#include "src/load/demand.h"
#include "src/load/policy.h"
#include "src/scenario/event.h"

namespace {

using namespace ac;

using clock_type = std::chrono::steady_clock;

} // namespace

int main(int argc, char** argv) {
    const auto args = bench::bench_args::parse(argc, argv, "bench_load", 5, "BENCH_load.json");

    std::cerr << "building small world...\n";
    auto config = core::world_config::small();
    config.threads = 1;
    const core::world w{std::move(config)};
    engine::thread_pool pool{args.threads};

    bench::report report{"load", "small", args.repeat};
    report.set_note("route_plan freezes per-(location, ring) routing; assign legs run one "
                    "demand bucket under each policy (load-aware at 400% = worst-case "
                    "overflow); frontier is the full acctx-load sweep; conn scalars are "
                    "deterministic integers gated at zero tolerance");
    using bench::direction;
    auto& plan_ms =
        report.add_metric("route_plan.build_ms", "ms", direction::lower_is_better, 2.0);
    auto& latency_ms =
        report.add_metric("assign.latency_ms", "ms", direction::lower_is_better, 2.0);
    auto& aware_ms =
        report.add_metric("assign.load_aware_ms", "ms", direction::lower_is_better, 2.0);
    auto& frontier_ms =
        report.add_metric("frontier.compute_ms", "ms", direction::lower_is_better, 3.0);

    const auto tl = scenario::parse_timeline_text(
        "0 demand-diurnal 40 24\n"
        "1 demand-hotspot 0 250\n"
        "2 demand-flash 1 300 2\n");
    load::demand_plan dplan;
    dplan.connections_per_user = w.config().telemetry.connections_per_user;
    const load::demand_series demand{w.users(), tl, dplan,
                                     static_cast<topo::region_id>(w.cdn_net().regions().size())};

    std::cerr << "freezing route plan for " << demand.locations() << " locations...\n";
    for (int i = 0; i < args.repeat; ++i) {
        const auto start = clock_type::now();
        const load::route_plan plan{w.cdn_net(), w.users(), &pool};
        plan_ms.add(bench::ms_since(start));
    }

    const load::route_plan plan{w.cdn_net(), w.users(), &pool};
    const load::capacity_model capacity{w.cdn_net(), demand.nominal_total(), {}};

    std::cerr << "assigning one bucket per policy...\n";
    std::int64_t shed = 0, unserved = 0;
    for (int i = 0; i < args.repeat; ++i) {
        auto start = clock_type::now();
        const auto lat = load::assign_bucket(plan, demand, 0, 100, capacity.per_front_end(),
                                             load::policy_kind::latency_only, &pool);
        latency_ms.add(bench::ms_since(start));

        start = clock_type::now();
        const auto aware = load::assign_bucket(plan, demand, 0, 400, capacity.per_front_end(),
                                               load::policy_kind::load_aware, &pool);
        aware_ms.add(bench::ms_since(start));
        shed = aware.shed;
        unserved = aware.unserved;
        if (lat.served_first + lat.shed != lat.offered ||
            aware.served_first + aware.shed != aware.offered) {
            std::cerr << "bench_load: conservation violated\n";
            return 1;
        }
    }
    report.add_scalar("load_aware.shed_400_conn", "conn", direction::lower_is_better, 0.0,
                      static_cast<double>(shed));
    report.add_scalar("load_aware.unserved_400_conn", "conn", direction::lower_is_better, 0.0,
                      static_cast<double>(unserved));

    std::cerr << "computing full frontier...\n";
    analysis::load_frontier_options options;
    options.demand = dplan;
    std::size_t points = 0;
    for (int i = 0; i < args.repeat; ++i) {
        const auto start = clock_type::now();
        const auto result =
            analysis::compute_load_frontier(w.cdn_net(), w.users(), tl, options, &pool);
        frontier_ms.add(bench::ms_since(start));
        points = result.points.size();
    }

    std::ostringstream info;
    info << "{\"locations\": " << demand.locations() << ", \"front_ends\": "
         << plan.front_ends() << ", \"rings\": " << plan.rings()
         << ", \"buckets\": " << demand.buckets() << ", \"frontier_points\": " << points
         << ", \"threads\": " << args.threads << "}";
    report.add_details("workload", info.str());
    return report.write_file_and_stdout(args.out_path);
}
