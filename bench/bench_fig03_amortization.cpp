// Figure 3: queries per user per day to the root DNS.
//
// Filtered DITL volumes amortized over user populations. Paper shapes:
// median ~1 query/user/day on the CDN counts; APNIC agrees at the
// high level (the methodology is robust to the user-count source); the
// Ideal line (once-per-TTL) sits orders of magnitude lower (median 0.007).
#include "bench/bench_common.h"
#include "src/analysis/join.h"
#include "src/netbase/strfmt.h"

namespace {

using namespace ac;

const analysis::amortization_result& result() {
    static const analysis::amortization_result r = analysis::compute_amortization(
        bench::world_2018().filtered(), bench::world_2018().users(),
        bench::world_2018().cdn_user_counts(), bench::world_2018().apnic_user_counts(),
        bench::world_2018().as_mapper(), bench::world_2018().config().query_model);
    return r;
}

void print_line(std::ostream& os, const std::string& label,
                const analysis::weighted_cdf& cdf) {
    os << "  " << label << ":";
    for (double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.99}) {
        os << "  p" << static_cast<int>(q * 100) << "="
           << strfmt::fixed(cdf.quantile(q), 4);
    }
    os << "  (queries/user/day, n=" << cdf.size() << ")\n";
}

void print_figure(std::ostream& os) {
    const auto& r = result();
    os << "=== Figure 3: daily root-DNS queries per user (CDF of users) ===\n";
    print_line(os, "Ideal ", r.ideal);
    print_line(os, "CDN   ", r.cdn);
    print_line(os, "APNIC ", r.apnic);
    os << "  CDN median / Ideal median = "
       << strfmt::fixed(r.cdn.median() / r.ideal.median(), 1) << "x\n";
    os << "  users waiting for <=1 query/day (CDN): "
       << strfmt::fixed(r.cdn.fraction_leq(1.0), 3) << "\n";
    os << "  attributed DITL volume fraction: "
       << strfmt::fixed(r.attributed_volume_fraction, 3) << "\n";
}

void BM_ComputeAmortization(benchmark::State& state) {
    const auto& w = bench::world_2018();
    for (auto _ : state) {
        auto r = analysis::compute_amortization(w.filtered(), w.users(), w.cdn_user_counts(),
                                                w.apnic_user_counts(), w.as_mapper(),
                                                w.config().query_model);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_ComputeAmortization)->Unit(benchmark::kMillisecond);

} // namespace

AC_BENCH_MAIN(print_figure)
