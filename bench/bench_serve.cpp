// Serving baseline: the snapshot-backed query service's read hot path.
//
// The serving contract (DESIGN §13) is that after startup the engine is
// logically const — every answer is a binary search or a wait-free probe
// over sealed arrays — so point-query throughput is bounded by formatting,
// not locking. This bench pins that claim on the small world:
//
//   * engine.qps    — point queries/s straight through query_engine
//     (batched inflation_json over the indexed ASes, no sockets)
//   * http.qps      — point queries/s end to end over HTTP/1.1 keep-alive
//     (batched GET /inflation, 32 keys per request, loopback client)
//   * http.p99_us   — 99th-percentile request latency in microseconds
//   * queries_per_minute — the gated acceptance bar (>= 1M/min sustained)
//
//   bench_serve [--threads N] [--repeat R] [--out FILE]
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#define AC_BENCH_NO_HARNESS
#include "bench/bench_common.h"
#include "src/core/world.h"
#include "src/serve/http.h"
#include "src/serve/query_engine.h"

namespace {

using namespace ac;

using clock_type = std::chrono::steady_clock;

constexpr std::size_t batch_size = 32;  // keys per request, engine and HTTP legs alike

/// Blocking loopback HTTP/1.1 client: one keep-alive connection, one
/// request in flight. Reads headers, honours Content-Length, reuses its
/// buffers across requests like the server's conn_arena does.
class loopback_client {
public:
    explicit loopback_client(std::uint16_t port) {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd_ < 0) throw std::runtime_error("bench_serve: socket() failed");
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
            ::close(fd_);
            throw std::runtime_error("bench_serve: connect() failed");
        }
    }
    ~loopback_client() {
        if (fd_ >= 0) ::close(fd_);
    }
    loopback_client(const loopback_client&) = delete;
    loopback_client& operator=(const loopback_client&) = delete;

    /// One round trip; returns the response byte count (0 on failure).
    std::size_t get(const std::string& target) {
        request_.clear();
        request_ += "GET ";
        request_ += target;
        request_ += " HTTP/1.1\r\nHost: bench\r\n\r\n";
        if (!write_all(request_.data(), request_.size())) return 0;

        // Headers first (scan for the blank line), then the body by length.
        response_.clear();
        std::size_t header_end = std::string::npos;
        while (header_end == std::string::npos) {
            if (!fill()) return 0;
            header_end = response_.find("\r\n\r\n");
        }
        const std::size_t body_start = header_end + 4;
        const std::size_t content_length = parse_content_length(response_);
        while (response_.size() < body_start + content_length) {
            if (!fill()) return 0;
        }
        return body_start + content_length;
    }

private:
    bool write_all(const char* data, std::size_t len) {
        while (len > 0) {
            const ssize_t n = ::send(fd_, data, len, 0);
            if (n <= 0) return false;
            data += n;
            len -= static_cast<std::size_t>(n);
        }
        return true;
    }

    bool fill() {
        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n <= 0) return false;
        response_.append(chunk, static_cast<std::size_t>(n));
        return true;
    }

    static std::size_t parse_content_length(const std::string& response) {
        const auto pos = response.find("Content-Length: ");
        if (pos == std::string::npos) return 0;
        return static_cast<std::size_t>(
            std::strtoull(response.c_str() + pos + 16, nullptr, 10));
    }

    int fd_ = -1;
    std::string request_;
    std::string response_;
};

double percentile(std::vector<double>& values, double p) {
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    const auto idx = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(values.size()))) - 1;
    return values[std::min(idx, values.size() - 1)];
}

} // namespace

int main(int argc, char** argv) {
    const auto args =
        bench::bench_args::parse(argc, argv, "bench_serve", 3, "BENCH_serve.json");

    std::cerr << "building small world + serving indexes...\n";
    auto config = core::world_config::small();
    config.threads = 1;
    auto startup = clock_type::now();
    serve::query_engine engine{std::make_unique<core::world>(std::move(config))};
    const double startup_ms = bench::ms_since(startup);

    const auto asns = engine.index().asns();
    if (asns.size() < batch_size) {
        std::cerr << "bench_serve: too few indexed ASes (" << asns.size() << ")\n";
        return 1;
    }

    bench::report report{"serve", "small", args.repeat};
    report.set_note("engine.qps = point queries/s through query_engine (batched "
                    "inflation_json, no sockets); http.qps = the same queries end to end "
                    "over HTTP/1.1 keep-alive on loopback, 32 keys per GET; "
                    "queries_per_minute gates the DESIGN §13 acceptance bar (>= 1M "
                    "point queries per minute sustained)");
    using bench::direction;
    auto& engine_qps = report.add_metric("engine.qps", "qps", direction::higher_is_better, 0.6);
    auto& http_qps = report.add_metric("http.qps", "qps", direction::higher_is_better, 0.6);
    auto& http_p99 = report.add_metric("http.p99_us", "us", direction::lower_is_better, 3.0);

    // Leg 1: in-process point queries, the serving hot path minus sockets.
    // Batches rotate through the indexed ASes so every answer row is real.
    std::cerr << "engine leg: batched inflation point queries...\n";
    constexpr std::size_t engine_queries = 200'000;
    std::vector<topo::asn_t> keys(batch_size);
    std::string body;
    for (int r = 0; r < args.repeat; ++r) {
        std::size_t cursor = 0;
        const auto start = clock_type::now();
        for (std::size_t done = 0; done < engine_queries; done += batch_size) {
            for (std::size_t i = 0; i < batch_size; ++i) {
                keys[i] = asns[cursor++ % asns.size()];
            }
            engine.inflation_json(keys, body);
        }
        engine_qps.add(static_cast<double>(engine_queries) / (bench::ms_since(start) / 1e3));
    }

    // Leg 2: the same queries through the HTTP front end on loopback.
    std::cerr << "http leg: keep-alive batched GET /inflation...\n";
    serve::http_server server{engine, {.port = 0}};
    server.start();
    constexpr std::size_t http_requests = 2'000;
    std::vector<double> latencies_us;
    latencies_us.reserve(http_requests);
    {
        loopback_client client{server.port()};
        std::string target;
        std::size_t cursor = 0;
        for (int r = 0; r < args.repeat; ++r) {
            latencies_us.clear();
            const auto start = clock_type::now();
            for (std::size_t req = 0; req < http_requests; ++req) {
                target.assign("/inflation?asn=");
                for (std::size_t i = 0; i < batch_size; ++i) {
                    if (i > 0) target += ',';
                    target += std::to_string(asns[cursor++ % asns.size()]);
                }
                const auto t0 = clock_type::now();
                if (client.get(target) == 0) {
                    std::cerr << "bench_serve: request failed\n";
                    return 1;
                }
                latencies_us.push_back(bench::ms_since(t0) * 1e3);
            }
            const double wall_s = bench::ms_since(start) / 1e3;
            http_qps.add(static_cast<double>(http_requests * batch_size) / wall_s);
            http_p99.add(percentile(latencies_us, 0.99));
        }
    }
    server.stop();

    const double per_minute = http_qps.median() * 60.0;
    report.add_scalar("queries_per_minute", "qpm", direction::higher_is_better, 0.6,
                      per_minute);
    if (per_minute < 1e6) {
        std::cerr << "WARNING: " << per_minute
                  << " point queries/minute over HTTP (acceptance bar is 1M/min)\n";
    }

    std::ostringstream info;
    info << "{\"indexed_ases\": " << asns.size()
         << ", \"indexed_slash24s\": " << engine.index().slash24_keys().size()
         << ", \"selects_sealed\": " << engine.frozen_entries()
         << ", \"batch_size\": " << batch_size << ", \"startup_ms\": " << startup_ms
         << ", \"threads\": " << args.threads << "}";
    report.add_details("workload", info.str());
    return report.write_file_and_stdout(args.out_path);
}
