// §4.3's local perspective: root cache miss rates and root latency in the
// context of a user's day.
//
// Paper numbers: ISI shared recursive median daily miss rate 0.5%; local
// single-user resolvers 1.5%; median daily root latency is ~1.6% of daily
// cumulative page-load time and ~0.05% of active browsing time.
#include "bench/bench_common.h"
#include "src/netbase/strfmt.h"
#include "src/resolver/study.h"

namespace {

using namespace ac;

void print_figure(std::ostream& os) {
    const dns::root_zone zone{1000, 43};

    os << "=== §4.3 local perspective ===\n";
    {
        resolver::workload_options options;
        options.users = 150;
        options.days = 14;
        options.queries_per_user_day = 400.0;
        const auto shared = resolver::run_shared_cache_study(
            zone, options, resolver::latency_model{},
            pop::resolver_software::bind_redundant, 43);
        os << "  ISI-like shared recursive (" << options.users << " users):\n";
        os << "    median daily root cache miss rate: "
           << strfmt::fixed(100.0 * shared.median_daily_root_miss_rate(), 2)
           << "% (paper 0.5%)\n";
        os << "    redundant share of root queries:  "
           << strfmt::fixed(100.0 * shared.redundant_root_fraction(), 1)
           << "% (paper 79.8%)\n";
    }
    {
        const auto local = resolver::run_local_user_study(
            zone, /*days=*/28, web::browsing_options{}, resolver::latency_model{},
            pop::resolver_software::bind_redundant, 47);
        os << "  single-user local resolver (4 weeks):\n";
        os << "    median daily root cache miss rate: "
           << strfmt::fixed(100.0 * local.median_daily_root_miss_rate(), 2)
           << "% (paper 1.5%)\n";
        os << "    median daily root latency:  "
           << strfmt::fixed(local.median_daily_root_latency_ms() / 1000.0, 2) << " s\n";
        os << "    median daily page-load time: "
           << strfmt::fixed(local.median_daily_page_load_s(), 0) << " s; root share "
           << strfmt::fixed(100.0 * local.root_share_of_page_load(), 2)
           << "% (paper 1.6%)\n";
        os << "    median daily active browsing: "
           << strfmt::fixed(local.median_daily_active_browsing_s() / 60.0, 0)
           << " min; root share " << strfmt::fixed(100.0 * local.root_share_of_browsing(), 3)
           << "% (paper 0.05%)\n";
    }
}

void BM_LocalUserWeek(benchmark::State& state) {
    const dns::root_zone zone{1000, 43};
    for (auto _ : state) {
        auto r = resolver::run_local_user_study(zone, 7, web::browsing_options{},
                                                resolver::latency_model{},
                                                pop::resolver_software::bind_redundant, 1);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_LocalUserWeek)->Unit(benchmark::kMillisecond);

} // namespace

AC_BENCH_MAIN(print_figure)
