// Row-vs-columnar analysis throughput: times the hash-map aggregation the
// analyses used before src/table/ existed against the sort-based columnar
// kernels that replaced it, over the small world's DITL rows, and exports
// the comparison as BENCH_analysis.json.
//
//   bench_analysis [--threads N] [--repeat R] [--out FILE]
//
// N sizes the pool for the parallel inflation pass (defaults to hardware
// concurrency, or 4 when unknown/1); R repeats each pass and keeps the best
// wall time (default 5); FILE defaults to BENCH_analysis.json.
//
// Each aggregation pass includes producing sorted (key, sum) output, since
// ascending key order is the determinism contract the analyses rely on: the
// hash-map baseline pays a sort at extraction, the columnar kernel sorts up
// front.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/analysis/inflation.h"
#include "src/core/world.h"
#include "src/table/table.h"

namespace {

using namespace ac;

double time_best_ms(int repeat, const auto& fn) {
    double best = 0.0;
    for (int i = 0; i < repeat; ++i) {
        const auto start = std::chrono::steady_clock::now();
        fn();
        const std::chrono::duration<double, std::milli> wall =
            std::chrono::steady_clock::now() - start;
        if (i == 0 || wall.count() < best) best = wall.count();
    }
    return best;
}

/// Keeps results observable so the compiler cannot drop a timed pass.
volatile double g_sink = 0.0;

template <typename K>
double hash_group_sum(std::span<const K> keys, std::span<const double> values) {
    std::unordered_map<K, double> sums;
    sums.reserve(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) sums[keys[i]] += values[i];
    std::vector<std::pair<K, double>> out(sums.begin(), sums.end());
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    double check = 0.0;
    for (const auto& [k, v] : out) check += v;
    return check;
}

template <typename K>
double columnar_group_sum(std::span<const K> keys, std::span<const double> values) {
    const auto grouping = table::make_grouping(keys);
    const auto sums = table::sum_by(grouping, values);
    double check = 0.0;
    for (const double v : sums) check += v;
    return check;
}

struct pass_result {
    std::string name;
    std::size_t rows = 0;
    std::size_t groups = 0;
    double hash_map_ms = 0.0;
    double columnar_ms = 0.0;
};

template <typename K>
pass_result run_group_pass(std::string name, int repeat, std::span<const K> keys,
                           std::span<const double> values) {
    pass_result pass;
    pass.name = std::move(name);
    pass.rows = keys.size();
    pass.groups = table::distinct_count(keys);
    pass.hash_map_ms =
        time_best_ms(repeat, [&] { g_sink = hash_group_sum(keys, values); });
    pass.columnar_ms =
        time_best_ms(repeat, [&] { g_sink = columnar_group_sum(keys, values); });
    return pass;
}

void write_report(std::ostream& out, const std::vector<pass_result>& passes,
                  double inflation_serial_ms, double inflation_parallel_ms, int threads) {
    out << "{\n  \"bench\": \"analysis\",\n  \"scale\": \"small\",\n";
    out << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency() << ",\n";
    out << "  \"group_by_passes\": [\n";
    for (std::size_t i = 0; i < passes.size(); ++i) {
        const auto& p = passes[i];
        out << "    {\"name\": \"" << p.name << "\", \"rows\": " << p.rows
            << ", \"groups\": " << p.groups << ", \"hash_map_ms\": " << p.hash_map_ms
            << ", \"columnar_ms\": " << p.columnar_ms
            << ", \"speedup\": " << (p.hash_map_ms / p.columnar_ms) << "}"
            << (i + 1 < passes.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"root_inflation\": {\"serial_ms\": " << inflation_serial_ms
        << ", \"parallel_ms\": " << inflation_parallel_ms << ", \"threads\": " << threads
        << ", \"speedup\": " << (inflation_serial_ms / inflation_parallel_ms) << "}\n";
    out << "}\n";
}

} // namespace

int main(int argc, char** argv) {
    int threads = 0;
    int repeat = 5;
    std::string out_path = "BENCH_analysis.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::cerr << "bench_analysis: " << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--threads") {
            threads = std::atoi(value());
        } else if (arg == "--repeat") {
            repeat = std::max(1, std::atoi(value()));
        } else if (arg == "--out") {
            out_path = value();
        } else {
            std::cerr << "usage: bench_analysis [--threads N] [--repeat R] [--out FILE]\n";
            return 2;
        }
    }
    if (threads <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads = hw > 1 ? static_cast<int>(hw) : 4;
    }

    std::cerr << "building small world...\n";
    auto config = core::world_config::small();
    config.threads = 1;
    const core::world w{std::move(config)};

    // Concatenate every filtered letter's rows at three key granularities:
    // /24, exact IP, and the packed (/24, site) composite the capture
    // aggregation uses.
    table::column<std::uint32_t> s24_keys;
    table::column<std::uint32_t> ip_keys;
    table::column<std::uint64_t> site_keys;
    table::column<double> qpd;
    for (const auto& t : w.filtered_tables()) {
        for (std::size_t i = 0; i < t.rows(); ++i) {
            s24_keys.push_back(t.source_ip[i] >> 8);
            ip_keys.push_back(t.source_ip[i]);
            site_keys.push_back((std::uint64_t{t.source_ip[i] >> 8} << 32) | t.site[i]);
            qpd.push_back(t.queries_per_day[i]);
        }
    }
    std::cerr << "timing group-by over " << qpd.size() << " rows (repeat " << repeat
              << ")...\n";

    std::vector<pass_result> passes;
    passes.push_back(
        run_group_pass<std::uint32_t>("volume_by_slash24", repeat, s24_keys.view(), qpd.view()));
    passes.push_back(
        run_group_pass<std::uint32_t>("volume_by_ip", repeat, ip_keys.view(), qpd.view()));
    passes.push_back(run_group_pass<std::uint64_t>("volume_by_slash24_site", repeat,
                                                   site_keys.view(), qpd.view()));

    std::cerr << "timing root inflation (serial vs " << threads << " threads)...\n";
    const double inflation_serial_ms = time_best_ms(repeat, [&] {
        const auto r = analysis::compute_root_inflation(w.filtered_tables(), w.roots(),
                                                        w.geodb(), w.cdn_user_counts());
        g_sink = r.geographic_all_roots.empty() ? 0.0 : r.geographic_all_roots.quantile(0.5);
    });
    engine::thread_pool pool{threads};
    const double inflation_parallel_ms = time_best_ms(repeat, [&] {
        const auto r = analysis::compute_root_inflation(
            w.filtered_tables(), w.roots(), w.geodb(), w.cdn_user_counts(), {}, &pool);
        g_sink = r.geographic_all_roots.empty() ? 0.0 : r.geographic_all_roots.quantile(0.5);
    });

    write_report(std::cout, passes, inflation_serial_ms, inflation_parallel_ms, threads);
    std::ofstream out{out_path};
    if (!out) {
        std::cerr << "bench_analysis: cannot open " << out_path << " for writing\n";
        return 1;
    }
    write_report(out, passes, inflation_serial_ms, inflation_parallel_ms, threads);
    std::cerr << "wrote " << out_path << "\n";
    return 0;
}
