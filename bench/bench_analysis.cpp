// Row-vs-columnar analysis throughput: times the hash-map aggregation the
// analyses used before src/table/ existed against the sort-based columnar
// kernels that replaced it, over the small world's DITL rows, and exports
// the comparison as an ac-bench-v1 BENCH_analysis.json.
//
//   bench_analysis [--threads N] [--repeat R] [--out FILE]
//
// N sizes the pool for the parallel inflation pass (defaults to hardware
// concurrency, or 4 when unknown/1); R repeats each pass and records every
// sample (default 5); FILE defaults to BENCH_analysis.json.
//
// Each aggregation pass includes producing sorted (key, sum) output, since
// ascending key order is the determinism contract the analyses rely on: the
// hash-map baseline pays a sort at extraction, the columnar kernel sorts up
// front.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#define AC_BENCH_NO_HARNESS
#include "bench/bench_common.h"
#include "src/analysis/inflation.h"
#include "src/core/world.h"
#include "src/table/table.h"

namespace {

using namespace ac;

/// Keeps results observable so the compiler cannot drop a timed pass.
volatile double g_sink = 0.0;

void time_into(bench::metric& samples, int repeat, const auto& fn) {
    for (int i = 0; i < repeat; ++i) {
        const auto start = std::chrono::steady_clock::now();
        fn();
        samples.add(bench::ms_since(start));
    }
}

template <typename K>
double hash_group_sum(std::span<const K> keys, std::span<const double> values) {
    std::unordered_map<K, double> sums;
    sums.reserve(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) sums[keys[i]] += values[i];
    std::vector<std::pair<K, double>> out(sums.begin(), sums.end());
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    double check = 0.0;
    for (const auto& [k, v] : out) check += v;
    return check;
}

template <typename K>
double columnar_group_sum(std::span<const K> keys, std::span<const double> values) {
    const auto grouping = table::make_grouping(keys);
    const auto sums = table::sum_by(grouping, values);
    double check = 0.0;
    for (const double v : sums) check += v;
    return check;
}

template <typename K>
void run_group_pass(bench::report& report, const std::string& name, int repeat,
                    std::span<const K> keys, std::span<const double> values) {
    using bench::direction;
    auto& hash_ms =
        report.add_metric(name + ".hash_map_ms", "ms", direction::lower_is_better, 2.0);
    auto& columnar_ms =
        report.add_metric(name + ".columnar_ms", "ms", direction::lower_is_better, 2.0);
    time_into(hash_ms, repeat, [&] { g_sink = hash_group_sum(keys, values); });
    time_into(columnar_ms, repeat, [&] { g_sink = columnar_group_sum(keys, values); });
    report.add_scalar(name + ".speedup", "x", direction::higher_is_better, 0.6,
                      hash_ms.median() / columnar_ms.median());
}

} // namespace

int main(int argc, char** argv) {
    const auto args =
        bench::bench_args::parse(argc, argv, "bench_analysis", 5, "BENCH_analysis.json");

    std::cerr << "building small world...\n";
    auto config = core::world_config::small();
    config.threads = 1;
    const core::world w{std::move(config)};

    // Concatenate every filtered letter's rows at three key granularities:
    // /24, exact IP, and the packed (/24, site) composite the capture
    // aggregation uses.
    table::column<std::uint32_t> s24_keys;
    table::column<std::uint32_t> ip_keys;
    table::column<std::uint64_t> site_keys;
    table::column<double> qpd;
    for (const auto& t : w.filtered_tables()) {
        for (std::size_t i = 0; i < t.rows(); ++i) {
            s24_keys.push_back(t.source_ip[i] >> 8);
            ip_keys.push_back(t.source_ip[i]);
            site_keys.push_back((std::uint64_t{t.source_ip[i] >> 8} << 32) | t.site[i]);
            qpd.push_back(t.queries_per_day[i]);
        }
    }
    std::cerr << "timing group-by over " << qpd.size() << " rows (repeat " << args.repeat
              << ")...\n";

    bench::report report{"analysis", "small", args.repeat};
    report.set_note("hash_map = unordered_map accumulation plus extraction sort (the "
                    "pre-src/table/ idiom); columnar = make_grouping + sum_by; both "
                    "produce ascending (key, sum) output");
    run_group_pass<std::uint32_t>(report, "volume_by_slash24", args.repeat, s24_keys.view(),
                                  qpd.view());
    run_group_pass<std::uint32_t>(report, "volume_by_ip", args.repeat, ip_keys.view(),
                                  qpd.view());
    run_group_pass<std::uint64_t>(report, "volume_by_slash24_site", args.repeat,
                                  site_keys.view(), qpd.view());

    std::cerr << "timing root inflation (serial vs " << args.threads << " threads)...\n";
    using bench::direction;
    auto& inflation_serial = report.add_metric("root_inflation.serial_ms", "ms",
                                               direction::lower_is_better, 2.0);
    auto& inflation_parallel = report.add_metric("root_inflation.parallel_ms", "ms",
                                                 direction::lower_is_better, 2.0);
    time_into(inflation_serial, args.repeat, [&] {
        const auto r = analysis::compute_root_inflation(w.filtered_tables(), w.roots(),
                                                        w.geodb(), w.cdn_user_counts());
        g_sink = r.geographic_all_roots.empty() ? 0.0 : r.geographic_all_roots.quantile(0.5);
    });
    engine::thread_pool pool{args.threads};
    time_into(inflation_parallel, args.repeat, [&] {
        const auto r = analysis::compute_root_inflation(
            w.filtered_tables(), w.roots(), w.geodb(), w.cdn_user_counts(), {}, &pool);
        g_sink = r.geographic_all_roots.empty() ? 0.0 : r.geographic_all_roots.quantile(0.5);
    });
    report.add_scalar("root_inflation.speedup", "x", direction::higher_is_better, 0.6,
                      inflation_serial.median() / inflation_parallel.median());

    std::ostringstream info;
    info << "{\"rows\": " << qpd.size() << ", \"threads\": " << args.threads << "}";
    report.add_details("workload", info.str());
    return report.write_file_and_stdout(args.out_path);
}
