// Figure 4: CDN latency matters.
//
// 4a — CDF over RIPE-style probes of latency to each ring, per RTT and per
//      page load (x10 RTTs, §5.1). Paper shapes: up to ~1000 ms per page
//      load; R95/R110 median ~100 ms/page; ~100 ms/page gap between R28 and
//      R110; rings group into {R28, R47} vs {R74, R95, R110}.
// 4b — CDF over <region, AS> locations of the latency change when moving to
//      the next larger ring (client-side measurements). Mostly >= 0, with
//      diminishing returns; 99% lose less than 10 ms per RTT.
#include "bench/bench_common.h"
#include "src/analysis/stats.h"
#include "src/atlas/atlas.h"
#include <map>

#include "src/netbase/strfmt.h"

namespace {

using namespace ac;

constexpr int rtts_per_page = 10;  // §5.1 lower bound

void print_figure(std::ostream& os) {
    const auto& w = bench::world_2018();
    const auto& cdn = w.cdn_net();

    os << "=== Figure 4a: CDN latency from probes (CDF of probes) ===\n";
    // The paper uses ~1,000 probes, 3 pings per ring.
    const auto probes = w.fleet().sample(1000, /*seed=*/404);
    for (int ring = 0; ring < cdn.ring_count(); ++ring) {
        analysis::weighted_cdf rtt;
        for (const auto& p : probes) {
            const auto result = atlas::ping_ring(p, cdn, ring, /*attempts=*/3, 404);
            if (result.reachable) rtt.add(result.rtt_ms, 1.0);
        }
        os << "  " << cdn.ring_name(ring) << ": per-RTT median="
           << strfmt::fixed(rtt.median(), 1) << " p90=" << strfmt::fixed(rtt.quantile(0.9), 1)
           << " ms;  per-page median=" << strfmt::fixed(rtt.median() * rtts_per_page, 0)
           << " p90=" << strfmt::fixed(rtt.quantile(0.9) * rtts_per_page, 0) << " ms\n";
    }

    os << "=== Figure 4b: latency change, smaller ring minus bigger ring ===\n";
    // Client-side rows hold the population fixed across rings.
    const auto& rows = w.client_measurements();
    const double fetch_multiple = w.config().telemetry.fetch_rtt_multiple;
    // (asn, region) -> per-ring median fetch.
    std::map<std::pair<topo::asn_t, topo::region_id>, std::vector<double>> by_loc;
    for (const auto& row : rows) {
        auto& v = by_loc[{row.asn, row.region}];
        v.resize(static_cast<std::size_t>(cdn.ring_count()), -1.0);
        v[static_cast<std::size_t>(row.ring)] = row.median_fetch_ms;
    }
    for (int ring = 0; ring + 1 < cdn.ring_count(); ++ring) {
        analysis::weighted_cdf delta;  // per-RTT ms
        for (const auto& [loc, fetch] : by_loc) {
            const double a = fetch[static_cast<std::size_t>(ring)];
            const double b = fetch[static_cast<std::size_t>(ring + 1)];
            if (a < 0.0 || b < 0.0) continue;
            delta.add((a - b) / fetch_multiple, 1.0);
        }
        if (delta.empty()) continue;
        os << "  " << cdn.ring_name(ring) << " - " << cdn.ring_name(ring + 1)
           << ": per-RTT median=" << strfmt::fixed(delta.median(), 2)
           << " p10=" << strfmt::fixed(delta.quantile(0.1), 2)
           << " p90=" << strfmt::fixed(delta.quantile(0.9), 2)
           << " ms; improved-or-equal=" << strfmt::fixed(delta.fraction_above(-0.01), 3)
           << "; P[regression>10ms/RTT]=" << strfmt::fixed(delta.fraction_leq(-10.0), 3)
           << "\n";
    }
}

void BM_PingAllRings(benchmark::State& state) {
    const auto& w = bench::world_2018();
    const auto probes = w.fleet().sample(100, 404);
    for (auto _ : state) {
        double total = 0.0;
        for (const auto& p : probes) {
            for (int ring = 0; ring < w.cdn_net().ring_count(); ++ring) {
                total += atlas::ping_ring(p, w.cdn_net(), ring, 3, 404).rtt_ms;
            }
        }
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_PingAllRings)->Unit(benchmark::kMillisecond);

} // namespace

AC_BENCH_MAIN(print_figure)
