// Appendix C: how many RTTs a page load costs.
//
// Nine pages x 20 loads through the Eq. 4 slow-start model with the
// parallel-connection accumulation rule. Paper: only a few percent of loads
// finish within 10 RTTs (making 10 a safe lower bound) and 90% finish
// within 20.
#include "bench/bench_common.h"
#include "src/netbase/strfmt.h"
#include "src/web/page_load.h"

namespace {

using namespace ac;

const web::page_rtt_study& study() {
    static const web::page_rtt_study s =
        web::run_page_rtt_study(/*pages=*/9, /*loads_per_page=*/20, web::page_model_options{},
                                /*seed=*/0xa99c0de);
    return s;
}

void print_figure(std::ostream& os) {
    const auto& s = study();
    os << "=== Appendix C: RTTs per page load (9 pages x 20 loads) ===\n";
    os << "  loads within 10 RTTs: " << strfmt::fixed(s.fraction_within(10), 3)
       << " (paper: a few percent)\n";
    os << "  loads within 20 RTTs: " << strfmt::fixed(s.fraction_within(20), 3)
       << " (paper: ~90%)\n";
    os << "  p10=" << s.percentile(0.10) << "  p50=" << s.percentile(0.50)
       << "  p90=" << s.percentile(0.90) << " RTTs\n";
    os << "  => 10 RTTs is a reasonable lower bound for §5's per-page scaling\n";

    // Eq. 4 spot checks.
    os << "  Eq.4: 15kB->" << web::transfer_rtts(15000.0) << " RTT, 120kB->"
       << web::transfer_rtts(120000.0) << " RTTs, 1MB->" << web::transfer_rtts(1e6)
       << " RTTs\n";
}

void BM_PageRttStudy(benchmark::State& state) {
    for (auto _ : state) {
        auto s = web::run_page_rtt_study(9, 20, web::page_model_options{}, 1);
        benchmark::DoNotOptimize(s);
    }
}
BENCHMARK(BM_PageRttStudy)->Unit(benchmark::kMicrosecond);

} // namespace

AC_BENCH_MAIN(print_figure)
