// Snapshot load-path baseline: how much faster is re-analyzing an archived
// world than regenerating it? Builds the small world, archives it, then
// times rebuild vs owned-load vs mmap-load (bundle open = full checksum
// verification) and full hydration (datasets from the archive, substrate
// rebuilt from the config). Exports BENCH_snapshot.json.
//
//   bench_snapshot [--repeat R] [--out FILE]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "src/core/world.h"
#include "src/snapshot/world_io.h"

namespace {

using namespace ac;

double ms_since(std::chrono::steady_clock::time_point start) {
    const std::chrono::duration<double, std::milli> wall =
        std::chrono::steady_clock::now() - start;
    return wall.count();
}

template <typename Fn>
double best_of(int repeat, Fn&& fn) {
    double best = 0.0;
    for (int i = 0; i < repeat; ++i) {
        const auto start = std::chrono::steady_clock::now();
        fn();
        const double ms = ms_since(start);
        if (i == 0 || ms < best) best = ms;
    }
    return best;
}

} // namespace

int main(int argc, char** argv) {
    int repeat = 3;
    std::string out_path = "BENCH_snapshot.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::cerr << "bench_snapshot: " << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--repeat") {
            repeat = std::max(1, std::atoi(value()));
        } else if (arg == "--out") {
            out_path = value();
        } else {
            std::cerr << "usage: bench_snapshot [--repeat R] [--out FILE]\n";
            return 2;
        }
    }

    const auto path =
        (std::filesystem::temp_directory_path() / "ac_bench_snapshot.acx").string();

    std::cerr << "building small world (serial)...\n";
    const double rebuild_ms = best_of(repeat, [] {
        auto config = core::world_config::small();
        config.threads = 1;
        const core::world w{std::move(config)};
    });

    auto config = core::world_config::small();
    config.threads = 1;
    const core::world w{std::move(config)};

    std::cerr << "archiving...\n";
    const double save_ms = best_of(repeat, [&] { snapshot::save_world(w, path); });
    const auto file_bytes = std::filesystem::file_size(path);

    std::cerr << "loading (owned)...\n";
    const double owned_load_ms = best_of(repeat, [&] {
        const auto b = snapshot::bundle::open(path, snapshot::load_mode::owned);
    });

    std::cerr << "loading (mmap)...\n";
    const double mmap_load_ms = best_of(repeat, [&] {
        const auto b = snapshot::bundle::open(path, snapshot::load_mode::mapped);
    });

    std::cerr << "hydrating (mmap load + substrate rebuild)...\n";
    const double hydrate_ms = best_of(repeat, [&] {
        const auto hydrated = snapshot::hydrate_world(
            snapshot::bundle::open(path, snapshot::load_mode::mapped), 1);
    });

    std::ofstream out{out_path};
    if (!out) {
        std::cerr << "bench_snapshot: cannot open " << out_path << " for writing\n";
        return 1;
    }
    auto write = [&](std::ostream& os) {
        os << "{\n  \"bench\": \"snapshot\",\n  \"scale\": \"small\",\n";
        os << "  \"file_bytes\": " << file_bytes << ",\n";
        os << "  \"rebuild_ms\": " << rebuild_ms << ",\n";
        os << "  \"save_ms\": " << save_ms << ",\n";
        os << "  \"owned_load_ms\": " << owned_load_ms << ",\n";
        os << "  \"mmap_load_ms\": " << mmap_load_ms << ",\n";
        os << "  \"hydrate_ms\": " << hydrate_ms << ",\n";
        os << "  \"owned_load_speedup\": " << (rebuild_ms / owned_load_ms) << ",\n";
        os << "  \"mmap_load_speedup\": " << (rebuild_ms / mmap_load_ms) << ",\n";
        os << "  \"note\": \"load = open + full checksum verification; hydrate adds "
              "dataset restore and the deterministic substrate rebuild\"\n";
        os << "}\n";
    };
    write(std::cout);
    write(out);
    std::remove(path.c_str());
    std::cerr << "wrote " << out_path << " (mmap load " << (rebuild_ms / mmap_load_ms)
              << "x faster than rebuild)\n";
    return 0;
}
