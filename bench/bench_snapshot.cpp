// Snapshot load-path baseline: how much faster is re-analyzing an archived
// world than regenerating it? Builds the small world, archives it, then
// times rebuild vs owned-load vs mmap-load (bundle open = full checksum
// verification) and full hydration (datasets from the archive, substrate
// rebuilt from the config). Exports an ac-bench-v1 BENCH_snapshot.json.
//
//   bench_snapshot [--repeat R] [--out FILE]
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <utility>

#define AC_BENCH_NO_HARNESS
#include "bench/bench_common.h"
#include "src/core/world.h"
#include "src/snapshot/world_io.h"

namespace {

using namespace ac;

void time_into(bench::metric& samples, int repeat, const auto& fn) {
    for (int i = 0; i < repeat; ++i) {
        const auto start = std::chrono::steady_clock::now();
        fn();
        samples.add(bench::ms_since(start));
    }
}

} // namespace

int main(int argc, char** argv) {
    const auto args =
        bench::bench_args::parse(argc, argv, "bench_snapshot", 3, "BENCH_snapshot.json");

    const auto path =
        (std::filesystem::temp_directory_path() / "ac_bench_snapshot.acx").string();

    bench::report report{"snapshot", "small", args.repeat};
    report.set_note("load = open + full checksum verification; hydrate adds dataset "
                    "restore and the deterministic substrate rebuild");
    using bench::direction;
    auto& rebuild_ms =
        report.add_metric("rebuild_ms", "ms", direction::lower_is_better, 2.0);
    auto& save_ms = report.add_metric("save_ms", "ms", direction::lower_is_better, 2.0);
    auto& owned_load_ms =
        report.add_metric("owned_load_ms", "ms", direction::lower_is_better, 2.0);
    auto& mmap_load_ms =
        report.add_metric("mmap_load_ms", "ms", direction::lower_is_better, 2.0);
    auto& hydrate_ms =
        report.add_metric("hydrate_ms", "ms", direction::lower_is_better, 2.0);

    std::cerr << "building small world (serial)...\n";
    time_into(rebuild_ms, args.repeat, [] {
        auto config = core::world_config::small();
        config.threads = 1;
        const core::world w{std::move(config)};
    });

    auto config = core::world_config::small();
    config.threads = 1;
    const core::world w{std::move(config)};

    std::cerr << "archiving...\n";
    time_into(save_ms, args.repeat, [&] { snapshot::save_world(w, path); });
    const auto file_bytes = std::filesystem::file_size(path);

    std::cerr << "loading (owned)...\n";
    time_into(owned_load_ms, args.repeat, [&] {
        const auto b = snapshot::bundle::open(path, snapshot::load_mode::owned);
    });

    std::cerr << "loading (mmap)...\n";
    time_into(mmap_load_ms, args.repeat, [&] {
        const auto b = snapshot::bundle::open(path, snapshot::load_mode::mapped);
    });

    std::cerr << "hydrating (mmap load + substrate rebuild)...\n";
    time_into(hydrate_ms, args.repeat, [&] {
        const auto hydrated = snapshot::hydrate_world(
            snapshot::bundle::open(path, snapshot::load_mode::mapped), 1);
    });

    // The all-plain v1 container of the same world, for the compression
    // headline (v2 stores columns encoded; see src/table/encoding.h).
    const auto v1_path =
        (std::filesystem::temp_directory_path() / "ac_bench_snapshot_v1.acx").string();
    snapshot::save_world(w, v1_path, 1);
    const auto v1_file_bytes = std::filesystem::file_size(v1_path);
    std::remove(v1_path.c_str());

    report.add_scalar("file_bytes", "bytes", direction::lower_is_better, 0.25,
                      static_cast<double>(file_bytes));
    report.add_scalar("v1_file_bytes", "bytes", direction::lower_is_better, 0.25,
                      static_cast<double>(v1_file_bytes));
    report.add_scalar("compression_ratio", "ratio", direction::higher_is_better, 0.25,
                      static_cast<double>(v1_file_bytes) /
                          static_cast<double>(file_bytes));
    report.add_scalar("owned_load_speedup", "x", direction::higher_is_better, 0.6,
                      rebuild_ms.median() / owned_load_ms.median());
    report.add_scalar("mmap_load_speedup", "x", direction::higher_is_better, 0.6,
                      rebuild_ms.median() / mmap_load_ms.median());

    std::remove(path.c_str());
    return report.write_file_and_stdout(args.out_path);
}
