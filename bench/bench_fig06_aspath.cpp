// Figure 6: Microsoft's CDN has shorter AS paths, and short paths are less
// inflated.
//
// 6a — distribution of organization-level path lengths (2/3/4/5+ ASes) from
//      probe locations to the CDN and to each letter. Paper: 69% of CDN
//      paths traverse two ASes; letters range 5-44% two-AS and 12-63% 4+.
// 6b — geographic inflation grouped by path length: fewer ASes, less
//      inflation, and the CDN less inflated at every length.
#include "bench/bench_common.h"
#include "src/analysis/deployment_metrics.h"
#include "src/netbase/strfmt.h"

namespace {

using namespace ac;

const analysis::aspath_study_result& result() {
    static const analysis::aspath_study_result r = analysis::run_aspath_study(
        bench::world_2018().fleet(), bench::world_2018().roots(), bench::world_2018().cdn_net(),
        bench::world_2018().graph());
    return r;
}

void print_figure(std::ostream& os) {
    const auto& r = result();
    os << "=== Figure 6a: AS-path-length distribution (share of locations) ===\n";
    os << "  destination        2 ASes  3 ASes  4 ASes  5+ ASes\n";
    for (const auto& d : r.lengths) {
        os << "  " << d.destination;
        for (std::size_t pad = d.destination.size(); pad < 18; ++pad) os << ' ';
        for (double s : d.share) os << " " << strfmt::fixed(s, 3) << " ";
        os << "\n";
    }

    os << "=== Figure 6b: geographic inflation by AS path length (ms) ===\n";
    for (const auto& d : r.inflation) {
        os << "  " << d.destination << ":\n";
        const char* labels[3] = {"2 ASes", "3 ASes", "4+ ASes"};
        for (std::size_t b = 0; b < 3; ++b) {
            if (d.boxes[b].weight <= 0.0) continue;
            core::print_box_row(os, labels[b], d.boxes[b]);
        }
    }
}

void BM_AspathStudy(benchmark::State& state) {
    const auto& w = bench::world_2018();
    for (auto _ : state) {
        auto r = analysis::run_aspath_study(w.fleet(), w.roots(), w.cdn_net(), w.graph());
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_AspathStudy)->Unit(benchmark::kMillisecond);

} // namespace

AC_BENCH_MAIN(print_figure)
