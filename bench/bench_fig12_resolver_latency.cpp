// Figures 12 and 13 / Appendix D: DNS latency at a shared recursive.
//
// Fig. 12 — CDF of all user query latencies over a long trace at an
// ISI-like resolver: ~half sub-millisecond (cache hits), a low-latency
// resolution band, and a high-latency tail.
// Fig. 13 — CDF of *root* latency per user query, log-scaled tail: fewer
// than 1% of queries generate a root request, fewer than 0.1% wait more
// than 100 ms on the root.
#include "bench/bench_common.h"
#include "src/analysis/stats.h"
#include "src/netbase/strfmt.h"
#include "src/resolver/study.h"

namespace {

using namespace ac;

const resolver::study_result& study() {
    static const resolver::study_result s = [] {
        const dns::root_zone zone{1000, 99};
        resolver::workload_options options;
        options.users = 150;
        options.days = 20;
        options.queries_per_user_day = 400.0;
        return resolver::run_shared_cache_study(zone, options, resolver::latency_model{},
                                                pop::resolver_software::bind_redundant, 99);
    }();
    return s;
}

void print_figure(std::ostream& os) {
    const auto& s = study();

    os << "=== Figure 12: user DNS query latency at a shared recursive ===\n";
    analysis::weighted_cdf latency;
    for (double v : s.query_latency_sample_ms) latency.add(v, 1.0);
    os << "  sub-millisecond (cached): " << strfmt::fixed(latency.fraction_leq(1.0), 3)
       << "\n";
    for (double q : {0.25, 0.5, 0.75, 0.9, 0.99}) {
        os << "  p" << static_cast<int>(q * 100) << " = "
           << strfmt::fixed(latency.quantile(q), 2) << " ms\n";
    }

    os << "=== Figure 13: root-DNS latency per user query ===\n";
    const double total = static_cast<double>(s.root_latency_zero_queries) +
                         static_cast<double>(s.root_latency_nonzero_ms.size());
    os << "  queries generating a root request: "
       << strfmt::fixed(100.0 * static_cast<double>(s.root_latency_nonzero_ms.size()) / total, 3)
       << "% (paper <1%)\n";
    os << "  queries with root latency >100 ms: "
       << strfmt::fixed(100.0 * s.fraction_root_latency_above(100.0), 4)
       << "% (paper <0.1%)\n";
    os << "  overall root cache miss rate: "
       << strfmt::fixed(100.0 * s.overall_root_miss_rate(), 2) << "% (paper ~0.5%)\n";
    os << "  median daily miss rate: "
       << strfmt::fixed(100.0 * s.median_daily_root_miss_rate(), 2) << "%\n";
    os << "  redundant fraction of root queries: "
       << strfmt::fixed(100.0 * s.redundant_root_fraction(), 1) << "% (paper 79.8%)\n";
}

void BM_SharedCacheDay(benchmark::State& state) {
    const dns::root_zone zone{1000, 99};
    resolver::workload_options options;
    options.users = 50;
    options.days = 1;
    options.queries_per_user_day = 200.0;
    for (auto _ : state) {
        auto s = resolver::run_shared_cache_study(zone, options, resolver::latency_model{},
                                                  pop::resolver_software::bind_redundant, 7);
        benchmark::DoNotOptimize(s);
    }
}
BENCHMARK(BM_SharedCacheDay)->Unit(benchmark::kMillisecond);

} // namespace

AC_BENCH_MAIN(print_figure)
