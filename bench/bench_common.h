// Shared bench scaffolding: every figure/table bench builds the same
// full-scale world (memoized per process) and prints its paper-style rows
// before running the google-benchmark timings.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>

#include "src/core/render.h"
#include "src/core/world.h"

namespace ac::bench {

/// The full-scale 2018-DITL world, built once per process.
inline const core::world& world_2018() {
    static const core::world instance{core::world_config{}};
    return instance;
}

/// The 2020-DITL world (App. B.3 / Fig. 11).
inline const core::world& world_2020() {
    static const core::world instance = [] {
        core::world_config config;
        config.year = core::ditl_year::y2020;
        return core::world{std::move(config)};
    }();
    return instance;
}

} // namespace ac::bench

/// Main for figure benches: prints the figure, then runs timings.
#define AC_BENCH_MAIN(print_fn)                                   \
    int main(int argc, char** argv) {                             \
        ::benchmark::Initialize(&argc, argv);                     \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv)) \
            return 1;                                             \
        print_fn(std::cout);                                      \
        ::benchmark::RunSpecifiedBenchmarks();                    \
        ::benchmark::Shutdown();                                  \
        return 0;                                                 \
    }
