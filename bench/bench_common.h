// Shared bench scaffolding: every figure/table bench builds the same
// full-scale world (memoized per process) and prints its paper-style rows
// before running the google-benchmark timings.
//
// The second half of this header is the shared BENCH_*.json emitter: the
// four baseline benches (world_build, routing, analysis, snapshot) collect
// per-repeat samples into a `report` and write one common schema,
// "ac-bench-v1", that ci/check_bench.py can diff against committed
// baselines:
//
//   {
//     "schema": "ac-bench-v1",
//     "bench": "routing",            // which binary produced it
//     "scale": "small",
//     "machine": "<hostname>",       // baselines are machine-specific
//     "git_rev": "<short rev at configure time>",
//     "hardware_concurrency": N,
//     "repeats": R,
//     "note": "...",                 // free-form context, not gated
//     "metrics": [
//       {"name": "serial.warm_ms", "unit": "ms", "direction": "lower",
//        "tolerance": 2.0, "median": 0.51, "min": 0.48, "samples": 5},
//       ...
//     ],
//     "details": { ... }             // optional raw JSON per bench, not gated
//   }
//
// `tolerance` is the relative regression band the CI gate applies to
// `median` (direction "lower": fail above median * (1 + tolerance);
// direction "higher": fail below median * (1 - tolerance)); check_bench.py
// additionally grants a small absolute slack to sub-millisecond metrics so
// scheduler noise on tiny hosts cannot fail the gate.
#pragma once

// The baseline benches (world_build, routing, analysis, snapshot) have their
// own mains and do not link google-benchmark; they define AC_BENCH_NO_HARNESS
// before including this header to skip it (the header alone pulls in a static
// initializer that needs the library).
#ifndef AC_BENCH_NO_HARNESS
#include <benchmark/benchmark.h>
#endif

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/render.h"
#include "src/core/world.h"

#ifndef AC_GIT_REV
#define AC_GIT_REV "unknown"
#endif

namespace ac::bench {

/// The full-scale 2018-DITL world, built once per process.
inline const core::world& world_2018() {
    static const core::world instance{core::world_config{}};
    return instance;
}

/// The 2020-DITL world (App. B.3 / Fig. 11).
inline const core::world& world_2020() {
    static const core::world instance = [] {
        core::world_config config;
        config.year = core::ditl_year::y2020;
        return core::world{std::move(config)};
    }();
    return instance;
}

// ---------------------------------------------------------------------------
// ac-bench-v1 report emitter
// ---------------------------------------------------------------------------

/// Which way a metric is allowed to drift before the CI gate fails.
enum class direction { lower_is_better, higher_is_better };

/// One gated measurement: per-repeat samples plus the tolerance band the CI
/// gate applies to the median.
struct metric {
    std::string name;
    std::string unit;        // "ms", "x", "bytes", "ratio"
    direction dir = direction::lower_is_better;
    double tolerance = 2.0;  // relative band around the baseline median
    std::vector<double> values;

    void add(double v) { values.push_back(v); }

    [[nodiscard]] double median() const {
        if (values.empty()) return 0.0;
        auto sorted = values;
        std::sort(sorted.begin(), sorted.end());
        const std::size_t n = sorted.size();
        return n % 2 == 1 ? sorted[n / 2] : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
    }

    [[nodiscard]] double min() const {
        return values.empty() ? 0.0 : *std::min_element(values.begin(), values.end());
    }
};

/// Wall-clock helper shared by the sample-collecting benches.
[[nodiscard]] inline double ms_since(std::chrono::steady_clock::time_point start) {
    const std::chrono::duration<double, std::milli> wall =
        std::chrono::steady_clock::now() - start;
    return wall.count();
}

/// An ac-bench-v1 report under construction. Metrics keep registration
/// order in the emitted JSON so baseline diffs stay readable.
class report {
public:
    report(std::string bench, std::string scale, int repeats)
        : bench_{std::move(bench)}, scale_{std::move(scale)}, repeats_{repeats} {}

    /// Registers a gated metric and returns a handle to push samples into.
    /// Handles stay valid across later registrations (deque storage).
    metric& add_metric(std::string name, std::string unit, direction dir, double tolerance) {
        metrics_.push_back(metric{std::move(name), std::move(unit), dir, tolerance, {}});
        return metrics_.back();
    }

    /// Convenience for derived values measured once (speedups, sizes).
    void add_scalar(std::string name, std::string unit, direction dir, double tolerance,
                    double value) {
        add_metric(std::move(name), std::move(unit), dir, tolerance).add(value);
    }

    void set_note(std::string note) { note_ = std::move(note); }

    /// Attaches pre-rendered JSON (per-stage breakdowns and the like) under
    /// "details". Not inspected by the CI gate.
    void add_details(std::string key, std::string raw_json) {
        details_.emplace_back(std::move(key), std::move(raw_json));
    }

    void write(std::ostream& out) const {
        out << "{\n";
        out << "  \"schema\": \"ac-bench-v1\",\n";
        out << "  \"bench\": \"" << bench_ << "\",\n";
        out << "  \"scale\": \"" << scale_ << "\",\n";
        out << "  \"machine\": \"" << machine_name() << "\",\n";
        out << "  \"git_rev\": \"" << AC_GIT_REV << "\",\n";
        out << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency() << ",\n";
        out << "  \"repeats\": " << repeats_ << ",\n";
        if (!note_.empty()) out << "  \"note\": \"" << note_ << "\",\n";
        out << "  \"metrics\": [\n";
        for (std::size_t i = 0; i < metrics_.size(); ++i) {
            const auto& m = metrics_[i];
            out << "    {\"name\": \"" << m.name << "\", \"unit\": \"" << m.unit
                << "\", \"direction\": \""
                << (m.dir == direction::lower_is_better ? "lower" : "higher")
                << "\", \"tolerance\": " << m.tolerance << ", \"median\": " << m.median()
                << ", \"min\": " << m.min() << ", \"samples\": " << m.values.size() << "}"
                << (i + 1 < metrics_.size() ? "," : "") << "\n";
        }
        out << "  ]";
        if (!details_.empty()) {
            out << ",\n  \"details\": {\n";
            for (std::size_t i = 0; i < details_.size(); ++i) {
                out << "    \"" << details_[i].first << "\": " << details_[i].second
                    << (i + 1 < details_.size() ? "," : "") << "\n";
            }
            out << "  }";
        }
        out << "\n}\n";
    }

    /// Writes the report to stdout and to `path`; returns the process exit
    /// code (1 when the file cannot be opened).
    [[nodiscard]] int write_file_and_stdout(const std::string& path) const {
        write(std::cout);
        std::ofstream out{path};
        if (!out) {
            std::cerr << bench_ << ": cannot open " << path << " for writing\n";
            return 1;
        }
        write(out);
        std::cerr << "wrote " << path << "\n";
        return 0;
    }

    [[nodiscard]] static std::string machine_name() {
        char host[256] = {};
        if (::gethostname(host, sizeof(host) - 1) != 0) return "unknown";
        return host;
    }

private:
    std::string bench_;
    std::string scale_;
    int repeats_;
    std::string note_;
    std::deque<metric> metrics_;
    std::vector<std::pair<std::string, std::string>> details_;
};

/// Shared `--threads N --repeat R --out FILE` parsing for the baseline
/// benches. Exits with usage on unknown flags; `threads` resolves to
/// hardware concurrency (or 4 when unknown/1, so pooled legs still exercise
/// the scheduler).
struct bench_args {
    int threads = 0;
    int repeat = 1;
    std::string out_path;

    static bench_args parse(int argc, char** argv, const char* bench_name,
                            int default_repeat, std::string default_out) {
        bench_args args;
        args.repeat = default_repeat;
        args.out_path = std::move(default_out);
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto value = [&]() -> const char* {
                if (i + 1 >= argc) {
                    std::cerr << bench_name << ": " << arg << " needs a value\n";
                    std::exit(2);
                }
                return argv[++i];
            };
            if (arg == "--threads") {
                args.threads = std::atoi(value());
            } else if (arg == "--repeat") {
                args.repeat = std::max(1, std::atoi(value()));
            } else if (arg == "--out") {
                args.out_path = value();
            } else {
                std::cerr << "usage: " << bench_name
                          << " [--threads N] [--repeat R] [--out FILE]\n";
                std::exit(2);
            }
        }
        if (args.threads <= 0) {
            const unsigned hw = std::thread::hardware_concurrency();
            args.threads = hw > 1 ? static_cast<int>(hw) : 4;
        }
        return args;
    }
};

} // namespace ac::bench

#ifndef AC_BENCH_NO_HARNESS
/// Main for figure benches: prints the figure, then runs timings.
#define AC_BENCH_MAIN(print_fn)                                   \
    int main(int argc, char** argv) {                             \
        ::benchmark::Initialize(&argc, argv);                     \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv)) \
            return 1;                                             \
        print_fn(std::cout);                                      \
        ::benchmark::RunSpecifiedBenchmarks();                    \
        ::benchmark::Shutdown();                                  \
        return 0;                                                 \
    }
#endif // AC_BENCH_NO_HARNESS
