// Figure 1: Microsoft's CDN rings and user populations.
//
// The map itself is a plot; the bench prints its content: ring sizes, the
// nesting property, per-continent front-end counts, and how user population
// concentrates around front-ends (the figure's point: front-ends are
// deployed where users are).
#include "bench/bench_common.h"
#include "src/netbase/strfmt.h"

namespace {

using namespace ac;

void print_figure(std::ostream& os) {
    const auto& w = bench::world_2018();
    const auto& cdn = w.cdn_net();
    const auto& regions = w.regions();

    os << "=== Figure 1: CDN rings and user populations ===\n";
    os << "  rings:";
    for (int r = 0; r < cdn.ring_count(); ++r) os << " " << cdn.ring_name(r);
    os << "  (nested: each ring contains all smaller rings)\n";

    // Front-ends per continent for the largest ring.
    int per_continent[7] = {};
    for (topo::region_id id : cdn.front_end_regions()) {
        ++per_continent[static_cast<int>(regions.at(id).cont)];
    }
    os << "  R" << cdn.ring_size(cdn.ring_count() - 1) << " front-ends by continent:";
    for (int c = 0; c < 7; ++c) {
        if (per_continent[c] == 0) continue;
        os << " " << topo::to_string(static_cast<topo::continent>(c)) << "="
           << per_continent[c];
    }
    os << "\n";

    // User concentration: share of users within 500/1000 km of a front-end,
    // per ring.
    for (int ring = 0; ring < cdn.ring_count(); ++ring) {
        double within_500 = 0.0;
        double within_1000 = 0.0;
        double total = 0.0;
        for (const auto& loc : w.users().locations()) {
            const double d = cdn.nearest_front_end_km(regions.at(loc.region).location, ring);
            total += loc.users;
            if (d <= 500.0) within_500 += loc.users;
            if (d <= 1000.0) within_1000 += loc.users;
        }
        os << "  " << cdn.ring_name(ring) << ": users within 500 km = "
           << strfmt::fixed(100.0 * within_500 / total, 1) << "%, within 1000 km = "
           << strfmt::fixed(100.0 * within_1000 / total, 1) << "%\n";
    }
    os << "  total users: " << strfmt::fixed(w.users().total_users() / 1e6, 1) << "M across "
       << w.users().locations().size() << " <region, AS> locations\n";
}

void BM_NearestFrontEnd(benchmark::State& state) {
    const auto& w = bench::world_2018();
    const auto& cdn = w.cdn_net();
    const auto& locs = w.users().locations();
    std::size_t i = 0;
    for (auto _ : state) {
        const auto& loc = locs[i++ % locs.size()];
        benchmark::DoNotOptimize(
            cdn.nearest_front_end_km(w.regions().at(loc.region).location, 4));
    }
}
BENCHMARK(BM_NearestFrontEnd);

} // namespace

AC_BENCH_MAIN(print_figure)
