// Tables 2 and 3: dataset inventory with strengths and weaknesses, filled
// from the synthetic world's actual datasets.
#include "bench/bench_common.h"
#include "src/core/datasets.h"
#include "src/netbase/strfmt.h"

namespace {

using namespace ac;

void print_figure(std::ostream& os) {
    const auto registry = core::dataset_registry(bench::world_2018());
    os << "=== Table 2: summary of datasets ===\n";
    for (const auto& e : registry) {
        os << "  " << e.name << " (" << e.sections << ")\n"
           << "    measurements=" << strfmt::fixed(e.measurements, 0) << "  duration="
           << e.duration << "  year=" << e.year << "  ASes=" << e.as_count << "\n"
           << "    technology: " << e.technology << "\n";
    }
    os << "=== Table 3: strengths and weaknesses ===\n";
    for (const auto& e : registry) {
        os << "  " << e.name << "\n    + " << e.strengths << "\n    - " << e.weaknesses
           << "\n";
    }
}

void BM_BuildRegistry(benchmark::State& state) {
    const auto& w = bench::world_2018();
    for (auto _ : state) {
        auto r = core::dataset_registry(w);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_BuildRegistry)->Unit(benchmark::kMillisecond);

} // namespace

AC_BENCH_MAIN(print_figure)
