// Ablation: diagnosing the residual inflation ([43]-style tooling).
//
// Fig. 5 shows the CDN's inflation is small but not zero. This bench
// classifies where the residual comes from (missing peering, far ingress,
// small-ring front-end distance, or genuine coverage gaps) per ring, and
// shows the traffic-engineering counterfactual from §7.1: withholding the
// announcement from the worst-routing neighbor and seeing whether its users
// land somewhere better.
#include "bench/bench_common.h"
#include "src/analysis/diagnosis.h"
#include "src/netbase/strfmt.h"
#include "src/routing/bgp.h"

namespace {

using namespace ac;

void print_figure(std::ostream& os) {
    const auto& w = bench::world_2018();
    const auto& cdn = w.cdn_net();

    os << "=== Diagnosis: where the CDN's residual inflation lives ===\n";
    os << "  ring   healthy  no-peering  far-ingress  far-front-end  isolated\n";
    for (int ring = 0; ring < cdn.ring_count(); ++ring) {
        analysis::diagnosis_options options;
        options.ring = ring;
        const auto report = analysis::diagnose_cdn_paths(cdn, w.users(), options);
        os << "  " << cdn.ring_name(ring);
        for (std::size_t pad = cdn.ring_name(ring).size(); pad < 6; ++pad) os << ' ';
        for (double share : report.user_share_by_problem) {
            os << " " << strfmt::fixed(share, 3) << "     ";
        }
        os << "\n";
    }

    // Engineer's worklist for the largest ring.
    const auto report = analysis::diagnose_cdn_paths(cdn, w.users());
    os << "  top offenders (user-weighted excess, R"
       << cdn.ring_size(cdn.ring_count() - 1) << "):\n";
    for (const auto& d : report.worst(5)) {
        os << "    <" << w.regions().at(d.region).name << ", AS" << d.asn << ">: "
           << strfmt::fixed(d.rtt_ms, 1) << " ms vs optimal "
           << strfmt::fixed(d.optimal_ms, 1) << " ms -> "
           << analysis::to_string(d.problem) << " ("
           << strfmt::fixed(d.users / 1e6, 2) << "M users)\n";
    }

    // §7.1's TE counterfactual: the CDN can decline to announce to an AS
    // that routes poorly. Take the worst no-peering offender's first-hop
    // transit and suppress the announcement toward it.
    int tried = 0;
    int helped = 0;
    double best_gain_ms = 0.0;
    std::string best_line;
    for (const auto& d : report.worst(50)) {
        if (d.problem != analysis::path_problem::no_peering) continue;
        const auto before = cdn.evaluate(d.asn, d.region, cdn.ring_count() - 1);
        if (!before || before->as_path.size() < 2) continue;
        if (++tried > 8) break;
        // Rebuild the PoP rib with that first-hop neighbor suppressed.
        const topo::asn_t bad_neighbor = before->as_path[before->as_path.size() - 2];
        std::vector<route::announcement> announcements;
        for (std::size_t i = 0; i < cdn.front_end_regions().size(); ++i) {
            route::announcement a{static_cast<route::site_id>(i), cdn.asn(),
                                  cdn.front_end_regions()[i],
                                  route::announcement_scope::global,
                                  {bad_neighbor}};
            announcements.push_back(std::move(a));
        }
        const route::anycast_rib engineered{w.graph(), w.regions(), std::move(announcements)};
        const auto after = engineered.select(d.asn, d.region);
        if (!after) continue;
        const double gain = before->rtt_ms - after->rtt_ms;
        if (gain > 0.0) ++helped;
        if (gain > best_gain_ms) {
            best_gain_ms = gain;
            best_line = "  best TE move: stop announcing to AS" +
                        std::to_string(bad_neighbor) + "; <" +
                        w.regions().at(d.region).name + ", AS" + std::to_string(d.asn) +
                        "> improves " + ac::strfmt::fixed(before->rtt_ms, 1) + " -> " +
                        ac::strfmt::fixed(after->rtt_ms, 1) + " ms";
        }
    }
    os << "  TE counterfactuals tried: " << tried << ", improved: " << helped << "\n";
    if (!best_line.empty()) {
        os << best_line << "\n";
    } else {
        os << "  no single-neighbor suppression helped (TE can backfire; the\n"
              "     paper notes it is used selectively at smaller ring sizes)\n";
    }
}

void BM_Diagnose(benchmark::State& state) {
    const auto& w = bench::world_2018();
    for (auto _ : state) {
        auto report = analysis::diagnose_cdn_paths(w.cdn_net(), w.users());
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_Diagnose)->Unit(benchmark::kMillisecond);

} // namespace

AC_BENCH_MAIN(print_figure)
