// Ablation: DDoS / withdrawal resilience (§7.3's top growth reason).
//
// Fails increasing fractions of a letter's sites (BGP withdrawal) and
// measures catchment shift: how many users move, the latency penalty, how
// concentrated the absorbed load is, and whether anyone is stranded. Run
// for a large open-hosted letter (L) and a small operator letter (C).
#include "bench/bench_common.h"
#include "src/anycast/failover.h"
#include "src/netbase/strfmt.h"

namespace {

using namespace ac;

void run_letter(std::ostream& os, char letter) {
    const auto& w = bench::world_2018();
    const auto& dep = w.roots().deployment_of(letter);

    os << "  " << letter << " root (" << dep.global_site_count() << " global sites):\n";
    os << "    failed  moved-users  stranded  median RTT before->after  max absorbed\n";
    const int globals = dep.global_site_count();
    for (double fraction : {0.05, 0.2, 0.5}) {
        const int count = std::max(1, static_cast<int>(fraction * globals));
        // Fail the first `count` global sites (population-weighted placement
        // makes these the most important ones — the worst case a DDoS aims
        // for).
        std::vector<route::site_id> failed;
        for (const auto& s : dep.sites()) {
            if (s.scope != route::announcement_scope::global) continue;
            failed.push_back(s.id);
            if (static_cast<int>(failed.size()) >= count) break;
        }
        const auto report =
            anycast::run_failover_study(dep, failed, w.users(), w.graph());
        os << "    " << strfmt::zero_padded(report.failed_sites, 3) << "     "
           << strfmt::fixed(100.0 * report.affected_user_share, 1) << "%        "
           << strfmt::fixed(100.0 * report.stranded_user_share, 2) << "%     "
           << strfmt::fixed(report.median_rtt_before_ms, 1) << " -> "
           << strfmt::fixed(report.median_rtt_after_ms, 1) << " ms            "
           << strfmt::fixed(100.0 * report.max_absorbed_share, 1) << "%\n";
    }
}

void print_figure(std::ostream& os) {
    os << "=== Ablation: site-failure resilience ===\n";
    run_letter(os, 'L');
    run_letter(os, 'C');
    os << "  => big deployments degrade gracefully (small moved shares, low\n"
          "     absorption concentration); small ones shift most users at once\n"
          "     - the capacity argument behind Table 1's DDoS answers.\n";
}

void BM_FailoverStudy(benchmark::State& state) {
    const auto& w = bench::world_2018();
    const auto& dep = w.roots().deployment_of('C');
    const std::vector<route::site_id> failed{0, 1};
    for (auto _ : state) {
        auto report = anycast::run_failover_study(dep, failed, w.users(), w.graph());
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_FailoverStudy)->Unit(benchmark::kMillisecond);

} // namespace

AC_BENCH_MAIN(print_figure)
