// Sweep harness baseline: grid throughput plus the bounded-memory contract
// of the streamed large tier.
//
//   * grid.build_ms           — fresh 2x2 small grid (peering x rings)
//     through run_grid, cells fanned across the pool
//   * grid.cells_per_minute   — the same measurement as a rate
//   * grid.cells              — cell count of the spec, unit "cells": a
//     machine-independent scalar gated at zero tolerance (a grid that
//     silently lost a cell is a regression on any host)
//   * resume.skip_ms          — second run over the finished grid: every
//     cell skips via the manifest, so this is the pure resume overhead
//   * large.build_ms          — one large-tier cell (~1.27B users, 330
//     front-ends, streamed DITL), full pool width
//   * stream.peak_buffered_bytes — bounded-writer high-water of the large
//     cell, unit "bytes": deterministic (ring bound x record size), gated
//     at zero tolerance
//   * large.peak_rss_mb       — getrusage high-water after the large cell;
//     the bench itself FAILS (exit 1) if it crosses the hard ceiling, so
//     a broken ring/spill path cannot pass by reporting a big number
//
//   bench_sweep [--threads N] [--repeat R] [--out FILE]
#include <sys/resource.h>

#include <chrono>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>

#define AC_BENCH_NO_HARNESS
#include "bench/bench_common.h"
#include "src/sweep/driver.h"
#include "src/sweep/spec.h"

namespace {

using namespace ac;

using clock_type = std::chrono::steady_clock;

// Hard ceiling on resident memory after building the large cell. The large
// world holds ~1.9M capture records plus the routing/user state, which sits
// well under 1 GiB; an unbounded capture path (ring bound ignored, spill
// never taken) at a future larger tier is the failure mode this guards.
constexpr long large_rss_ceiling_mb = 2048;

long peak_rss_mb() {
    struct rusage usage {};
    if (getrusage(RUSAGE_SELF, &usage) != 0) return -1;
    return usage.ru_maxrss / 1024;  // ru_maxrss is KiB on Linux
}

sweep::grid_spec small_grid() {
    std::istringstream spec_text(
        "tier small\n"
        "seed 42\n"
        "dim peering 0.3 0.72\n"
        "dim rings 3 5\n");
    return sweep::parse_grid_spec(spec_text);
}

sweep::grid_spec large_cell() {
    std::istringstream spec_text("tier large\nseed 42\n");
    return sweep::parse_grid_spec(spec_text);
}

} // namespace

int main(int argc, char** argv) {
    const auto args =
        bench::bench_args::parse(argc, argv, "bench_sweep", 3, "BENCH_sweep.json");

    bench::report report{"sweep", "small+large", args.repeat};
    report.set_note("grid legs run a fresh 2x2 small grid (peering x rings) per repeat; "
                    "resume re-runs the finished grid (all cells skip); the large leg "
                    "builds one streamed large-tier cell once and asserts the rusage "
                    "high-water stays under the hard ceiling");
    using bench::direction;
    auto& grid_ms = report.add_metric("grid.build_ms", "ms", direction::lower_is_better, 3.0);
    auto& grid_rate =
        report.add_metric("grid.cells_per_minute", "cpm", direction::higher_is_better, 0.75);
    auto& resume_ms =
        report.add_metric("resume.skip_ms", "ms", direction::lower_is_better, 3.0);

    const auto grid = small_grid();
    namespace fs = std::filesystem;
    const fs::path out_dir = fs::temp_directory_path() / "ac_bench_sweep_grid";

    std::cerr << "building " << grid.cell_count() << "-cell small grid x" << args.repeat
              << "...\n";
    sweep::sweep_options options;
    options.threads = args.threads;
    std::size_t built = 0;
    for (int i = 0; i < args.repeat; ++i) {
        fs::remove_all(out_dir);
        const auto start = clock_type::now();
        const auto result = sweep::run_grid(grid, out_dir.string(), options);
        const double wall = bench::ms_since(start);
        grid_ms.add(wall);
        grid_rate.add(static_cast<double>(result.built) / (wall / 60000.0));
        built = result.built;
        if (result.built != grid.cell_count()) {
            std::cerr << "bench_sweep: fresh grid built " << result.built << "/"
                      << grid.cell_count() << " cells\n";
            return 1;
        }
    }
    report.add_scalar("grid.cells", "cells", direction::higher_is_better, 0.0,
                      static_cast<double>(built));

    std::cerr << "resuming finished grid...\n";
    for (int i = 0; i < args.repeat; ++i) {
        const auto start = clock_type::now();
        const auto result = sweep::run_grid(grid, out_dir.string(), options);
        resume_ms.add(bench::ms_since(start));
        if (result.skipped != grid.cell_count()) {
            std::cerr << "bench_sweep: resume skipped " << result.skipped << "/"
                      << grid.cell_count() << " cells\n";
            return 1;
        }
    }
    fs::remove_all(out_dir);

    std::cerr << "building one large-tier cell...\n";
    const fs::path large_dir = fs::temp_directory_path() / "ac_bench_sweep_large";
    fs::remove_all(large_dir);
    const auto large_start = clock_type::now();
    const auto large_result = sweep::run_grid(large_cell(), large_dir.string(), options);
    const double large_wall = bench::ms_since(large_start);
    fs::remove_all(large_dir);
    if (large_result.built != 1) {
        std::cerr << "bench_sweep: large cell did not build\n";
        return 1;
    }
    if (large_result.stream_peak_bytes == 0) {
        std::cerr << "bench_sweep: large tier did not stream (peak_buffered_bytes == 0)\n";
        return 1;
    }
    const long rss_mb = peak_rss_mb();
    if (rss_mb < 0 || rss_mb > large_rss_ceiling_mb) {
        std::cerr << "bench_sweep: peak RSS " << rss_mb << " MiB exceeds the "
                  << large_rss_ceiling_mb << " MiB ceiling — capture streaming is not "
                  << "bounding memory\n";
        return 1;
    }
    report.add_scalar("large.build_ms", "ms", direction::lower_is_better, 3.0, large_wall);
    report.add_scalar("stream.peak_buffered_bytes", "bytes", direction::lower_is_better, 0.0,
                      static_cast<double>(large_result.stream_peak_bytes));
    report.add_scalar("large.peak_rss_mb", "mb", direction::lower_is_better, 1.0,
                      static_cast<double>(rss_mb));

    std::ostringstream info;
    info << "{\"grid_cells\": " << grid.cell_count() << ", \"threads\": " << args.threads
         << ", \"rss_ceiling_mb\": " << large_rss_ceiling_mb << "}";
    report.add_details("workload", info.str());
    return report.write_file_and_stdout(args.out_path);
}
