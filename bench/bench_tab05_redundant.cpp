// Table 5 / Appendix E: the redundant root-query case study.
//
// A resolution through a zone whose first authoritative nameserver times
// out, on buggy BIND-era software: the resolver then queries the ROOT for
// the other nameservers' AAAA records although the TLD referral answering
// them was cached less than one TTL ago.
#include "bench/bench_common.h"
#include "src/netbase/strfmt.h"
#include "src/resolver/recursive.h"

namespace {

using namespace ac;

void print_figure(std::ostream& os) {
    const dns::root_zone zone{1000, 5};
    const auto trace = resolver::make_redundant_query_trace(zone, 5);

    os << "=== Table 5: redundant root DNS requests (message trace) ===\n";
    os << "  step  t(s)      from      -> to                     qname (qtype)  note\n";
    int step = 1;
    for (const auto& t : trace) {
        os << "  " << strfmt::zero_padded(step++, 2) << "    "
           << strfmt::fixed(t.t_s, 5) << "  " << t.from << " -> " << t.to << "  " << t.qname
           << " (" << dns::to_string(t.qtype) << ")  " << t.note << "\n";
    }

    int redundant = 0;
    for (const auto& t : trace) {
        if (t.note.find("redundant") != std::string::npos) ++redundant;
    }
    os << "  redundant root queries in this resolution: " << redundant << "\n";
}

void BM_RedundantTrace(benchmark::State& state) {
    const dns::root_zone zone{1000, 5};
    for (auto _ : state) {
        auto trace = resolver::make_redundant_query_trace(zone, 5);
        benchmark::DoNotOptimize(trace);
    }
}
BENCHMARK(BM_RedundantTrace)->Unit(benchmark::kMicrosecond);

} // namespace

AC_BENCH_MAIN(print_figure)
