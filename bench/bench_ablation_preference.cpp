// Ablation: recursive letter preference ([60]).
//
// The All-Roots per-query inflation of Fig. 2 depends on recursives
// spreading queries toward low-latency letters. This ablation sweeps the
// preference strength from uniform querying to strong preference and
// reports the All-Roots latency-inflation tail — quantifying how much of
// the system-level result the paper owes to resolver behaviour rather than
// to the deployments.
#include "bench/bench_common.h"
#include "src/analysis/inflation.h"
#include "src/netbase/strfmt.h"

namespace {

using namespace ac;

struct setting {
    std::string name;
    double gamma_lo;
    double gamma_hi;
    double uniform_mix;
};

void print_figure(std::ostream& os) {
    os << "=== Ablation: letter-preference strength ===\n";
    os << "  preference     All-Roots LI p50   p90   >100ms\n";
    const setting settings[] = {
        {"uniform", 0.0, 0.0, 1.0},
        {"default", 1.2, 2.6, 0.10},
        {"strong", 3.0, 4.0, 0.02},
    };
    for (const auto& s : settings) {
        core::world_config config;
        config.query_model.preference_gamma_lo = s.gamma_lo;
        config.query_model.preference_gamma_hi = s.gamma_hi;
        config.query_model.preference_uniform_mix = s.uniform_mix;
        const core::world w{std::move(config)};
        const auto inflation = analysis::compute_root_inflation(
            w.filtered(), w.roots(), w.geodb(), w.cdn_user_counts());
        const auto& li = inflation.latency_all_roots;
        os << "  " << s.name;
        for (std::size_t pad = s.name.size(); pad < 13; ++pad) os << ' ';
        os << strfmt::fixed(li.median(), 1) << "           "
           << strfmt::fixed(li.quantile(0.9), 1) << "  "
           << strfmt::fixed(li.fraction_above(100.0), 3) << "\n";
    }
    os << "  => preferential querying is load-bearing: with uniform querying the\n"
          "     All-Roots tail approaches the per-letter curves of Fig. 2b.\n";
}

void BM_WorldBuild(benchmark::State& state) {
    for (auto _ : state) {
        core::world w{core::world_config{}};
        benchmark::DoNotOptimize(&w);
    }
}
BENCHMARK(BM_WorldBuild)->Unit(benchmark::kMillisecond);

} // namespace

AC_BENCH_MAIN(print_figure)
