// Figure 9 / Appendix B.2: amortization without the /24 join.
//
// Joining by exact resolver IP captures only ~8.4% of DITL volume, dropping
// the per-user median to roughly 1/30th of the /24-joined estimate — the
// justification for aggregating both datasets by /24.
#include "bench/bench_common.h"
#include "src/analysis/join.h"
#include "src/netbase/strfmt.h"

namespace {

using namespace ac;

analysis::amortization_result amortize(bool by_slash24) {
    const auto& w = bench::world_2018();
    analysis::amortization_options opts;
    opts.join_by_slash24 = by_slash24;
    return analysis::compute_amortization(w.filtered(), w.users(), w.cdn_user_counts(),
                                          w.apnic_user_counts(), w.as_mapper(),
                                          w.config().query_model, opts);
}

void print_figure(std::ostream& os) {
    const auto joined = amortize(true);
    const auto exact = amortize(false);

    os << "=== Figure 9: daily queries per user without the /24 join ===\n";
    os << "  CDN by /24 : median=" << strfmt::fixed(joined.cdn.median(), 3)
       << "  attributed volume=" << strfmt::fixed(joined.attributed_volume_fraction, 3)
       << "\n";
    os << "  CDN by IP  : median=" << strfmt::fixed(exact.cdn.median(), 4)
       << "  attributed volume=" << strfmt::fixed(exact.attributed_volume_fraction, 3)
       << "\n";
    os << "  median ratio (by-/24 / by-IP): "
       << strfmt::fixed(joined.cdn.median() / exact.cdn.median(), 1)
       << "x (paper ~30x)\n";
    os << "  APNIC (join-independent): median=" << strfmt::fixed(exact.apnic.median(), 3)
       << "\n";
}

void BM_ExactJoinAmortization(benchmark::State& state) {
    for (auto _ : state) {
        auto r = amortize(false);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_ExactJoinAmortization)->Unit(benchmark::kMillisecond);

} // namespace

AC_BENCH_MAIN(print_figure)
