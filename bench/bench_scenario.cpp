// Scenario/event baseline: incremental re-convergence vs full RIB rebuild.
//
// The mutable-RIB contract (DESIGN §11) is that a single-site withdrawal
// re-converges incrementally — clear one matrix row, repair the per-AS index
// for touched ASes, invalidate only their cache shards — instead of
// re-propagating every site. This bench pins that claim on the small world:
//
//   * incremental.withdraw_ms — anycast_rib::withdraw of one PoP
//   * incremental.announce_ms — re-announcing the same PoP
//   * full.rebuild_ms         — constructing a fresh RIB with that PoP's
//     announcement flagged withdrawn (what degraded_deployment does)
//   * withdraw_speedup_vs_rebuild — the gated ratio; acceptance bar >= 10x
//   * scenario.run_ms         — end-to-end driver replay (drain + restore of
//     a root-letter site, catchment re-measured each step)
//
//   bench_scenario [--threads N] [--repeat R] [--out FILE]
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#define AC_BENCH_NO_HARNESS
#include "bench/bench_common.h"
#include "src/core/world.h"
#include "src/scenario/driver.h"

namespace {

using namespace ac;

using clock_type = std::chrono::steady_clock;

} // namespace

int main(int argc, char** argv) {
    const auto args =
        bench::bench_args::parse(argc, argv, "bench_scenario", 5, "BENCH_scenario.json");

    std::cerr << "building small world...\n";
    auto config = core::world_config::small();
    config.threads = 1;
    core::world w{std::move(config)};  // non-const: the driver leg mutates letter RIBs
    engine::thread_pool pool{args.threads};

    bench::report report{"scenario", "small", args.repeat};
    report.set_note("incremental = anycast_rib withdraw/announce of one CDN PoP; full = "
                    "fresh RIB construction with that PoP withdrawn; speedup is the "
                    "DESIGN §11 acceptance bar (>= 10x); scenario.run_ms replays a "
                    "drain/restore timeline against a root letter");
    using bench::direction;
    auto& withdraw_ms =
        report.add_metric("incremental.withdraw_ms", "ms", direction::lower_is_better, 2.0);
    auto& announce_ms =
        report.add_metric("incremental.announce_ms", "ms", direction::lower_is_better, 2.0);
    auto& rebuild_ms =
        report.add_metric("full.rebuild_ms", "ms", direction::lower_is_better, 2.0);
    auto& scenario_ms =
        report.add_metric("scenario.run_ms", "ms", direction::lower_is_better, 3.0);

    // Leg 1: one-PoP withdrawal on the CDN PoP RIB, incremental vs rebuild.
    const auto announcements = w.cdn_net().pop_rib().announcements();
    route::anycast_rib rib{w.graph(), w.regions(), announcements, &pool};
    const auto victim = static_cast<route::site_id>(announcements.size() / 2);
    std::cerr << "withdrawing site " << victim << " of " << announcements.size()
              << " PoPs, incremental vs rebuild...\n";
    std::size_t ases_touched = 0;
    for (int i = 0; i < args.repeat; ++i) {
        auto start = clock_type::now();
        const auto stats = rib.withdraw(victim);
        withdraw_ms.add(bench::ms_since(start));
        ases_touched = stats.ases_touched;

        start = clock_type::now();
        (void)rib.announce(rib.announcements()[victim]);
        announce_ms.add(bench::ms_since(start));
    }

    auto degraded = announcements;
    degraded[victim].withdrawn = true;
    for (int i = 0; i < args.repeat; ++i) {
        const auto start = clock_type::now();
        route::anycast_rib full{w.graph(), w.regions(), degraded, &pool};
        rebuild_ms.add(bench::ms_since(start));
    }

    const double speedup = rebuild_ms.median() / withdraw_ms.median();
    report.add_scalar("withdraw_speedup_vs_rebuild", "x", direction::higher_is_better, 0.6,
                      speedup);
    if (speedup < 10.0) {
        std::cerr << "WARNING: incremental withdrawal only " << speedup
                  << "x faster than rebuild (acceptance bar is 10x)\n";
    }

    // Leg 2: end-to-end scenario replay against a root letter.
    std::cerr << "replaying drain/restore timeline against K root...\n";
    scenario::driver drv{w.graph(), w.regions()};
    drv.add_target("K", w.mutable_roots().mutable_deployment_of('K'));
    std::vector<scenario::weighted_source> sources;
    sources.reserve(w.users().locations().size());
    for (const auto& loc : w.users().locations()) {
        sources.push_back(scenario::weighted_source{loc.asn, loc.region, loc.users});
    }
    drv.set_sources(std::move(sources));
    const auto tl = scenario::parse_timeline_text("1 drain K 0\n2 restore K 0\n");
    scenario::driver_options drv_options;
    drv_options.pool = &pool;
    drv_options.threads = args.threads;
    for (int i = 0; i < args.repeat; ++i) {
        const auto start = clock_type::now();
        const auto steps = drv.run(tl, drv_options);
        scenario_ms.add(bench::ms_since(start));
        if (steps.size() != 3) {
            std::cerr << "bench_scenario: unexpected step count " << steps.size() << "\n";
            return 1;
        }
    }

    std::ostringstream info;
    info << "{\"pop_sites\": " << announcements.size() << ", \"victim_site\": " << victim
         << ", \"ases_touched\": " << ases_touched << ", \"threads\": " << args.threads
         << "}";
    report.add_details("workload", info.str());
    return report.write_file_and_stdout(args.out_path);
}
