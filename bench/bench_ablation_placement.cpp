// Ablation: site placement strategy (§7.2's open question).
//
// Holds the host network fixed (one well-peered content AS) and swaps only
// *where* the sites go: greedy latency-optimal (k-median), the default
// population-weighted draw, and uniform random. Scores the k-median
// objective, the realized anycast latency, and efficiency — separating the
// placement component of Fig. 7a from the routing component.
#include <memory>

#include "bench/bench_common.h"
#include "src/analysis/stats.h"
#include "src/anycast/placement.h"
#include "src/netbase/strfmt.h"
#include "src/topology/generator.h"

namespace {

using namespace ac;

struct scenario {
    std::string name;
    std::vector<topo::region_id> site_regions;
};

void print_figure(std::ostream& os) {
    // A private world: placement ablation attaches its own host networks.
    const auto regions = topo::make_regions(topo::region_plan{}, 4242);
    topo::graph_plan graph_plan;
    auto graph = topo::make_graph(regions, graph_plan, 4242);
    topo::address_space space;
    const pop::user_base users{graph, regions, space, pop::user_base_plan{}, 4242};

    constexpr int sites = 64;
    std::vector<scenario> scenarios;
    scenarios.push_back({"greedy-kmedian", anycast::greedy_placement(users, regions, sites)});
    scenarios.push_back({"random", anycast::random_placement(regions, sites, 4242)});
    {
        // The default builder's population-weighted placement, extracted by
        // building a throwaway deployment.
        anycast::deployment_plan plan;
        plan.name = "popweighted";
        plan.strategy = anycast::hosting_strategy::operator_run;
        plan.global_sites = sites;
        plan.dedicated_asn = topo::asn_blocks::content_base + 900;
        plan.seed = 4242;
        const auto dep = anycast::build_deployment(plan, graph, regions);
        std::vector<topo::region_id> picked;
        for (const auto& s : dep.sites()) picked.push_back(s.region);
        scenarios.push_back({"pop-weighted", std::move(picked)});
    }

    os << "=== Ablation: placement strategy (" << sites << " sites, same host network) ===\n";
    os << "  strategy        mean user dist (km)  median RTT (ms)  efficiency\n";
    topo::asn_t next_asn = topo::asn_blocks::content_base + 901;
    for (const auto& s : scenarios) {
        const double objective = anycast::mean_user_distance_km(users, regions, s.site_regions);

        // Identical host-network recipe for every strategy.
        topo::content_attachment attach;
        attach.asn = next_asn++;
        attach.name = s.name + "-net";
        attach.presence = s.site_regions;
        attach.transit_peering_fraction = 0.5;
        attach.eyeball_peering_fraction = 0.4;
        attach.seed = 4242;
        topo::attach_content_as(graph, regions, attach);
        std::vector<anycast::site> site_list;
        for (std::size_t i = 0; i < s.site_regions.size(); ++i) {
            site_list.push_back(anycast::site{static_cast<route::site_id>(i),
                                              s.name + "-" + std::to_string(i), attach.asn,
                                              s.site_regions[i],
                                              route::announcement_scope::global});
        }
        const anycast::deployment dep{s.name, std::move(site_list), graph, regions};

        analysis::weighted_cdf rtt;
        double at_closest = 0.0;
        double total = 0.0;
        for (const auto& loc : users.locations()) {
            const auto path = dep.rib().select(loc.asn, loc.region);
            if (!path) continue;
            rtt.add(path->rtt_ms, loc.users);
            total += loc.users;
            const double nearest =
                dep.nearest_global_site_km(regions.at(loc.region).location);
            if (path->direct_km - nearest < 50.0) at_closest += loc.users;
        }
        os << "  " << s.name;
        for (std::size_t pad = s.name.size(); pad < 15; ++pad) os << ' ';
        os << strfmt::fixed(objective, 0) << "                 "
           << strfmt::fixed(rtt.empty() ? 0.0 : rtt.median(), 1) << "            "
           << strfmt::fixed(total > 0 ? at_closest / total : 0.0, 3) << "\n";
    }
    os << "  => greedy placement beats population weighting on the distance\n"
          "     objective, but BGP still decides how much of it users see.\n";
}

void BM_GreedyPlacement(benchmark::State& state) {
    const auto regions = topo::make_regions(topo::region_plan{}, 4242);
    topo::graph_plan plan;
    plan.eyeball_count = 400;
    auto graph = topo::make_graph(regions, plan, 4242);
    topo::address_space space;
    const pop::user_base users{graph, regions, space, pop::user_base_plan{}, 4242};
    for (auto _ : state) {
        auto placement = anycast::greedy_placement(users, regions, 32);
        benchmark::DoNotOptimize(placement);
    }
}
BENCHMARK(BM_GreedyPlacement)->Unit(benchmark::kMillisecond);

} // namespace

AC_BENCH_MAIN(print_figure)
