// Ablation: peering breadth is the mechanism (§7.1).
//
// The paper attributes the CDN's low inflation to "extensive peering and
// engineering". This ablation re-runs the world with the CDN's direct
// eyeball-peering fraction swept from 0 (transit only) to the default 0.72
// and reports what Fig. 5/6 would have shown: inflation rises and 2-AS paths
// vanish as peering is removed, with everything else held fixed.
#include "bench/bench_common.h"
#include "src/analysis/deployment_metrics.h"
#include "src/analysis/inflation.h"
#include "src/netbase/strfmt.h"

namespace {

using namespace ac;

core::world make_world(double eyeball_peering) {
    core::world_config config;
    config.cdn.eyeball_peering_fraction = eyeball_peering;
    return core::world{std::move(config)};
}

void print_figure(std::ostream& os) {
    os << "=== Ablation: CDN eyeball-peering fraction ===\n";
    os << "  peering  2-AS share  GI zero-frac  LI p50 (ms)  LI p90 (ms)  median RTT (ms)\n";
    for (double peering : {0.0, 0.2, 0.45, 0.72}) {
        const auto w = make_world(peering);
        const auto inflation = analysis::compute_cdn_inflation(w.server_logs(), w.cdn_net());
        const int top_ring = w.cdn_net().ring_count() - 1;
        const auto& li = inflation.latency_by_ring[static_cast<std::size_t>(top_ring)];

        // 2-AS share over user locations.
        int direct = 0;
        int total = 0;
        analysis::weighted_cdf rtt;
        for (const auto& loc : w.users().locations()) {
            const auto path = w.cdn_net().evaluate(loc.asn, loc.region, top_ring);
            if (!path) continue;
            ++total;
            if (path->as_path.size() <= 2) ++direct;
            rtt.add(path->rtt_ms, loc.users);
        }
        os << "  " << strfmt::fixed(peering, 2) << "     "
           << strfmt::fixed(total ? static_cast<double>(direct) / total : 0.0, 3) << "       "
           << strfmt::fixed(inflation.efficiency(top_ring), 3) << "         "
           << strfmt::fixed(li.median(), 1) << "         "
           << strfmt::fixed(li.quantile(0.9), 1) << "         "
           << strfmt::fixed(rtt.median(), 1) << "\n";
    }
    os << "  => removing peering reproduces root-letter-like inflation on the\n"
          "     same deployment: the mechanism is interconnection, not anycast.\n";
}

void BM_WorldWithPeering(benchmark::State& state) {
    for (auto _ : state) {
        auto w = make_world(0.45);
        benchmark::DoNotOptimize(&w);
    }
}
BENCHMARK(BM_WorldWithPeering)->Unit(benchmark::kMillisecond);

} // namespace

AC_BENCH_MAIN(print_figure)
