// Figure 11 / Appendix B.3: the 2020 DITL re-analysis.
//
// The 2020 capture has different coverage (B absent, E/F incomplete, L
// anonymized) and different letter sizes (A grew to 51, J to 127, K to 75).
// Paper conclusion: neither the per-user query counts nor the inflation
// picture changes qualitatively.
#include "bench/bench_common.h"
#include "src/analysis/inflation.h"
#include "src/analysis/join.h"
#include "src/netbase/strfmt.h"

namespace {

using namespace ac;

void print_figure(std::ostream& os) {
    const auto& w = bench::world_2020();

    os << "=== Figure 11a: daily queries per user, 2020 DITL ===\n";
    const auto amortized = analysis::compute_amortization(
        w.filtered(), w.users(), w.cdn_user_counts(), w.apnic_user_counts(), w.as_mapper(),
        w.config().query_model);
    os << "  CDN   median=" << strfmt::fixed(amortized.cdn.median(), 3)
       << "  p90=" << strfmt::fixed(amortized.cdn.quantile(0.9), 2) << "\n";
    os << "  APNIC median=" << strfmt::fixed(amortized.apnic.median(), 3) << "\n";
    os << "  Ideal median=" << strfmt::fixed(amortized.ideal.median(), 4) << "\n";

    os << "=== Figure 11b: geographic inflation per root query, 2020 DITL ===\n";
    const auto inflation = analysis::compute_root_inflation(w.filtered(), w.roots(), w.geodb(),
                                                            w.cdn_user_counts());
    for (const auto& [letter, cdf] : inflation.geographic) {
        os << "  " << letter << " - " << w.roots().deployment_of(letter).global_site_count()
           << ": zero-frac=" << strfmt::fixed(cdf.fraction_leq(0.5), 3)
           << "  p90=" << strfmt::fixed(cdf.quantile(0.9), 1) << " ms\n";
    }
    core::print_cdf_row(os, "All Roots", inflation.geographic_all_roots);
    os << "  users inflated >20ms (2,000 km): "
       << strfmt::fixed(inflation.geographic_all_roots.fraction_above(20.0), 3)
       << " (paper ~10%, stable across years)\n";
}

void BM_Build2020Inflation(benchmark::State& state) {
    const auto& w = bench::world_2020();
    for (auto _ : state) {
        auto r = analysis::compute_root_inflation(w.filtered(), w.roots(), w.geodb(),
                                                  w.cdn_user_counts());
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_Build2020Inflation)->Unit(benchmark::kMillisecond);

} // namespace

AC_BENCH_MAIN(print_figure)
