// Table 4: DITL / CDN dataset overlap, with and without /24 aggregation.
//
// Paper values: DITL recursives 2.45% -> 29.3%; DITL volume 8.4% -> 72.2%;
// CDN recursives 41.9% -> 78.8%; CDN volume 47.05% -> 88.1%.
#include "bench/bench_common.h"
#include "src/analysis/join.h"
#include "src/netbase/strfmt.h"

namespace {

using namespace ac;

void print_figure(std::ostream& os) {
    const auto& w = bench::world_2018();
    const auto overlap = analysis::compute_overlap(w.filtered(), w.cdn_user_counts());

    os << "=== Table 4: DITL ∩ CDN overlap (exact-IP join, /24 join) ===\n";
    auto pct = [](double v) { return strfmt::fixed(100.0 * v, 2) + "%"; };
    os << "  DITL recursives covered: " << pct(overlap.by_ip.ditl_recursives) << " ("
       << pct(overlap.by_slash24.ditl_recursives) << ")   [paper 2.45% (29.3%)]\n";
    os << "  DITL volume covered:     " << pct(overlap.by_ip.ditl_volume) << " ("
       << pct(overlap.by_slash24.ditl_volume) << ")   [paper 8.4% (72.2%)]\n";
    os << "  CDN recursives covered:  " << pct(overlap.by_ip.cdn_recursives) << " ("
       << pct(overlap.by_slash24.cdn_recursives) << ")   [paper 41.9% (78.8%)]\n";
    os << "  CDN volume covered:      " << pct(overlap.by_ip.cdn_volume) << " ("
       << pct(overlap.by_slash24.cdn_volume) << ")   [paper 47.05% (88.1%)]\n";
}

void BM_ComputeOverlap(benchmark::State& state) {
    const auto& w = bench::world_2018();
    for (auto _ : state) {
        auto r = analysis::compute_overlap(w.filtered(), w.cdn_user_counts());
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_ComputeOverlap)->Unit(benchmark::kMillisecond);

} // namespace

AC_BENCH_MAIN(print_figure)
