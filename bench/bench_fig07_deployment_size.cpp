// Figure 7: larger deployments are less efficient but have lower latency.
//
// 7a — per deployment (letters + rings): median Atlas latency and efficiency
//      (share of users with zero geographic inflation). Paper: latency falls
//      and efficiency falls as deployments grow; F bucks the trend (low
//      latency *and* decent efficiency, courtesy of its CDN partner); B is
//      efficient (49%) yet slow (~160 ms).
// 7b — coverage: share of users within X km of a site. All Roots covers 91%
//      within 500 km; L (138 sites) covers users as well as R110.
#include "bench/bench_common.h"
#include "src/analysis/deployment_metrics.h"
#include "src/analysis/inflation.h"
#include "src/netbase/strfmt.h"

namespace {

using namespace ac;

void print_figure(std::ostream& os) {
    const auto& w = bench::world_2018();
    const auto& cdn = w.cdn_net();

    // Efficiency comes from the Fig. 2a / Fig. 5a y-intercepts.
    const auto root_inflation = analysis::compute_root_inflation(
        w.filtered(), w.roots(), w.geodb(), w.cdn_user_counts());
    const auto cdn_inflation = analysis::compute_cdn_inflation(w.server_logs(), w.cdn_net());

    os << "=== Figure 7a: median latency and efficiency vs deployment size ===\n";
    os << "  deployment  sites  median-latency(ms)  efficiency(%users at closest)\n";
    for (char letter : w.roots().geographic_analysis_letters()) {
        const auto& dep = w.roots().deployment_of(letter);
        const double latency = analysis::median_probe_latency(w.fleet(), dep, 7);
        os << "  " << letter << "           " << strfmt::zero_padded(dep.global_site_count(), 3)
           << "    " << strfmt::fixed(latency, 1) << "                "
           << strfmt::fixed(root_inflation.efficiency(letter), 3) << "\n";
    }
    for (int ring = 0; ring < cdn.ring_count(); ++ring) {
        const double latency = analysis::median_probe_latency_to_ring(w.fleet(), cdn, ring, 7);
        os << "  " << cdn.ring_name(ring) << "        " << strfmt::zero_padded(cdn.ring_size(ring), 3)
           << "    " << strfmt::fixed(latency, 1) << "                "
           << strfmt::fixed(cdn_inflation.efficiency(ring), 3) << "\n";
    }

    os << "=== Figure 7b: coverage radius (share of users within X km) ===\n";
    const std::vector<double> radii{250, 500, 750, 1000, 1250, 1500, 1750, 2000};
    auto print_curve = [&](const analysis::coverage_curve& curve) {
        os << "  " << curve.name << " (" << curve.global_sites << "):";
        for (std::size_t i = 0; i < curve.radii_km.size(); ++i) {
            os << "  " << static_cast<int>(curve.radii_km[i]) << "km="
               << strfmt::fixed(curve.covered_fraction[i], 2);
        }
        os << "\n";
    };
    print_curve(analysis::compute_all_roots_coverage(w.roots(), w.users(), w.regions(), radii));
    for (int ring = cdn.ring_count() - 1; ring >= 0; --ring) {
        print_curve(analysis::compute_ring_coverage(cdn, ring, w.users(), w.regions(), radii));
    }
    for (char letter : {'L', 'F', 'J', 'K', 'D'}) {
        print_curve(
            analysis::compute_coverage(w.roots().deployment_of(letter), w.users(), w.regions(), radii));
    }
}

void BM_CoverageCurve(benchmark::State& state) {
    const auto& w = bench::world_2018();
    const std::vector<double> radii{250, 500, 1000, 2000};
    for (auto _ : state) {
        auto c = analysis::compute_coverage(w.roots().deployment_of('L'), w.users(),
                                            w.regions(), radii);
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_CoverageCurve)->Unit(benchmark::kMillisecond);

} // namespace

AC_BENCH_MAIN(print_figure)
