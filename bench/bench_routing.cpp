// Route-selection fast-path baseline: measures select_many throughput over
// every user <region, AS> source against the CDN PoP RIB, comparing
//
//   * reference  — pre-index selection (per-call route-row rescan plus
//     on-the-fly haversine hot-potato geometry),
//   * uncached   — indexed selection (best-route index + geo tables), no
//     memoization,
//   * cold       — first select_many pass on a fresh RIB (cache fills),
//   * warm       — repeated select_many on the filled cache,
//
// each at 1 thread and on the pool, and exports BENCH_routing.json. The
// acceptance bar for the fast path is warm >= 5x over cold.
//
//   bench_routing [--threads N] [--repeat R] [--out FILE]
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "src/core/world.h"

namespace {

using namespace ac;

using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point start) {
    return std::chrono::duration<double, std::milli>(clock_type::now() - start).count();
}

std::vector<route::source_key> dedup_sources(const pop::user_base& users) {
    std::vector<route::source_key> sources;
    sources.reserve(users.locations().size());
    for (const auto& loc : users.locations()) {
        sources.push_back(route::source_key{loc.asn, loc.region});
    }
    std::sort(sources.begin(), sources.end(), [](const auto& a, const auto& b) {
        return a.asn != b.asn ? a.asn < b.asn : a.region < b.region;
    });
    sources.erase(std::unique(sources.begin(), sources.end(),
                              [](const auto& a, const auto& b) {
                                  return a.asn == b.asn && a.region == b.region;
                              }),
                  sources.end());
    return sources;
}

route::anycast_rib fresh_rib(const core::world& w, engine::thread_pool* pool) {
    return route::anycast_rib{w.graph(), w.regions(), w.cdn_net().pop_rib().announcements(),
                             pool};
}

struct timings {
    double reference_ms = 0.0;  // select_reference loop (pre-fast-path)
    double uncached_ms = 0.0;   // select_uncached loop (indexed, no cache)
    double cold_ms = 0.0;       // first select_many on a fresh rib
    double warm_ms = 0.0;       // best repeated select_many on the filled cache
    double hit_rate = 0.0;      // cache hit share after all passes
};

timings run(const core::world& w, std::span<const route::source_key> sources,
            engine::thread_pool* pool, int repeat) {
    timings t;

    {
        const auto rib = fresh_rib(w, pool);
        auto start = clock_type::now();
        for (const auto& s : sources) (void)rib.select_reference(s.asn, s.region);
        t.reference_ms = ms_since(start);
        for (int i = 1; i < repeat; ++i) {
            start = clock_type::now();
            for (const auto& s : sources) (void)rib.select_reference(s.asn, s.region);
            t.reference_ms = std::min(t.reference_ms, ms_since(start));
        }

        start = clock_type::now();
        for (const auto& s : sources) (void)rib.select_uncached(s.asn, s.region);
        t.uncached_ms = ms_since(start);
        for (int i = 1; i < repeat; ++i) {
            start = clock_type::now();
            for (const auto& s : sources) (void)rib.select_uncached(s.asn, s.region);
            t.uncached_ms = std::min(t.uncached_ms, ms_since(start));
        }
    }

    // Cold vs warm on one rib: the first pass fills the cache, later passes
    // hit it. Cold is not best-of-R (a second "cold" pass would be warm).
    const auto rib = fresh_rib(w, pool);
    auto start = clock_type::now();
    (void)rib.select_many(sources, pool);
    t.cold_ms = ms_since(start);

    start = clock_type::now();
    (void)rib.select_many(sources, pool);
    t.warm_ms = ms_since(start);
    for (int i = 1; i < repeat; ++i) {
        start = clock_type::now();
        (void)rib.select_many(sources, pool);
        t.warm_ms = std::min(t.warm_ms, ms_since(start));
    }

    const auto stats = rib.select_cache_stats();
    const auto lookups = stats.hits + stats.misses;
    t.hit_rate = lookups == 0 ? 0.0
                              : static_cast<double>(stats.hits) / static_cast<double>(lookups);
    return t;
}

void write_timings(std::ostream& out, const char* key, int threads, const timings& t) {
    out << "  \"" << key << "\": {\"threads\": " << threads
        << ", \"reference_ms\": " << t.reference_ms << ", \"uncached_ms\": " << t.uncached_ms
        << ", \"cold_ms\": " << t.cold_ms << ", \"warm_ms\": " << t.warm_ms
        << ", \"cache_hit_rate\": " << t.hit_rate << "}";
}

void write_report(std::ostream& out, std::size_t sources, const timings& serial,
                  const timings& parallel, int threads) {
    out << "{\n  \"bench\": \"routing\",\n  \"scale\": \"small\",\n";
    out << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency() << ",\n";
    out << "  \"sources\": " << sources << ",\n";
    write_timings(out, "serial", 1, serial);
    out << ",\n";
    write_timings(out, "parallel", threads, parallel);
    out << ",\n";
    out << "  \"index_speedup_serial\": " << (serial.reference_ms / serial.uncached_ms)
        << ",\n";
    out << "  \"warm_cache_speedup_serial\": " << (serial.cold_ms / serial.warm_ms) << ",\n";
    out << "  \"warm_cache_speedup_parallel\": " << (parallel.cold_ms / parallel.warm_ms)
        << "\n}\n";
}

} // namespace

int main(int argc, char** argv) {
    int threads = 0;
    int repeat = 5;
    std::string out_path = "BENCH_routing.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::cerr << "bench_routing: " << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--threads") {
            threads = std::atoi(value());
        } else if (arg == "--repeat") {
            repeat = std::max(1, std::atoi(value()));
        } else if (arg == "--out") {
            out_path = value();
        } else {
            std::cerr << "usage: bench_routing [--threads N] [--repeat R] [--out FILE]\n";
            return 2;
        }
    }
    if (threads <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads = hw > 1 ? static_cast<int>(hw) : 4;
    }

    std::cerr << "building small world...\n";
    auto config = core::world_config::small();
    config.threads = 1;
    const core::world w{std::move(config)};
    const auto sources = dedup_sources(w.users());
    std::cerr << sources.size() << " distinct <AS, region> sources\n";

    std::cerr << "measuring serial selection (threads=1)...\n";
    const auto serial = run(w, sources, nullptr, repeat);
    std::cerr << "measuring pooled selection (threads=" << threads << ")...\n";
    engine::thread_pool pool{threads};
    const auto parallel = run(w, sources, &pool, repeat);

    write_report(std::cout, sources.size(), serial, parallel, threads);
    std::ofstream out{out_path};
    if (!out) {
        std::cerr << "bench_routing: cannot open " << out_path << " for writing\n";
        return 1;
    }
    write_report(out, sources.size(), serial, parallel, threads);
    std::cerr << "wrote " << out_path << " (warm cache speedup "
              << (serial.cold_ms / serial.warm_ms) << "x serial)\n";
    return 0;
}
