// Route-selection fast-path baseline: measures select_many throughput over
// every user <region, AS> source against the CDN PoP RIB, comparing
//
//   * reference  — pre-index selection (per-call route-row rescan plus
//     on-the-fly haversine hot-potato geometry),
//   * uncached   — indexed selection (best-route index + geo tables), no
//     memoization,
//   * cold       — first select_many pass on a fresh RIB (cache fills),
//   * warm       — repeated select_many on the filled cache,
//
// each at 1 thread and on the pool, and exports an ac-bench-v1
// BENCH_routing.json. The acceptance bar for the fast path is warm >= 5x
// over cold.
//
//   bench_routing [--threads N] [--repeat R] [--out FILE]
#include <algorithm>
#include <chrono>
#include <iostream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#define AC_BENCH_NO_HARNESS
#include "bench/bench_common.h"
#include "src/core/world.h"

namespace {

using namespace ac;

using clock_type = std::chrono::steady_clock;

std::vector<route::source_key> dedup_sources(const pop::user_base& users) {
    std::vector<route::source_key> sources;
    sources.reserve(users.locations().size());
    for (const auto& loc : users.locations()) {
        sources.push_back(route::source_key{loc.asn, loc.region});
    }
    std::sort(sources.begin(), sources.end(), [](const auto& a, const auto& b) {
        return a.asn != b.asn ? a.asn < b.asn : a.region < b.region;
    });
    sources.erase(std::unique(sources.begin(), sources.end(),
                              [](const auto& a, const auto& b) {
                                  return a.asn == b.asn && a.region == b.region;
                              }),
                  sources.end());
    return sources;
}

route::anycast_rib fresh_rib(const core::world& w, engine::thread_pool* pool) {
    return route::anycast_rib{w.graph(), w.regions(), w.cdn_net().pop_rib().announcements(),
                             pool};
}

struct leg_metrics {
    bench::metric* reference_ms = nullptr;
    bench::metric* uncached_ms = nullptr;
    bench::metric* cold_ms = nullptr;
    bench::metric* warm_ms = nullptr;
    double hit_rate = 0.0;
};

void run(const core::world& w, std::span<const route::source_key> sources,
         engine::thread_pool* pool, int repeat, leg_metrics& leg) {
    {
        const auto rib = fresh_rib(w, pool);
        for (int i = 0; i < repeat; ++i) {
            auto start = clock_type::now();
            for (const auto& s : sources) (void)rib.select_reference(s.asn, s.region);
            leg.reference_ms->add(bench::ms_since(start));

            start = clock_type::now();
            for (const auto& s : sources) (void)rib.select_uncached(s.asn, s.region);
            leg.uncached_ms->add(bench::ms_since(start));
        }
    }

    // Cold vs warm on one rib: the first pass fills the cache, later passes
    // hit it. Cold is a single sample per leg (a second "cold" pass would be
    // warm, and rebuilding the rib per repeat would dominate the run).
    const auto rib = fresh_rib(w, pool);
    auto start = clock_type::now();
    (void)rib.select_many(sources, pool);
    leg.cold_ms->add(bench::ms_since(start));

    for (int i = 0; i < repeat; ++i) {
        start = clock_type::now();
        (void)rib.select_many(sources, pool);
        leg.warm_ms->add(bench::ms_since(start));
    }

    const auto stats = rib.select_cache_stats();
    const auto lookups = stats.hits + stats.misses;
    leg.hit_rate = lookups == 0
                       ? 0.0
                       : static_cast<double>(stats.hits) / static_cast<double>(lookups);
}

leg_metrics add_leg(bench::report& report, const char* prefix) {
    using bench::direction;
    leg_metrics leg;
    const std::string p{prefix};
    leg.reference_ms =
        &report.add_metric(p + ".reference_ms", "ms", direction::lower_is_better, 2.0);
    leg.uncached_ms =
        &report.add_metric(p + ".uncached_ms", "ms", direction::lower_is_better, 2.0);
    leg.cold_ms = &report.add_metric(p + ".cold_ms", "ms", direction::lower_is_better, 2.0);
    leg.warm_ms = &report.add_metric(p + ".warm_ms", "ms", direction::lower_is_better, 2.0);
    return leg;
}

} // namespace

int main(int argc, char** argv) {
    const auto args =
        bench::bench_args::parse(argc, argv, "bench_routing", 5, "BENCH_routing.json");

    std::cerr << "building small world...\n";
    auto config = core::world_config::small();
    config.threads = 1;
    const core::world w{std::move(config)};
    const auto sources = dedup_sources(w.users());
    std::cerr << sources.size() << " distinct <AS, region> sources\n";

    bench::report report{"routing", "small", args.repeat};
    report.set_note("reference = pre-index rescan selection; uncached = best-route index "
                    "+ geo tables without memoization; cold/warm = select_many before and "
                    "after the select cache fills");
    auto serial = add_leg(report, "serial");
    auto parallel = add_leg(report, "parallel");

    std::cerr << "measuring serial selection (threads=1)...\n";
    run(w, sources, nullptr, args.repeat, serial);
    std::cerr << "measuring pooled selection (threads=" << args.threads << ")...\n";
    engine::thread_pool pool{args.threads};
    run(w, sources, &pool, args.repeat, parallel);

    using bench::direction;
    report.add_scalar("index_speedup_serial", "x", direction::higher_is_better, 0.6,
                      serial.reference_ms->median() / serial.uncached_ms->median());
    report.add_scalar("warm_cache_speedup_serial", "x", direction::higher_is_better, 0.6,
                      serial.cold_ms->median() / serial.warm_ms->median());
    report.add_scalar("warm_cache_speedup_parallel", "x", direction::higher_is_better, 0.6,
                      parallel.cold_ms->median() / parallel.warm_ms->median());
    report.add_scalar("cache_hit_rate", "ratio", direction::higher_is_better, 0.1,
                      serial.hit_rate);

    std::ostringstream info;
    info << "{\"sources\": " << sources.size() << ", \"threads\": " << args.threads << "}";
    report.add_details("workload", info.str());
    return report.write_file_and_stdout(args.out_path);
}
