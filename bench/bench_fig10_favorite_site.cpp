// Figure 10 / Appendix B.2, Eq. 3: intra-/24 routing coherence.
//
// For each /24 with more than one active source IP, the fraction of its
// queries that miss its favorite site. Paper: for every letter, >80% of /24s
// send all queries to one site; even L (138 sites) has >90% fully coherent.
#include "bench/bench_common.h"
#include "src/analysis/join.h"
#include "src/netbase/strfmt.h"

namespace {

using namespace ac;

const analysis::favorite_site_result& result() {
    static const analysis::favorite_site_result r =
        analysis::compute_favorite_site(bench::world_2018().ditl().letters);
    return r;
}

void print_figure(std::ostream& os) {
    const auto& w = bench::world_2018();
    const auto& r = result();
    os << "=== Figure 10: fraction of /24 queries missing the favorite site ===\n";
    for (const auto& [letter, cdf] : r.fraction_not_favorite) {
        if (cdf.empty()) continue;
        const auto& dep = w.roots().deployment_of(letter);
        os << "  " << letter << " (" << dep.global_site_count() << "G "
           << dep.total_site_count() << "T): coherent(/24 all to one site)="
           << strfmt::fixed(cdf.fraction_leq(1e-9), 3)
           << "  p90=" << strfmt::fixed(cdf.quantile(0.9), 3)
           << "  p99=" << strfmt::fixed(cdf.quantile(0.99), 3) << "  (n=" << cdf.size()
           << ")\n";
    }
}

void BM_FavoriteSite(benchmark::State& state) {
    const auto& w = bench::world_2018();
    for (auto _ : state) {
        auto r = analysis::compute_favorite_site(w.ditl().letters);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_FavoriteSite)->Unit(benchmark::kMillisecond);

} // namespace

AC_BENCH_MAIN(print_figure)
