// Ablation: anycast vs best-unicast — reconciling the two methodologies.
//
// [51] measures inflation against the best unicast alternative; the paper
// measures it against the deployment's geometry (§3.1 explains why). With a
// simulated world both are computable: this bench reports the anycast
// penalty (what [51] would call anycast inflation) and the residual unicast
// inflation (what remains even when every user picks its best unicast
// route) for representative deployments.
#include "bench/bench_common.h"
#include "src/analysis/unicast.h"
#include "src/netbase/strfmt.h"

namespace {

using namespace ac;

void print_row(std::ostream& os, const std::string& label,
               const analysis::unicast_comparison& c) {
    os << "  " << label;
    for (std::size_t pad = label.size(); pad < 12; ++pad) os << ' ';
    os << "anycast-optimal " << strfmt::fixed(100.0 * c.anycast_optimal_share, 1)
       << "%;  penalty p50/p90 " << strfmt::fixed(c.anycast_penalty_ms.median(), 1) << "/"
       << strfmt::fixed(c.anycast_penalty_ms.quantile(0.9), 1)
       << " ms;  unicast residual p50/p90 "
       << strfmt::fixed(c.unicast_inflation_ms.median(), 1) << "/"
       << strfmt::fixed(c.unicast_inflation_ms.quantile(0.9), 1) << " ms\n";
}

void print_figure(std::ostream& os) {
    const auto& w = bench::world_2018();
    os << "=== Ablation: anycast penalty vs best unicast ===\n";
    for (char letter : {'B', 'C', 'K', 'L', 'F'}) {
        const auto comparison =
            analysis::compare_with_unicast(w.roots().deployment_of(letter), w.users());
        print_row(os, std::string{"root-"} + letter, comparison);
    }
    os << "  => even the best unicast routes carry residual inflation, which is\n"
          "     why the paper bounds Eq. 2 by geometry instead of unicast probes;\n"
          "     the anycast penalty itself shrinks with engineering (F vs K/L).\n";
}

void BM_UnicastComparison(benchmark::State& state) {
    const auto& w = bench::world_2018();
    const auto& dep = w.roots().deployment_of('C');
    for (auto _ : state) {
        auto c = analysis::compare_with_unicast(dep, w.users());
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_UnicastComparison)->Unit(benchmark::kMillisecond);

} // namespace

AC_BENCH_MAIN(print_figure)
