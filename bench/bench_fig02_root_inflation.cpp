// Figure 2: inflation to the root DNS.
//
// 2a — CDF of geographic inflation per root query, per letter + All Roots.
// 2b — CDF of latency inflation per root query (TCP-usable letters).
//
// Paper shapes to match: nearly every user inflated to some letter (All
// Roots y-intercept lowest); ~10.8% of users >20 ms (2,000 km) geographic
// inflation on average; 20-40% of users >100 ms latency inflation to
// individual letters but only ~10% system-wide; B (2 sites) barely inflated;
// larger deployments more likely to inflate.
#include <algorithm>

#include "bench/bench_common.h"
#include "src/analysis/inflation.h"
#include "src/netbase/strfmt.h"

namespace {

using namespace ac;

const analysis::root_inflation_result& result() {
    static const analysis::root_inflation_result r = analysis::compute_root_inflation(
        bench::world_2018().filtered(), bench::world_2018().roots(),
        bench::world_2018().geodb(), bench::world_2018().cdn_user_counts());
    return r;
}

void print_figure(std::ostream& os) {
    const auto& w = bench::world_2018();
    const auto& r = result();

    os << "=== Figure 2a: geographic inflation per root query (CDF of users) ===\n";
    // Present letters by deployment size, as the paper's legend does.
    std::vector<std::pair<int, char>> order;
    for (const auto& [letter, cdf] : r.geographic) {
        order.emplace_back(w.roots().deployment_of(letter).global_site_count(), letter);
    }
    std::sort(order.begin(), order.end());
    for (const auto& [sites, letter] : order) {
        core::print_cdf_row(os, std::string{letter} + " - " + std::to_string(sites),
                            r.geographic.at(letter));
    }
    core::print_cdf_row(os, "All Roots", r.geographic_all_roots);
    core::print_fraction_row(os, "All Roots thresholds", r.geographic_all_roots,
                             {0.5, 10.0, 20.0, 50.0});

    os << "=== Figure 2b: latency inflation per root query (CDF of users) ===\n";
    std::vector<std::pair<int, char>> lat_order;
    for (const auto& [letter, cdf] : r.latency) {
        lat_order.emplace_back(w.roots().deployment_of(letter).global_site_count(), letter);
    }
    std::sort(lat_order.begin(), lat_order.end());
    for (const auto& [sites, letter] : lat_order) {
        auto& cdf = r.latency.at(letter);
        core::print_cdf_row(os, std::string{letter} + " - " + std::to_string(sites), cdf);
        os << "    users >100ms: " << ac::strfmt::fixed(cdf.fraction_above(100.0), 3) << "\n";
    }
    core::print_cdf_row(os, "All Roots", r.latency_all_roots);
    os << "  All Roots users >100ms: "
       << ac::strfmt::fixed(r.latency_all_roots.fraction_above(100.0), 3) << "\n";
}

void BM_ComputeRootInflation(benchmark::State& state) {
    const auto& w = bench::world_2018();
    for (auto _ : state) {
        auto r = analysis::compute_root_inflation(w.filtered(), w.roots(), w.geodb(),
                                                  w.cdn_user_counts());
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_ComputeRootInflation)->Unit(benchmark::kMillisecond);

} // namespace

AC_BENCH_MAIN(print_figure)
