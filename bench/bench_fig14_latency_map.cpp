// Figure 14 / Appendix F: R110 latency by region.
//
// The paper's map colors user populations by relative latency to R110.
// We print the textual equivalent: per-continent relative-latency summaries
// and the correlation the figure demonstrates — latency falls with distance
// to the nearest front-end.
#include "bench/bench_common.h"
#include "src/analysis/stats.h"
#include "src/netbase/strfmt.h"

namespace {

using namespace ac;

void print_figure(std::ostream& os) {
    const auto& w = bench::world_2018();
    const auto& cdn = w.cdn_net();
    const int r110 = cdn.ring_count() - 1;

    // Per-<region,AS> medians to R110 from server-side logs.
    double max_latency = 1.0;
    for (const auto& row : w.server_logs()) {
        if (row.ring == r110) max_latency = std::max(max_latency, row.median_rtt_ms);
    }

    os << "=== Figure 14: relative latency to R110 by continent ===\n";
    analysis::weighted_cdf by_continent[7];
    analysis::weighted_cdf near_users;  // <500 km from a front-end
    analysis::weighted_cdf far_users;   // >2000 km
    for (const auto& row : w.server_logs()) {
        if (row.ring != r110) continue;
        const auto& region = w.regions().at(row.region);
        const double relative = row.median_rtt_ms / max_latency;
        by_continent[static_cast<int>(region.cont)].add(relative, row.users);
        const double d = cdn.nearest_front_end_km(region.location, r110);
        if (d < 500.0) near_users.add(row.median_rtt_ms, row.users);
        if (d > 2000.0) far_users.add(row.median_rtt_ms, row.users);
    }
    for (int c = 0; c < 7; ++c) {
        if (by_continent[c].empty()) continue;
        os << "  " << topo::to_string(static_cast<topo::continent>(c))
           << ": median relative latency = " << strfmt::fixed(by_continent[c].median(), 3)
           << " (p90 " << strfmt::fixed(by_continent[c].quantile(0.9), 3) << ")\n";
    }
    if (!near_users.empty() && !far_users.empty()) {
        os << "  users <500 km from a front-end: median "
           << strfmt::fixed(near_users.median(), 1) << " ms; users >2000 km: median "
           << strfmt::fixed(far_users.median(), 1)
           << " ms (latency falls near front-ends)\n";
    }
}

void BM_Fig14Aggregation(benchmark::State& state) {
    const auto& w = bench::world_2018();
    for (auto _ : state) {
        double total = 0.0;
        for (const auto& row : w.server_logs()) {
            if (row.ring == w.cdn_net().ring_count() - 1) total += row.median_rtt_ms;
        }
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_Fig14Aggregation)->Unit(benchmark::kMicrosecond);

} // namespace

AC_BENCH_MAIN(print_figure)
