// World-construction throughput baseline: builds the small world serially
// and on the pool, prints per-stage timings, and exports the comparison as
// an ac-bench-v1 BENCH_world_build.json so ci/check_bench.py can gate later
// PRs against it.
//
//   bench_world_build [--threads N] [--repeat R] [--out FILE]
//
// N defaults to hardware concurrency (or 4 when it is unknown/1, so the
// schedule still exercises the pool); R repeats each build and records every
// sample (the emitter reports median and min); FILE defaults to
// BENCH_world_build.json.
#include <chrono>
#include <iostream>
#include <sstream>
#include <utility>

#define AC_BENCH_NO_HARNESS
#include "bench/bench_common.h"
#include "src/core/world.h"

namespace {

using namespace ac;

struct build_result {
    double wall_ms = 0.0;
    engine::stage_report report;
};

build_result build_once(int threads) {
    auto config = core::world_config::small();
    config.threads = threads;
    const auto start = std::chrono::steady_clock::now();
    const core::world w{std::move(config)};
    return build_result{bench::ms_since(start), w.timing()};
}

std::string stages_json(const engine::stage_report& report) {
    std::ostringstream out;
    report.write_json(out);
    return out.str();
}

} // namespace

int main(int argc, char** argv) {
    const auto args = bench::bench_args::parse(argc, argv, "bench_world_build", 3,
                                               "BENCH_world_build.json");

    bench::report report{"world_build", "small", args.repeat};
    report.set_note(
        "parallel_for dispatches chunks only to min(workers, hardware cores) lanes and "
        "runs inline when that is 1, eliminating queue overhead on single-core hosts; any "
        "residual gap there is the C runtime leaving its single-threaded fast paths "
        "(malloc locking, atomic refcounts) once worker threads exist, so a pooled build "
        "can approach but not beat serial");
    auto& serial_ms =
        report.add_metric("serial.wall_ms", "ms", bench::direction::lower_is_better, 2.0);
    auto& parallel_ms =
        report.add_metric("parallel.wall_ms", "ms", bench::direction::lower_is_better, 2.0);

    // One untimed warmup, then interleave the two configurations so process
    // drift (page cache, allocator state, host contention) biases neither leg.
    std::cerr << "warmup build...\n";
    build_once(1);
    build_result best_serial, best_parallel;
    for (int i = 0; i < args.repeat; ++i) {
        std::cerr << "round " << (i + 1) << "/" << args.repeat << ": serial (threads=1), "
                  << "pooled (threads=" << args.threads << ")...\n";
        auto serial = build_once(1);
        auto parallel = build_once(args.threads);
        serial_ms.add(serial.wall_ms);
        parallel_ms.add(parallel.wall_ms);
        if (best_serial.report.stages.empty() || serial.wall_ms < best_serial.wall_ms) {
            best_serial = std::move(serial);
        }
        if (best_parallel.report.stages.empty() || parallel.wall_ms < best_parallel.wall_ms) {
            best_parallel = std::move(parallel);
        }
    }

    // The pooled build trades queue overhead for parallelism, so the gated
    // expectation is "not much slower than serial", expressed as a ratio.
    report.add_scalar("parallel_vs_serial_ratio", "ratio",
                      bench::direction::lower_is_better, 2.0,
                      parallel_ms.median() / serial_ms.median());
    report.add_details("serial_stages", stages_json(best_serial.report));
    report.add_details("parallel_stages", stages_json(best_parallel.report));
    return report.write_file_and_stdout(args.out_path);
}
