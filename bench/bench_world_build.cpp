// World-construction throughput baseline: builds the small world serially
// and on the pool, prints per-stage timings, and exports the comparison as
// BENCH_world_build.json so later scaling PRs have a recorded reference.
//
//   bench_world_build [--threads N] [--repeat R] [--out FILE]
//
// N defaults to hardware concurrency (or 4 when it is unknown/1, so the
// schedule still exercises the pool); R repeats each build and keeps the
// best wall time; FILE defaults to BENCH_world_build.json.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "src/core/world.h"

namespace {

using namespace ac;

struct build_result {
    double wall_ms = 0.0;
    engine::stage_report report;
};

build_result build_once(int threads) {
    auto config = core::world_config::small();
    config.threads = threads;
    const auto start = std::chrono::steady_clock::now();
    const core::world w{std::move(config)};
    const std::chrono::duration<double, std::milli> wall =
        std::chrono::steady_clock::now() - start;
    return build_result{wall.count(), w.timing()};
}

void keep_best(build_result& best, build_result r) {
    if (best.report.stages.empty() || r.wall_ms < best.wall_ms) best = std::move(r);
}

void write_report(std::ostream& out, const build_result& serial, const build_result& parallel,
                  int threads) {
    out << "{\n  \"bench\": \"world_build\",\n  \"scale\": \"small\",\n";
    out << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency() << ",\n";
    out << "  \"serial\": {\"threads\": 1, \"wall_ms\": " << serial.wall_ms << "},\n";
    out << "  \"parallel\": {\"threads\": " << threads << ", \"wall_ms\": " << parallel.wall_ms
        << "},\n";
    out << "  \"speedup\": " << (serial.wall_ms / parallel.wall_ms) << ",\n";
    out << "  \"note\": \"parallel_for dispatches chunks only to min(workers, hardware "
           "cores) lanes and runs inline when that is 1, eliminating queue overhead on "
           "single-core hosts; any residual gap there is the C runtime leaving its "
           "single-threaded fast paths (malloc locking, atomic refcounts) once worker "
           "threads exist, so a pooled build can approach but not beat serial\",\n";
    out << "  \"serial_stages\": ";
    serial.report.write_json(out);
    out << ",\n  \"parallel_stages\": ";
    parallel.report.write_json(out);
    out << "}\n";
}

} // namespace

int main(int argc, char** argv) {
    int threads = 0;
    int repeat = 1;
    std::string out_path = "BENCH_world_build.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::cerr << "bench_world_build: " << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--threads") {
            threads = std::atoi(value());
        } else if (arg == "--repeat") {
            repeat = std::max(1, std::atoi(value()));
        } else if (arg == "--out") {
            out_path = value();
        } else {
            std::cerr << "usage: bench_world_build [--threads N] [--repeat R] [--out FILE]\n";
            return 2;
        }
    }
    if (threads <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads = hw > 1 ? static_cast<int>(hw) : 4;
    }

    // One untimed warmup, then interleave the two configurations so process
    // drift (page cache, allocator state, host contention) biases neither leg.
    std::cerr << "warmup build...\n";
    build_once(1);
    build_result serial, parallel;
    for (int i = 0; i < repeat; ++i) {
        std::cerr << "round " << (i + 1) << "/" << repeat << ": serial (threads=1), "
                  << "pooled (threads=" << threads << ")...\n";
        keep_best(serial, build_once(1));
        keep_best(parallel, build_once(threads));
    }

    write_report(std::cout, serial, parallel, threads);
    std::ofstream out{out_path};
    if (!out) {
        std::cerr << "bench_world_build: cannot open " << out_path << " for writing\n";
        return 1;
    }
    write_report(out, serial, parallel, threads);
    std::cerr << "wrote " << out_path << " (speedup " << (serial.wall_ms / parallel.wall_ms)
              << "x)\n";
    return 0;
}
