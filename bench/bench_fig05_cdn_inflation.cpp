// Figure 5: anycast inflation can be small.
//
// CDN inflation (server-side logs, same Eq. 1/Eq. 2 methodology as the
// roots) vs the Root-DNS system-wide line. Paper shapes: most CDN users see
// zero geographic inflation (y-intercepts ~0.5+ vs 0.03 for roots); 85%
// under 10 ms GI per RTT on all rings; latency inflation roughly constant in
// ring size; <30 ms for 70% of users and <100 ms for 99%; system-wide root
// inflation is comparable, individual letters much worse.
#include "bench/bench_common.h"
#include "src/analysis/inflation.h"
#include "src/netbase/strfmt.h"

namespace {

using namespace ac;

struct figure5 {
    analysis::cdn_inflation_result cdn;
    analysis::root_inflation_result roots;
};

const figure5& result() {
    static const figure5 r = [] {
        const auto& w = bench::world_2018();
        figure5 f{analysis::compute_cdn_inflation(w.server_logs(), w.cdn_net()),
                  analysis::compute_root_inflation(w.filtered(), w.roots(), w.geodb(),
                                                   w.cdn_user_counts())};
        return f;
    }();
    return r;
}

void print_figure(std::ostream& os) {
    const auto& w = bench::world_2018();
    const auto& cdn = w.cdn_net();
    const auto& r = result();

    os << "=== Figure 5a: geographic inflation per RTT (CDF of users) ===\n";
    for (int ring = 0; ring < cdn.ring_count(); ++ring) {
        const auto& cdf = r.cdn.geographic_by_ring[static_cast<std::size_t>(ring)];
        core::print_cdf_row(os, cdn.ring_name(ring), cdf);
        os << "    <=10ms: " << strfmt::fixed(cdf.fraction_leq(10.0), 3)
           << "  zero: " << strfmt::fixed(r.cdn.efficiency(ring), 3) << "\n";
    }
    core::print_cdf_row(os, "Root DNS", r.roots.geographic_all_roots);
    os << "    roots with any GI: "
       << strfmt::fixed(r.roots.geographic_all_roots.fraction_above(
              analysis::zero_inflation_epsilon_ms), 3)
       << "  roots >10ms: "
       << strfmt::fixed(r.roots.geographic_all_roots.fraction_above(10.0), 3) << "\n";

    os << "=== Figure 5b: latency inflation per RTT (CDF of users) ===\n";
    for (int ring = 0; ring < cdn.ring_count(); ++ring) {
        const auto& cdf = r.cdn.latency_by_ring[static_cast<std::size_t>(ring)];
        core::print_cdf_row(os, cdn.ring_name(ring), cdf);
        os << "    <=30ms: " << strfmt::fixed(cdf.fraction_leq(30.0), 3)
           << "  <=60ms: " << strfmt::fixed(cdf.fraction_leq(60.0), 3)
           << "  <=100ms: " << strfmt::fixed(cdf.fraction_leq(100.0), 3) << "\n";
    }
    core::print_cdf_row(os, "Root DNS", r.roots.latency_all_roots);
    os << "    roots >100ms: "
       << strfmt::fixed(r.roots.latency_all_roots.fraction_above(100.0), 3) << "\n";

    // §6's headline comparison.
    double any_inflation_cdn = 0.0;
    for (int ring = 0; ring < cdn.ring_count(); ++ring) {
        any_inflation_cdn += 1.0 - r.cdn.efficiency(ring);
    }
    any_inflation_cdn /= cdn.ring_count();
    os << "  mean CDN users with any geographic inflation: "
       << strfmt::fixed(any_inflation_cdn, 3) << " (paper ~0.35 inflated / 0.65 at closest)\n";
}

void BM_ComputeCdnInflation(benchmark::State& state) {
    const auto& w = bench::world_2018();
    for (auto _ : state) {
        auto r = analysis::compute_cdn_inflation(w.server_logs(), w.cdn_net());
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_ComputeCdnInflation)->Unit(benchmark::kMillisecond);

} // namespace

AC_BENCH_MAIN(print_figure)
