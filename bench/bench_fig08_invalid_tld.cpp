// Figure 8 / Appendix B.1: the effect of counting invalid-TLD and PTR
// queries. Re-runs the Fig. 3 amortization on *unfiltered* volumes.
//
// Paper shapes: the CDN median jumps ~20x (to ~22 queries/user/day) and the
// APNIC median ~6x, because junk concentrates at /24s with many users.
#include "bench/bench_common.h"
#include "src/analysis/join.h"
#include "src/netbase/strfmt.h"

namespace {

using namespace ac;

analysis::amortization_result amortize(bool filtered) {
    const auto& w = bench::world_2018();
    capture::filter_options fo;
    if (!filtered) {
        fo.drop_invalid_tld = false;
        fo.drop_ptr = false;
    }
    const auto letters = capture::filter_all(w.ditl(), fo);
    return analysis::compute_amortization(letters, w.users(), w.cdn_user_counts(),
                                          w.apnic_user_counts(), w.as_mapper(),
                                          w.config().query_model);
}

void print_figure(std::ostream& os) {
    const auto with_junk = amortize(/*filtered=*/false);
    const auto without_junk = amortize(/*filtered=*/true);

    os << "=== Figure 8: daily queries per user, counting invalid TLD + PTR ===\n";
    auto row = [&](const char* label, const analysis::weighted_cdf& cdf) {
        os << "  " << label << ": p25=" << strfmt::fixed(cdf.quantile(0.25), 3)
           << "  p50=" << strfmt::fixed(cdf.quantile(0.5), 3)
           << "  p75=" << strfmt::fixed(cdf.quantile(0.75), 3)
           << "  p90=" << strfmt::fixed(cdf.quantile(0.9), 2) << "\n";
    };
    row("CDN   (unfiltered)", with_junk.cdn);
    row("CDN   (filtered)  ", without_junk.cdn);
    row("APNIC (unfiltered)", with_junk.apnic);
    row("APNIC (filtered)  ", without_junk.apnic);
    os << "  CDN median inflation factor from junk: "
       << strfmt::fixed(with_junk.cdn.median() / without_junk.cdn.median(), 1)
       << "x (paper ~20x)\n";
    os << "  APNIC median inflation factor from junk: "
       << strfmt::fixed(with_junk.apnic.median() / without_junk.apnic.median(), 1)
       << "x (paper ~6x)\n";
}

void BM_UnfilteredAmortization(benchmark::State& state) {
    for (auto _ : state) {
        auto r = amortize(false);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_UnfilteredAmortization)->Unit(benchmark::kMillisecond);

} // namespace

AC_BENCH_MAIN(print_figure)
