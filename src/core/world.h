// The study world: one object owning every substrate and dataset, built in
// dependency order from a single seed. Benches and examples construct a
// `world` and run analysis functions over its members; two worlds with the
// same config are bit-identical.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "src/atlas/atlas.h"
#include "src/capture/ditl.h"
#include "src/engine/stage_graph.h"
#include "src/engine/thread_pool.h"
#include "src/capture/filter.h"
#include "src/cdn/cdn.h"
#include "src/cdn/telemetry.h"
#include "src/dns/query_model.h"
#include "src/dns/root_letters.h"
#include "src/dns/zone.h"
#include "src/population/population.h"
#include "src/topology/addressing.h"
#include "src/topology/as_graph.h"
#include "src/topology/generator.h"
#include "src/topology/region.h"

namespace ac::core {

enum class ditl_year : std::uint8_t { y2018, y2020 };

/// Named world sizes. `small` is the unit-test world, `medium` is the paper's
/// scale (the historical default config, still spelled `full` on the CLI),
/// `large` is the production-scale tier: hundreds of CDN front-ends, a few
/// thousand ASes, hundreds of millions of users, and DITL synthesis running
/// through the bounded ring/spill writer so generation never holds more than
/// a fixed number of capture rows in RAM beyond the finished dataset.
enum class scale_tier : std::uint8_t { small, medium, large };

[[nodiscard]] std::string_view to_string(scale_tier tier) noexcept;
/// Parses "small" / "medium" / "large"; "full" is accepted as a legacy alias
/// for medium. Returns nullopt for anything else.
[[nodiscard]] std::optional<scale_tier> parse_scale_tier(std::string_view name) noexcept;

struct world_config {
    topo::region_plan regions{};
    topo::graph_plan graph{};
    pop::user_base_plan users{};
    dns::query_model_options query_model{};
    capture::ditl_options ditl{};
    cdn::cdn_plan cdn{};
    cdn::telemetry_options telemetry{};
    atlas::fleet_plan atlas{};
    topo::geo_database::options geodb{};
    double ip_to_asn_unmapped = 0.006;  // paper: 99.4% mapped
    int root_zone_tlds = 1400;
    ditl_year year = ditl_year::y2018;
    std::uint64_t seed = 42;
    /// Construction threads: 0 = hardware concurrency, 1 = serial (bypasses
    /// the pool), N = N workers. Thread count never changes a single output
    /// byte: parallel generators draw from per-item keyed RNG streams
    /// (engine/stream_rng.h) and merge in item order.
    int threads = 0;

    /// A smaller world for unit tests (fewer ASes, fewer sources).
    [[nodiscard]] static world_config small();
    /// The paper-scale world — identical to a default-constructed config.
    [[nodiscard]] static world_config medium();
    /// The production-scale tier (see scale_tier docs). Streamed DITL
    /// generation is on by default here (ditl.max_buffered_records != 0).
    [[nodiscard]] static world_config large();
    [[nodiscard]] static world_config for_tier(scale_tier tier);
};

/// Pre-generated datasets injected into a world instead of being synthesized
/// — the hydration path for `src/snapshot/` (snapshot::hydrate_world builds
/// one of these from a loaded bundle). The substrate (regions, graph, roots,
/// CDN, fleet, databases) is still rebuilt deterministically from the
/// config/seed; only the expensive dataset stages are replaced. Columnar
/// tables may hold borrowed columns pointing into `retain` (e.g. an mmap'd
/// snapshot), which the world keeps alive.
struct world_datasets {
    capture::ditl_dataset ditl;
    std::vector<capture::letter_table> filtered_tables;
    std::vector<cdn::server_log_row> server_logs;
    cdn::server_log_table server_log_table;
    std::vector<cdn::client_measurement_row> client_rows;
    std::vector<pop::cdn_user_counts::entry> cdn_count_blocks;
    std::vector<pop::cdn_user_counts::entry> cdn_count_ips;
    double cdn_count_total = 0.0;
    std::vector<pop::apnic_user_counts::entry> apnic_counts;
    /// Final address-space allocation history (includes the junk /24s the
    /// skipped DITL generator would have allocated).
    std::vector<topo::address_space::raw_range> space_ranges;
    std::uint32_t space_next_key = 0;
    /// Keeps external backing storage (snapshot mapping) alive.
    std::shared_ptr<const void> retain;
};

class world {
public:
    explicit world(world_config config);

    /// Hydrates a world from pre-generated datasets: substrate stages run
    /// exactly as in a live build, dataset stages are restored from `data`.
    /// Figures from a hydrated world are byte-identical to the live world
    /// that exported the datasets. `profiles()` is left empty — per-recursive
    /// query profiles only feed DITL synthesis, which hydration skips.
    world(world_config config, world_datasets data);

    /// Non-copyable and non-movable: subsystems hold pointers into sibling
    /// members (letter RIBs point at `graph_` and `regions_`), so relocating
    /// a world would dangle them. Factory returns still work — a prvalue
    /// `return world{...}` constructs in place under guaranteed elision.
    world(const world&) = delete;
    world& operator=(const world&) = delete;
    world(world&&) = delete;
    world& operator=(world&&) = delete;

    [[nodiscard]] const world_config& config() const noexcept { return config_; }
    [[nodiscard]] const topo::region_table& regions() const noexcept { return regions_; }
    [[nodiscard]] const topo::as_graph& graph() const noexcept { return graph_; }
    [[nodiscard]] const topo::address_space& space() const noexcept { return space_; }
    [[nodiscard]] const pop::user_base& users() const noexcept { return *users_; }
    [[nodiscard]] const pop::cdn_user_counts& cdn_user_counts() const noexcept {
        return *cdn_counts_;
    }
    [[nodiscard]] const pop::apnic_user_counts& apnic_user_counts() const noexcept {
        return *apnic_counts_;
    }
    [[nodiscard]] const dns::root_system& roots() const noexcept { return *roots_; }
    /// Mutable root system for `acctx scenario`: event timelines mutate
    /// letter RIBs in place (the rest of the world is untouched).
    [[nodiscard]] dns::root_system& mutable_roots() noexcept { return *roots_; }
    [[nodiscard]] const dns::root_zone& zone() const noexcept { return *zone_; }
    [[nodiscard]] const std::vector<dns::recursive_query_profile>& profiles() const noexcept {
        return profiles_;
    }
    [[nodiscard]] const capture::ditl_dataset& ditl() const noexcept { return ditl_; }
    [[nodiscard]] const std::vector<capture::filtered_letter>& filtered() const noexcept {
        return filtered_;
    }
    /// Columnar view of the filtered captures, built once at construction;
    /// the analysis kernels consume these instead of re-converting rows.
    [[nodiscard]] std::span<const capture::letter_table> filtered_tables() const noexcept {
        return filtered_tables_;
    }
    [[nodiscard]] const cdn::cdn_network& cdn_net() const noexcept { return *cdn_; }
    [[nodiscard]] const std::vector<cdn::server_log_row>& server_logs() const noexcept {
        return server_logs_;
    }
    /// Columnar view of the server-side logs, built once at construction.
    [[nodiscard]] const cdn::server_log_table& server_log_table() const noexcept {
        return server_log_table_;
    }
    [[nodiscard]] const std::vector<cdn::client_measurement_row>& client_measurements()
        const noexcept {
        return client_rows_;
    }
    [[nodiscard]] const atlas::probe_fleet& fleet() const noexcept { return *fleet_; }
    [[nodiscard]] const topo::ip_to_asn& as_mapper() const noexcept { return *ip_to_asn_; }
    [[nodiscard]] const topo::geo_database& geodb() const noexcept { return *geodb_; }

    /// Per-stage construction instrumentation (wall time, item counts),
    /// rendered by `acctx world --timing` and bench_world_build.
    [[nodiscard]] const engine::stage_report& timing() const noexcept { return timing_; }

    /// The construction pool, reusable by analyses (null-safe call sites:
    /// serial configs still return a valid pool that runs inline).
    [[nodiscard]] engine::thread_pool* pool() const noexcept { return pool_.get(); }

private:
    world(world_config config, std::unique_ptr<world_datasets> data);

    world_config config_;
    std::shared_ptr<const void> dataset_retain_;  // backing bytes for borrowed columns
    std::unique_ptr<engine::thread_pool> pool_;
    engine::stage_report timing_;
    topo::region_table regions_;
    topo::as_graph graph_;
    topo::address_space space_;
    std::unique_ptr<pop::user_base> users_;
    std::unique_ptr<dns::root_system> roots_;
    std::unique_ptr<cdn::cdn_network> cdn_;
    std::unique_ptr<pop::cdn_user_counts> cdn_counts_;
    std::unique_ptr<pop::apnic_user_counts> apnic_counts_;
    std::unique_ptr<dns::root_zone> zone_;
    std::vector<dns::recursive_query_profile> profiles_;
    capture::ditl_dataset ditl_;
    std::vector<capture::filtered_letter> filtered_;
    std::vector<capture::letter_table> filtered_tables_;
    std::vector<cdn::server_log_row> server_logs_;
    cdn::server_log_table server_log_table_;
    std::vector<cdn::client_measurement_row> client_rows_;
    std::unique_ptr<atlas::probe_fleet> fleet_;
    std::unique_ptr<topo::ip_to_asn> ip_to_asn_;
    std::unique_ptr<topo::geo_database> geodb_;
};

} // namespace ac::core
