// Dataset registry (Appendix A, Tables 2 and 3).
//
// The paper's answer to "why so many datasets": each has strengths and
// weaknesses, and combining views with different trade-offs is what makes
// the conclusions robust. The registry records the same inventory for the
// synthetic equivalents, filling measurement counts from a built world.
#pragma once

#include <string>
#include <vector>

#include "src/core/world.h"

namespace ac::core {

struct dataset_entry {
    std::string name;
    std::string sections;       // where the paper uses it
    double measurements = 0.0;  // count in the synthetic world
    std::string duration;
    int year = 2018;
    std::size_t as_count = 0;
    std::string technology;
    std::string strengths;
    std::string weaknesses;
};

/// Builds Tables 2+3 for a given world, computing the measurement counts and
/// AS coverage from the world's actual datasets.
[[nodiscard]] std::vector<dataset_entry> dataset_registry(const world& w);

} // namespace ac::core
