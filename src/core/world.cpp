#include "src/core/world.h"

namespace ac::core {

world_config world_config::small() {
    world_config config;
    config.regions = topo::region_plan{40, 12, 40, 16, 30, 10, 2};
    config.graph.tier1_count = 6;
    config.graph.transits_per_continent = 5;
    config.graph.eyeball_count = 160;
    config.graph.enterprise_count = 30;
    config.graph.public_dns_count = 2;
    config.ditl.junk_source_count = 300;
    config.atlas.probe_count = 600;
    config.root_zone_tlds = 200;
    return config;
}

world_config world_config::medium() { return world_config{}; }

world_config world_config::large() {
    world_config config;
    // ~4x the AS graph and user population, 3x the CDN footprint. The knobs
    // are sized so one large cell finishes in CI minutes, not hours; the
    // structural claims (hundreds of front-ends, thousands of ASes, O(10^8)
    // users, millions of capture rows) all hold at this size.
    config.graph.eyeball_count = 4800;
    config.graph.enterprise_count = 800;
    config.graph.public_dns_count = 8;
    config.users.users_per_weight = 1.8e8;
    config.ditl.junk_source_count = 32000;
    // Bounded streamed generation: capture rows overflow to a spill file once
    // this many are buffered, so generation scratch stays flat (DESIGN §15).
    config.ditl.max_buffered_records = std::size_t{1} << 16;
    config.cdn.ring_sizes = {84, 141, 222, 285, 330};
    config.atlas.probe_count = 14400;
    return config;
}

world_config world_config::for_tier(scale_tier tier) {
    switch (tier) {
        case scale_tier::small: return small();
        case scale_tier::medium: return medium();
        case scale_tier::large: return large();
    }
    return medium();
}

std::string_view to_string(scale_tier tier) noexcept {
    switch (tier) {
        case scale_tier::small: return "small";
        case scale_tier::medium: return "medium";
        case scale_tier::large: return "large";
    }
    return "medium";
}

std::optional<scale_tier> parse_scale_tier(std::string_view name) noexcept {
    if (name == "small") return scale_tier::small;
    if (name == "medium" || name == "full") return scale_tier::medium;
    if (name == "large") return scale_tier::large;
    return std::nullopt;
}

world::world(world_config config) : world(std::move(config), nullptr) {}

world::world(world_config config, world_datasets data)
    : world(std::move(config), std::make_unique<world_datasets>(std::move(data))) {}

world::world(world_config config, std::unique_ptr<world_datasets> data)
    : config_(std::move(config)),
      dataset_retain_(data ? data->retain : nullptr),
      pool_(std::make_unique<engine::thread_pool>(config_.threads)) {
    // Construction runs as a stage graph: stages execute one at a time in
    // dependency order (several stages mutate the shared graph or address
    // space, so the *order* below is part of the bit-identity contract),
    // while the hot stages parallelize internally over the pool. Dependency
    // edges also serialize the mutators: users allocates address space,
    // roots and cdn both attach host networks to the graph.
    //
    // With `data` (snapshot hydration) the substrate stages run unchanged —
    // they are pure functions of (config, seed) — while the dataset stages
    // restore their outputs instead of synthesizing them. The restored
    // address space supersedes the live allocation history so the databases
    // stage sees the junk /24s the skipped DITL generator would have added.
    engine::thread_pool* pool = pool_.get();
    engine::stage_graph stages;

    stages.add("regions", {}, [&] {
        regions_ = topo::make_regions(config_.regions, config_.seed);
        return regions_.size();
    });
    stages.add("graph", {"regions"}, [&] {
        graph_ = topo::make_graph(regions_, config_.graph, rand::mix_seed(config_.seed, 1));
        return static_cast<std::size_t>(graph_.as_count());
    });
    stages.add("users", {"graph"}, [&] {
        users_ = std::make_unique<pop::user_base>(graph_, regions_, space_, config_.users,
                                                  rand::mix_seed(config_.seed, 2));
        return users_->locations().size();
    });
    stages.add("roots", {"users"}, [&] {
        const auto specs = config_.year == ditl_year::y2018 ? dns::letters_2018()
                                                            : dns::letters_2020();
        roots_ = std::make_unique<dns::root_system>(specs, graph_, regions_,
                                                    rand::mix_seed(config_.seed, 3), pool);
        return roots_->all_letters().size();
    });
    stages.add("cdn", {"roots"}, [&] {
        auto plan = config_.cdn;
        plan.seed = rand::mix_seed(config_.seed, 4);
        cdn_ = std::make_unique<cdn::cdn_network>(plan, graph_, regions_, pool);
        return cdn_->front_end_regions().size();
    });
    stages.add("user_counts", {"cdn"}, [&] {
        if (data) {
            cdn_counts_ = std::make_unique<pop::cdn_user_counts>(pop::cdn_user_counts::restore(
                data->cdn_count_blocks, data->cdn_count_ips, data->cdn_count_total));
            apnic_counts_ = std::make_unique<pop::apnic_user_counts>(
                pop::apnic_user_counts::restore(data->apnic_counts));
            return data->cdn_count_blocks.size() + data->apnic_counts.size();
        }
        cdn_counts_ = std::make_unique<pop::cdn_user_counts>(
            *users_, pop::cdn_user_counts::options{}, rand::mix_seed(config_.seed, 5));
        apnic_counts_ = std::make_unique<pop::apnic_user_counts>(
            *users_, pop::apnic_user_counts::options{}, rand::mix_seed(config_.seed, 6));
        return users_->locations().size();
    });
    stages.add("zone", {"user_counts"}, [&] {
        zone_ = std::make_unique<dns::root_zone>(config_.root_zone_tlds,
                                                 rand::mix_seed(config_.seed, 7));
        return static_cast<std::size_t>(config_.root_zone_tlds);
    });
    stages.add("profiles", {"zone"}, [&] {
        if (data) return std::size_t{0};  // profiles only feed DITL synthesis
        const auto rtts = dns::compute_letter_rtts(*users_, *roots_, pool);
        profiles_ = dns::build_query_profiles(*users_, rtts, config_.query_model,
                                              rand::mix_seed(config_.seed, 8));
        return profiles_.size();
    });
    stages.add("ditl", {"profiles"}, [&] {
        if (data) {
            ditl_ = std::move(data->ditl);
            // The restored allocation history includes both the live users
            // stage's ranges (identical — same seed) and the junk /24s.
            space_ = topo::address_space::restore(data->space_ranges, data->space_next_key);
        } else {
            ditl_ = capture::generate_ditl(*roots_, *users_, profiles_, space_, config_.ditl,
                                           rand::mix_seed(config_.seed, 9), pool);
        }
        std::size_t records = 0;
        for (const auto& lc : ditl_.letters) records += lc.records.size();
        return records;
    });
    stages.add("filter", {"ditl"}, [&] {
        filtered_ = capture::filter_all(ditl_);
        return filtered_.size();
    });
    stages.add("server_logs", {"filter"}, [&] {
        if (data) {
            server_logs_ = std::move(data->server_logs);
        } else {
            server_logs_ = cdn::generate_server_logs(*cdn_, *users_, config_.telemetry,
                                                     rand::mix_seed(config_.seed, 10), pool);
        }
        return server_logs_.size();
    });
    stages.add("client_rows", {"server_logs"}, [&] {
        if (data) {
            client_rows_ = std::move(data->client_rows);
        } else {
            client_rows_ = cdn::generate_client_measurements(
                *cdn_, *users_, config_.telemetry, rand::mix_seed(config_.seed, 11), pool);
        }
        return client_rows_.size();
    });
    stages.add("tables", {"filter", "server_logs"}, [&] {
        // Columnar views built once; every analysis pass reads these. A
        // hydrated world adopts the snapshot's (possibly borrowed) columns.
        if (data) {
            filtered_tables_ = std::move(data->filtered_tables);
            server_log_table_ = std::move(data->server_log_table);
        } else {
            filtered_tables_ = capture::to_tables(filtered_);
            server_log_table_ = cdn::to_table(server_logs_);
        }
        std::size_t rows = server_log_table_.rows();
        for (const auto& t : filtered_tables_) rows += t.rows();
        return rows;
    });
    stages.add("fleet", {"client_rows"}, [&] {
        auto fleet_plan = config_.atlas;
        fleet_plan.seed = rand::mix_seed(config_.seed, 12);
        fleet_ = std::make_unique<atlas::probe_fleet>(graph_, regions_, fleet_plan);
        return fleet_->probes().size();
    });
    stages.add("databases", {"ditl", "fleet"}, [&] {
        // Databases snapshot the final address space (junk /24s included).
        ip_to_asn_ = std::make_unique<topo::ip_to_asn>(space_, config_.ip_to_asn_unmapped,
                                                       rand::mix_seed(config_.seed, 13));
        geodb_ = std::make_unique<topo::geo_database>(space_, regions_, config_.geodb,
                                                      rand::mix_seed(config_.seed, 14));
        return 2;
    });

    timing_ = stages.run(pool->lanes());
}

} // namespace ac::core
