// Text rendering for figures: benches print the same series the paper plots.
#pragma once

#include <iosfwd>
#include <string>

#include "src/analysis/stats.h"

namespace ac::core {

/// Prints a labeled quantile row: "label: p10=.. p25=.. p50=.. p75=.. p90=..
/// p95=.. p99=.." plus the zero-fraction (the CDF's y-intercept).
void print_cdf_row(std::ostream& os, const std::string& label, const analysis::weighted_cdf& cdf,
                   const std::string& unit = "ms");

/// Prints the fraction of weight at or below each of the given thresholds.
void print_fraction_row(std::ostream& os, const std::string& label,
                        const analysis::weighted_cdf& cdf, std::initializer_list<double> at,
                        const std::string& unit = "ms");

/// Prints a five-number box summary.
void print_box_row(std::ostream& os, const std::string& label, const analysis::box_summary& box);

} // namespace ac::core
