#include "src/core/render.h"

#include <ostream>

#include "src/netbase/strfmt.h"

namespace ac::core {

void print_cdf_row(std::ostream& os, const std::string& label,
                   const analysis::weighted_cdf& cdf, const std::string& unit) {
    os << "  " << label << ": ";
    if (cdf.empty()) {
        os << "(no data)\n";
        return;
    }
    os << "zero-frac=" << strfmt::fixed(cdf.fraction_leq(0.5), 3);
    for (double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}) {
        os << "  p" << static_cast<int>(q * 100) << "=" << strfmt::fixed(cdf.quantile(q), 1);
    }
    os << " " << unit << "  (n=" << cdf.size() << ")\n";
}

void print_fraction_row(std::ostream& os, const std::string& label,
                        const analysis::weighted_cdf& cdf, std::initializer_list<double> at,
                        const std::string& unit) {
    os << "  " << label << ": ";
    if (cdf.empty()) {
        os << "(no data)\n";
        return;
    }
    bool first = true;
    for (double v : at) {
        if (!first) os << "  ";
        first = false;
        os << "P[<=" << strfmt::fixed(v, v < 1 ? 3 : 0) << unit
           << "]=" << strfmt::fixed(cdf.fraction_leq(v), 3);
    }
    os << "\n";
}

void print_box_row(std::ostream& os, const std::string& label,
                   const analysis::box_summary& box) {
    os << "  " << label << ": min=" << strfmt::fixed(box.minimum, 1)
       << " q1=" << strfmt::fixed(box.q1, 1) << " med=" << strfmt::fixed(box.median, 1)
       << " q3=" << strfmt::fixed(box.q3, 1) << " max=" << strfmt::fixed(box.maximum, 1)
       << "  (w=" << strfmt::fixed(box.weight, 0) << ")\n";
}

} // namespace ac::core
