#include "src/core/datasets.h"

#include "src/table/table.h"

namespace ac::core {

namespace {

std::size_t distinct_ases_in_ditl(const world& w) {
    table::column<topo::asn_t> ases;
    for (const auto& lc : w.ditl().letters) {
        for (const auto& r : lc.records) {
            if (const auto asn = w.as_mapper().lookup(net::slash24{r.source_ip})) {
                ases.push_back(*asn);
            }
        }
    }
    return table::distinct_count(ases.view());
}

std::size_t distinct_ases_in_logs(const world& w) {
    // The column overload scans encoded snapshot columns directly (dict
    // columns skip the sort entirely).
    return table::distinct_count(w.server_log_table().asn);
}

} // namespace

std::vector<dataset_entry> dataset_registry(const world& w) {
    std::vector<dataset_entry> entries;

    {
        dataset_entry e;
        e.name = "Sampled CDN Server-Side Logs";
        e.sections = "§6";
        double samples = 0.0;
        w.server_log_table().sample_count.for_each(
            [&](std::int64_t count) { samples += static_cast<double>(count); });
        e.measurements = samples;
        e.duration = "1 week";
        e.year = 2019;
        e.as_count = distinct_ases_in_logs(w);
        e.technology = "TCP handshake RTT at front-ends";
        e.strengths = "client-to-front-end mapping, global coverage";
        e.weaknesses = "user population differs across rings";
        entries.push_back(std::move(e));
    }
    {
        dataset_entry e;
        e.name = "Sampled CDN Client-Side Measurements";
        e.sections = "§5.2";
        double samples = 0.0;
        for (const auto& row : w.client_measurements()) {
            samples += static_cast<double>(row.sample_count);
        }
        e.measurements = samples;
        e.duration = "1 week";
        e.year = 2019;
        e.as_count = distinct_ases_in_logs(w);
        e.technology = "Odin-style HTTP GET to every ring";
        e.strengths = "population held fixed across rings";
        e.weaknesses = "front-end unknown, smaller scale";
        entries.push_back(std::move(e));
    }
    {
        dataset_entry e;
        e.name = "CDN User Counts";
        e.sections = "§4.3";
        e.measurements = w.cdn_user_counts().total_observed_users();
        e.duration = "1 month";
        e.year = 2019;
        e.as_count = distinct_ases_in_logs(w);
        e.technology = "custom-URL DNS requests";
        e.strengths = "precise per-recursive counts";
        e.weaknesses = "NAT undercount, partial coverage";
        entries.push_back(std::move(e));
    }
    {
        dataset_entry e;
        e.name = "APNIC User Counts";
        e.sections = "§4.3";
        e.measurements = static_cast<double>(w.apnic_user_counts().as_count());
        e.duration = "updated daily";
        e.year = 2019;
        e.as_count = w.apnic_user_counts().as_count();
        e.technology = "ad-network sampling, per AS";
        e.strengths = "public, global";
        e.weaknesses = "unvalidated, coarse (AS) granularity";
        entries.push_back(std::move(e));
    }
    {
        dataset_entry e;
        e.name = "DITL Packet Traces";
        e.sections = "§2.1";
        e.measurements = w.ditl().total_queries_per_day() * w.config().ditl.capture_days;
        e.duration = "2 days";
        e.year = w.config().year == ditl_year::y2018 ? 2018 : 2020;
        e.as_count = distinct_ases_in_ditl(w);
        e.technology = "per-site packet captures";
        e.strengths = "global view of recursive behaviour";
        e.weaknesses = "noisy; only above the recursive";
        entries.push_back(std::move(e));
    }
    {
        dataset_entry e;
        e.name = "RIPE Atlas";
        e.sections = "§5.2, §7.1";
        e.measurements = static_cast<double>(w.fleet().probes().size());
        e.duration = "1 hour";
        e.year = 2018;
        e.as_count = w.fleet().as_coverage();
        e.technology = "ping, traceroute";
        e.strengths = "public, reproducible";
        e.weaknesses = "limited, biased coverage";
        entries.push_back(std::move(e));
    }
    return entries;
}

} // namespace ac::core
