#include "src/core/report.h"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "src/analysis/deployment_metrics.h"
#include "src/analysis/inflation.h"
#include "src/analysis/join.h"
#include "src/netbase/strfmt.h"

namespace ac::core {

namespace {

std::ofstream open_csv(const std::filesystem::path& path, const std::string& header) {
    std::ofstream out{path};
    if (!out) {
        throw std::runtime_error("report: cannot open " + path.string() + " for writing");
    }
    out << header << "\n";
    out.precision(10);
    return out;
}

void write_cdf(std::ofstream& out, const std::string& series,
               const analysis::weighted_cdf& cdf, int points) {
    for (const auto& [value, q] : cdf.curve(points)) {
        out << series << "," << value << "," << q << "\n";
    }
}

} // namespace

std::vector<std::string> write_figure_csvs(const world& w, const std::string& directory,
                                           const report_options& options) {
    const std::filesystem::path dir{directory};
    std::filesystem::create_directories(dir);
    std::vector<std::string> written;
    auto record = [&](const std::filesystem::path& p) { written.push_back(p.string()); };

    const auto root_inflation =
        analysis::compute_root_inflation(w.filtered_tables(), w.roots(), w.geodb(),
                                         w.cdn_user_counts(), {}, w.pool());
    const auto cdn_inflation = analysis::compute_cdn_inflation(w.server_log_table(), w.cdn_net());

    {
        const auto path = dir / "fig02a_root_geographic_inflation.csv";
        auto out = open_csv(path, "series,inflation_ms,cdf");
        for (const auto& [letter, cdf] : root_inflation.geographic) {
            write_cdf(out, std::string{letter}, cdf, options.cdf_points);
        }
        write_cdf(out, "all-roots", root_inflation.geographic_all_roots, options.cdf_points);
        record(path);
    }
    {
        const auto path = dir / "fig02b_root_latency_inflation.csv";
        auto out = open_csv(path, "series,inflation_ms,cdf");
        for (const auto& [letter, cdf] : root_inflation.latency) {
            write_cdf(out, std::string{letter}, cdf, options.cdf_points);
        }
        write_cdf(out, "all-roots", root_inflation.latency_all_roots, options.cdf_points);
        record(path);
    }
    {
        const auto amortized = analysis::compute_amortization(
            w.filtered_tables(), w.users(), w.cdn_user_counts(), w.apnic_user_counts(),
            w.as_mapper(), w.config().query_model, {}, w.pool());
        const auto path = dir / "fig03_queries_per_user.csv";
        auto out = open_csv(path, "series,queries_per_user_day,cdf");
        write_cdf(out, "ideal", amortized.ideal, options.cdf_points);
        write_cdf(out, "cdn", amortized.cdn, options.cdf_points);
        write_cdf(out, "apnic", amortized.apnic, options.cdf_points);
        record(path);
    }
    {
        const auto path = dir / "fig05a_cdn_geographic_inflation.csv";
        auto out = open_csv(path, "series,inflation_ms,cdf");
        for (int ring = 0; ring < w.cdn_net().ring_count(); ++ring) {
            write_cdf(out, w.cdn_net().ring_name(ring),
                      cdn_inflation.geographic_by_ring[static_cast<std::size_t>(ring)],
                      options.cdf_points);
        }
        write_cdf(out, "root-dns", root_inflation.geographic_all_roots, options.cdf_points);
        record(path);
    }
    {
        const auto path = dir / "fig05b_cdn_latency_inflation.csv";
        auto out = open_csv(path, "series,inflation_ms,cdf");
        for (int ring = 0; ring < w.cdn_net().ring_count(); ++ring) {
            write_cdf(out, w.cdn_net().ring_name(ring),
                      cdn_inflation.latency_by_ring[static_cast<std::size_t>(ring)],
                      options.cdf_points);
        }
        write_cdf(out, "root-dns", root_inflation.latency_all_roots, options.cdf_points);
        record(path);
    }
    {
        const auto aspath =
            analysis::run_aspath_study(w.fleet(), w.roots(), w.cdn_net(), w.graph());
        const auto path = dir / "fig06a_as_path_lengths.csv";
        auto out = open_csv(path, "destination,bucket,share");
        static constexpr const char* buckets[] = {"2", "3", "4", "5+"};
        for (const auto& d : aspath.lengths) {
            for (std::size_t b = 0; b < 4; ++b) {
                out << d.destination << "," << buckets[b] << "," << d.share[b] << "\n";
            }
        }
        record(path);
    }
    {
        const auto path = dir / "fig07a_size_latency_efficiency.csv";
        auto out = open_csv(path, "deployment,sites,median_ms,efficiency");
        for (char letter : w.roots().geographic_analysis_letters()) {
            const auto& dep = w.roots().deployment_of(letter);
            out << letter << "," << dep.global_site_count() << ","
                << analysis::median_probe_latency(w.fleet(), dep, 7) << ","
                << root_inflation.efficiency(letter) << "\n";
        }
        for (int ring = 0; ring < w.cdn_net().ring_count(); ++ring) {
            out << w.cdn_net().ring_name(ring) << "," << w.cdn_net().ring_size(ring) << ","
                << analysis::median_probe_latency_to_ring(w.fleet(), w.cdn_net(), ring, 7)
                << "," << cdn_inflation.efficiency(ring) << "\n";
        }
        record(path);
    }
    {
        const std::vector<double> radii{100, 250,  500,  750,  1000,
                                        1250, 1500, 1750, 2000, 3000};
        const auto path = dir / "fig07b_coverage.csv";
        auto out = open_csv(path, "deployment,radius_km,covered_fraction");
        auto emit = [&](const analysis::coverage_curve& curve) {
            for (std::size_t i = 0; i < curve.radii_km.size(); ++i) {
                out << curve.name << "," << curve.radii_km[i] << ","
                    << curve.covered_fraction[i] << "\n";
            }
        };
        emit(analysis::compute_all_roots_coverage(w.roots(), w.users(), w.regions(), radii));
        for (int ring = 0; ring < w.cdn_net().ring_count(); ++ring) {
            emit(analysis::compute_ring_coverage(w.cdn_net(), ring, w.users(), w.regions(),
                                                 radii));
        }
        for (char letter : w.roots().geographic_analysis_letters()) {
            emit(analysis::compute_coverage(w.roots().deployment_of(letter), w.users(),
                                            w.regions(), radii));
        }
        record(path);
    }
    return written;
}

} // namespace ac::core
