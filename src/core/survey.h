// Root-operator survey data (Table 1, §7.3.1).
//
// Eleven of twelve root-operating organisations answered. The answers are
// data, not measurement; we encode the paper's tallies and the tally logic.
#pragma once

#include <array>
#include <string>
#include <vector>

namespace ac::core {

enum class growth_reason { latency, ddos_resilience, isp_resilience, other };
enum class growth_trend { accelerate, decelerate, maintain, cannot_share, no_answer };

struct operator_response {
    std::string organization;
    std::vector<growth_reason> reasons;
    growth_trend trend = growth_trend::maintain;
};

/// The eleven responses, tallying to the paper's Table 1 counts:
/// latency 8, DDoS 9, ISP 5, other 3; accelerate 1, decelerate 4,
/// maintain 4, cannot-share 1 (one organisation answered no trend question).
[[nodiscard]] std::vector<operator_response> survey_responses();

struct survey_tally {
    int latency = 0;
    int ddos_resilience = 0;
    int isp_resilience = 0;
    int other = 0;
    int accelerate = 0;
    int decelerate = 0;
    int maintain = 0;
    int cannot_share = 0;
    int respondents = 0;
};

[[nodiscard]] survey_tally tally(const std::vector<operator_response>& responses);

/// Site-count history the survey section cites: roots grew from 516 to 1367
/// sites over five years (§4.1, §7.3.1).
struct root_growth {
    int sites_2016 = 516;
    int sites_2021 = 1367;
};

} // namespace ac::core
