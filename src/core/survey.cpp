#include "src/core/survey.h"

namespace ac::core {

std::vector<operator_response> survey_responses() {
    using enum growth_reason;
    using enum growth_trend;
    // Organisations are anonymized (the paper reports only tallies); this
    // assignment reproduces the published counts exactly.
    return {
        {"org-01", {latency, ddos_resilience}, decelerate},
        {"org-02", {latency, ddos_resilience, isp_resilience}, maintain},
        {"org-03", {latency, ddos_resilience}, decelerate},
        {"org-04", {ddos_resilience, isp_resilience}, maintain},
        {"org-05", {latency, ddos_resilience, other}, accelerate},
        {"org-06", {latency, isp_resilience}, maintain},
        {"org-07", {latency, ddos_resilience}, decelerate},
        {"org-08", {ddos_resilience, isp_resilience, other}, maintain},
        {"org-09", {latency, ddos_resilience}, decelerate},
        {"org-10", {latency, ddos_resilience, isp_resilience}, cannot_share},
        {"org-11", {other}, no_answer},
    };
}

survey_tally tally(const std::vector<operator_response>& responses) {
    survey_tally t;
    t.respondents = static_cast<int>(responses.size());
    for (const auto& r : responses) {
        for (auto reason : r.reasons) {
            switch (reason) {
                case growth_reason::latency: ++t.latency; break;
                case growth_reason::ddos_resilience: ++t.ddos_resilience; break;
                case growth_reason::isp_resilience: ++t.isp_resilience; break;
                case growth_reason::other: ++t.other; break;
            }
        }
        switch (r.trend) {
            case growth_trend::accelerate: ++t.accelerate; break;
            case growth_trend::decelerate: ++t.decelerate; break;
            case growth_trend::maintain: ++t.maintain; break;
            case growth_trend::cannot_share: ++t.cannot_share; break;
            case growth_trend::no_answer: break;
        }
    }
    return t;
}

} // namespace ac::core
