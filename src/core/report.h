// Plot-ready figure exports.
//
// The benches print human-readable rows; this module writes the same series
// as CSV files so the paper's plots can be regenerated with any plotting
// tool. One file per figure, long format: series,x,y.
#pragma once

#include <string>
#include <vector>

#include "src/core/world.h"

namespace ac::core {

struct report_options {
    int cdf_points = 200;   // samples per CDF curve
};

/// Writes every figure's data series into `directory` (created if absent):
///
///   fig02a_root_geographic_inflation.csv   series,inflation_ms,cdf
///   fig02b_root_latency_inflation.csv      series,inflation_ms,cdf
///   fig03_queries_per_user.csv             series,queries_per_user_day,cdf
///   fig05a_cdn_geographic_inflation.csv    series,inflation_ms,cdf
///   fig05b_cdn_latency_inflation.csv       series,inflation_ms,cdf
///   fig06a_as_path_lengths.csv             destination,bucket,share
///   fig07a_size_latency_efficiency.csv     deployment,sites,median_ms,efficiency
///   fig07b_coverage.csv                    deployment,radius_km,covered_fraction
///
/// Returns the paths written, in a stable order. Throws on I/O failure.
[[nodiscard]] std::vector<std::string> write_figure_csvs(const world& w,
                                                         const std::string& directory,
                                                         const report_options& options = {});

} // namespace ac::core
