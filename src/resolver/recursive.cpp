#include "src/resolver/recursive.h"

#include <algorithm>
#include <cmath>

namespace ac::resolver {

namespace {

/// The registered zone one level below the TLD ("www.example.com" ->
/// "example.com"); single-label names return themselves.
std::string sld_zone_of(std::string_view name) {
    std::string normalized = dns::normalize_name(name);
    // Find the last two labels.
    auto last_dot = normalized.rfind('.');
    if (last_dot == std::string::npos) return normalized;
    auto second_dot = normalized.rfind('.', last_dot - 1);
    if (second_dot == std::string::npos) return normalized;
    return normalized.substr(second_dot + 1);
}

constexpr std::uint32_t delegation_ttl_s = 172800;  // TLD-level NS records
constexpr std::uint32_t address_ttl_s = 600;        // leaf A/AAAA records
constexpr std::uint32_t negative_ttl_s = 86400;     // root SOA minimum

} // namespace

recursive_sim::recursive_sim(const dns::root_zone& zone, pop::resolver_software software,
                             latency_model model, std::uint64_t seed)
    : zone_(&zone), software_(software), model_(model),
      gen_(rand::mix_seed(seed, 0x2ec0c5e1ull)) {}

recursive_sim::zone_servers recursive_sim::servers_for(std::string_view sld_zone) {
    // Deterministic per zone: 2-6 nameservers, AAAA glue only for the first.
    const auto h = rand::splitmix64(
        std::hash<std::string_view>{}(sld_zone));
    zone_servers servers;
    const int count = 2 + static_cast<int>(h % 5);
    for (int i = 0; i < count; ++i) {
        servers.ns_names.push_back("ns" + std::to_string(20 + i) + "." + std::string{sld_zone});
    }
    servers.with_aaaa_glue = 1;
    return servers;
}

double recursive_sim::tld_rtt(std::string_view tld) {
    // Deterministic per TLD (TLD servers don't move during a study).
    rand::rng g{rand::mix_seed(0x71d0ull, std::hash<std::string_view>{}(tld))};
    return model_.tld_rtt_median_ms * g.lognormal(0.0, model_.tld_rtt_sigma);
}

double recursive_sim::auth_rtt(std::string_view sld_zone) {
    rand::rng g{rand::mix_seed(0xa0700ull, std::hash<std::string_view>{}(sld_zone))};
    return model_.auth_rtt_median_ms * g.lognormal(0.0, model_.auth_rtt_sigma);
}

resolve_outcome recursive_sim::resolve(std::string_view qname, dns::rr_type qtype,
                                       double now_s, std::vector<trace_step>* trace) {
    ++totals_.client_queries;
    resolve_outcome outcome;
    const std::string name = dns::normalize_name(qname);
    const std::string tld{dns::tld_of(name)};
    double t = now_s;

    auto step = [&](const std::string& from, const std::string& to, const std::string& q,
                    dns::rr_type type, const std::string& note) {
        if (trace != nullptr) {
            trace->push_back(trace_step{t - now_s, from, to, q, type, note});
        }
    };
    step("client", "resolver", name, qtype, "client query");

    // Answer cache.
    if (auto hit = cache_.lookup(name, qtype, now_s)) {
        ++totals_.cache_hits;
        outcome.latency_ms = model_.cache_hit_ms;
        outcome.served_from_cache = true;
        step("resolver", "client", name, qtype,
             hit->negative ? "cached NXDOMAIN" : "cached answer");
        return outcome;
    }

    // --- Root level: do we know the TLD's nameservers? ---
    const bool tld_ns_cached = cache_.contains(tld, dns::rr_type::ns, now_s);
    const bool negative_cached = [&] {
        auto e = cache_.lookup(tld, dns::rr_type::soa, now_s);
        return e.has_value() && e->negative;
    }();

    if (negative_cached) {
        outcome.latency_ms = model_.cache_hit_ms;
        step("resolver", "client", name, qtype, "cached TLD NXDOMAIN");
        return outcome;
    }

    if (!tld_ns_cached) {
        // Root query on the critical path; RTT varies per query, with a
        // heavy tail when the resolver explores a distant letter.
        ++totals_.root_queries;
        ++outcome.root_queries;
        double root_rtt = model_.root_rtt_ms * gen_.lognormal(0.0, model_.root_rtt_sigma);
        if (gen_.chance(model_.slow_letter_p)) root_rtt *= model_.slow_letter_multiplier;
        outcome.latency_ms += root_rtt;
        outcome.root_latency_ms += root_rtt;
        t += root_rtt / 1000.0;
        step("resolver", "root", name, qtype, "referral request");
        const auto response = zone_->resolve(name);
        if (response.nxdomain) {
            cache_.insert(tld, dns::rr_type::soa, negative_ttl_s, now_s, /*negative=*/true);
            cache_.insert(name, qtype, negative_ttl_s, now_s, /*negative=*/true);
            step("root", "resolver", name, qtype, "NXDOMAIN");
            return outcome;
        }
        cache_.insert(tld, dns::rr_type::ns, response.ttl_s, now_s);
        step("root", "resolver", tld, dns::rr_type::ns, "referral to TLD servers");
    } else if (zone_->resolve(name).nxdomain) {
        // TLD NS cached can't happen for invalid TLDs; guard for junk names
        // that race a negative entry's expiry.
        cache_.insert(tld, dns::rr_type::soa, negative_ttl_s, now_s, /*negative=*/true);
        outcome.latency_ms = model_.cache_hit_ms;
        return outcome;
    }

    if (dns::label_count(name) == 1) {
        // A bare TLD lookup resolves at the root referral itself.
        cache_.insert(name, qtype, delegation_ttl_s, now_s);
        return outcome;
    }

    // --- TLD level: delegation for the registered zone. ---
    const std::string zone_name = sld_zone_of(name);
    const auto servers = servers_for(zone_name);
    if (!cache_.contains(zone_name, dns::rr_type::ns, now_s)) {
        ++totals_.tld_queries;
        const double rtt = tld_rtt(tld);
        outcome.latency_ms += rtt;
        t += rtt / 1000.0;
        step("resolver", "tld:" + tld, name, qtype, "delegation request");
        cache_.insert(zone_name, dns::rr_type::ns, delegation_ttl_s, now_s);
        for (std::size_t i = 0; i < servers.ns_names.size(); ++i) {
            cache_.insert(servers.ns_names[i], dns::rr_type::a, delegation_ttl_s, now_s);
            if (i < servers.with_aaaa_glue) {
                cache_.insert(servers.ns_names[i], dns::rr_type::aaaa, delegation_ttl_s, now_s);
            }
        }
        step("tld:" + tld, "resolver", zone_name, dns::rr_type::ns,
             std::to_string(servers.ns_names.size()) + " NS, partial AAAA glue");
    }

    // --- Authoritative level. ---
    ++totals_.auth_queries;
    const bool timed_out = force_timeout_ || gen_.chance(model_.auth_loss_p);
    force_timeout_ = false;
    if (timed_out) {
        ++totals_.timeouts;
        outcome.latency_ms += model_.timeout_s * 1000.0;
        t += model_.timeout_s;
        step("resolver", "auth:" + servers.ns_names.front(), name, qtype,
             "no response (timeout)");

        // Appendix E: on timeout, buggy software re-fetches the other
        // nameservers' addresses from the ROOT, although the records were
        // cached from the TLD referral less than one TTL ago.
        if (software_ == pop::resolver_software::bind_redundant) {
            for (const auto& ns : servers.ns_names) {
                if (cache_.contains(ns, dns::rr_type::aaaa, now_s)) continue;
                ++totals_.root_queries;
                ++totals_.redundant_root_queries;
                ++outcome.root_queries;
                ++outcome.redundant_root_queries;
                step("resolver", "root", ns, dns::rr_type::aaaa,
                     "redundant (referral cached < 1 TTL ago)");
            }
        } else if (software_ == pop::resolver_software::bind_fixed) {
            // Fixed behaviour: ask the TLD, never the root.
            ++totals_.tld_queries;
            step("resolver", "tld:" + tld, servers.ns_names.back(), dns::rr_type::aaaa,
                 "glue refresh at TLD");
        }

        // Retry on the next nameserver.
        ++totals_.auth_queries;
        const std::string& retry_ns =
            servers.ns_names[servers.ns_names.size() > 1 ? 1 : 0];
        const double rtt = auth_rtt(zone_name);
        outcome.latency_ms += rtt;
        t += rtt / 1000.0;
        step("resolver", "auth:" + retry_ns, name, qtype, "retry on next NS");
    } else {
        const double rtt = auth_rtt(zone_name);
        outcome.latency_ms += rtt;
        t += rtt / 1000.0;
        step("resolver", "auth:" + servers.ns_names.front(), name, qtype, "answered");
    }

    cache_.insert(name, qtype, address_ttl_s, now_s);
    step("resolver", "client", name, qtype, "answer");
    return outcome;
}

std::vector<trace_step> make_redundant_query_trace(const dns::root_zone& zone,
                                                   std::uint64_t seed) {
    latency_model model;
    recursive_sim sim{zone, pop::resolver_software::bind_redundant, model, seed};
    // Prime the COM referral (as any busy resolver would have done long ago).
    (void)sim.resolve("warmup.com", dns::rr_type::a, 0.0);
    std::vector<trace_step> trace;
    sim.force_next_timeout();
    (void)sim.resolve("bidder.criteo.com", dns::rr_type::a, 10.0, &trace);
    return trace;
}

} // namespace ac::resolver
