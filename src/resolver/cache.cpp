#include "src/resolver/cache.h"

namespace ac::resolver {

std::string dns_cache::key(std::string_view name, dns::rr_type type) {
    std::string k = dns::normalize_name(name);
    k.push_back('#');
    k += dns::to_string(type);
    return k;
}

void dns_cache::insert(std::string_view name, dns::rr_type type, std::uint32_t ttl_s,
                       double now_s, bool negative) {
    entries_[key(name, type)] = entry{now_s + static_cast<double>(ttl_s), negative};
}

std::optional<dns_cache::entry> dns_cache::lookup(std::string_view name, dns::rr_type type,
                                                  double now_s) {
    auto it = entries_.find(key(name, type));
    if (it == entries_.end()) return std::nullopt;
    if (it->second.expires_s <= now_s) {
        entries_.erase(it);
        return std::nullopt;
    }
    return it->second;
}

bool dns_cache::contains(std::string_view name, dns::rr_type type, double now_s) {
    auto e = lookup(name, type, now_s);
    return e.has_value() && !e->negative;
}

void dns_cache::evict_expired(double now_s) {
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (it->second.expires_s <= now_s) {
            it = entries_.erase(it);
        } else {
            ++it;
        }
    }
}

} // namespace ac::resolver
