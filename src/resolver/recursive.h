// The recursive-resolver simulation.
//
// Walks the DNS tree (root -> TLD -> authoritative) for each client query,
// consulting a TTL cache at each level, and reproduces the Appendix E
// redundant-query pattern: when a query to an authoritative nameserver times
// out, BIND-era resolvers query the *root* for the AAAA (and missing A)
// records of the zone's other nameservers — even though the TLD referral
// that would answer them is still cached (Table 5). The fixed variant asks
// the TLD instead; `other` software resolves strictly per-TTL.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/dns/zone.h"
#include "src/population/population.h"
#include "src/resolver/cache.h"

namespace ac::resolver {

struct latency_model {
    double root_rtt_ms = 30.0;        // best-letter RTT from this resolver
    double root_rtt_sigma = 0.3;      // per-query lognormal spread
    /// Occasionally BIND explores a distant letter ([60]'s exploration):
    /// with this probability a root query costs `slow_letter_multiplier`x.
    double slow_letter_p = 0.08;
    double slow_letter_multiplier = 4.5;
    double tld_rtt_median_ms = 25.0;  // TLD servers are well-anycasted
    double tld_rtt_sigma = 0.5;
    double auth_rtt_median_ms = 35.0; // authoritative servers vary wildly
    double auth_rtt_sigma = 1.1;
    double cache_hit_ms = 0.12;       // local lookup cost
    double timeout_s = 0.8;           // retry timer on a dead nameserver
    double auth_loss_p = 0.003;       // authoritative query loss probability
};

/// One step of a resolution, for Table 5-style traces.
struct trace_step {
    double t_s = 0.0;
    std::string from;
    std::string to;
    std::string qname;
    dns::rr_type qtype = dns::rr_type::a;
    std::string note;
};

struct resolve_outcome {
    double latency_ms = 0.0;        // user-visible resolution time
    double root_latency_ms = 0.0;   // root time on the critical path
    int root_queries = 0;           // all root queries issued (incl. off-path)
    int redundant_root_queries = 0; // root queries for records cached < 1 TTL ago
    bool served_from_cache = false;
};

class recursive_sim {
public:
    recursive_sim(const dns::root_zone& zone, pop::resolver_software software,
                  latency_model model, std::uint64_t seed);

    /// Resolves `qname` at simulation time `now_s`. When `trace` is non-null,
    /// appends the message-level steps.
    resolve_outcome resolve(std::string_view qname, dns::rr_type qtype, double now_s,
                            std::vector<trace_step>* trace = nullptr);

    /// Forces the next authoritative query to time out: used to produce the
    /// Table 5 case study deterministically.
    void force_next_timeout() { force_timeout_ = true; }

    [[nodiscard]] dns_cache& cache() noexcept { return cache_; }

    // Cumulative statistics since construction.
    struct stats {
        long client_queries = 0;
        long cache_hits = 0;
        long root_queries = 0;
        long redundant_root_queries = 0;
        long tld_queries = 0;
        long auth_queries = 0;
        long timeouts = 0;
    };
    [[nodiscard]] const stats& totals() const noexcept { return totals_; }

private:
    struct zone_servers {
        std::vector<std::string> ns_names;
        std::size_t with_aaaa_glue = 1;  // first N ns_names carry AAAA glue
    };

    [[nodiscard]] zone_servers servers_for(std::string_view sld_zone);
    double tld_rtt(std::string_view tld);
    double auth_rtt(std::string_view sld_zone);

    const dns::root_zone* zone_;
    pop::resolver_software software_;
    latency_model model_;
    rand::rng gen_;
    dns_cache cache_;
    stats totals_;
    bool force_timeout_ = false;
};

/// Builds the deterministic Table 5 trace: a resolution through a zone whose
/// first authoritative server times out, on buggy software.
[[nodiscard]] std::vector<trace_step> make_redundant_query_trace(const dns::root_zone& zone,
                                                                 std::uint64_t seed);

} // namespace ac::resolver
