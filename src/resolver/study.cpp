#include "src/resolver/study.h"

#include <algorithm>
#include <cmath>

#include "src/netbase/strfmt.h"

namespace ac::resolver {

namespace {

double median(std::vector<double> values) {
    if (values.empty()) return 0.0;
    const auto mid = values.size() / 2;
    std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                     values.end());
    return values[mid];
}

/// A Zipf-popular universe of second-level zones, each pinned to a TLD.
class name_universe {
public:
    name_universe(const dns::root_zone& zone, int sld_count, double zipf_s, int tld_cap,
                  std::uint64_t seed)
        : weights_(static_cast<std::size_t>(sld_count)) {
        rand::rng gen{rand::mix_seed(seed, 0x5a1d5ull)};
        names_.reserve(static_cast<std::size_t>(sld_count));
        const int cap = std::min(std::max(tld_cap, 1), zone.tld_count());
        std::vector<double> tld_weights(static_cast<std::size_t>(cap));
        for (int i = 0; i < cap; ++i) {
            tld_weights[static_cast<std::size_t>(i)] = zone.popularity(i);
        }
        for (int i = 0; i < sld_count; ++i) {
            const auto tld_index = gen.weighted_index(tld_weights);
            names_.push_back("site" + strfmt::zero_padded(i, 5) + "." +
                             zone.tlds()[tld_index]);
            weights_[static_cast<std::size_t>(i)] =
                1.0 / std::pow(static_cast<double>(i + 1), zipf_s);
        }
    }

    [[nodiscard]] const std::string& sample(rand::rng& gen) const {
        return names_[gen.weighted_index(weights_)];
    }

private:
    std::vector<std::string> names_;
    std::vector<double> weights_;
};

std::string random_probe_label(rand::rng& gen) {
    const int len = static_cast<int>(gen.uniform_int(8, 12));
    std::string label;
    label.reserve(static_cast<std::size_t>(len));
    for (int i = 0; i < len; ++i) {
        label.push_back(static_cast<char>('a' + gen.uniform_index(26)));
    }
    return label;
}

} // namespace

double study_result::overall_root_miss_rate() const {
    if (totals.client_queries == 0) return 0.0;
    return static_cast<double>(totals.root_queries) /
           static_cast<double>(totals.client_queries);
}

double study_result::median_daily_root_miss_rate() const {
    std::vector<double> rates;
    rates.reserve(days.size());
    for (const auto& d : days) {
        if (d.client_queries > 0) {
            rates.push_back(static_cast<double>(d.root_queries) /
                            static_cast<double>(d.client_queries));
        }
    }
    return median(std::move(rates));
}

double study_result::redundant_root_fraction() const {
    if (totals.root_queries == 0) return 0.0;
    return static_cast<double>(totals.redundant_root_queries) /
           static_cast<double>(totals.root_queries);
}

double study_result::fraction_root_latency_above(double ms) const {
    const auto above = std::count_if(root_latency_nonzero_ms.begin(),
                                     root_latency_nonzero_ms.end(),
                                     [&](double v) { return v > ms; });
    const double total = static_cast<double>(root_latency_zero_queries) +
                         static_cast<double>(root_latency_nonzero_ms.size());
    return total == 0.0 ? 0.0 : static_cast<double>(above) / total;
}

study_result run_shared_cache_study(const dns::root_zone& zone, const workload_options& options,
                                    const latency_model& model,
                                    pop::resolver_software software, std::uint64_t seed) {
    rand::rng gen{rand::mix_seed(seed, 0x15171ull)};
    recursive_sim sim{zone, software, model, gen.fork(1).seed()};
    name_universe universe{zone, options.sld_universe, options.sld_zipf_s, options.tld_cap,
                           gen.fork(2).seed()};

    study_result result;
    const auto total_queries = static_cast<long>(
        static_cast<double>(options.users) * options.queries_per_user_day *
        static_cast<double>(options.days));
    const long sample_stride = std::max<long>(
        1, total_queries / static_cast<long>(options.latency_sample_cap));

    const double queries_per_day =
        static_cast<double>(options.users) * options.queries_per_user_day;
    long issued = 0;
    for (int day = 0; day < options.days; ++day) {
        daily_stat stat;
        const auto today = static_cast<long>(queries_per_day);
        for (long q = 0; q < today; ++q, ++issued) {
            const double now_s = day * 86400.0 +
                                 86400.0 * static_cast<double>(q) / static_cast<double>(today);
            std::string qname;
            if (gen.chance(options.invalid_query_share)) {
                qname = random_probe_label(gen);
            } else {
                qname = "www." + universe.sample(gen);
            }
            const auto qtype =
                gen.chance(options.aaaa_share) ? dns::rr_type::aaaa : dns::rr_type::a;
            const auto outcome = sim.resolve(qname, qtype, now_s);

            stat.client_queries += 1;
            stat.root_queries += outcome.root_queries;
            stat.critical_root_latency_ms += outcome.root_latency_ms;

            if (issued % sample_stride == 0) {
                result.query_latency_sample_ms.push_back(outcome.latency_ms);
            }
            if (outcome.root_latency_ms > 0.0) {
                result.root_latency_nonzero_ms.push_back(outcome.root_latency_ms);
            } else {
                ++result.root_latency_zero_queries;
            }
        }
        result.days.push_back(stat);
        sim.cache().evict_expired(day * 86400.0);
    }
    result.totals = sim.totals();
    return result;
}

double local_user_result::median_daily_root_miss_rate() const {
    std::vector<double> rates;
    for (const auto& d : days) {
        if (d.dns.client_queries > 0) {
            rates.push_back(static_cast<double>(d.dns.root_queries) /
                            static_cast<double>(d.dns.client_queries));
        }
    }
    return median(std::move(rates));
}

double local_user_result::median_daily_root_latency_ms() const {
    std::vector<double> values;
    for (const auto& d : days) values.push_back(d.dns.critical_root_latency_ms);
    return median(std::move(values));
}

double local_user_result::median_daily_page_load_s() const {
    std::vector<double> values;
    for (const auto& d : days) values.push_back(d.browsing.cumulative_page_load_s);
    return median(std::move(values));
}

double local_user_result::median_daily_active_browsing_s() const {
    std::vector<double> values;
    for (const auto& d : days) values.push_back(d.browsing.active_browsing_s);
    return median(std::move(values));
}

double local_user_result::root_share_of_page_load() const {
    const double denom = median_daily_page_load_s() * 1000.0;
    return denom <= 0.0 ? 0.0 : median_daily_root_latency_ms() / denom;
}

double local_user_result::root_share_of_browsing() const {
    const double denom = median_daily_active_browsing_s() * 1000.0;
    return denom <= 0.0 ? 0.0 : median_daily_root_latency_ms() / denom;
}

local_user_result run_local_user_study(const dns::root_zone& zone, int days,
                                       const web::browsing_options& browsing,
                                       const latency_model& model,
                                       pop::resolver_software software, std::uint64_t seed) {
    rand::rng gen{rand::mix_seed(seed, 0x10ca1ull)};
    recursive_sim sim{zone, software, model, gen.fork(1).seed()};
    // A single user touches a narrower slice of the web and fewer TLDs.
    name_universe universe{zone, 1500, 1.1, 30, gen.fork(2).seed()};

    local_user_result result;
    for (int day = 0; day < days; ++day) {
        local_user_day record;
        record.browsing = web::simulate_browsing_day(browsing, gen);
        const int queries = record.browsing.total_dns_queries();
        for (int q = 0; q < queries; ++q) {
            const double now_s =
                day * 86400.0 + 86400.0 * static_cast<double>(q) / std::max(1, queries);
            // Startup probes: a couple of Chromium bursts per day.
            std::string qname;
            if (q < 6 && gen.chance(0.5)) {
                qname = random_probe_label(gen);
            } else {
                qname = "www." + universe.sample(gen);
            }
            const auto qtype = gen.chance(0.25) ? dns::rr_type::aaaa : dns::rr_type::a;
            const auto outcome = sim.resolve(qname, qtype, now_s);
            record.dns.client_queries += 1;
            record.dns.root_queries += outcome.root_queries;
            record.dns.critical_root_latency_ms += outcome.root_latency_ms;
        }
        result.days.push_back(record);
    }
    result.totals = sim.totals();
    return result;
}

} // namespace ac::resolver
