// A TTL-respecting DNS cache.
//
// Caching is the mechanism behind the paper's central claim: with two-day
// TTLs on TLD records, a recursive's cache absorbs nearly every root
// interaction (root cache miss rates of 0.5%/1.5%, §4.3). The cache also
// holds negative entries (NXDOMAIN TLDs) with the SOA-minimum TTL.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "src/dns/zone.h"

namespace ac::resolver {

class dns_cache {
public:
    struct entry {
        double expires_s = 0.0;
        bool negative = false;  // cached NXDOMAIN
    };

    /// Caches (name, type) until now_s + ttl_s.
    void insert(std::string_view name, dns::rr_type type, std::uint32_t ttl_s, double now_s,
                bool negative = false);

    /// Live entry lookup; expired entries are treated as absent (and pruned).
    [[nodiscard]] std::optional<entry> lookup(std::string_view name, dns::rr_type type,
                                              double now_s);

    /// Convenience: live positive entry present?
    [[nodiscard]] bool contains(std::string_view name, dns::rr_type type, double now_s);

    void clear() { entries_.clear(); }
    [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

    /// Drops every entry whose expiry is before now_s (housekeeping for
    /// long simulations).
    void evict_expired(double now_s);

private:
    static std::string key(std::string_view name, dns::rr_type type);
    std::unordered_map<std::string, entry> entries_;
};

} // namespace ac::resolver
