// Resolver-level studies: the paper's local perspective (§4.3, App. D/E).
//
// Two experiments:
//  * an ISI-like shared recursive: hundreds of users behind one cache for a
//    long period — root cache miss rate ~0.5%, Fig. 12/13 latency CDFs;
//  * a local single-user resolver paired with a browsing-time tracker for
//    four weeks — miss rate ~1.5%, root latency vs page-load and active
//    browsing time.
#pragma once

#include <cstdint>
#include <vector>

#include "src/dns/zone.h"
#include "src/resolver/recursive.h"
#include "src/web/browsing.h"

namespace ac::resolver {

struct workload_options {
    int users = 150;
    int days = 30;
    double queries_per_user_day = 420.0;
    int sld_universe = 8000;            // distinct second-level zones
    double sld_zipf_s = 1.0;            // popularity skew
    /// Second-level zones concentrate in the most popular TLDs; the cap
    /// bounds how many distinct TLD referrals the workload can touch.
    int tld_cap = 120;
    double invalid_query_share = 0.0005;  // junk single-label names per query
    double aaaa_share = 0.25;           // AAAA-type client queries
    std::size_t latency_sample_cap = 250000;  // Fig. 12 reservoir size
};

struct daily_stat {
    long client_queries = 0;
    long root_queries = 0;
    double critical_root_latency_ms = 0.0;  // user-visible root time that day
};

struct study_result {
    std::vector<double> query_latency_sample_ms;  // Fig. 12 CDF input
    long root_latency_zero_queries = 0;           // Fig. 13: queries w/o root time
    std::vector<double> root_latency_nonzero_ms;  // Fig. 13: the tail
    std::vector<daily_stat> days;
    recursive_sim::stats totals;

    [[nodiscard]] double overall_root_miss_rate() const;
    [[nodiscard]] double median_daily_root_miss_rate() const;
    [[nodiscard]] double redundant_root_fraction() const;
    /// Fraction of client queries with root latency above `ms`.
    [[nodiscard]] double fraction_root_latency_above(double ms) const;
};

/// Runs the shared-cache (ISI-like) workload.
[[nodiscard]] study_result run_shared_cache_study(const dns::root_zone& zone,
                                                  const workload_options& options,
                                                  const latency_model& model,
                                                  pop::resolver_software software,
                                                  std::uint64_t seed);

/// The single-user experiment: browsing drives the query stream, and each
/// day also records page-load and active-browsing denominators.
struct local_user_day {
    daily_stat dns;
    web::browsing_day browsing;
};

struct local_user_result {
    std::vector<local_user_day> days;
    recursive_sim::stats totals;

    [[nodiscard]] double median_daily_root_miss_rate() const;
    [[nodiscard]] double median_daily_root_latency_ms() const;
    [[nodiscard]] double median_daily_page_load_s() const;
    [[nodiscard]] double median_daily_active_browsing_s() const;
    /// Root latency as a share of cumulative page-load time (paper: ~1.6%).
    [[nodiscard]] double root_share_of_page_load() const;
    /// Root latency as a share of active browsing time (paper: ~0.05%).
    [[nodiscard]] double root_share_of_browsing() const;
};

[[nodiscard]] local_user_result run_local_user_study(const dns::root_zone& zone, int days,
                                                     const web::browsing_options& browsing,
                                                     const latency_model& model,
                                                     pop::resolver_software software,
                                                     std::uint64_t seed);

} // namespace ac::resolver
