// A RIPE-Atlas-like probe platform.
//
// The paper uses Atlas for three things: pings to CDN rings (Fig. 4a — the
// only latency numbers Microsoft allows to be published), traceroute-derived
// AS path lengths (Fig. 6), and letter-level median latencies (Fig. 7a).
// Atlas coverage is explicitly *not representative* [10] — probes
// over-represent Europe and well-connected networks — and the paper leans on
// that caveat, so the synthetic fleet reproduces the bias.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/anycast/deployment.h"
#include "src/cdn/cdn.h"
#include "src/routing/bgp.h"
#include "src/topology/as_graph.h"

namespace ac::atlas {

struct probe {
    int id = 0;
    topo::asn_t asn = 0;
    topo::region_id region = 0;
};

struct fleet_plan {
    int probe_count = 7200;
    /// Multiplier on the chance a European AS hosts probes (coverage bias).
    double europe_bias = 3.0;
    /// Extra weight for well-connected (multi-homed / multi-region) ASes.
    double connectivity_bias = 1.5;
    std::uint64_t seed = 1;
};

class probe_fleet {
public:
    probe_fleet(const topo::as_graph& graph, const topo::region_table& regions,
                const fleet_plan& plan);

    [[nodiscard]] const std::vector<probe>& probes() const noexcept { return probes_; }
    [[nodiscard]] std::size_t as_coverage() const;

    /// A random sub-fleet (e.g. Fig. 4a uses ~1,000 probes).
    [[nodiscard]] std::vector<probe> sample(int count, std::uint64_t seed) const;

private:
    std::vector<probe> probes_;
};

/// One ping burst (minimum over `attempts` echoes, as the paper measures
/// three times per target and takes representative values).
struct ping_result {
    bool reachable = false;
    double rtt_ms = 0.0;
};

/// Pings an anycast deployment (root letter).
[[nodiscard]] ping_result ping(const probe& p, const anycast::deployment& dep, int attempts,
                               std::uint64_t seed);

/// Pings a CDN ring.
[[nodiscard]] ping_result ping_ring(const probe& p, const cdn::cdn_network& cdn, int ring,
                                    int attempts, std::uint64_t seed);

/// AS path length after the paper's §7.1 cleanup: IP->AS mapping, dropping
/// IXP/private hops (our synthetic traceroutes never surface those), and
/// merging sibling ASes into organizations. Returns nullopt when the probe
/// has no route.
[[nodiscard]] std::optional<int> as_path_length(const probe& p, const anycast::deployment& dep,
                                                const topo::as_graph& graph);
[[nodiscard]] std::optional<int> as_path_length_to_cdn(const probe& p,
                                                       const cdn::cdn_network& cdn,
                                                       const topo::as_graph& graph);

/// Merges consecutive same-organization hops (CAIDA sibling merge).
[[nodiscard]] int organization_path_length(const std::vector<topo::asn_t>& as_path,
                                           const topo::as_graph& graph);

} // namespace ac::atlas
