#include "src/atlas/atlas.h"

#include <algorithm>
#include <unordered_set>

#include "src/netbase/rng.h"

namespace ac::atlas {

probe_fleet::probe_fleet(const topo::as_graph& graph, const topo::region_table& regions,
                         const fleet_plan& plan) {
    rand::rng gen{rand::mix_seed(plan.seed, 0xa71a5ull)};

    // Host candidates: eyeball and enterprise ASes, weighted by the fleet's
    // known biases (Europe-heavy, better-connected networks more likely).
    struct candidate {
        topo::asn_t asn;
        topo::region_id region;
    };
    std::vector<candidate> candidates;
    std::vector<double> weights;
    for (const auto& as : graph.all()) {
        if (as.role != topo::as_role::eyeball && as.role != topo::as_role::enterprise) continue;
        for (topo::region_id r : as.presence) {
            double w = 1.0;
            if (regions.at(r).cont == topo::continent::europe) w *= plan.europe_bias;
            if (as.presence.size() > 1) w *= plan.connectivity_bias;
            candidates.push_back(candidate{as.asn, r});
            weights.push_back(w);
        }
    }

    probes_.reserve(static_cast<std::size_t>(plan.probe_count));
    for (int i = 0; i < plan.probe_count && !candidates.empty(); ++i) {
        const auto& c = candidates[gen.weighted_index(weights)];
        probes_.push_back(probe{i, c.asn, c.region});
    }
}

std::size_t probe_fleet::as_coverage() const {
    std::unordered_set<topo::asn_t> ases;
    for (const auto& p : probes_) ases.insert(p.asn);
    return ases.size();
}

std::vector<probe> probe_fleet::sample(int count, std::uint64_t seed) const {
    rand::rng gen{rand::mix_seed(seed, 0x5a3b1eull)};
    std::vector<probe> pool = probes_;
    gen.shuffle(pool);
    if (static_cast<std::size_t>(count) < pool.size()) {
        pool.resize(static_cast<std::size_t>(count));
    }
    return pool;
}

namespace {

ping_result ping_path(const std::optional<route::path_result>& path, int attempts,
                      std::uint64_t seed) {
    if (!path) return ping_result{};
    rand::rng gen{rand::mix_seed(seed, 0x9113ull)};
    double best = 0.0;
    for (int i = 0; i < attempts; ++i) {
        const double rtt = path->rtt_ms * gen.lognormal(0.0, 0.06);
        best = (i == 0) ? rtt : std::min(best, rtt);
    }
    return ping_result{true, best};
}

} // namespace

ping_result ping(const probe& p, const anycast::deployment& dep, int attempts,
                 std::uint64_t seed) {
    return ping_path(dep.rib().select(p.asn, p.region), attempts,
                     rand::mix_seed(seed, static_cast<std::uint64_t>(p.id)));
}

ping_result ping_ring(const probe& p, const cdn::cdn_network& cdn, int ring, int attempts,
                      std::uint64_t seed) {
    const auto path = cdn.evaluate(p.asn, p.region, ring);
    if (!path) return ping_result{};
    rand::rng gen{rand::mix_seed(seed, static_cast<std::uint64_t>(p.id),
                                 static_cast<std::uint64_t>(ring))};
    double best = 0.0;
    for (int i = 0; i < attempts; ++i) {
        const double rtt = path->rtt_ms * gen.lognormal(0.0, 0.06);
        best = (i == 0) ? rtt : std::min(best, rtt);
    }
    return ping_result{true, best};
}

std::optional<int> as_path_length(const probe& p, const anycast::deployment& dep,
                                  const topo::as_graph& graph) {
    const auto path = dep.rib().select(p.asn, p.region);
    if (!path) return std::nullopt;
    return organization_path_length(path->as_path, graph);
}

std::optional<int> as_path_length_to_cdn(const probe& p, const cdn::cdn_network& cdn,
                                         const topo::as_graph& graph) {
    const auto path = cdn.evaluate(p.asn, p.region, /*ring=*/0);
    if (!path) return std::nullopt;
    return organization_path_length(path->as_path, graph);
}

int organization_path_length(const std::vector<topo::asn_t>& as_path,
                             const topo::as_graph& graph) {
    int length = 0;
    const std::string* previous = nullptr;
    for (topo::asn_t asn : as_path) {
        const auto& org = graph.at(asn).organization;
        if (previous == nullptr || org != *previous) {
            ++length;
            previous = &org;
        }
    }
    return length;
}

} // namespace ac::atlas
