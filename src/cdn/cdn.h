// A Microsoft-like anycast CDN: front-ends organized into nested rings.
//
// Structure follows §2.2 and §7.1: front-ends are collocated with PoPs and
// peering locations; rings (R28 ⊂ R47 ⊂ R74 ⊂ R95 ⊂ R110) each have their
// own anycast address, but **every PoP announces every ring**, so traffic
// from a user usually enters the network at the same PoP regardless of ring
// and then rides the (near-optimal, [36]) private WAN to a front-end in the
// ring. Bigger rings therefore shorten the internal leg while the external
// leg stays fixed — which is exactly why larger rings show lower latency
// with diminishing returns and a tiny regression tail (Fig. 4b).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/routing/bgp.h"
#include "src/topology/as_graph.h"
#include "src/topology/generator.h"
#include "src/topology/region.h"

namespace ac::cdn {

struct cdn_plan {
    std::vector<int> ring_sizes{28, 47, 74, 95, 110};  // nested, ascending
    topo::asn_t asn = topo::asn_blocks::content_base + 50;
    std::string name = "cdn";
    /// Fraction of eyeball networks the CDN peers with directly (population-
    /// biased). Drives the ~69% share of 2-AS paths in Fig. 6a.
    double eyeball_peering_fraction = 0.72;
    double transit_peering_fraction = 0.8;
    /// Private-WAN detour factor (routing over the WAN is near optimal [36]).
    double wan_circuitousness = 1.1;
    std::uint64_t seed = 1;
};

/// The CDN: one content AS whose PoPs are the ring-110 front-end locations.
class cdn_network {
public:
    /// A non-serial `pool` parallelizes per-PoP route propagation.
    cdn_network(const cdn_plan& plan, topo::as_graph& graph, const topo::region_table& regions,
                engine::thread_pool* pool = nullptr);

    [[nodiscard]] int ring_count() const noexcept { return static_cast<int>(plan_.ring_sizes.size()); }
    [[nodiscard]] int ring_size(int ring) const { return plan_.ring_sizes.at(static_cast<std::size_t>(ring)); }
    [[nodiscard]] std::string ring_name(int ring) const;
    [[nodiscard]] topo::asn_t asn() const noexcept { return plan_.asn; }

    /// Front-end regions in importance order: the first ring_size(r) entries
    /// form ring r. (Sites in smaller rings are also in larger rings, §2.2.)
    [[nodiscard]] const std::vector<topo::region_id>& front_end_regions() const noexcept {
        return front_ends_;
    }

    /// Number of rings containing front-end `front_end` (rings are nested
    /// prefixes of the importance order, so this counts ring sizes above the
    /// index). Low-index front-ends sit in every ring and concentrate where
    /// users are; `load::capacity_model` reads this as a hardware-weight
    /// proxy when apportioning per-front-end capacity.
    [[nodiscard]] int ring_membership_count(int front_end) const noexcept;

    /// A fully evaluated user path to one ring.
    struct cdn_path {
        int ring = 0;
        int front_end = 0;                // index into front_end_regions()
        topo::region_id ingress_pop = 0;  // PoP region where traffic entered
        double external_rtt_ms = 0.0;     // user -> PoP (public Internet)
        double internal_rtt_ms = 0.0;     // PoP -> front-end (private WAN)
        double rtt_ms = 0.0;              // total per-RTT latency
        double front_end_km = 0.0;        // great-circle user-to-front-end
        std::vector<topo::asn_t> as_path; // external AS path (user AS first)
    };

    /// Evaluates the path from <asn, region> to `ring`. nullopt if the source
    /// AS has no route to the CDN at all.
    [[nodiscard]] std::optional<cdn_path> evaluate(topo::asn_t asn, topo::region_id region,
                                                   int ring) const;

    /// Distance from `p` to the nearest front-end of `ring` (Eq. 1's min_k).
    [[nodiscard]] double nearest_front_end_km(const geo::point& p, int ring) const;

    /// The PoP-level routing state (one announcement per PoP; shared by all
    /// rings because all routers announce all rings).
    [[nodiscard]] const route::anycast_rib& pop_rib() const noexcept { return *pop_rib_; }

    [[nodiscard]] const topo::region_table& regions() const noexcept { return *regions_; }

private:
    /// The WAN leg from one ingress PoP to one ring is fixed by geography, so
    /// it is precomputed per (PoP, ring) at construction — `evaluate` then
    /// does no haversine work and no ring scan.
    struct internal_leg {
        int front_end = 0;    // nearest ring member to the ingress PoP
        double rtt_ms = 0.0;  // WAN round trip to it
    };
    [[nodiscard]] const internal_leg& leg_for(std::size_t site, int ring) const noexcept {
        return internal_legs_[site * plan_.ring_sizes.size() + static_cast<std::size_t>(ring)];
    }

    cdn_plan plan_;
    const topo::region_table* regions_;
    std::vector<topo::region_id> front_ends_;  // importance-ordered
    std::vector<internal_leg> internal_legs_;  // PoP-major, stride = ring count
    std::unique_ptr<route::anycast_rib> pop_rib_;
};

} // namespace ac::cdn
