#include "src/cdn/telemetry.h"

#include <cmath>

#include "src/engine/stream_rng.h"

namespace ac::cdn {

namespace {

/// Stage ids for per-location RNG streams (engine/stream_rng.h).
constexpr std::uint64_t stage_server_logs = 0x5e10'e501ULL;
constexpr std::uint64_t stage_client_rows = 0xc11e'4701ULL;

} // namespace

std::vector<server_log_row> generate_server_logs(const cdn_network& cdn,
                                                 const pop::user_base& base,
                                                 const telemetry_options& options,
                                                 std::uint64_t seed,
                                                 engine::thread_pool* pool) {
    const auto& locations = base.locations();
    // Map phase: one slot per <region, AS> location, each drawing from its
    // own (seed, stage, location) keyed stream — byte-identical output at
    // any thread count.
    std::vector<std::vector<server_log_row>> parts(locations.size());
    engine::parallel_over(pool, locations.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            const auto& loc = locations[i];
            auto lg = engine::item_rng(seed, stage_server_logs, i);
            // Service-to-ring pinning: each ring serves a different slice of
            // the location's users.
            std::vector<double> ring_share(static_cast<std::size_t>(cdn.ring_count()));
            double total_share = 0.0;
            for (auto& s : ring_share) {
                s = lg.lognormal(0.0, options.ring_share_sigma);
                total_share += s;
            }
            for (int ring = 0; ring < cdn.ring_count(); ++ring) {
                const auto path = cdn.evaluate(loc.asn, loc.region, ring);
                if (!path) continue;
                const double share = ring_share[static_cast<std::size_t>(ring)] / total_share;
                const double connections = loc.users * share * options.connections_per_user *
                                           options.capture_days;
                const auto samples = static_cast<long>(std::floor(connections));
                if (samples < options.min_samples) continue;

                server_log_row row;
                row.asn = loc.asn;
                row.region = loc.region;
                row.ring = ring;
                row.front_end = path->front_end;
                row.median_rtt_ms = path->rtt_ms * lg.lognormal(0.0, 0.02);
                row.sample_count = samples;
                row.users = loc.users;
                row.front_end_km = path->front_end_km;
                parts[i].push_back(row);
            }
        }
    });

    std::vector<server_log_row> rows;
    rows.reserve(locations.size() * static_cast<std::size_t>(cdn.ring_count()));
    for (const auto& part : parts) rows.insert(rows.end(), part.begin(), part.end());
    return rows;
}

std::vector<client_measurement_row> generate_client_measurements(
    const cdn_network& cdn, const pop::user_base& base, const telemetry_options& options,
    std::uint64_t seed, engine::thread_pool* pool) {
    const auto& locations = base.locations();
    std::vector<std::vector<client_measurement_row>> parts(locations.size());
    engine::parallel_over(pool, locations.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            const auto& loc = locations[i];
            auto lg = engine::item_rng(seed, stage_client_rows, i);
            for (int ring = 0; ring < cdn.ring_count(); ++ring) {
                const auto path = cdn.evaluate(loc.asn, loc.region, ring);
                if (!path) continue;
                // Odin instructs a sample of the location's users; sample
                // counts scale with population but every ring is measured
                // (§2.2).
                const auto samples = static_cast<long>(
                    std::floor(std::max(1.0, loc.users * 0.001 * options.capture_days)));
                if (samples < options.min_samples) continue;

                client_measurement_row row;
                row.asn = loc.asn;
                row.region = loc.region;
                row.ring = ring;
                // DNS resolution and TCP connect are factored out of the
                // fetch (§2.2 footnote); what remains is a small multiple of
                // the RTT.
                row.median_fetch_ms =
                    path->rtt_ms * options.fetch_rtt_multiple * lg.lognormal(0.0, 0.05);
                row.sample_count = samples;
                row.users = loc.users;
                parts[i].push_back(row);
            }
        }
    });

    std::vector<client_measurement_row> rows;
    rows.reserve(locations.size() * static_cast<std::size_t>(cdn.ring_count()));
    for (const auto& part : parts) rows.insert(rows.end(), part.begin(), part.end());
    return rows;
}

server_log_table to_table(std::span<const server_log_row> rows) {
    server_log_table t;
    t.asn.reserve(rows.size());
    t.region.reserve(rows.size());
    t.ring.reserve(rows.size());
    t.front_end.reserve(rows.size());
    t.median_rtt_ms.reserve(rows.size());
    t.sample_count.reserve(rows.size());
    t.users.reserve(rows.size());
    t.front_end_km.reserve(rows.size());
    for (const auto& row : rows) {
        t.asn.push_back(row.asn);
        t.region.push_back(row.region);
        t.ring.push_back(row.ring);
        t.front_end.push_back(row.front_end);
        t.median_rtt_ms.push_back(row.median_rtt_ms);
        t.sample_count.push_back(row.sample_count);
        t.users.push_back(row.users);
        t.front_end_km.push_back(row.front_end_km);
    }
    return t;
}

} // namespace ac::cdn

