// CDN measurement datasets (§2.2).
//
// Two sources, with the paper's respective strengths and weaknesses
// (Table 3): server-side logs know which front-end each connection hit
// (TCP-handshake RTTs, but the user population differs per ring because
// services pin to rings), and client-side measurements hold the user
// population fixed across rings (Odin-style fetches to every ring) but do
// not know the front-end. Both aggregate at <region, AS> granularity.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/cdn/cdn.h"
#include "src/population/population.h"
#include "src/table/column.h"

namespace ac::cdn {

/// Aggregated server-side log line: connections from one <region, AS> to one
/// front-end on one ring, with the median handshake RTT.
struct server_log_row {
    topo::asn_t asn = 0;
    topo::region_id region = 0;
    int ring = 0;
    int front_end = 0;       // index into cdn_network::front_end_regions()
    double median_rtt_ms = 0.0;
    long sample_count = 0;   // TCP connections behind the median
    double users = 0.0;      // ground-truth users at the location
    double front_end_km = 0.0;  // user-to-front-end distance (for Eq. 1)
};

/// Client-side measurement: median fetch latency from one <region, AS> to
/// one ring. The front-end is unknown by construction.
struct client_measurement_row {
    topo::asn_t asn = 0;
    topo::region_id region = 0;
    int ring = 0;
    double median_fetch_ms = 0.0;
    long sample_count = 0;
    double users = 0.0;
};

struct telemetry_options {
    /// Daily TCP connections per user to the CDN. Drives server-log sample
    /// counts here, and seeds the offered-load demand model in `src/load`:
    /// a location's nominal demand is users * connections_per_user
    /// connections per time bucket, before the timeline's demand events
    /// (diurnal / flash-crowd / hot-spot multipliers) rescale it.
    double connections_per_user = 2.0;
    double capture_days = 7.0;
    long min_samples = 10;           // medians below this are discarded (§3)
    /// Log-normal dispersion (sigma) of the per-ring pinning draw that sets
    /// the fraction of a location's users whose services pin to each ring;
    /// the draws are normalized to shares, so a larger sigma skews more of a
    /// location's users onto few rings and the server-side population
    /// differs more between rings (Table 3's server-log weakness). Zero
    /// pins every ring an equal share.
    double ring_share_sigma = 0.5;
    /// Client-side fetch = RTT * handshake+request multiple, plus noise.
    double fetch_rtt_multiple = 1.6;
};

/// Server-side logs across all rings and all user locations. Each location
/// draws from its own (seed, stage, location) keyed stream, so a non-serial
/// `pool` chunks locations across threads with byte-identical output.
[[nodiscard]] std::vector<server_log_row> generate_server_logs(
    const cdn_network& cdn, const pop::user_base& base, const telemetry_options& options,
    std::uint64_t seed, engine::thread_pool* pool = nullptr);

/// Client-side measurements: every location measures every ring. Same
/// per-location stream keying and pool semantics as generate_server_logs.
[[nodiscard]] std::vector<client_measurement_row> generate_client_measurements(
    const cdn_network& cdn, const pop::user_base& base, const telemetry_options& options,
    std::uint64_t seed, engine::thread_pool* pool = nullptr);

/// Columnar (struct-of-arrays) form of the server-side log: one contiguous
/// column per field, preserving row order. Built once per analysis pass so
/// the inflation/metrics kernels stream columns instead of striding rows.
struct server_log_table {
    table::column<topo::asn_t> asn;
    table::column<topo::region_id> region;
    table::column<std::int32_t> ring;
    table::column<std::int32_t> front_end;
    table::column<double> median_rtt_ms;
    table::column<std::int64_t> sample_count;
    table::column<double> users;
    table::column<double> front_end_km;

    [[nodiscard]] std::size_t rows() const noexcept { return asn.size(); }
};

[[nodiscard]] server_log_table to_table(std::span<const server_log_row> rows);

} // namespace ac::cdn
