#include "src/cdn/cdn.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/netbase/geo.h"
#include "src/netbase/rng.h"

namespace ac::cdn {

cdn_network::cdn_network(const cdn_plan& plan, topo::as_graph& graph,
                         const topo::region_table& regions, engine::thread_pool* pool)
    : plan_(plan), regions_(&regions) {
    if (plan_.ring_sizes.empty() ||
        !std::is_sorted(plan_.ring_sizes.begin(), plan_.ring_sizes.end())) {
        throw std::invalid_argument("cdn_network: ring sizes must be ascending");
    }
    rand::rng gen{rand::mix_seed(plan_.seed, 0xcd9011ull)};

    // Front-end placement: population-weighted without replacement, then
    // importance-ordered by population so ring prefixes nest naturally
    // (Fig. 1: front-ends concentrate where users are).
    const int total = plan_.ring_sizes.back();
    std::vector<double> weights;
    weights.reserve(regions.size());
    for (const auto& r : regions.all()) {
        weights.push_back(r.cont == topo::continent::antarctica ? 0.0 : r.population_weight);
    }
    std::vector<std::pair<double, topo::region_id>> picked;
    std::vector<bool> used(regions.size(), false);
    int eligible = 0;
    for (double w : weights) {
        if (w > 0.0) ++eligible;
    }
    const int cap = std::min(total, eligible);
    while (static_cast<int>(picked.size()) < cap) {
        const std::size_t i = gen.weighted_index(weights);
        if (used[i]) continue;
        used[i] = true;
        weights[i] = 0.0;
        picked.emplace_back(regions.all()[i].population_weight, regions.all()[i].id);
    }
    std::sort(picked.begin(), picked.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    front_ends_.reserve(picked.size());
    for (const auto& [_, id] : picked) front_ends_.push_back(id);
    // Small worlds may not have enough regions for the requested rings.
    for (auto& size : plan_.ring_sizes) {
        size = std::min(size, static_cast<int>(front_ends_.size()));
    }

    // One heavily peered content AS with PoPs at every front-end region.
    topo::content_attachment attach;
    attach.asn = plan_.asn;
    attach.name = plan_.name;
    attach.organization = plan_.name;
    attach.presence = front_ends_;
    attach.tier1_providers = 3;
    attach.transit_peering_fraction = plan_.transit_peering_fraction;
    attach.eyeball_peering_fraction = plan_.eyeball_peering_fraction;
    attach.peer_circuitousness = 1.12;
    attach.seed = gen.fork(3).seed();
    topo::attach_content_as(graph, regions, attach);

    // PoP-level anycast: one announcement per PoP (all rings share ingress).
    std::vector<route::announcement> announcements;
    announcements.reserve(front_ends_.size());
    for (std::size_t i = 0; i < front_ends_.size(); ++i) {
        announcements.push_back(route::announcement{static_cast<route::site_id>(i), plan_.asn,
                                                    front_ends_[i],
                                                    route::announcement_scope::global, {}});
    }
    pop_rib_ = std::make_unique<route::anycast_rib>(graph, regions, std::move(announcements),
                                                    pool);

    // Precompute every (ingress PoP, ring) WAN leg. Same argmin loop (strict
    // less, members in ring order) over the same distance values the per-call
    // scan used — the distance matrix is bit-identical to haversine — so the
    // chosen front-end and RTT are unchanged.
    const std::size_t rings = plan_.ring_sizes.size();
    internal_legs_.resize(front_ends_.size() * rings);
    for (std::size_t site = 0; site < front_ends_.size(); ++site) {
        for (std::size_t ring = 0; ring < rings; ++ring) {
            const int members = plan_.ring_sizes[ring];
            int best_fe = 0;
            double best_km = std::numeric_limits<double>::infinity();
            for (int i = 0; i < members; ++i) {
                const double d = regions.distance_km(
                    front_ends_[site], front_ends_[static_cast<std::size_t>(i)]);
                if (d < best_km) {
                    best_km = d;
                    best_fe = i;
                }
            }
            internal_legs_[site * rings + ring] = internal_leg{
                best_fe, geo::round_trip_fiber_ms(best_km * plan_.wan_circuitousness) +
                             (best_km > 1.0 ? 0.3 : 0.0)};
        }
    }
}

std::string cdn_network::ring_name(int ring) const {
    return "R" + std::to_string(ring_size(ring));
}

int cdn_network::ring_membership_count(int front_end) const noexcept {
    int count = 0;
    for (const int size : plan_.ring_sizes) {
        if (front_end < size) ++count;
    }
    return count;
}

std::optional<cdn_network::cdn_path> cdn_network::evaluate(topo::asn_t asn,
                                                           topo::region_id region,
                                                           int ring) const {
    auto external = pop_rib_->select(asn, region);
    if (!external) return std::nullopt;

    cdn_path path;
    path.ring = ring;
    path.ingress_pop = front_ends_[external->site];
    path.external_rtt_ms = external->rtt_ms;
    path.as_path = external->as_path;

    // Internal leg: nearest ring front-end to the ingress PoP over the WAN
    // (precomputed per (PoP, ring) at construction).
    (void)ring_size(ring);  // bounds check, as the per-call scan had
    const internal_leg& leg = leg_for(external->site, ring);
    path.front_end = leg.front_end;
    path.internal_rtt_ms = leg.rtt_ms;

    // Per-(source, ring) steady-state wobble: tiny, but lets a handful of
    // locations regress slightly on a bigger ring, as Fig. 4b observes.
    rand::rng jitter{rand::mix_seed(plan_.seed, (std::uint64_t{asn} << 18) ^ region,
                                    0xbeef00ULL + static_cast<std::uint64_t>(ring))};
    path.rtt_ms = (path.external_rtt_ms + path.internal_rtt_ms) *
                  std::exp(jitter.normal(0.0, 0.025));

    path.front_end_km =
        regions_->distance_km(region, front_ends_[static_cast<std::size_t>(leg.front_end)]);
    return path;
}

double cdn_network::nearest_front_end_km(const geo::point& p, int ring) const {
    const int members = ring_size(ring);
    double best = std::numeric_limits<double>::infinity();
    for (int i = 0; i < members; ++i) {
        best = std::min(best, geo::distance_km(p, regions_->at(front_ends_[static_cast<std::size_t>(i)]).location));
    }
    return best;
}

} // namespace ac::cdn
