#include "src/population/population.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/netbase/geo.h"
#include "src/topology/generator.h"

namespace ac::pop {

namespace {

std::uint64_t loc_key(topo::asn_t asn, topo::region_id region) {
    return (std::uint64_t{asn} << 32) | region;
}

bool is_public_dns_asn(topo::asn_t asn) {
    return asn >= topo::asn_blocks::public_dns_base && asn < topo::asn_blocks::content_base;
}

} // namespace

user_base::user_base(const topo::as_graph& graph, const topo::region_table& regions,
                     topo::address_space& space, const user_base_plan& plan, std::uint64_t seed) {
    rand::rng gen{rand::mix_seed(seed, 0x05e2ba5eull)};

    // --- Locations: per-region user mass split among eyeball ASes present. ---
    std::vector<std::vector<std::pair<topo::asn_t, double>>> per_region(regions.size());
    for (const auto& as : graph.all()) {
        if (as.role != topo::as_role::eyeball) continue;
        for (topo::region_id r : as.presence) {
            // Heavy-tailed market share draw within the region.
            per_region[r].emplace_back(as.asn, gen.pareto(1.0, 1.1));
        }
    }
    for (std::size_t r = 0; r < per_region.size(); ++r) {
        auto& entries = per_region[r];
        if (entries.empty()) continue;
        double total_share = 0.0;
        for (const auto& [asn, share] : entries) total_share += share;
        const double region_users = regions.all()[r].population_weight * plan.users_per_weight;
        for (const auto& [asn, share] : entries) {
            user_location loc;
            loc.asn = asn;
            loc.region = static_cast<topo::region_id>(r);
            loc.users = region_users * share / total_share;
            users_by_loc_.emplace(loc_key(loc.asn, loc.region), loc.users);
            total_users_ += loc.users;
            locations_.push_back(loc);
        }
    }

    // --- Public DNS provider footprints (for nearest-PoP assignment). ---
    struct pdns { topo::asn_t asn; std::vector<topo::region_id> pops; };
    std::vector<pdns> public_dns;
    for (const auto& as : graph.all()) {
        if (as.role == topo::as_role::content && is_public_dns_asn(as.asn)) {
            public_dns.push_back(pdns{as.asn, as.presence});
        }
    }
    // Users of public DNS aggregate per <provider, PoP region>.
    std::unordered_map<std::uint64_t, double> pdns_users;

    auto pick_software = [&](rand::rng& g) {
        const double roll = g.uniform();
        if (roll < plan.bind_redundant_share) return resolver_software::bind_redundant;
        if (roll < plan.bind_redundant_share + plan.bind_fixed_share) {
            return resolver_software::bind_fixed;
        }
        return resolver_software::other;
    };

    auto add_recursive = [&](topo::asn_t asn, topo::region_id region, double users,
                             bool is_public, rand::rng& g) {
        recursive_resolver rec;
        rec.block = space.allocate(asn, region, 1);
        rec.asn = asn;
        rec.region = region;
        rec.users_served = users;
        rec.software = is_public ? resolver_software::other : pick_software(g);
        rec.is_public_dns = is_public;
        rec.is_forwarder = !is_public && g.chance(plan.forwarder_share);
        const int ip_count =
            static_cast<int>(g.uniform_int(plan.min_resolver_ips, plan.max_resolver_ips));
        // Client-facing user attribution and root-facing egress are carried
        // by partially disjoint IP sets within the /24 (App. B.2 / Fig. 9).
        double user_total = 0.0;
        double egress_total = 0.0;
        for (int i = 0; i < ip_count; ++i) {
            rec.resolver_ips.push_back(rec.block.prefix().address_at(
                static_cast<std::uint64_t>(1 + i)));
            const bool egress_only = ip_count > 1 && g.chance(plan.egress_only_ip_p);
            const double user_w = egress_only ? 0.0 : g.exponential(1.0);
            // Root-facing egress concentrates on dedicated egress addresses;
            // client-facing IPs usually emit little or nothing toward the
            // roots (this drives Fig. 9's by-IP collapse and Table 4).
            const double egress_w = egress_only
                                        ? g.exponential(1.0)
                                        : (g.chance(0.55) ? 0.0 : 0.05 * g.exponential(1.0));
            rec.ip_user_share.push_back(user_w);
            rec.ip_activity_share.push_back(rec.is_forwarder ? 0.0 : egress_w);
            user_total += user_w;
            egress_total += egress_w;
        }
        if (user_total <= 0.0) {
            rec.ip_user_share[0] = 1.0;
            user_total = 1.0;
        }
        for (auto& s : rec.ip_user_share) s /= user_total;
        if (!rec.is_forwarder && egress_total > 0.0) {
            for (auto& s : rec.ip_activity_share) s /= egress_total;
        }
        recursive_index_.emplace(rec.block.key(), recursives_.size());
        recursives_.push_back(std::move(rec));
        return recursives_.size() - 1;
    };

    // --- ISP recursives per location; public-DNS share routed to nearest PoP. ---
    for (std::size_t li = 0; li < locations_.size(); ++li) {
        const auto& loc = locations_[li];
        auto g = gen.fork(rand::mix_seed(loc.asn, loc.region));
        const double isp_users = loc.users * (1.0 - plan.public_dns_share);
        const int recursive_count = loc.users > 2e5 && g.chance(0.4) ? 2 : 1;
        for (int i = 0; i < recursive_count; ++i) {
            const double share = recursive_count == 1 ? 1.0 : (i == 0 ? 0.7 : 0.3);
            const std::size_t ri =
                add_recursive(loc.asn, loc.region, isp_users * share, false, g);
            service_edges_.push_back(
                service_edge{li, ri, (1.0 - plan.public_dns_share) * share});
        }
        if (!public_dns.empty()) {
            // Split public-DNS users equally across providers, each serving
            // from its PoP nearest the user location.
            const double per_provider = loc.users * plan.public_dns_share /
                                        static_cast<double>(public_dns.size());
            const geo::point here = regions.at(loc.region).location;
            for (const auto& provider : public_dns) {
                topo::region_id best = provider.pops.front();
                double best_km = std::numeric_limits<double>::infinity();
                for (topo::region_id pr : provider.pops) {
                    const double d = geo::distance_km(here, regions.at(pr).location);
                    if (d < best_km) {
                        best_km = d;
                        best = pr;
                    }
                }
                pdns_users[loc_key(provider.asn, best)] += per_provider;
            }
        }
    }

    // Materialize public DNS recursives now that user mass is aggregated.
    // Service edges for public DNS are omitted (the paper cannot attribute
    // public-DNS users to locations either; the AS-level APNIC view mislabels
    // them deliberately — §2.1).
    for (const auto& provider : public_dns) {
        for (topo::region_id pr : provider.pops) {
            auto it = pdns_users.find(loc_key(provider.asn, pr));
            if (it == pdns_users.end() || it->second <= 0.0) continue;
            auto g = gen.fork(rand::mix_seed(provider.asn, pr, 99));
            add_recursive(provider.asn, pr, it->second, true, g);
        }
    }
}

double user_base::users_at(topo::asn_t asn, topo::region_id region) const {
    auto it = users_by_loc_.find(loc_key(asn, region));
    return it == users_by_loc_.end() ? 0.0 : it->second;
}

const recursive_resolver* user_base::find_recursive(net::slash24 block) const {
    auto it = recursive_index_.find(block.key());
    return it == recursive_index_.end() ? nullptr : &recursives_[it->second];
}

cdn_user_counts::cdn_user_counts(const user_base& base, options opts, std::uint64_t seed) {
    rand::rng gen{rand::mix_seed(seed, 0xcd1105e2ull)};
    for (const auto& rec : base.recursives()) {
        auto g = gen.fork(rec.block.key());
        const double undercount = g.uniform(opts.nat_undercount_lo, opts.nat_undercount_hi);
        for (std::size_t i = 0; i < rec.resolver_ips.size(); ++i) {
            if (rec.ip_user_share[i] <= 0.0) continue;  // egress-only address
            if (!g.chance(opts.ip_seen_p)) continue;
            const double observed = rec.users_served * rec.ip_user_share[i] * undercount;
            if (observed < 1.0) continue;  // too small to register a single user IP
            by_ip_[rec.resolver_ips[i].value()] = observed;
            by_block_[rec.block.key()] += observed;
            total_ += observed;
        }
    }
}

std::vector<cdn_user_counts::entry> cdn_user_counts::block_entries() const {
    std::vector<entry> out;
    out.reserve(by_block_.size());
    for (const auto& [key, users] : by_block_) out.push_back(entry{key, users});
    std::sort(out.begin(), out.end(),
              [](const entry& a, const entry& b) { return a.key < b.key; });
    return out;
}

std::vector<cdn_user_counts::entry> cdn_user_counts::ip_entries() const {
    std::vector<entry> out;
    out.reserve(by_ip_.size());
    for (const auto& [key, users] : by_ip_) out.push_back(entry{key, users});
    std::sort(out.begin(), out.end(),
              [](const entry& a, const entry& b) { return a.key < b.key; });
    return out;
}

cdn_user_counts cdn_user_counts::restore(const std::vector<entry>& blocks,
                                         const std::vector<entry>& ips, double total) {
    cdn_user_counts counts;
    counts.by_block_.reserve(blocks.size());
    for (const auto& e : blocks) counts.by_block_.emplace(e.key, e.users);
    counts.by_ip_.reserve(ips.size());
    for (const auto& e : ips) counts.by_ip_.emplace(e.key, e.users);
    counts.total_ = total;
    return counts;
}

std::optional<double> cdn_user_counts::count(net::slash24 block) const {
    auto it = by_block_.find(block.key());
    if (it == by_block_.end()) return std::nullopt;
    return it->second;
}

std::optional<double> cdn_user_counts::count(net::ipv4_addr ip) const {
    auto it = by_ip_.find(ip.value());
    if (it == by_ip_.end()) return std::nullopt;
    return it->second;
}

std::vector<net::slash24> cdn_user_counts::observed_blocks() const {
    // Ascending key order: hash order must not leak out of the accessor.
    std::vector<net::slash24> out;
    out.reserve(by_block_.size());
    for (const auto& [key, _] : by_block_) {
        out.push_back(net::slash24{net::ipv4_addr{key << 8}});
    }
    std::sort(out.begin(), out.end(),
              [](net::slash24 a, net::slash24 b) { return a.key() < b.key(); });
    return out;
}

std::vector<net::ipv4_addr> cdn_user_counts::observed_ips() const {
    std::vector<net::ipv4_addr> out;
    out.reserve(by_ip_.size());
    for (const auto& [value, _] : by_ip_) out.push_back(net::ipv4_addr{value});
    std::sort(out.begin(), out.end(),
              [](net::ipv4_addr a, net::ipv4_addr b) { return a.value() < b.value(); });
    return out;
}

apnic_user_counts::apnic_user_counts(const user_base& base, options opts, std::uint64_t seed) {
    rand::rng gen{rand::mix_seed(seed, 0xa901cull)};
    std::unordered_map<topo::asn_t, double> truth;
    for (const auto& loc : base.locations()) truth[loc.asn] += loc.users;
    for (const auto& [asn, users] : truth) {
        auto g = gen.fork(asn);
        if (g.chance(opts.as_missing_p)) continue;
        by_as_.emplace(asn, users * g.lognormal(0.0, opts.noise_sigma));
    }
}

std::vector<apnic_user_counts::entry> apnic_user_counts::entries() const {
    std::vector<entry> out;
    out.reserve(by_as_.size());
    for (const auto& [asn, users] : by_as_) out.push_back(entry{asn, users});
    std::sort(out.begin(), out.end(),
              [](const entry& a, const entry& b) { return a.asn < b.asn; });
    return out;
}

apnic_user_counts apnic_user_counts::restore(const std::vector<entry>& entries) {
    apnic_user_counts counts;
    counts.by_as_.reserve(entries.size());
    for (const auto& e : entries) counts.by_as_.emplace(e.asn, e.users);
    return counts;
}

std::optional<double> apnic_user_counts::count(topo::asn_t asn) const {
    auto it = by_as_.find(asn);
    if (it == by_as_.end()) return std::nullopt;
    return it->second;
}

} // namespace ac::pop
