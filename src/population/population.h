// User populations and the datasets that estimate them.
//
// The paper attributes root-DNS queries to users by joining recursive-resolver
// /24s with two user-count datasets: Microsoft's DNS-based counts (precise
// but NAT-undercounted, partial coverage) and APNIC's per-AS estimates
// (public, coarse, unaware of which recursive serves whom) — §2.1, §4.3.
// This module builds the ground-truth user base (who exists where, which
// recursives serve them) and derives both estimator datasets from it with
// their characteristic biases, so Fig. 3's CDN/APNIC comparison and
// Table 4's overlap statistics are reproducible.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/netbase/ipv4.h"
#include "src/netbase/rng.h"
#include "src/topology/addressing.h"
#include "src/topology/as_graph.h"
#include "src/topology/region.h"

namespace ac::pop {

/// Ground truth users at one <region, AS> location (§2.2 granularity).
struct user_location {
    topo::asn_t asn = 0;
    topo::region_id region = 0;
    double users = 0.0;  // true human users (continuous)
};

/// Resolver software families; the buggy BIND family issues the redundant
/// root queries of Appendix E.
enum class resolver_software : std::uint8_t {
    bind_redundant,  // BIND 9.11.18–9.16.1-era behaviour (Appendix E bug)
    bind_fixed,      // hypothetical per-TTL-compliant BIND
    other,           // miscellaneous resolver software
};

/// A recursive resolver deployment occupying one /24 (the paper's "recursive"
/// after /24 aggregation; real organisations colocate several resolver IPs in
/// one /24 — App. B.2).
struct recursive_resolver {
    net::slash24 block;
    topo::asn_t asn = 0;           // hosting AS
    topo::region_id region = 0;
    double users_served = 0.0;     // true users behind this recursive
    resolver_software software = resolver_software::other;
    std::vector<net::ipv4_addr> resolver_ips;  // individual resolver addresses
    /// Share of this recursive's *root-facing egress* traffic per IP (sums to
    /// 1 unless the recursive is a forwarder). Many IPs are client-facing
    /// only and never query the roots (zero entries) — the reason exact-IP
    /// joins of DITL and CDN data match so poorly (Fig. 9, Table 4).
    std::vector<double> ip_activity_share;
    /// Share of the recursive's *users* attributed to each IP (what the
    /// CDN-side mapping observes). Deliberately decorrelated from
    /// ip_activity_share.
    std::vector<double> ip_user_share;
    /// Forwarders serve users (they appear in CDN user counts) but forward
    /// upstream instead of querying the roots themselves, so they never
    /// appear in DITL.
    bool is_forwarder = false;
    bool is_public_dns = false;
};

struct user_base_plan {
    double users_per_weight = 4.5e7;  // scales region weights to user counts
    double public_dns_share = 0.18;   // users whose queries go to public DNS
    double bind_redundant_share = 0.35;  // recursives running buggy BIND
    double bind_fixed_share = 0.25;
    double forwarder_share = 0.28;    // recursives that never query the roots
    double egress_only_ip_p = 0.45;   // chance an IP carries egress but no users
    int min_resolver_ips = 1;
    int max_resolver_ips = 6;
};

/// Ground truth: user locations + the recursives that serve them.
class user_base {
public:
    user_base(const topo::as_graph& graph, const topo::region_table& regions,
              topo::address_space& space, const user_base_plan& plan, std::uint64_t seed);

    [[nodiscard]] const std::vector<user_location>& locations() const noexcept {
        return locations_;
    }
    [[nodiscard]] const std::vector<recursive_resolver>& recursives() const noexcept {
        return recursives_;
    }
    [[nodiscard]] double total_users() const noexcept { return total_users_; }

    /// True users at one <region, AS>, 0 if absent.
    [[nodiscard]] double users_at(topo::asn_t asn, topo::region_id region) const;

    /// Recursive serving index: for each location, (recursive index, share of
    /// that location's users using it).
    struct service_edge {
        std::size_t location_index = 0;
        std::size_t recursive_index = 0;
        double user_share = 0.0;  // fraction of the location's users
    };
    [[nodiscard]] const std::vector<service_edge>& service_edges() const noexcept {
        return service_edges_;
    }

    [[nodiscard]] const recursive_resolver* find_recursive(net::slash24 block) const;

private:
    std::vector<user_location> locations_;
    std::vector<recursive_resolver> recursives_;
    std::vector<service_edge> service_edges_;
    std::unordered_map<std::uint32_t, std::size_t> recursive_index_;  // /24 key
    std::unordered_map<std::uint64_t, double> users_by_loc_;
    double total_users_ = 0.0;
};

/// Microsoft-style user counts: unique user IPs observed per recursive IP
/// via instrumented DNS fetches (§2.1). Undercounts NAT'd users; covers only
/// recursives whose users fetch Microsoft content.
class cdn_user_counts {
public:
    struct options {
        double ip_seen_p = 0.55;       // chance Microsoft observes a resolver IP
        double nat_undercount_lo = 0.35;  // observed users / true users bounds
        double nat_undercount_hi = 0.85;
    };

    cdn_user_counts(const user_base& base, options opts, std::uint64_t seed);

    /// One serialized observation: a /24 key (or exact IP value) with its
    /// observed user count. The snapshot layer stores and restores these.
    struct entry {
        std::uint32_t key = 0;  // slash24::key() or ipv4_addr::value()
        double users = 0.0;
    };

    /// Per-/24 and per-IP observations in ascending key order (deterministic:
    /// hash order never escapes).
    [[nodiscard]] std::vector<entry> block_entries() const;
    [[nodiscard]] std::vector<entry> ip_entries() const;

    /// Rebuilds counts from serialized entries. The restored object is
    /// observably identical to the exported one — `total` is carried
    /// verbatim, not re-summed, so accumulation order cannot shift a bit.
    [[nodiscard]] static cdn_user_counts restore(const std::vector<entry>& blocks,
                                                 const std::vector<entry>& ips, double total);

    /// Observed user count for a recursive /24 (sums observed resolver IPs);
    /// nullopt if Microsoft saw no resolver IP in that /24.
    [[nodiscard]] std::optional<double> count(net::slash24 block) const;

    /// Observed user count for one exact resolver IP.
    [[nodiscard]] std::optional<double> count(net::ipv4_addr ip) const;

    /// All /24s with a count (the "CDN recursives" universe of Table 4).
    [[nodiscard]] std::vector<net::slash24> observed_blocks() const;
    /// All exact resolver IPs Microsoft observed.
    [[nodiscard]] std::vector<net::ipv4_addr> observed_ips() const;

    [[nodiscard]] double total_observed_users() const noexcept { return total_; }

private:
    cdn_user_counts() = default;

    std::unordered_map<std::uint32_t, double> by_block_;
    std::unordered_map<std::uint32_t, double> by_ip_;  // keyed by address value
    double total_ = 0.0;
};

/// APNIC-style per-AS user estimates: country-normalized ad-network samples
/// (§2.1). Noisy, per-AS granularity, assumes users are in the recursive's AS.
class apnic_user_counts {
public:
    struct options {
        double noise_sigma = 0.3;     // lognormal estimation noise
        double as_missing_p = 0.05;   // ASes absent from the dataset
    };

    apnic_user_counts(const user_base& base, options opts, std::uint64_t seed);

    /// One serialized estimate. The snapshot layer stores and restores these.
    struct entry {
        topo::asn_t asn = 0;
        double users = 0.0;
    };

    /// Per-AS estimates in ascending ASN order (deterministic accessor).
    [[nodiscard]] std::vector<entry> entries() const;

    /// Rebuilds estimates from serialized entries; observably identical to
    /// the exported object.
    [[nodiscard]] static apnic_user_counts restore(const std::vector<entry>& entries);

    [[nodiscard]] std::optional<double> count(topo::asn_t asn) const;
    [[nodiscard]] std::size_t as_count() const noexcept { return by_as_.size(); }

private:
    apnic_user_counts() = default;

    std::unordered_map<topo::asn_t, double> by_as_;
};

} // namespace ac::pop
