#include "src/snapshot/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <new>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/snapshot/xxhash64.h"

#if defined(__unix__) || defined(__APPLE__)
#define AC_SNAPSHOT_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define AC_SNAPSHOT_HAS_MMAP 0
#endif

namespace ac::snapshot {

namespace {

constexpr std::uint64_t checksum_field_offset = 56;

std::size_t align_up(std::size_t n, std::size_t alignment) {
    return (n + alignment - 1) / alignment * alignment;
}

void put_u16(std::byte* at, std::uint16_t v) { std::memcpy(at, &v, sizeof v); }
void put_u32(std::byte* at, std::uint32_t v) { std::memcpy(at, &v, sizeof v); }
void put_u64(std::byte* at, std::uint64_t v) { std::memcpy(at, &v, sizeof v); }

std::uint16_t get_u16(const std::byte* at) {
    std::uint16_t v;
    std::memcpy(&v, at, sizeof v);
    return v;
}
std::uint32_t get_u32(const std::byte* at) {
    std::uint32_t v;
    std::memcpy(&v, at, sizeof v);
    return v;
}
std::uint64_t get_u64(const std::byte* at) {
    std::uint64_t v;
    std::memcpy(&v, at, sizeof v);
    return v;
}

/// XXH64 over [0, 56) ++ [64, size) — everything except the checksum field
/// itself (and the 8 bytes of header padding it occupies through byte 63,
/// which are always zero and re-checked structurally).
std::uint64_t file_checksum(const std::byte* data, std::size_t size) {
    const std::uint64_t head = xxhash64(data, checksum_field_offset);
    return xxhash64(data + header_bytes, size - header_bytes, head);
}

bool valid_elem(elem_type t) {
    switch (t) {
        case elem_type::raw:
        case elem_type::u8:
        case elem_type::u32:
        case elem_type::u64:
        case elem_type::i32:
        case elem_type::i64:
        case elem_type::f64: return true;
    }
    return false;
}

} // namespace

// ---------------------------------------------------------------- writer --

void writer::add_typed(std::string name, elem_type type, const void* data, std::size_t bytes,
                       std::uint32_t elem_size) {
    obs::span section_span{"snapshot/section_write"};
    section_span.set_items(bytes);
    obs::registry::global().get_counter("snapshot.sections_written").add(1);
    obs::registry::global().get_counter("snapshot.bytes_written").add(bytes);
    for (const auto& s : sections_) {
        if (s.name == name) {
            throw snapshot_error(errc::malformed, "duplicate section name '" + name + "'");
        }
    }
    pending_section section;
    section.name = std::move(name);
    section.type = type;
    section.elem_size = elem_size;
    section.rows = elem_size == 0 ? 0 : bytes / elem_size;
    section.payload.resize(bytes);
    if (bytes != 0) std::memcpy(section.payload.data(), data, bytes);
    sections_.push_back(std::move(section));
}

void writer::add_encoded(std::string name, elem_type type, std::uint32_t elem_size,
                         table::enc::encoding encoding, std::vector<std::byte> payload,
                         std::uint64_t rows, std::uint16_t xref_source) {
    obs::span section_span{"snapshot/section_write"};
    section_span.set_items(payload.size());
    obs::registry::global().get_counter("snapshot.sections_written").add(1);
    obs::registry::global().get_counter("snapshot.bytes_written").add(payload.size());
    obs::registry::global().get_counter("snapshot.encoded_bytes_written").add(payload.size());
    for (const auto& s : sections_) {
        if (s.name == name) {
            throw snapshot_error(errc::malformed, "duplicate section name '" + name + "'");
        }
    }
    pending_section section;
    section.name = std::move(name);
    section.type = type;
    section.elem_size = elem_size;
    section.encoding = encoding;
    section.xref_source = xref_source;
    section.rows = rows;
    section.payload = std::move(payload);
    sections_.push_back(std::move(section));
}

void writer::add_xref(std::string name, elem_type type, std::uint32_t elem_size,
                      std::string_view source_name, std::span<const std::uint32_t> indices) {
    if (version_ < 2) {
        throw snapshot_error(errc::malformed,
                             "xref sections require container version 2");
    }
    std::size_t source = sections_.size();
    for (std::size_t i = 0; i < sections_.size(); ++i) {
        if (sections_[i].name == source_name) {
            source = i;
            break;
        }
    }
    if (source == sections_.size() || source > 0xffff ||
        sections_[source].type != type ||
        sections_[source].encoding == table::enc::encoding::xref) {
        throw snapshot_error(errc::malformed, "invalid xref source '" +
                                                  std::string{source_name} + "' for '" +
                                                  name + "'");
    }
    add_encoded(std::move(name), type, elem_size, table::enc::encoding::xref,
                table::enc::encode_xref(indices, sections_[source].rows), indices.size(),
                static_cast<std::uint16_t>(source));
}

void writer::add_raw(std::string name, const void* data, std::size_t bytes,
                     std::uint32_t elem_size) {
    add_typed(std::move(name), elem_type::raw, data, bytes, elem_size);
}

std::vector<std::byte> writer::finish() const {
    obs::span finish_span{"snapshot/finish"};
    finish_span.set_items(sections_.size());
    const std::size_t alignment = payload_alignment_for(version_);
    std::size_t names_bytes = 0;
    for (const auto& s : sections_) names_bytes += s.name.size();

    const std::size_t table_offset = header_bytes;
    const std::size_t names_offset = table_offset + sections_.size() * section_entry_bytes;
    const std::size_t first_payload = align_up(names_offset + names_bytes, alignment);

    // Lay out payloads. A v2 writer dedups: byte-identical payloads share
    // one file range (and therefore one checksum) — the four per-row letter
    // table columns that xref one shared index mapping collapse this way.
    std::vector<std::uint64_t> payload_checksums(sections_.size());
    std::vector<std::size_t> payload_offsets(sections_.size());
    std::vector<bool> shared(sections_.size(), false);
    std::size_t total = first_payload;
    for (std::size_t i = 0; i < sections_.size(); ++i) {
        const auto& s = sections_[i];
        payload_checksums[i] = xxhash64(s.payload.data(), s.payload.size());
        if (version_ >= 2) {
            for (std::size_t j = 0; j < i; ++j) {
                if (payload_checksums[j] == payload_checksums[i] &&
                    sections_[j].payload == s.payload) {
                    payload_offsets[i] = payload_offsets[j];
                    shared[i] = true;
                    break;
                }
            }
        }
        if (!shared[i]) {
            total = align_up(total, alignment);
            payload_offsets[i] = total;
            total += s.payload.size();
        }
    }

    std::vector<std::byte> image(total, std::byte{0});

    std::memcpy(image.data(), magic, sizeof magic);
    put_u32(image.data() + 8, version_);
    put_u32(image.data() + 12, static_cast<std::uint32_t>(sections_.size()));
    put_u64(image.data() + 16, table_offset);
    put_u64(image.data() + 24, names_offset);
    put_u64(image.data() + 32, names_bytes);
    put_u64(image.data() + 40, first_payload);
    put_u64(image.data() + 48, total);

    std::size_t name_cursor = 0;
    for (std::size_t i = 0; i < sections_.size(); ++i) {
        const auto& s = sections_[i];
        std::byte* entry = image.data() + table_offset + i * section_entry_bytes;
        put_u32(entry + 0, static_cast<std::uint32_t>(name_cursor));
        put_u32(entry + 4, static_cast<std::uint32_t>(s.name.size()));
        entry[8] = static_cast<std::byte>(s.type);
        entry[9] = static_cast<std::byte>(s.encoding);  // always zero in v1
        put_u16(entry + 10, s.xref_source);             // always zero unless xref
        put_u32(entry + 12, s.elem_size);
        put_u64(entry + 16, payload_offsets[i]);
        put_u64(entry + 24, s.payload.size());
        put_u64(entry + 32, payload_checksums[i]);

        std::memcpy(image.data() + names_offset + name_cursor, s.name.data(), s.name.size());
        name_cursor += s.name.size();
        if (!s.payload.empty() && !shared[i]) {
            std::memcpy(image.data() + payload_offsets[i], s.payload.data(),
                        s.payload.size());
        }
    }

    put_u64(image.data() + checksum_field_offset, file_checksum(image.data(), image.size()));
    return image;
}

void writer::write_file(const std::string& path) const {
    obs::span file_span{"snapshot/write_file"};
    const auto image = finish();
    file_span.set_items(image.size());
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        throw snapshot_error(errc::io, "cannot open '" + path + "' for writing");
    }
    const std::size_t written = std::fwrite(image.data(), 1, image.size(), f);
    const int close_rc = std::fclose(f);
    if (written != image.size() || close_rc != 0) {
        std::remove(path.c_str());
        throw snapshot_error(errc::io, "short write to '" + path + "'");
    }
}

// ---------------------------------------------------------------- bundle --

namespace {

struct file_closer {
    void operator()(std::FILE* f) const noexcept {
        if (f != nullptr) std::fclose(f);
    }
};

std::byte* alloc_aligned(std::size_t bytes) {
    return static_cast<std::byte*>(
        ::operator new(bytes, std::align_val_t{payload_alignment}));
}

void free_aligned(std::byte* p) noexcept {
    ::operator delete(p, std::align_val_t{payload_alignment});
}

} // namespace

bundle::~bundle() {
    if (data_ == nullptr) return;
#if AC_SNAPSHOT_HAS_MMAP
    if (mapped_region_) {
        ::munmap(const_cast<std::byte*>(data_), size_);
        return;
    }
#endif
    free_aligned(const_cast<std::byte*>(data_));
}

void bundle::adopt(std::byte* data, std::size_t size, load_mode mode, bool mapped_region) {
    data_ = data;
    size_ = size;
    mode_ = mode;
    mapped_region_ = mapped_region;
}

std::shared_ptr<const bundle> bundle::open(const std::string& path, load_mode mode) {
    obs::span open_span{mode == load_mode::mapped ? "snapshot/open_mapped"
                                                  : "snapshot/open_owned"};
    auto b = std::shared_ptr<bundle>(new bundle());

#if AC_SNAPSHOT_HAS_MMAP
    if (mode == load_mode::mapped) {
        const int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0) throw snapshot_error(errc::io, "cannot open '" + path + "'");
        struct stat st{};
        if (::fstat(fd, &st) != 0 || st.st_size < 0) {
            ::close(fd);
            throw snapshot_error(errc::io, "cannot stat '" + path + "'");
        }
        const auto size = static_cast<std::size_t>(st.st_size);
        if (size == 0) {
            ::close(fd);
            throw snapshot_error(errc::truncated, "'" + path + "' is empty");
        }
        void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
        ::close(fd);
        if (map == MAP_FAILED) {
            throw snapshot_error(errc::io, "mmap of '" + path + "' failed");
        }
        b->adopt(static_cast<std::byte*>(map), size, load_mode::mapped, true);
        b->parse_and_verify();
        return b;
    }
#endif

    // Owned read (and the fallback when mmap is unavailable).
    std::unique_ptr<std::FILE, file_closer> f{std::fopen(path.c_str(), "rb")};
    if (f == nullptr) throw snapshot_error(errc::io, "cannot open '" + path + "'");
    if (std::fseek(f.get(), 0, SEEK_END) != 0) {
        throw snapshot_error(errc::io, "cannot seek '" + path + "'");
    }
    const long end = std::ftell(f.get());
    if (end < 0) throw snapshot_error(errc::io, "cannot size '" + path + "'");
    std::rewind(f.get());
    const auto size = static_cast<std::size_t>(end);
    std::byte* data = alloc_aligned(size == 0 ? 1 : size);
    const std::size_t got = size == 0 ? 0 : std::fread(data, 1, size, f.get());
    if (got != size) {
        free_aligned(data);
        throw snapshot_error(errc::io, "short read from '" + path + "'");
    }
    b->adopt(data, size, load_mode::owned, false);
    b->parse_and_verify();
    return b;
}

std::shared_ptr<const bundle> bundle::from_bytes(std::span<const std::byte> image) {
    auto b = std::shared_ptr<bundle>(new bundle());
    std::byte* data = alloc_aligned(image.empty() ? 1 : image.size());
    if (!image.empty()) std::memcpy(data, image.data(), image.size());
    b->adopt(data, image.size(), load_mode::owned, false);
    b->parse_and_verify();
    return b;
}

void bundle::parse_and_verify() {
    obs::span verify_span{"snapshot/parse_and_verify"};
    verify_span.set_items(size_);
    if (size_ < header_bytes) {
        throw snapshot_error(errc::truncated,
                             "file is " + std::to_string(size_) + " bytes, shorter than the " +
                                 std::to_string(header_bytes) + "-byte header");
    }
    if (std::memcmp(data_, magic, sizeof magic) != 0) {
        throw snapshot_error(errc::bad_magic, "not a snapshot file (magic mismatch)");
    }
    const std::uint32_t version = get_u32(data_ + 8);
    if (version > format_version) {
        throw snapshot_error(errc::version_mismatch,
                             "file is format v" + std::to_string(version) +
                                 ", this reader understands up to v" +
                                 std::to_string(format_version));
    }
    version_ = version;
    const std::size_t alignment = payload_alignment_for(version);
    const std::uint32_t count = get_u32(data_ + 12);
    const std::uint64_t table_offset = get_u64(data_ + 16);
    const std::uint64_t names_offset = get_u64(data_ + 24);
    const std::uint64_t names_bytes = get_u64(data_ + 32);
    const std::uint64_t first_payload = get_u64(data_ + 40);
    const std::uint64_t declared_size = get_u64(data_ + 48);

    if (declared_size != size_) {
        throw snapshot_error(errc::truncated,
                             "header declares " + std::to_string(declared_size) +
                                 " bytes but the file holds " + std::to_string(size_));
    }
    if (count == 0) {
        throw snapshot_error(errc::malformed, "zero-section snapshot");
    }
    const std::uint64_t table_bytes = std::uint64_t{count} * section_entry_bytes;
    if (table_offset != header_bytes || table_offset + table_bytes > size_ ||
        names_offset != table_offset + table_bytes || names_offset + names_bytes > size_ ||
        first_payload < names_offset + names_bytes || first_payload > size_ ||
        first_payload % alignment != 0) {
        throw snapshot_error(errc::malformed, "header layout fields are inconsistent");
    }

    if (file_checksum(data_, size_) != get_u64(data_ + checksum_field_offset)) {
        throw snapshot_error(errc::checksum_mismatch, "file checksum mismatch");
    }

    sections_.clear();
    sections_.reserve(count);
    views_.clear();
    views_.reserve(count);
    const char* names = reinterpret_cast<const char*>(data_ + names_offset);
    for (std::uint32_t i = 0; i < count; ++i) {
        const std::byte* entry = data_ + table_offset + i * section_entry_bytes;
        const std::uint32_t name_off = get_u32(entry + 0);
        const std::uint32_t name_len = get_u32(entry + 4);
        const auto type = static_cast<elem_type>(entry[8]);
        const auto encoding_tag = static_cast<std::uint8_t>(entry[9]);
        const std::uint16_t xref_source = get_u16(entry + 10);
        const std::uint32_t elem_size = get_u32(entry + 12);
        const std::uint64_t payload_offset = get_u64(entry + 16);
        const std::uint64_t payload_bytes = get_u64(entry + 24);
        const std::uint64_t checksum = get_u64(entry + 32);

        if (std::uint64_t{name_off} + name_len > names_bytes) {
            throw snapshot_error(errc::malformed,
                                 "section " + std::to_string(i) + " name out of bounds");
        }
        section_info info;
        info.name = std::string_view{names + name_off, name_len};
        if (!valid_elem(type)) {
            throw snapshot_error(errc::malformed, "section '" + std::string{info.name} +
                                                      "' has an unknown element type tag");
        }
        if (version == 1 && (encoding_tag != 0 || xref_source != 0)) {
            throw snapshot_error(errc::malformed,
                                 "section '" + std::string{info.name} +
                                     "' has nonzero v2 encoding fields in a v1 file");
        }
        if (encoding_tag > table::enc::max_encoding_tag) {
            throw snapshot_error(errc::bad_encoding, "section '" + std::string{info.name} +
                                                         "' has an unknown encoding tag");
        }
        const auto encoding = static_cast<table::enc::encoding>(encoding_tag);
        if (encoding != table::enc::encoding::xref && xref_source != 0) {
            throw snapshot_error(errc::bad_encoding,
                                 "section '" + std::string{info.name} +
                                     "' has an xref source but is not an xref");
        }
        if (elem_size == 0 ||
            (type != elem_type::raw && elem_size != elem_size_of(type))) {
            throw snapshot_error(errc::malformed, "section '" + std::string{info.name} +
                                                      "' has an invalid element size");
        }
        if (payload_offset % alignment != 0 || payload_offset < first_payload ||
            payload_offset > size_ || payload_bytes > size_ - payload_offset) {
            throw snapshot_error(errc::truncated, "section '" + std::string{info.name} +
                                                      "' payload out of bounds");
        }
        if (encoding == table::enc::encoding::plain && payload_bytes % elem_size != 0) {
            throw snapshot_error(errc::malformed,
                                 "section '" + std::string{info.name} +
                                     "' length is not a multiple of its element size");
        }
        {
            obs::span section_span{"snapshot/section_verify"};
            section_span.set_items(payload_bytes);
            obs::registry::global().get_counter("snapshot.sections_read").add(1);
            obs::registry::global().get_counter("snapshot.bytes_read").add(payload_bytes);
            if (xxhash64(data_ + payload_offset, payload_bytes) != checksum) {
                throw snapshot_error(errc::checksum_mismatch, "section '" +
                                                                  std::string{info.name} +
                                                                  "' checksum mismatch");
            }
        }

        // Parse + fully validate the encoding (bounds, widths, code/index
        // ranges) so scans can decode without further checks. Nothing is
        // decoded here — the view's pointers alias the payload bytes.
        const std::span<const std::byte> payload{data_ + payload_offset, payload_bytes};
        table::enc::any_view view;
        std::string encoding_error;
        if (encoding == table::enc::encoding::xref) {
            if (xref_source >= i) {
                throw snapshot_error(errc::bad_encoding,
                                     "section '" + std::string{info.name} +
                                         "' xref source index is out of range");
            }
            if (sections_[xref_source].type != type) {
                throw snapshot_error(errc::bad_encoding,
                                     "section '" + std::string{info.name} +
                                         "' xref source has a different element type");
            }
            encoding_error =
                table::enc::parse_xref(payload, elem_size, views_[xref_source].self, view);
            view.encoded_bytes = payload_bytes + sections_[xref_source].payload_bytes;
        } else {
            encoding_error = table::enc::parse_view(encoding, payload, elem_size, view.self);
            view.origin = payload.data();
            view.encoded_bytes = payload_bytes;
        }
        if (!encoding_error.empty()) {
            throw snapshot_error(errc::bad_encoding, "section '" + std::string{info.name} +
                                                         "': " + encoding_error);
        }

        info.type = type;
        info.encoding = encoding;
        info.xref_source = xref_source;
        info.rows = view.self.rows;
        info.elem_size = elem_size;
        info.payload_offset = payload_offset;
        info.payload_bytes = payload_bytes;
        info.checksum = checksum;
        sections_.push_back(info);
        views_.push_back(view);
    }
}

std::size_t bundle::section_index(std::string_view name) const {
    for (std::size_t i = 0; i < sections_.size(); ++i) {
        if (sections_[i].name == name) return i;
    }
    throw snapshot_error(errc::section_missing, "section '" + std::string{name} + "' absent");
}

bool bundle::has(std::string_view name) const noexcept {
    return std::any_of(sections_.begin(), sections_.end(),
                       [&](const section_info& s) { return s.name == name; });
}

const bundle::section_info& bundle::section(std::string_view name) const {
    for (const auto& s : sections_) {
        if (s.name == name) return s;
    }
    throw snapshot_error(errc::section_missing, "section '" + std::string{name} + "' absent");
}

std::span<const std::byte> bundle::raw(std::string_view name) const {
    const auto& s = section(name);
    return {data_ + s.payload_offset, s.payload_bytes};
}

} // namespace ac::snapshot
