// Snapshot contents: what gets stored, and how a world comes back.
//
// A *world snapshot* holds everything the paper's analyses consume — the raw
// DITL captures, the filtered per-letter columnar tables, the CDN server-side
// log table, the client-side fetch rows, both population user-count views,
// the final address-space allocation history, and the world config/seed that
// produced them. Loading one and hydrating a world replaces the expensive
// dataset-generation stages ("generate once, archive, re-analyze many
// times"); the substrate (graph, roots, CDN, fleet, databases) is rebuilt
// deterministically from the stored config, so figures computed from a
// hydrated world are byte-identical to the live world that was saved.
//
// A *DITL snapshot* (save_ditl) is the binary counterpart of the
// capture::serialize text format: just the capture sections. `acctx export
// --format snapshot` writes one; `acctx analyze --format snapshot` reads one.
// Its per-letter metadata carries exactly the fields the text format carries
// (strategy excluded), so a text round-trip re-snapshots byte-identically.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/core/world.h"
#include "src/snapshot/snapshot.h"

namespace ac::snapshot {

/// Appends the DITL capture sections ("ditl/...") for `dataset` to `w`.
void add_ditl_sections(writer& w, const capture::ditl_dataset& dataset);

/// Full world snapshot as an in-memory image / on disk. The default
/// container version (2) stores columns encoded (dict/rle/delta/xref, see
/// src/table/encoding.h) with payload dedup; passing 1 writes the original
/// all-plain format for backward-compat round trips. Both are deterministic
/// and hydrate to byte-identical worlds.
[[nodiscard]] std::vector<std::byte> encode_world(const core::world& w,
                                                  std::uint32_t container_version =
                                                      format_version);
void save_world(const core::world& w, const std::string& path,
                std::uint32_t container_version = format_version);

/// DITL-only snapshot (no config — cannot hydrate a world).
[[nodiscard]] std::vector<std::byte> encode_ditl(const capture::ditl_dataset& dataset);
void save_ditl(const capture::ditl_dataset& dataset, const std::string& path);

/// True when `b` holds a full world snapshot (config section present).
[[nodiscard]] bool has_world(const bundle& b);

/// The stored world config (seed, scale, year, all plan knobs). Throws
/// errc::section_missing on a DITL-only snapshot, errc::malformed if the
/// section does not decode exactly.
[[nodiscard]] core::world_config read_config(const bundle& b);

/// Materializes the raw DITL dataset (row structs rebuilt from columns).
[[nodiscard]] capture::ditl_dataset read_ditl(const bundle& b);

/// Columnar views with *borrowed* columns pointing into the bundle's bytes:
/// zero deserialization, but the bundle must outlive the result (hydrate
/// keeps it alive via world_datasets::retain; direct callers keep their
/// shared_ptr).
[[nodiscard]] std::vector<capture::letter_table> read_letter_tables(const bundle& b);
[[nodiscard]] cdn::server_log_table read_server_log_table(const bundle& b);

/// Materialized row forms (owned).
[[nodiscard]] std::vector<cdn::server_log_row> read_server_log_rows(const bundle& b);
[[nodiscard]] std::vector<cdn::client_measurement_row> read_client_rows(const bundle& b);

/// Builds a world from a loaded snapshot: substrate from the stored config,
/// datasets from the stored sections (tables borrowed zero-copy from the
/// bundle). `threads_override >= 0` replaces the stored thread count (thread
/// count never changes output bytes). Throws snapshot_error on a DITL-only
/// or otherwise incomplete snapshot.
[[nodiscard]] core::world hydrate_world(std::shared_ptr<const bundle> b,
                                        int threads_override = -1);

/// Heap-allocating variant for holders that need a stable world address
/// (core::world is non-movable — its RIBs point at sibling members).
[[nodiscard]] std::unique_ptr<core::world> hydrate_world_ptr(std::shared_ptr<const bundle> b,
                                                             int threads_override = -1);

} // namespace ac::snapshot
