// The snapshot container format (DESIGN.md §9).
//
// A snapshot is one file: a fixed 64-byte header, a section table, a name
// blob, then aligned section payloads. All integers are little-endian
// fixed-width. A *plain* payload is a raw little-endian element array, so a
// reader hands out `table::column<T>` spans pointing straight into an mmap
// of the file; a v2 payload may instead be *encoded* (dictionary, RLE,
// frame-of-reference delta, or a cross-reference into another section — see
// src/table/encoding.h), in which case the reader hands out an encoded
// `table::column<T>` whose view still points straight into the mmap and
// decodes on scan, never on load. Every section carries an XXH64 checksum
// over its payload, and the header carries one over the whole file
// (checksum field excluded), so a flipped byte anywhere — header, table,
// names, payload or padding — fails verification with a typed error instead
// of undefined behaviour.
//
//   [0,  8)  magic "ACXSNAP1"
//   [8, 12)  u32 format version (readers reject newer versions; v1 files
//            remain readable — all-plain sections, 64-byte alignment)
//   [12,16)  u32 section count (zero-section files are rejected)
//   [16,24)  u64 section table offset (= 64)
//   [24,32)  u64 name blob offset
//   [32,40)  u64 name blob length in bytes
//   [40,48)  u64 first payload offset (aligned)
//   [48,56)  u64 total file length in bytes
//   [56,64)  u64 XXH64 over [0,56) ++ [64, file length)
//
// Section table entry (40 bytes each, packed little-endian):
//   u32 name offset (into the name blob), u32 name length,
//   u8  element type tag,
//   u8  encoding tag (v2; must be zero in v1 files),
//   u16 cross-reference source section index (v2, xref sections only;
//       must be zero otherwise — kept in the entry, not the payload, so
//       columns sharing one index mapping dedup to a single payload),
//   u32 element size in bytes,
//   u64 payload offset (aligned), u64 payload length in bytes,
//   u64 XXH64 over the payload
//
// Payload alignment is 64 bytes in v1 and 8 bytes in v2 (encoded payloads
// are small; 64-byte padding between them would cost ~1% of the file).
// Identical payload bytes may share one payload (and one checksum): the v2
// writer dedups, and nothing in the format forbids overlap for v1 readers
// either.
#pragma once

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace ac::snapshot {

// The container writes column payloads as raw little-endian element arrays;
// a big-endian host would need byte-swapping owned loads (and could never
// mmap). No such target exists for this codebase, so make the assumption a
// compile error rather than silent corruption.
static_assert(std::endian::native == std::endian::little,
              "snapshot container requires a little-endian host");

inline constexpr char magic[8] = {'A', 'C', 'X', 'S', 'N', 'A', 'P', '1'};
inline constexpr std::uint32_t format_version = 2;
inline constexpr std::size_t header_bytes = 64;
inline constexpr std::size_t section_entry_bytes = 40;
inline constexpr std::size_t payload_alignment = 64;     // v1 files
inline constexpr std::size_t payload_alignment_v2 = 8;   // v2 files

[[nodiscard]] constexpr std::size_t payload_alignment_for(std::uint32_t version) noexcept {
    return version >= 2 ? payload_alignment_v2 : payload_alignment;
}

/// Element type of a section payload. Tags are part of the on-disk format;
/// never renumber.
enum class elem_type : std::uint8_t {
    raw = 0,  // opaque packed bytes (element size = record stride)
    u8 = 1,
    u32 = 2,
    u64 = 3,
    i32 = 4,
    i64 = 5,
    f64 = 6,
};

[[nodiscard]] constexpr std::uint32_t elem_size_of(elem_type t) noexcept {
    switch (t) {
        case elem_type::raw: return 1;
        case elem_type::u8: return 1;
        case elem_type::u32: return 4;
        case elem_type::u64: return 8;
        case elem_type::i32: return 4;
        case elem_type::i64: return 8;
        case elem_type::f64: return 8;
    }
    return 1;
}

/// Maps a C++ column element type to its on-disk tag.
template <typename T>
struct elem_tag;
template <> struct elem_tag<std::uint8_t> {
    static constexpr elem_type value = elem_type::u8;
};
template <> struct elem_tag<std::uint32_t> {
    static constexpr elem_type value = elem_type::u32;
};
template <> struct elem_tag<std::uint64_t> {
    static constexpr elem_type value = elem_type::u64;
};
template <> struct elem_tag<std::int32_t> {
    static constexpr elem_type value = elem_type::i32;
};
template <> struct elem_tag<std::int64_t> {
    static constexpr elem_type value = elem_type::i64;
};
template <> struct elem_tag<double> {
    static constexpr elem_type value = elem_type::f64;
};

/// What went wrong while opening or reading a snapshot. Every failure mode
/// the robustness tests exercise maps to exactly one code.
enum class errc : std::uint8_t {
    io,                 // file missing / unreadable / short read
    bad_magic,          // not a snapshot file
    version_mismatch,   // written by a future format version
    truncated,          // structurally cut short (header/table/payload bounds)
    checksum_mismatch,  // stored XXH64 does not match the bytes
    malformed,          // structurally invalid (zero sections, bad entry, ...)
    section_missing,    // a required section is absent
    type_mismatch,      // section exists but with a different element type
    bad_encoding,       // encoding tag/header/payload is invalid (v2)
};

[[nodiscard]] constexpr const char* errc_name(errc code) noexcept {
    switch (code) {
        case errc::io: return "io";
        case errc::bad_magic: return "bad_magic";
        case errc::version_mismatch: return "version_mismatch";
        case errc::truncated: return "truncated";
        case errc::checksum_mismatch: return "checksum_mismatch";
        case errc::malformed: return "malformed";
        case errc::section_missing: return "section_missing";
        case errc::type_mismatch: return "type_mismatch";
        case errc::bad_encoding: return "bad_encoding";
    }
    return "unknown";
}

/// The typed snapshot error: corrupt, truncated or mismatched inputs throw
/// this (never crash, never UB — the reader bounds-checks before it trusts
/// any offset).
class snapshot_error : public std::runtime_error {
public:
    snapshot_error(errc code, const std::string& message)
        : std::runtime_error(std::string{"snapshot ["} + errc_name(code) + "]: " + message),
          code_(code) {}

    [[nodiscard]] errc code() const noexcept { return code_; }

private:
    errc code_;
};

} // namespace ac::snapshot
