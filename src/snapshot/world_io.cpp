#include "src/snapshot/world_io.h"

#include <cstdio>
#include <cstring>

namespace ac::snapshot {

namespace {

// ------------------------------------------------------- packed encoding --
// Little-endian packed streams for the small metadata sections (config,
// per-letter headers). Fixed field order on both sides; the reader throws
// errc::malformed on any size mismatch, so a future field addition must bump
// the format version rather than silently misparse.

struct byte_sink {
    std::vector<std::byte> bytes;

    void put(const void* data, std::size_t n) {
        const auto* p = static_cast<const std::byte*>(data);
        bytes.insert(bytes.end(), p, p + n);
    }
    void u8(std::uint8_t v) { put(&v, 1); }
    void u32(std::uint32_t v) { put(&v, 4); }
    void u64(std::uint64_t v) { put(&v, 8); }
    void i32(std::int32_t v) { put(&v, 4); }
    void i64(std::int64_t v) { put(&v, 8); }
    void f64(double v) { put(&v, 8); }
    void str(const std::string& s) {
        u32(static_cast<std::uint32_t>(s.size()));
        put(s.data(), s.size());
    }
};

struct byte_source {
    std::span<const std::byte> bytes;
    std::size_t pos = 0;
    const char* what;  // section name for error messages

    explicit byte_source(std::span<const std::byte> b, const char* section)
        : bytes(b), what(section) {}

    void get(void* out, std::size_t n) {
        if (pos + n > bytes.size()) {
            throw snapshot_error(errc::malformed,
                                 std::string{what} + " section is shorter than its schema");
        }
        std::memcpy(out, bytes.data() + pos, n);
        pos += n;
    }
    std::uint8_t u8() { std::uint8_t v; get(&v, 1); return v; }
    std::uint32_t u32() { std::uint32_t v; get(&v, 4); return v; }
    std::uint64_t u64() { std::uint64_t v; get(&v, 8); return v; }
    std::int32_t i32() { std::int32_t v; get(&v, 4); return v; }
    std::int64_t i64() { std::int64_t v; get(&v, 8); return v; }
    double f64() { double v; get(&v, 8); return v; }
    std::string str() {
        const auto n = u32();
        std::string s(n, '\0');
        get(s.data(), n);
        return s;
    }
    void finish() const {
        if (pos != bytes.size()) {
            throw snapshot_error(errc::malformed,
                                 std::string{what} + " section is longer than its schema");
        }
    }
};

// ----------------------------------------------------------- world config --

void encode_config(byte_sink& s, const core::world_config& c) {
    // `threads` is deliberately NOT serialized: it is an execution knob that
    // never changes an output byte, and worlds built at different thread
    // counts must produce byte-identical snapshots.
    s.u64(c.seed);
    s.u8(c.year == core::ditl_year::y2018 ? 0 : 1);
    s.f64(c.ip_to_asn_unmapped);
    s.i32(c.root_zone_tlds);

    s.i32(c.regions.north_america);
    s.i32(c.regions.south_america);
    s.i32(c.regions.europe);
    s.i32(c.regions.africa);
    s.i32(c.regions.asia);
    s.i32(c.regions.oceania);
    s.i32(c.regions.antarctica);

    s.i32(c.graph.tier1_count);
    s.i32(c.graph.transits_per_continent);
    s.i32(c.graph.eyeball_count);
    s.i32(c.graph.enterprise_count);
    s.i32(c.graph.public_dns_count);
    s.f64(c.graph.transit_extra_provider_p);
    s.f64(c.graph.transit_peering_p);
    s.f64(c.graph.eyeball_multihome_p);
    s.f64(c.graph.eyeball_ixp_peering_p);
    s.f64(c.graph.eyeball_last_mile_ms_min);
    s.f64(c.graph.eyeball_last_mile_ms_max);

    s.f64(c.users.users_per_weight);
    s.f64(c.users.public_dns_share);
    s.f64(c.users.bind_redundant_share);
    s.f64(c.users.bind_fixed_share);
    s.f64(c.users.forwarder_share);
    s.f64(c.users.egress_only_ip_p);
    s.i32(c.users.min_resolver_ips);
    s.i32(c.users.max_resolver_ips);

    s.f64(c.query_model.tld_base);
    s.f64(c.query_model.tld_exponent);
    s.f64(c.query_model.max_tlds);
    s.f64(c.query_model.ttl_days);
    s.f64(c.query_model.refresh_median_bind_redundant);
    s.f64(c.query_model.refresh_median_bind_fixed);
    s.f64(c.query_model.refresh_median_other);
    s.f64(c.query_model.refresh_sigma);
    s.f64(c.query_model.chromium_probes_per_user);
    s.f64(c.query_model.junk_per_user_median);
    s.f64(c.query_model.junk_user_exponent);
    s.f64(c.query_model.junk_reference_users);
    s.f64(c.query_model.junk_sigma);
    s.f64(c.query_model.ptr_per_user);
    s.f64(c.query_model.preference_gamma_lo);
    s.f64(c.query_model.preference_gamma_hi);
    s.f64(c.query_model.preference_uniform_mix);
    s.f64(c.query_model.tcp_share_zero_p);
    s.f64(c.query_model.tcp_share_median);
    s.f64(c.query_model.tcp_share_sigma);

    s.f64(c.ditl.ipv6_fraction);
    s.f64(c.ditl.private_fraction);
    s.f64(c.ditl.spoofed_fraction);
    s.i32(c.ditl.junk_source_count);
    s.i32(c.ditl.junk_ips_per_source);
    s.f64(c.ditl.junk_source_median_qpd);
    s.f64(c.ditl.junk_source_sigma);
    s.i32(c.ditl.min_tcp_samples);
    s.f64(c.ditl.capture_days);
    s.f64(c.ditl.per_ip_split_share);

    s.u32(static_cast<std::uint32_t>(c.cdn.ring_sizes.size()));
    for (const int size : c.cdn.ring_sizes) s.i32(size);
    s.u32(c.cdn.asn);
    s.str(c.cdn.name);
    s.f64(c.cdn.eyeball_peering_fraction);
    s.f64(c.cdn.transit_peering_fraction);
    s.f64(c.cdn.wan_circuitousness);
    s.u64(c.cdn.seed);

    s.f64(c.telemetry.connections_per_user);
    s.f64(c.telemetry.capture_days);
    s.i64(c.telemetry.min_samples);
    s.f64(c.telemetry.ring_share_sigma);
    s.f64(c.telemetry.fetch_rtt_multiple);

    s.i32(c.atlas.probe_count);
    s.f64(c.atlas.europe_bias);
    s.f64(c.atlas.connectivity_bias);
    s.u64(c.atlas.seed);

    s.f64(c.geodb.wrong_region_p);
    s.f64(c.geodb.jitter_km);
}

core::world_config decode_config(byte_source& s) {
    core::world_config c;
    c.seed = s.u64();
    const auto year = s.u8();
    if (year > 1) throw snapshot_error(errc::malformed, "config year is out of range");
    c.year = year == 0 ? core::ditl_year::y2018 : core::ditl_year::y2020;
    c.ip_to_asn_unmapped = s.f64();
    c.root_zone_tlds = s.i32();

    c.regions.north_america = s.i32();
    c.regions.south_america = s.i32();
    c.regions.europe = s.i32();
    c.regions.africa = s.i32();
    c.regions.asia = s.i32();
    c.regions.oceania = s.i32();
    c.regions.antarctica = s.i32();

    c.graph.tier1_count = s.i32();
    c.graph.transits_per_continent = s.i32();
    c.graph.eyeball_count = s.i32();
    c.graph.enterprise_count = s.i32();
    c.graph.public_dns_count = s.i32();
    c.graph.transit_extra_provider_p = s.f64();
    c.graph.transit_peering_p = s.f64();
    c.graph.eyeball_multihome_p = s.f64();
    c.graph.eyeball_ixp_peering_p = s.f64();
    c.graph.eyeball_last_mile_ms_min = s.f64();
    c.graph.eyeball_last_mile_ms_max = s.f64();

    c.users.users_per_weight = s.f64();
    c.users.public_dns_share = s.f64();
    c.users.bind_redundant_share = s.f64();
    c.users.bind_fixed_share = s.f64();
    c.users.forwarder_share = s.f64();
    c.users.egress_only_ip_p = s.f64();
    c.users.min_resolver_ips = s.i32();
    c.users.max_resolver_ips = s.i32();

    c.query_model.tld_base = s.f64();
    c.query_model.tld_exponent = s.f64();
    c.query_model.max_tlds = s.f64();
    c.query_model.ttl_days = s.f64();
    c.query_model.refresh_median_bind_redundant = s.f64();
    c.query_model.refresh_median_bind_fixed = s.f64();
    c.query_model.refresh_median_other = s.f64();
    c.query_model.refresh_sigma = s.f64();
    c.query_model.chromium_probes_per_user = s.f64();
    c.query_model.junk_per_user_median = s.f64();
    c.query_model.junk_user_exponent = s.f64();
    c.query_model.junk_reference_users = s.f64();
    c.query_model.junk_sigma = s.f64();
    c.query_model.ptr_per_user = s.f64();
    c.query_model.preference_gamma_lo = s.f64();
    c.query_model.preference_gamma_hi = s.f64();
    c.query_model.preference_uniform_mix = s.f64();
    c.query_model.tcp_share_zero_p = s.f64();
    c.query_model.tcp_share_median = s.f64();
    c.query_model.tcp_share_sigma = s.f64();

    c.ditl.ipv6_fraction = s.f64();
    c.ditl.private_fraction = s.f64();
    c.ditl.spoofed_fraction = s.f64();
    c.ditl.junk_source_count = s.i32();
    c.ditl.junk_ips_per_source = s.i32();
    c.ditl.junk_source_median_qpd = s.f64();
    c.ditl.junk_source_sigma = s.f64();
    c.ditl.min_tcp_samples = s.i32();
    c.ditl.capture_days = s.f64();
    c.ditl.per_ip_split_share = s.f64();

    c.cdn.ring_sizes.clear();
    const auto ring_count = s.u32();
    if (ring_count > 1024) {
        throw snapshot_error(errc::malformed, "config ring count is implausible");
    }
    c.cdn.ring_sizes.reserve(ring_count);
    for (std::uint32_t i = 0; i < ring_count; ++i) c.cdn.ring_sizes.push_back(s.i32());
    c.cdn.asn = s.u32();
    c.cdn.name = s.str();
    c.cdn.eyeball_peering_fraction = s.f64();
    c.cdn.transit_peering_fraction = s.f64();
    c.cdn.wan_circuitousness = s.f64();
    c.cdn.seed = s.u64();

    c.telemetry.connections_per_user = s.f64();
    c.telemetry.capture_days = s.f64();
    c.telemetry.min_samples = static_cast<long>(s.i64());
    c.telemetry.ring_share_sigma = s.f64();
    c.telemetry.fetch_rtt_multiple = s.f64();

    c.atlas.probe_count = s.i32();
    c.atlas.europe_bias = s.f64();
    c.atlas.connectivity_bias = s.f64();
    c.atlas.seed = s.u64();

    c.geodb.wrong_region_p = s.f64();
    c.geodb.jitter_km = s.f64();
    return c;
}

// ------------------------------------------------------------- ditl sections

std::string sec(const char* group, std::size_t index, const char* field) {
    return std::string{group} + "/" + std::to_string(index) + "/" + field;
}

void encode_letter_spec_flags(byte_sink& s, const dns::letter_spec& spec) {
    s.u8(static_cast<std::uint8_t>(spec.anon));
    s.u8(spec.in_ditl ? 1 : 0);
    s.u8(spec.tcp_usable ? 1 : 0);
    s.u8(spec.complete ? 1 : 0);
}

void decode_letter_spec_flags(byte_source& s, dns::letter_spec& spec) {
    const auto anon = s.u8();
    if (anon > 2) throw snapshot_error(errc::malformed, "letter anonymization out of range");
    spec.anon = static_cast<dns::anonymization>(anon);
    spec.in_ditl = s.u8() != 0;
    spec.tcp_usable = s.u8() != 0;
    spec.complete = s.u8() != 0;
}

/// Adds a column section in whatever way fits the column's storage state:
/// plain/borrowed columns hand their span straight to the writer, encoded
/// columns (a re-encode of a hydrated world) decode into a scratch vector
/// first. Encoding choice is downstream and deterministic either way.
template <typename T>
void add_encoded_column_from(writer& w, std::string name, const table::column<T>& c) {
    if (c.is_encoded()) {
        const auto values = c.materialize();
        w.add_column_encoded<T>(std::move(name), values);
    } else {
        w.add_column_encoded<T>(std::move(name), c.view());
    }
}

[[nodiscard]] std::uint64_t f64_bits(double v) {
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof b);
    return b;
}

/// Tries to express the filtered letter table's four per-row columns as ONE
/// shared row-index mapping into the letter's raw capture records. The
/// filter preserves record order, so a greedy in-order walk that matches
/// (source_ip, site, category, qpd) simultaneously finds the mapping when
/// it exists; doubles are matched by bit pattern because an xref decode
/// reproduces the *record's* bits. Returns false when any table row has no
/// remaining matching record (the caller then encodes the columns directly).
bool joint_record_mapping(const capture::letter_capture& lc, const capture::letter_table& t,
                          std::vector<std::uint32_t>& indices) {
    const std::size_t rows = t.source_ip.size();
    indices.clear();
    if (rows == 0 || lc.records.empty() || lc.letter != t.letter) return false;
    indices.reserve(rows);
    std::size_t j = 0;
    for (std::size_t r = 0; r < rows; ++r) {
        const std::uint32_t ip = t.source_ip[r];
        const std::uint32_t site = t.site[r];
        const auto category = t.category[r];
        const std::uint64_t qpd = f64_bits(t.queries_per_day[r]);
        while (j < lc.records.size()) {
            const auto& rec = lc.records[j];
            if (rec.source_ip.value() == ip && rec.site == site &&
                rec.category == category && f64_bits(rec.queries_per_day) == qpd) {
                break;
            }
            ++j;
        }
        if (j == lc.records.size()) return false;
        indices.push_back(static_cast<std::uint32_t>(j));
        ++j;
    }
    return true;
}

void add_letter_capture_sections(writer& w, std::size_t i, const capture::letter_capture& lc) {
    // Per-letter metadata: exactly the fields the text serializer carries
    // (capture/serialize.h), so a text round-trip re-snapshots
    // byte-identically. `strategy` is deliberately absent from both.
    byte_sink meta;
    meta.u8(static_cast<std::uint8_t>(lc.letter));
    encode_letter_spec_flags(meta, lc.spec);
    meta.i32(lc.spec.global_sites);
    meta.i32(lc.spec.local_sites);
    meta.f64(lc.ipv6_queries_per_day);
    w.add_raw(sec("ditl", i, "meta"), meta.bytes.data(), meta.bytes.size(),
              static_cast<std::uint32_t>(meta.bytes.size()));

    std::vector<std::uint32_t> source_ip;
    std::vector<std::uint32_t> site;
    std::vector<std::uint8_t> category;
    std::vector<double> qpd;
    source_ip.reserve(lc.records.size());
    site.reserve(lc.records.size());
    category.reserve(lc.records.size());
    qpd.reserve(lc.records.size());
    for (const auto& r : lc.records) {
        source_ip.push_back(r.source_ip.value());
        site.push_back(r.site);
        category.push_back(static_cast<std::uint8_t>(r.category));
        qpd.push_back(r.queries_per_day);
    }
    w.add_column_encoded<std::uint32_t>(sec("ditl", i, "rec/source_ip"), source_ip);
    w.add_column_encoded<std::uint32_t>(sec("ditl", i, "rec/site"), site);
    w.add_column_encoded<std::uint8_t>(sec("ditl", i, "rec/category"), category);
    w.add_column_encoded<double>(sec("ditl", i, "rec/qpd"), qpd);

    std::vector<std::uint32_t> tcp_source;
    std::vector<std::uint32_t> tcp_site;
    std::vector<std::int32_t> tcp_samples;
    std::vector<double> tcp_median;
    std::vector<double> tcp_qpd;
    tcp_source.reserve(lc.tcp_rtts.size());
    tcp_site.reserve(lc.tcp_rtts.size());
    tcp_samples.reserve(lc.tcp_rtts.size());
    tcp_median.reserve(lc.tcp_rtts.size());
    tcp_qpd.reserve(lc.tcp_rtts.size());
    for (const auto& t : lc.tcp_rtts) {
        tcp_source.push_back(t.source.key());
        tcp_site.push_back(t.site);
        tcp_samples.push_back(t.sample_count);
        tcp_median.push_back(t.median_rtt_ms);
        tcp_qpd.push_back(t.queries_per_day);
    }
    w.add_column_encoded<std::uint32_t>(sec("ditl", i, "tcp/source"), tcp_source);
    w.add_column_encoded<std::uint32_t>(sec("ditl", i, "tcp/site"), tcp_site);
    w.add_column_encoded<std::int32_t>(sec("ditl", i, "tcp/samples"), tcp_samples);
    w.add_column_encoded<double>(sec("ditl", i, "tcp/median"), tcp_median);
    w.add_column_encoded<double>(sec("ditl", i, "tcp/qpd"), tcp_qpd);
}

capture::letter_capture read_letter_capture(const bundle& b, std::size_t i) {
    capture::letter_capture lc;
    byte_source meta{b.raw(sec("ditl", i, "meta")), "ditl meta"};
    lc.letter = static_cast<char>(meta.u8());
    lc.spec.letter = lc.letter;
    decode_letter_spec_flags(meta, lc.spec);
    lc.spec.global_sites = meta.i32();
    lc.spec.local_sites = meta.i32();
    lc.ipv6_queries_per_day = meta.f64();
    meta.finish();

    const auto source_ip = b.typed_column<std::uint32_t>(sec("ditl", i, "rec/source_ip"));
    const auto site = b.typed_column<std::uint32_t>(sec("ditl", i, "rec/site"));
    const auto category = b.typed_column<std::uint8_t>(sec("ditl", i, "rec/category"));
    const auto qpd = b.typed_column<double>(sec("ditl", i, "rec/qpd"));
    if (site.size() != source_ip.size() || category.size() != source_ip.size() ||
        qpd.size() != source_ip.size()) {
        throw snapshot_error(errc::malformed, "ditl record columns disagree on row count");
    }
    lc.records.resize(source_ip.size());
    for (std::size_t r = 0; r < source_ip.size(); ++r) {
        if (category[r] > 2) {
            throw snapshot_error(errc::malformed, "ditl record category out of range");
        }
        lc.records[r] = capture::capture_record{net::ipv4_addr{source_ip[r]}, site[r],
                                                static_cast<capture::query_category>(
                                                    category[r]),
                                                qpd[r]};
    }

    const auto tcp_source = b.typed_column<std::uint32_t>(sec("ditl", i, "tcp/source"));
    const auto tcp_site = b.typed_column<std::uint32_t>(sec("ditl", i, "tcp/site"));
    const auto tcp_samples = b.typed_column<std::int32_t>(sec("ditl", i, "tcp/samples"));
    const auto tcp_median = b.typed_column<double>(sec("ditl", i, "tcp/median"));
    const auto tcp_qpd = b.typed_column<double>(sec("ditl", i, "tcp/qpd"));
    if (tcp_site.size() != tcp_source.size() || tcp_samples.size() != tcp_source.size() ||
        tcp_median.size() != tcp_source.size() || tcp_qpd.size() != tcp_source.size()) {
        throw snapshot_error(errc::malformed, "ditl tcp columns disagree on row count");
    }
    lc.tcp_rtts.resize(tcp_source.size());
    for (std::size_t r = 0; r < tcp_source.size(); ++r) {
        lc.tcp_rtts[r] = capture::tcp_latency_row{
            net::slash24{net::ipv4_addr{tcp_source[r] << 8}}, tcp_site[r], tcp_samples[r],
            tcp_median[r], tcp_qpd[r]};
    }
    return lc;
}

// ----------------------------------------------------- letter table sections

void add_letter_table_sections(writer& w, std::size_t i, const capture::letter_table& t,
                               const capture::letter_capture* raw_capture) {
    byte_sink meta;
    meta.u8(static_cast<std::uint8_t>(t.letter));
    meta.u8(static_cast<std::uint8_t>(t.spec.strategy));
    encode_letter_spec_flags(meta, t.spec);
    meta.i32(t.spec.global_sites);
    meta.i32(t.spec.local_sites);
    w.add_raw(sec("tables", i, "meta"), meta.bytes.data(), meta.bytes.size(),
              static_cast<std::uint32_t>(meta.bytes.size()));

    // The filtered per-row columns are a row subset of the letter's raw
    // capture records, which this file already wrote as ditl/i/rec/*. When
    // the shared in-order mapping exists, store all four columns as xrefs
    // over it — the four index payloads are byte-identical, so payload
    // dedup keeps exactly one copy on disk.
    std::vector<std::uint32_t> indices;
    if (w.container_version() >= 2 && raw_capture != nullptr &&
        joint_record_mapping(*raw_capture, t, indices)) {
        w.add_column_xref<std::uint32_t>(sec("tables", i, "source_ip"),
                                         sec("ditl", i, "rec/source_ip"), indices);
        w.add_column_xref<std::uint32_t>(sec("tables", i, "site"),
                                         sec("ditl", i, "rec/site"), indices);
        w.add_column_xref<std::uint8_t>(sec("tables", i, "category"),
                                        sec("ditl", i, "rec/category"), indices);
        w.add_column_xref<double>(sec("tables", i, "qpd"), sec("ditl", i, "rec/qpd"),
                                  indices);
    } else {
        add_encoded_column_from(w, sec("tables", i, "source_ip"), t.source_ip);
        add_encoded_column_from(w, sec("tables", i, "site"), t.site);
        std::vector<std::uint8_t> category;
        category.reserve(t.category.size());
        t.category.for_each([&](capture::query_category c) {
            category.push_back(static_cast<std::uint8_t>(c));
        });
        w.add_column_encoded<std::uint8_t>(sec("tables", i, "category"), category);
        add_encoded_column_from(w, sec("tables", i, "qpd"), t.queries_per_day);
    }
    add_encoded_column_from(w, sec("tables", i, "tcp_key"), t.tcp_key);
    add_encoded_column_from(w, sec("tables", i, "tcp_median"), t.tcp_median_rtt_ms);
}

capture::letter_table read_letter_table(const bundle& b, std::size_t i) {
    capture::letter_table t;
    byte_source meta{b.raw(sec("tables", i, "meta")), "letter table meta"};
    t.letter = static_cast<char>(meta.u8());
    t.spec.letter = t.letter;
    const auto strategy = meta.u8();
    if (strategy > 2) {
        throw snapshot_error(errc::malformed, "letter hosting strategy out of range");
    }
    t.spec.strategy = static_cast<anycast::hosting_strategy>(strategy);
    decode_letter_spec_flags(meta, t.spec);
    t.spec.global_sites = meta.i32();
    t.spec.local_sites = meta.i32();
    meta.finish();

    t.source_ip = b.typed_column<std::uint32_t>(sec("tables", i, "source_ip"));
    t.site = b.typed_column<std::uint32_t>(sec("tables", i, "site"));
    t.category = table::column_cast<capture::query_category>(
        b.typed_column<std::uint8_t>(sec("tables", i, "category")));
    t.queries_per_day = b.typed_column<double>(sec("tables", i, "qpd"));
    t.tcp_key = b.typed_column<std::uint64_t>(sec("tables", i, "tcp_key"));
    t.tcp_median_rtt_ms = b.typed_column<double>(sec("tables", i, "tcp_median"));
    if (t.site.size() != t.source_ip.size() || t.category.size() != t.source_ip.size() ||
        t.queries_per_day.size() != t.source_ip.size() ||
        t.tcp_median_rtt_ms.size() != t.tcp_key.size()) {
        throw snapshot_error(errc::malformed, "letter table columns disagree on row count");
    }
    return t;
}

// ------------------------------------------------------- telemetry sections

void add_server_log_sections(writer& w, const cdn::server_log_table& t) {
    add_encoded_column_from(w, "server/asn", t.asn);
    add_encoded_column_from(w, "server/region", t.region);
    add_encoded_column_from(w, "server/ring", t.ring);
    add_encoded_column_from(w, "server/front_end", t.front_end);
    add_encoded_column_from(w, "server/median_rtt_ms", t.median_rtt_ms);
    add_encoded_column_from(w, "server/samples", t.sample_count);
    add_encoded_column_from(w, "server/users", t.users);
    add_encoded_column_from(w, "server/front_end_km", t.front_end_km);
}

void add_client_sections(writer& w, std::span<const cdn::client_measurement_row> rows) {
    std::vector<std::uint32_t> asn;
    std::vector<std::uint32_t> region;
    std::vector<std::int32_t> ring;
    std::vector<double> fetch;
    std::vector<std::int64_t> samples;
    std::vector<double> users;
    asn.reserve(rows.size());
    region.reserve(rows.size());
    ring.reserve(rows.size());
    fetch.reserve(rows.size());
    samples.reserve(rows.size());
    users.reserve(rows.size());
    for (const auto& r : rows) {
        asn.push_back(r.asn);
        region.push_back(r.region);
        ring.push_back(r.ring);
        fetch.push_back(r.median_fetch_ms);
        samples.push_back(r.sample_count);
        users.push_back(r.users);
    }
    w.add_column_encoded<std::uint32_t>("client/asn", asn);
    w.add_column_encoded<std::uint32_t>("client/region", region);
    w.add_column_encoded<std::int32_t>("client/ring", ring);
    w.add_column_encoded<double>("client/median_fetch_ms", fetch);
    w.add_column_encoded<std::int64_t>("client/samples", samples);
    w.add_column_encoded<double>("client/users", users);
}

// ------------------------------------------------------ population sections

void add_population_sections(writer& w, const pop::cdn_user_counts& cdn_counts,
                             const pop::apnic_user_counts& apnic_counts) {
    const auto blocks = cdn_counts.block_entries();
    const auto ips = cdn_counts.ip_entries();
    std::vector<std::uint32_t> keys;
    std::vector<double> users;
    keys.reserve(blocks.size());
    users.reserve(blocks.size());
    for (const auto& e : blocks) {
        keys.push_back(e.key);
        users.push_back(e.users);
    }
    w.add_column_encoded<std::uint32_t>("pop/cdn/block_key", keys);
    w.add_column_encoded<double>("pop/cdn/block_users", users);
    keys.clear();
    users.clear();
    for (const auto& e : ips) {
        keys.push_back(e.key);
        users.push_back(e.users);
    }
    w.add_column_encoded<std::uint32_t>("pop/cdn/ip_key", keys);
    w.add_column_encoded<double>("pop/cdn/ip_users", users);
    w.add_scalar<double>("pop/cdn/total", cdn_counts.total_observed_users());

    const auto apnic = apnic_counts.entries();
    std::vector<std::uint32_t> asns;
    users.clear();
    asns.reserve(apnic.size());
    for (const auto& e : apnic) {
        asns.push_back(e.asn);
        users.push_back(e.users);
    }
    w.add_column_encoded<std::uint32_t>("pop/apnic/asn", asns);
    w.add_column_encoded<double>("pop/apnic/users", users);
}

std::vector<pop::cdn_user_counts::entry> read_entry_pairs(const bundle& b,
                                                          std::string_view key_section,
                                                          std::string_view user_section) {
    const auto keys = b.typed_column<std::uint32_t>(key_section);
    const auto users = b.typed_column<double>(user_section);
    if (keys.size() != users.size()) {
        throw snapshot_error(errc::malformed, "population key/user columns disagree");
    }
    std::vector<pop::cdn_user_counts::entry> out(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
        out[i] = pop::cdn_user_counts::entry{keys[i], users[i]};
    }
    return out;
}

} // namespace

// ------------------------------------------------------------- public API --

void add_ditl_sections(writer& w, const capture::ditl_dataset& dataset) {
    w.add_scalar<std::uint32_t>("ditl/letter_count",
                                static_cast<std::uint32_t>(dataset.letters.size()));
    for (std::size_t i = 0; i < dataset.letters.size(); ++i) {
        add_letter_capture_sections(w, i, dataset.letters[i]);
    }
}

std::vector<std::byte> encode_ditl(const capture::ditl_dataset& dataset) {
    writer w;
    add_ditl_sections(w, dataset);
    return w.finish();
}

void save_ditl(const capture::ditl_dataset& dataset, const std::string& path) {
    writer w;
    add_ditl_sections(w, dataset);
    w.write_file(path);
}

std::vector<std::byte> encode_world(const core::world& world,
                                    std::uint32_t container_version) {
    writer w{container_version};
    byte_sink config;
    encode_config(config, world.config());
    w.add_raw("world/config", config.bytes.data(), config.bytes.size());

    w.add_scalar<std::uint32_t>("space/next_key", world.space().allocated_slash24s());
    const auto ranges = world.space().export_ranges();
    std::vector<std::uint32_t> packed;
    packed.reserve(ranges.size() * 4);
    for (const auto& r : ranges) {
        packed.push_back(r.first_key);
        packed.push_back(r.last_key);
        packed.push_back(r.asn);
        packed.push_back(r.region);
    }
    w.add_raw("space/ranges", packed.data(), packed.size() * sizeof(std::uint32_t),
              4 * sizeof(std::uint32_t));

    add_ditl_sections(w, world.ditl());

    const auto tables = world.filtered_tables();
    const auto& letters = world.ditl().letters;
    w.add_scalar<std::uint32_t>("tables/letter_count",
                                static_cast<std::uint32_t>(tables.size()));
    for (std::size_t i = 0; i < tables.size(); ++i) {
        add_letter_table_sections(w, i, tables[i],
                                  i < letters.size() ? &letters[i] : nullptr);
    }

    add_server_log_sections(w, world.server_log_table());
    add_client_sections(w, world.client_measurements());
    add_population_sections(w, world.cdn_user_counts(), world.apnic_user_counts());
    return w.finish();
}

void save_world(const core::world& world, const std::string& path,
                std::uint32_t container_version) {
    // finish() is already deterministic; writing the image directly keeps
    // the file byte-identical to encode_world()'s bytes.
    const auto image = encode_world(world, container_version);
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        throw snapshot_error(errc::io, "cannot open '" + path + "' for writing");
    }
    const std::size_t written = std::fwrite(image.data(), 1, image.size(), f);
    const int close_rc = std::fclose(f);
    if (written != image.size() || close_rc != 0) {
        std::remove(path.c_str());
        throw snapshot_error(errc::io, "short write to '" + path + "'");
    }
}

bool has_world(const bundle& b) { return b.has("world/config"); }

core::world_config read_config(const bundle& b) {
    byte_source s{b.raw("world/config"), "world config"};
    auto config = decode_config(s);
    s.finish();
    return config;
}

capture::ditl_dataset read_ditl(const bundle& b) {
    capture::ditl_dataset dataset;
    const auto count = b.scalar<std::uint32_t>("ditl/letter_count");
    dataset.letters.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        dataset.letters.push_back(read_letter_capture(b, i));
    }
    return dataset;
}

std::vector<capture::letter_table> read_letter_tables(const bundle& b) {
    const auto count = b.scalar<std::uint32_t>("tables/letter_count");
    std::vector<capture::letter_table> tables;
    tables.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) tables.push_back(read_letter_table(b, i));
    return tables;
}

cdn::server_log_table read_server_log_table(const bundle& b) {
    cdn::server_log_table t;
    t.asn = b.typed_column<std::uint32_t>("server/asn");
    t.region = b.typed_column<std::uint32_t>("server/region");
    t.ring = b.typed_column<std::int32_t>("server/ring");
    t.front_end = b.typed_column<std::int32_t>("server/front_end");
    t.median_rtt_ms = b.typed_column<double>("server/median_rtt_ms");
    t.sample_count = b.typed_column<std::int64_t>("server/samples");
    t.users = b.typed_column<double>("server/users");
    t.front_end_km = b.typed_column<double>("server/front_end_km");
    const auto rows = t.asn.size();
    if (t.region.size() != rows || t.ring.size() != rows || t.front_end.size() != rows ||
        t.median_rtt_ms.size() != rows || t.sample_count.size() != rows ||
        t.users.size() != rows || t.front_end_km.size() != rows) {
        throw snapshot_error(errc::malformed, "server log columns disagree on row count");
    }
    return t;
}

std::vector<cdn::server_log_row> read_server_log_rows(const bundle& b) {
    const auto t = read_server_log_table(b);
    std::vector<cdn::server_log_row> rows(t.rows());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        rows[i] = cdn::server_log_row{t.asn[i],
                                      t.region[i],
                                      t.ring[i],
                                      t.front_end[i],
                                      t.median_rtt_ms[i],
                                      t.sample_count[i],
                                      t.users[i],
                                      t.front_end_km[i]};
    }
    return rows;
}

std::vector<cdn::client_measurement_row> read_client_rows(const bundle& b) {
    const auto asn = b.typed_column<std::uint32_t>("client/asn");
    const auto region = b.typed_column<std::uint32_t>("client/region");
    const auto ring = b.typed_column<std::int32_t>("client/ring");
    const auto fetch = b.typed_column<double>("client/median_fetch_ms");
    const auto samples = b.typed_column<std::int64_t>("client/samples");
    const auto users = b.typed_column<double>("client/users");
    if (region.size() != asn.size() || ring.size() != asn.size() ||
        fetch.size() != asn.size() || samples.size() != asn.size() ||
        users.size() != asn.size()) {
        throw snapshot_error(errc::malformed, "client columns disagree on row count");
    }
    std::vector<cdn::client_measurement_row> rows(asn.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        rows[i] = cdn::client_measurement_row{asn[i], region[i], ring[i],
                                              fetch[i], samples[i], users[i]};
    }
    return rows;
}

namespace {

struct world_parts {
    core::world_config config;
    core::world_datasets data;
};

world_parts read_world_parts(const std::shared_ptr<const bundle>& b, int threads_override) {
    if (!has_world(*b)) {
        throw snapshot_error(errc::section_missing,
                             "not a world snapshot (no world/config section) — a DITL-only "
                             "snapshot cannot hydrate a world");
    }
    auto config = read_config(*b);
    if (threads_override >= 0) config.threads = threads_override;

    core::world_datasets data;
    data.ditl = read_ditl(*b);
    data.filtered_tables = read_letter_tables(*b);
    data.server_log_table = read_server_log_table(*b);
    data.server_logs = read_server_log_rows(*b);
    data.client_rows = read_client_rows(*b);
    data.cdn_count_blocks = read_entry_pairs(*b, "pop/cdn/block_key", "pop/cdn/block_users");
    data.cdn_count_ips = read_entry_pairs(*b, "pop/cdn/ip_key", "pop/cdn/ip_users");
    data.cdn_count_total = b->scalar<double>("pop/cdn/total");
    const auto apnic = read_entry_pairs(*b, "pop/apnic/asn", "pop/apnic/users");
    data.apnic_counts.reserve(apnic.size());
    for (const auto& e : apnic) {
        data.apnic_counts.push_back(pop::apnic_user_counts::entry{e.key, e.users});
    }

    const auto ranges_raw = b->raw("space/ranges");
    const auto& ranges_info = b->section("space/ranges");
    if (ranges_info.elem_size != 16 || ranges_raw.size() % 16 != 0) {
        throw snapshot_error(errc::malformed, "space/ranges has an unexpected stride");
    }
    const std::size_t range_count = ranges_raw.size() / 16;
    data.space_ranges.resize(range_count);
    for (std::size_t i = 0; i < range_count; ++i) {
        std::uint32_t fields[4];
        std::memcpy(fields, ranges_raw.data() + i * 16, sizeof fields);
        data.space_ranges[i] =
            topo::address_space::raw_range{fields[0], fields[1], fields[2], fields[3]};
    }
    data.space_next_key = b->scalar<std::uint32_t>("space/next_key");
    data.retain = std::shared_ptr<const void>{b, b.get()};

    return world_parts{std::move(config), std::move(data)};
}

} // namespace

core::world hydrate_world(std::shared_ptr<const bundle> b, int threads_override) {
    auto parts = read_world_parts(b, threads_override);
    return core::world{std::move(parts.config), std::move(parts.data)};
}

std::unique_ptr<core::world> hydrate_world_ptr(std::shared_ptr<const bundle> b,
                                               int threads_override) {
    auto parts = read_world_parts(b, threads_override);
    return std::make_unique<core::world>(std::move(parts.config), std::move(parts.data));
}

} // namespace ac::snapshot
