// Snapshot container I/O: a deterministic writer and a validating reader.
//
// The writer collects named, typed sections and assembles the container
// described in format.h. Assembly is serial and a pure function of the
// section contents, so two worlds with byte-identical datasets produce
// byte-identical snapshot files regardless of how many threads built them.
//
// The reader (`bundle`) has two modes:
//   - owned:  reads the whole file into an aligned heap buffer — portable,
//             and the buffer's lifetime is the bundle's.
//   - mapped: mmaps the file read-only; column accessors return spans into
//             the mapping, so nothing is deserialized (falls back to owned
//             on platforms without mmap).
// Both modes verify the file checksum and every section checksum on open;
// all structural failures throw snapshot_error (format.h) — never UB.
//
// Bundles are immutable once opened and are created behind shared_ptr so
// borrowed columns (and worlds hydrated from them) can keep the backing
// bytes alive.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/snapshot/format.h"

namespace ac::snapshot {

/// Collects sections and assembles a snapshot file image.
class writer {
public:
    /// Adds one section. Names must be unique; insertion order is the
    /// on-disk order (and therefore part of byte-identity).
    void add_raw(std::string name, const void* data, std::size_t bytes,
                 std::uint32_t elem_size = 1);

    template <typename T>
    void add_column(std::string name, std::span<const T> values) {
        add_typed(std::move(name), elem_tag<T>::value, values.data(), values.size_bytes(),
                  sizeof(T));
    }

    /// Convenience for one-value sections (totals, counts).
    template <typename T>
    void add_scalar(std::string name, T value) {
        add_typed(std::move(name), elem_tag<T>::value, &value, sizeof value, sizeof value);
    }

    [[nodiscard]] std::size_t section_count() const noexcept { return sections_.size(); }

    /// Assembles the container: header, table, names, aligned payloads,
    /// checksums. Deterministic for identical section sequences.
    [[nodiscard]] std::vector<std::byte> finish() const;

    /// finish() + atomic-ish write to `path` (throws snapshot_error{errc::io}
    /// on failure).
    void write_file(const std::string& path) const;

private:
    struct pending_section {
        std::string name;
        elem_type type = elem_type::raw;
        std::uint32_t elem_size = 1;
        std::vector<std::byte> payload;
    };

    void add_typed(std::string name, elem_type type, const void* data, std::size_t bytes,
                   std::uint32_t elem_size);

    std::vector<pending_section> sections_;
};

enum class load_mode : std::uint8_t {
    owned,   // read into an aligned heap buffer
    mapped,  // mmap read-only; spans point into the mapping
};

/// One opened snapshot. See file comment for modes and lifetime rules.
class bundle {
public:
    struct section_info {
        std::string_view name;  // points into the bundle's name blob
        elem_type type = elem_type::raw;
        std::uint32_t elem_size = 1;
        std::uint64_t payload_offset = 0;  // absolute file offset
        std::uint64_t payload_bytes = 0;
        std::uint64_t checksum = 0;
    };

    /// Opens and fully verifies a snapshot file. Throws snapshot_error on
    /// any structural or checksum failure.
    [[nodiscard]] static std::shared_ptr<const bundle> open(const std::string& path,
                                                            load_mode mode = load_mode::owned);

    /// Parses and verifies an in-memory image (the writer's finish() bytes);
    /// used by round-trip tests. The bundle copies the image.
    [[nodiscard]] static std::shared_ptr<const bundle> from_bytes(
        std::span<const std::byte> image);

    bundle(const bundle&) = delete;
    bundle& operator=(const bundle&) = delete;
    ~bundle();

    [[nodiscard]] load_mode mode() const noexcept { return mode_; }
    [[nodiscard]] std::size_t file_bytes() const noexcept { return size_; }
    [[nodiscard]] const std::vector<section_info>& sections() const noexcept {
        return sections_;
    }

    [[nodiscard]] bool has(std::string_view name) const noexcept;

    /// The section's metadata; throws errc::section_missing if absent.
    [[nodiscard]] const section_info& section(std::string_view name) const;

    /// Typed zero-copy view of one section. Throws errc::section_missing or
    /// errc::type_mismatch.
    template <typename T>
    [[nodiscard]] std::span<const T> column(std::string_view name) const {
        const auto& s = section(name);
        if (s.type != elem_tag<T>::value) {
            throw snapshot_error(errc::type_mismatch,
                                 "section '" + std::string{name} + "' holds " +
                                     std::to_string(static_cast<int>(s.type)) +
                                     ", not the requested element type");
        }
        return {reinterpret_cast<const T*>(data_ + s.payload_offset),
                s.payload_bytes / sizeof(T)};
    }

    /// Raw bytes of one section (for packed record sections).
    [[nodiscard]] std::span<const std::byte> raw(std::string_view name) const;

    /// One value from a single-element section.
    template <typename T>
    [[nodiscard]] T scalar(std::string_view name) const {
        const auto values = column<T>(name);
        if (values.size() != 1) {
            throw snapshot_error(errc::malformed, "section '" + std::string{name} +
                                                      "' is not a single-value section");
        }
        return values[0];
    }

private:
    bundle() = default;
    void adopt(std::byte* data, std::size_t size, load_mode mode, bool mapped_region);
    void parse_and_verify();

    const std::byte* data_ = nullptr;
    std::size_t size_ = 0;
    load_mode mode_ = load_mode::owned;
    bool mapped_region_ = false;  // data_ came from mmap (munmap on destroy)
    std::vector<section_info> sections_;
};

} // namespace ac::snapshot
