// Snapshot container I/O: a deterministic writer and a validating reader.
//
// The writer collects named, typed sections and assembles the container
// described in format.h. Assembly is serial and a pure function of the
// section contents, so two worlds with byte-identical datasets produce
// byte-identical snapshot files regardless of how many threads built them.
// A v2 writer (the default) may store a column section encoded
// (dict/rle/delta, chosen automatically by exact candidate sizes, or as an
// xref into another section) and dedups byte-identical payloads; a writer
// constructed with container version 1 reproduces the v1 format — all
// plain, 64-byte aligned — for backward-compat round trips.
//
// The reader (`bundle`) has two modes:
//   - owned:  reads the whole file into an aligned heap buffer — portable,
//             and the buffer's lifetime is the bundle's.
//   - mapped: mmaps the file read-only; column accessors return spans (or
//             encoded views) into the mapping, so nothing is deserialized
//             (falls back to owned on platforms without mmap).
// Both modes verify the file checksum, every section checksum, and every
// encoding header (bounds, widths, code/index ranges) on open; all
// structural failures throw snapshot_error (format.h) — never UB. Encoded
// sections are *validated* on open but never decoded: `typed_column`
// returns a `table::column<T>` whose encoded view points straight into the
// bundle's bytes and decodes on scan.
//
// Bundles are immutable once opened and are created behind shared_ptr so
// borrowed columns (and worlds hydrated from them) can keep the backing
// bytes alive.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/metrics.h"
#include "src/snapshot/format.h"
#include "src/table/column.h"

namespace ac::snapshot {

/// Collects sections and assembles a snapshot file image.
class writer {
public:
    /// `container_version` 2 (default) enables encoded sections, payload
    /// dedup and 8-byte payload alignment; 1 writes the original all-plain
    /// 64-byte-aligned format.
    explicit writer(std::uint32_t container_version = format_version)
        : version_(container_version) {}

    [[nodiscard]] std::uint32_t container_version() const noexcept { return version_; }

    /// Adds one section. Names must be unique; insertion order is the
    /// on-disk order (and therefore part of byte-identity).
    void add_raw(std::string name, const void* data, std::size_t bytes,
                 std::uint32_t elem_size = 1);

    template <typename T>
    void add_column(std::string name, std::span<const T> values) {
        add_typed(std::move(name), elem_tag<T>::value, values.data(), values.size_bytes(),
                  sizeof(T));
    }

    /// Adds a column section, automatically choosing the smallest encoding
    /// (plain/dict/rle/delta) by exact candidate sizes. On a v1 writer this
    /// degrades to a plain `add_column`. The choice is a pure function of
    /// the values, so re-encoding a decoded column is byte-identical.
    template <typename T>
    void add_column_encoded(std::string name, std::span<const T> values) {
        if (version_ < 2) {
            add_column(std::move(name), values);
            return;
        }
        const auto start = std::chrono::steady_clock::now();
        auto encoded = table::enc::choose_and_encode<T>(values);
        obs::registry::global().get_counter("snapshot.encode_ns")
            .add(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count()));
        if (encoded.kind == table::enc::encoding::plain) {
            add_column(std::move(name), values);
            return;
        }
        add_encoded(std::move(name), elem_tag<T>::value, sizeof(T), encoded.kind,
                    std::move(encoded.bytes), values.size(), 0);
    }

    /// Adds a column as bit-packed row indices into a previously added
    /// non-xref section of the same element type (see encoding.h). Only
    /// valid on a v2 writer (the caller checks `container_version()` and
    /// falls back to `add_column_encoded` with the materialized values).
    template <typename T>
    void add_column_xref(std::string name, std::string_view source_name,
                         std::span<const std::uint32_t> indices) {
        add_xref(std::move(name), elem_tag<T>::value, sizeof(T), source_name, indices);
    }

    /// Convenience for one-value sections (totals, counts).
    template <typename T>
    void add_scalar(std::string name, T value) {
        add_typed(std::move(name), elem_tag<T>::value, &value, sizeof value, sizeof value);
    }

    [[nodiscard]] std::size_t section_count() const noexcept { return sections_.size(); }

    /// Assembles the container: header, table, names, aligned payloads,
    /// checksums. Deterministic for identical section sequences.
    [[nodiscard]] std::vector<std::byte> finish() const;

    /// finish() + atomic-ish write to `path` (throws snapshot_error{errc::io}
    /// on failure).
    void write_file(const std::string& path) const;

private:
    struct pending_section {
        std::string name;
        elem_type type = elem_type::raw;
        std::uint32_t elem_size = 1;
        table::enc::encoding encoding = table::enc::encoding::plain;
        std::uint16_t xref_source = 0;
        std::uint64_t rows = 0;
        std::vector<std::byte> payload;
    };

    void add_typed(std::string name, elem_type type, const void* data, std::size_t bytes,
                   std::uint32_t elem_size);
    void add_encoded(std::string name, elem_type type, std::uint32_t elem_size,
                     table::enc::encoding encoding, std::vector<std::byte> payload,
                     std::uint64_t rows, std::uint16_t xref_source);
    void add_xref(std::string name, elem_type type, std::uint32_t elem_size,
                  std::string_view source_name, std::span<const std::uint32_t> indices);

    std::uint32_t version_ = format_version;
    std::vector<pending_section> sections_;
};

enum class load_mode : std::uint8_t {
    owned,   // read into an aligned heap buffer
    mapped,  // mmap read-only; spans point into the mapping
};

/// One opened snapshot. See file comment for modes and lifetime rules.
class bundle {
public:
    struct section_info {
        std::string_view name;  // points into the bundle's name blob
        elem_type type = elem_type::raw;
        std::uint32_t elem_size = 1;
        table::enc::encoding encoding = table::enc::encoding::plain;
        std::uint16_t xref_source = 0;     // section index, xref sections only
        std::uint64_t rows = 0;            // decoded element count
        std::uint64_t payload_offset = 0;  // absolute file offset
        std::uint64_t payload_bytes = 0;
        std::uint64_t checksum = 0;
    };

    /// Opens and fully verifies a snapshot file. Throws snapshot_error on
    /// any structural or checksum failure.
    [[nodiscard]] static std::shared_ptr<const bundle> open(const std::string& path,
                                                            load_mode mode = load_mode::owned);

    /// Parses and verifies an in-memory image (the writer's finish() bytes);
    /// used by round-trip tests. The bundle copies the image.
    [[nodiscard]] static std::shared_ptr<const bundle> from_bytes(
        std::span<const std::byte> image);

    bundle(const bundle&) = delete;
    bundle& operator=(const bundle&) = delete;
    ~bundle();

    [[nodiscard]] load_mode mode() const noexcept { return mode_; }
    [[nodiscard]] std::size_t file_bytes() const noexcept { return size_; }
    [[nodiscard]] std::uint32_t container_version() const noexcept { return version_; }
    [[nodiscard]] const std::vector<section_info>& sections() const noexcept {
        return sections_;
    }

    [[nodiscard]] bool has(std::string_view name) const noexcept;

    /// The section's metadata; throws errc::section_missing if absent.
    [[nodiscard]] const section_info& section(std::string_view name) const;

    /// Typed zero-copy span of one *plain* section. Throws
    /// errc::section_missing, errc::type_mismatch (also for encoded
    /// sections, which have no contiguous values — use `typed_column`).
    template <typename T>
    [[nodiscard]] std::span<const T> column(std::string_view name) const {
        const auto& s = section(name);
        if (s.type != elem_tag<T>::value) {
            throw snapshot_error(errc::type_mismatch,
                                 "section '" + std::string{name} + "' holds " +
                                     std::to_string(static_cast<int>(s.type)) +
                                     ", not the requested element type");
        }
        if (s.encoding != table::enc::encoding::plain) {
            throw snapshot_error(errc::type_mismatch,
                                 "section '" + std::string{name} +
                                     "' is encoded; use typed_column() to scan it");
        }
        return {reinterpret_cast<const T*>(data_ + s.payload_offset),
                s.payload_bytes / sizeof(T)};
    }

    /// Typed zero-copy column over one section in any encoding: plain
    /// sections come back borrowed, encoded sections come back as
    /// decode-on-scan views — both point straight into the bundle's bytes.
    template <typename T>
    [[nodiscard]] table::column<T> typed_column(std::string_view name) const {
        const std::size_t i = section_index(name);
        const section_info& s = sections_[i];
        if (s.type != elem_tag<T>::value) {
            throw snapshot_error(errc::type_mismatch,
                                 "section '" + std::string{name} + "' holds " +
                                     std::to_string(static_cast<int>(s.type)) +
                                     ", not the requested element type");
        }
        if (s.encoding == table::enc::encoding::plain) {
            return table::column<T>::borrowed(
                {reinterpret_cast<const T*>(data_ + s.payload_offset),
                 s.payload_bytes / sizeof(T)});
        }
        return table::column<T>::encoded(views_[i]);
    }

    /// Raw bytes of one section (for packed record sections).
    [[nodiscard]] std::span<const std::byte> raw(std::string_view name) const;

    /// One value from a single-element section.
    template <typename T>
    [[nodiscard]] T scalar(std::string_view name) const {
        const auto values = column<T>(name);
        if (values.size() != 1) {
            throw snapshot_error(errc::malformed, "section '" + std::string{name} +
                                                      "' is not a single-value section");
        }
        return values[0];
    }

private:
    bundle() = default;
    void adopt(std::byte* data, std::size_t size, load_mode mode, bool mapped_region);
    void parse_and_verify();
    [[nodiscard]] std::size_t section_index(std::string_view name) const;

    const std::byte* data_ = nullptr;
    std::size_t size_ = 0;
    load_mode mode_ = load_mode::owned;
    bool mapped_region_ = false;  // data_ came from mmap (munmap on destroy)
    std::uint32_t version_ = format_version;
    std::vector<section_info> sections_;
    std::vector<table::enc::any_view> views_;  // parsed per-section views
};

} // namespace ac::snapshot
