// XXH64 — the 64-bit xxHash checksum (Yann Collet's public-domain
// algorithm), implemented from the specification.
//
// Snapshot sections are checksummed on write and re-verified on every open,
// so the hash sits on the load fast path: FNV-1a's byte-serial multiply
// chain costs ~1 ns/byte, which for a multi-megabyte snapshot would eat the
// entire mmap-load budget. XXH64 consumes 32 bytes per round through four
// independent lanes and runs an order of magnitude faster while detecting
// the same single-bit flips the corruption tests exercise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace ac::snapshot {

namespace xx_detail {

inline constexpr std::uint64_t prime1 = 0x9E3779B185EBCA87ull;
inline constexpr std::uint64_t prime2 = 0xC2B2AE3D27D4EB4Full;
inline constexpr std::uint64_t prime3 = 0x165667B19E3779F9ull;
inline constexpr std::uint64_t prime4 = 0x85EBCA77C2B2AE63ull;
inline constexpr std::uint64_t prime5 = 0x27D4EB2F165667C5ull;

inline std::uint64_t rotl(std::uint64_t v, int bits) noexcept {
    return (v << bits) | (v >> (64 - bits));
}

inline std::uint64_t read64(const unsigned char* p) noexcept {
    std::uint64_t v;
    std::memcpy(&v, p, sizeof v);
    return v;  // snapshot files are little-endian by contract (format.h)
}

inline std::uint32_t read32(const unsigned char* p) noexcept {
    std::uint32_t v;
    std::memcpy(&v, p, sizeof v);
    return v;
}

inline std::uint64_t round(std::uint64_t acc, std::uint64_t input) noexcept {
    return rotl(acc + input * prime2, 31) * prime1;
}

inline std::uint64_t merge_round(std::uint64_t acc, std::uint64_t val) noexcept {
    return (acc ^ round(0, val)) * prime1 + prime4;
}

} // namespace xx_detail

/// One-shot XXH64 over a byte range.
inline std::uint64_t xxhash64(const void* data, std::size_t len,
                              std::uint64_t seed = 0) noexcept {
    using namespace xx_detail;
    const auto* p = static_cast<const unsigned char*>(data);
    const unsigned char* const end = p + len;
    std::uint64_t h;

    if (len >= 32) {
        std::uint64_t v1 = seed + prime1 + prime2;
        std::uint64_t v2 = seed + prime2;
        std::uint64_t v3 = seed;
        std::uint64_t v4 = seed - prime1;
        const unsigned char* const limit = end - 32;
        do {
            v1 = round(v1, read64(p));
            v2 = round(v2, read64(p + 8));
            v3 = round(v3, read64(p + 16));
            v4 = round(v4, read64(p + 24));
            p += 32;
        } while (p <= limit);
        h = rotl(v1, 1) + rotl(v2, 7) + rotl(v3, 12) + rotl(v4, 18);
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed + prime5;
    }

    h += static_cast<std::uint64_t>(len);
    while (p + 8 <= end) {
        h = rotl(h ^ round(0, read64(p)), 27) * prime1 + prime4;
        p += 8;
    }
    if (p + 4 <= end) {
        h = rotl(h ^ (std::uint64_t{read32(p)} * prime1), 23) * prime2 + prime3;
        p += 4;
    }
    while (p < end) {
        h = rotl(h ^ (std::uint64_t{*p} * prime5), 11) * prime1;
        ++p;
    }

    h ^= h >> 33;
    h *= prime2;
    h ^= h >> 29;
    h *= prime3;
    h ^= h >> 32;
    return h;
}

} // namespace ac::snapshot
