#include "src/topology/region.h"

#include <algorithm>
#include <array>
#include <cmath>
#include "src/netbase/strfmt.h"
#include <limits>

namespace ac::topo {

std::string_view to_string(continent c) noexcept {
    switch (c) {
        case continent::north_america: return "north-america";
        case continent::south_america: return "south-america";
        case continent::europe: return "europe";
        case continent::africa: return "africa";
        case continent::asia: return "asia";
        case continent::oceania: return "oceania";
        case continent::antarctica: return "antarctica";
    }
    return "unknown";
}

region_table::region_table(std::vector<region> regions)
    : regions_(std::move(regions)), by_continent_(7) {
    std::vector<geo::point> centres;
    centres.reserve(regions_.size());
    for (const auto& r : regions_) {
        by_continent_[static_cast<std::size_t>(r.cont)].push_back(r.id);
        total_weight_ += r.population_weight;
        centres.push_back(r.location);
    }
    distances_ = geo::distance_table{centres};
}

const std::vector<region_id>& region_table::on_continent(continent c) const {
    return by_continent_.at(static_cast<std::size_t>(c));
}

region_id region_table::nearest(const geo::point& p) const {
    region_id best = 0;
    double best_km = std::numeric_limits<double>::infinity();
    for (const auto& r : regions_) {
        const double d = geo::distance_km(p, r.location);
        if (d < best_km) {
            best_km = d;
            best = r.id;
        }
    }
    return best;
}

namespace {

// A population corridor: regions cluster around these anchor points.
struct corridor {
    geo::point centre;
    double spread_km;   // scatter radius
    double density;     // relative likelihood of hosting a region
};

struct continent_spec {
    continent cont;
    double internet_share;  // share of global Internet population
    std::vector<corridor> corridors;
};

// Hand-placed anchors approximating real population corridors. Synthetic
// regions scatter around them, so distances between "metros" are plausible
// without importing any external dataset.
const std::vector<continent_spec>& continent_specs() {
    static const std::vector<continent_spec> specs = {
        {continent::north_america,
         0.16,
         {{{40.7, -74.0}, 700, 3.0},   // US northeast
          {{34.0, -118.2}, 600, 2.2},  // US west coast
          {{41.9, -87.6}, 600, 1.8},   // US midwest
          {{29.8, -95.4}, 600, 1.5},   // US south
          {{45.5, -73.6}, 500, 1.0},   // eastern Canada
          {{19.4, -99.1}, 500, 1.6},   // Mexico
          {{25.8, -80.2}, 400, 1.0}}}, // Florida / Caribbean gateway
        {continent::south_america,
         0.08,
         {{{-23.5, -46.6}, 700, 2.5},  // Brazil southeast
          {{-34.6, -58.4}, 500, 1.4},  // Rio de la Plata
          {{4.7, -74.1}, 600, 1.2},    // Andean north
          {{-33.4, -70.7}, 400, 0.8}}},// Chile
        {continent::europe,
         0.18,
         {{{51.5, -0.1}, 500, 2.5},    // UK / Benelux
          {{48.9, 2.3}, 450, 2.0},     // France
          {{50.1, 8.7}, 450, 2.2},     // Germany / Frankfurt
          {{41.9, 12.5}, 500, 1.4},    // Italy
          {{40.4, -3.7}, 450, 1.2},    // Iberia
          {{52.2, 21.0}, 600, 1.4},    // central/eastern Europe
          {{59.3, 18.1}, 600, 0.9},    // Nordics
          {{55.8, 37.6}, 700, 1.6}}},  // Russia west
        {continent::africa,
         0.12,
         {{{30.0, 31.2}, 600, 1.8},    // Egypt / north Africa
          {{6.5, 3.4}, 700, 2.0},      // west Africa
          {{-26.2, 28.0}, 600, 1.4},   // South Africa
          {{-1.3, 36.8}, 700, 1.2},    // east Africa
          {{33.6, -7.6}, 500, 0.9}}},  // Maghreb
        {continent::asia,
         0.40,
         {{{31.2, 121.5}, 900, 3.0},   // China east
          {{28.6, 77.2}, 900, 3.0},    // India north
          {{19.1, 72.9}, 700, 2.2},    // India west
          {{35.7, 139.7}, 500, 2.0},   // Japan
          {{37.6, 127.0}, 400, 1.3},   // Korea
          {{1.35, 103.8}, 900, 2.0},   // southeast Asia
          {{41.0, 29.0}, 700, 1.3},    // Anatolia / Levant
          {{25.2, 55.3}, 700, 1.1}}},  // Gulf
        {continent::oceania,
         0.05,
         {{{-33.9, 151.2}, 600, 2.0},  // Australia east
          {{-37.8, 145.0}, 400, 1.4},  // Australia southeast
          {{-31.9, 115.9}, 400, 0.7},  // Australia west
          {{-36.8, 174.8}, 400, 0.8}}},// New Zealand
        {continent::antarctica,
         0.01,
         {{{-77.8, 166.7}, 300, 1.0},  // McMurdo
          {{-62.2, -58.9}, 300, 1.0}}},// peninsula stations
    };
    return specs;
}

} // namespace

region_table make_regions(const region_plan& plan, std::uint64_t seed) {
    rand::rng gen{rand::mix_seed(seed, 0x7e910a11u)};
    std::vector<region> regions;
    regions.reserve(static_cast<std::size_t>(plan.total()));

    const auto count_for = [&plan](continent c) {
        switch (c) {
            case continent::north_america: return plan.north_america;
            case continent::south_america: return plan.south_america;
            case continent::europe: return plan.europe;
            case continent::africa: return plan.africa;
            case continent::asia: return plan.asia;
            case continent::oceania: return plan.oceania;
            case continent::antarctica: return plan.antarctica;
        }
        return 0;
    };

    for (const auto& spec : continent_specs()) {
        const int count = count_for(spec.cont);
        std::vector<double> densities;
        densities.reserve(spec.corridors.size());
        for (const auto& c : spec.corridors) densities.push_back(c.density);

        for (int i = 0; i < count; ++i) {
            const auto& corridor = spec.corridors[gen.weighted_index(densities)];
            // Scatter with distance decaying from the corridor anchor.
            const double bearing = gen.uniform(0.0, 360.0);
            const double radius = corridor.spread_km * std::sqrt(gen.uniform());
            const geo::point loc = geo::destination(corridor.centre, bearing, radius);

            // Heavy-tailed metro weight, scaled by continent Internet share.
            const double weight =
                spec.internet_share * gen.pareto(1.0, 1.2) / static_cast<double>(count);

            region r;
            r.id = static_cast<region_id>(regions.size());
            r.name = strfmt::indexed_name(to_string(spec.cont), i, 3);
            r.cont = spec.cont;
            r.location = loc;
            r.population_weight = weight;
            regions.push_back(std::move(r));
        }
    }

    return region_table{std::move(regions)};
}

} // namespace ac::topo
