#include "src/topology/addressing.h"

#include <algorithm>
#include <stdexcept>

namespace ac::topo {

net::slash24 address_space::allocate(asn_t asn, region_id region, std::uint32_t count) {
    if (count == 0) throw std::invalid_argument("address_space: zero-size allocation");
    if (asn == 0) throw std::invalid_argument("address_space: ASN 0 is reserved for IXP space");
    const std::uint32_t first = next_key_;
    next_key_ += count;
    ranges_.push_back(range{first, first + count - 1, asn, region});
    return net::slash24{net::ipv4_addr{first << 8}};
}

net::slash24 address_space::allocate_ixp(std::uint32_t count) {
    if (count == 0) throw std::invalid_argument("address_space: zero-size allocation");
    const std::uint32_t first = next_key_;
    next_key_ += count;
    ranges_.push_back(range{first, first + count - 1, 0, 0});
    return net::slash24{net::ipv4_addr{first << 8}};
}

std::vector<address_space::raw_range> address_space::export_ranges() const {
    std::vector<raw_range> out;
    out.reserve(ranges_.size());
    for (const auto& r : ranges_) {
        out.push_back(raw_range{r.first_key, r.last_key, r.asn, r.region});
    }
    return out;
}

address_space address_space::restore(const std::vector<raw_range>& ranges,
                                     std::uint32_t next_key) {
    address_space space;
    space.ranges_.reserve(ranges.size());
    std::uint32_t watermark = space.next_key_;  // allocation base (1.0.0.0)
    for (const auto& r : ranges) {
        if (r.first_key < watermark || r.last_key < r.first_key || r.last_key >= next_key) {
            throw std::invalid_argument("address_space: restored ranges are not a valid "
                                        "monotone allocation history");
        }
        watermark = r.last_key + 1;
        space.ranges_.push_back(range{r.first_key, r.last_key, r.asn, r.region});
    }
    space.next_key_ = next_key;
    return space;
}

namespace {

template <typename Range>
const Range* find_range(const std::vector<Range>& ranges, std::uint32_t key) {
    auto it = std::upper_bound(ranges.begin(), ranges.end(), key,
                               [](std::uint32_t k, const Range& r) { return k < r.first_key; });
    if (it == ranges.begin()) return nullptr;
    --it;
    return key <= it->last_key ? &*it : nullptr;
}

} // namespace

std::optional<slash24_info> address_space::lookup(net::slash24 s24) const {
    const auto* r = find_range(ranges_, s24.key());
    if (r == nullptr || r->asn == 0) return std::nullopt;
    return slash24_info{r->asn, r->region};
}

bool address_space::is_ixp(net::slash24 s24) const {
    const auto* r = find_range(ranges_, s24.key());
    return r != nullptr && r->asn == 0;
}

std::vector<net::slash24> address_space::blocks_of(asn_t asn) const {
    std::vector<net::slash24> out;
    for (const auto& r : ranges_) {
        if (r.asn != asn) continue;
        for (std::uint32_t key = r.first_key; key <= r.last_key; ++key) {
            out.push_back(net::slash24{net::ipv4_addr{key << 8}});
        }
    }
    return out;
}

std::vector<net::slash24> address_space::blocks_of(asn_t asn, region_id region) const {
    std::vector<net::slash24> out;
    for (const auto& r : ranges_) {
        if (r.asn != asn || r.region != region) continue;
        for (std::uint32_t key = r.first_key; key <= r.last_key; ++key) {
            out.push_back(net::slash24{net::ipv4_addr{key << 8}});
        }
    }
    return out;
}

ip_to_asn::ip_to_asn(const address_space& space, double unmapped_fraction, std::uint64_t seed) {
    rand::rng gen{rand::mix_seed(seed, 0x1b2a50ull)};
    std::uint32_t total = 0;
    std::uint32_t kept = 0;
    // Re-walk the ground truth via lookups on the allocator's own ranges:
    // iterate over all allocated keys via blocks. We reconstruct from the
    // space by probing (cheap: ranges are contiguous from the base key).
    for (std::uint32_t key = (0x01000000u >> 8); key < space.allocated_slash24s(); ++key) {
        const net::slash24 s24{net::ipv4_addr{key << 8}};
        const auto info = space.lookup(s24);
        if (!info) continue;  // IXP space never appears in the routing table
        ++total;
        if (gen.chance(unmapped_fraction)) continue;
        ++kept;
        if (!entries_.empty() && entries_.back().asn == info->asn &&
            entries_.back().last_key + 1 == key) {
            entries_.back().last_key = key;  // extend run
        } else {
            entries_.push_back(entry{key, key, info->asn});
        }
    }
    coverage_ = total == 0 ? 1.0 : static_cast<double>(kept) / static_cast<double>(total);
}

std::optional<asn_t> ip_to_asn::lookup(net::slash24 s24) const {
    const auto* e = find_range(entries_, s24.key());
    if (e == nullptr) return std::nullopt;
    return e->asn;
}

geo_database::geo_database(const address_space& space, const region_table& regions, options opts,
                           std::uint64_t seed)
    : space_(&space), regions_(&regions), opts_(opts), seed_(seed) {}

std::optional<geo::point> geo_database::locate(net::slash24 s24) const {
    const auto info = space_->lookup(s24);
    if (!info) return std::nullopt;
    // Error draws are keyed by the /24 itself so the database is stable:
    // the same /24 always locates to the same (possibly wrong) place.
    rand::rng gen{rand::mix_seed(seed_, 0x9e0db17full, s24.key())};
    const auto& true_region = regions_->at(info->region);
    if (gen.chance(opts_.wrong_region_p)) {
        const auto& pool = regions_->on_continent(true_region.cont);
        const auto& wrong = regions_->at(pool[gen.uniform_index(pool.size())]);
        return wrong.location;
    }
    const double bearing = gen.uniform(0.0, 360.0);
    const double radius = std::abs(gen.normal(0.0, opts_.jitter_km));
    return geo::destination(true_region.location, bearing, radius);
}

} // namespace ac::topo
