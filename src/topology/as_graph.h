// The autonomous-system graph: ASes with roles, geographic footprints, and
// business relationships (customer-provider / settlement-free peering) that
// interconnect at specific regions.
//
// Inflation in the paper is an emergent property of BGP policy routing over
// exactly this kind of structure (§7.1): deployments reachable only through
// transit detours see inflated catchments, deployments that peer directly
// with eyeball networks see 2-AS paths and near-optimal latency. The graph is
// therefore the load-bearing substrate of the whole reproduction.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/topology/region.h"

namespace ac::topo {

using asn_t = std::uint32_t;

enum class as_role : std::uint8_t {
    tier1,      // global transit-free backbone
    transit,    // regional/continental transit provider
    eyeball,    // access ISP with end users
    content,    // content/cloud network (CDN, root-operator hosts, ...)
    enterprise, // stub organisation without users of interest
};

[[nodiscard]] std::string_view to_string(as_role role) noexcept;

/// Relationship of a link seen from one endpoint.
enum class as_relationship : std::uint8_t {
    provider,  // the neighbor is my provider (I am its customer)
    customer,  // the neighbor is my customer
    peer,      // settlement-free peer
};

struct autonomous_system {
    asn_t asn = 0;
    as_role role = as_role::enterprise;
    std::string name;
    std::string organization;           // owning org; siblings share this
    std::vector<region_id> presence;    // regions with a PoP
    double last_mile_ms = 0.0;          // access latency users of this AS incur
};

/// An undirected adjacency with a direction-tagged relationship.
/// `kind_for_a` describes the link from a's perspective (e.g. `provider`
/// means b is a's provider).
struct as_link {
    asn_t a = 0;
    asn_t b = 0;
    as_relationship kind_for_a = as_relationship::peer;
    std::vector<region_id> interconnect_regions;  // where the two ASes meet
    double circuitousness = 1.3;  // fiber-path detour factor on this link
};

/// One neighbor entry in the adjacency index.
struct neighbor_ref {
    asn_t neighbor = 0;
    as_relationship relationship = as_relationship::peer;  // from this AS's view
    std::uint32_t link_index = 0;
    /// Dense index of `neighbor` (registration order, stable: ASes are only
    /// ever appended). Lets propagation inner loops skip the ASN hash lookup.
    std::uint32_t neighbor_index = 0;
};

class as_graph {
public:
    /// Registers an AS; asn must be unique.
    void add_as(autonomous_system as);

    /// Connects two registered ASes. `kind_for_a` is from a's perspective.
    /// Duplicate (a, b) links are rejected; self-links are rejected.
    void add_link(asn_t a, asn_t b, as_relationship kind_for_a,
                  std::vector<region_id> interconnect_regions, double circuitousness = 1.3);

    [[nodiscard]] bool has_as(asn_t asn) const noexcept { return index_.contains(asn); }
    [[nodiscard]] bool has_link(asn_t a, asn_t b) const noexcept;

    [[nodiscard]] const autonomous_system& at(asn_t asn) const;
    [[nodiscard]] const std::vector<autonomous_system>& all() const noexcept { return systems_; }
    [[nodiscard]] const std::vector<as_link>& links() const noexcept { return links_; }
    [[nodiscard]] const as_link& link(std::uint32_t index) const { return links_.at(index); }

    /// Sentinel returned by find_index for unknown ASNs.
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /// Dense index of `asn` (registration order). Throws on unknown ASN.
    [[nodiscard]] std::size_t dense_index(asn_t asn) const { return index_of(asn); }

    /// Dense index of `asn`, or `npos` when unknown.
    [[nodiscard]] std::size_t find_index(asn_t asn) const noexcept;

    /// The AS at a dense index (inverse of dense_index).
    [[nodiscard]] const autonomous_system& at_index(std::size_t index) const {
        return systems_.at(index);
    }

    /// Neighbors of `asn` with relationships from its perspective.
    [[nodiscard]] std::span<const neighbor_ref> neighbors(asn_t asn) const;

    /// Neighbors of the AS at a dense index (no hash lookup).
    [[nodiscard]] std::span<const neighbor_ref> neighbors_at(std::size_t index) const {
        return adjacency_.at(index);
    }

    [[nodiscard]] std::size_t as_count() const noexcept { return systems_.size(); }
    [[nodiscard]] std::size_t link_count() const noexcept { return links_.size(); }

    /// All ASes with a given role.
    [[nodiscard]] std::vector<asn_t> with_role(as_role role) const;

private:
    [[nodiscard]] std::size_t index_of(asn_t asn) const;

    std::vector<autonomous_system> systems_;
    std::vector<as_link> links_;
    std::unordered_map<asn_t, std::size_t> index_;
    std::vector<std::vector<neighbor_ref>> adjacency_;  // parallel to systems_
    std::unordered_map<std::uint64_t, std::uint32_t> link_lookup_;  // (min,max) -> index
};

/// Flips a relationship to the other endpoint's perspective.
[[nodiscard]] constexpr as_relationship invert(as_relationship rel) noexcept {
    switch (rel) {
        case as_relationship::provider: return as_relationship::customer;
        case as_relationship::customer: return as_relationship::provider;
        case as_relationship::peer: return as_relationship::peer;
    }
    return as_relationship::peer;
}

} // namespace ac::topo
