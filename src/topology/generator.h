// Synthetic Internet generator: builds the AS graph the study runs over.
//
// The generated graph reproduces the structural features the paper's results
// depend on: a small transit-free core, continental transit providers, a long
// tail of eyeball access networks with heavy-tailed user populations, and a
// handful of content networks whose peering breadth is a configuration knob
// (Microsoft-like CDNs peer directly with most eyeballs; root-letter host
// networks mostly do not).
#pragma once

#include <cstdint>

#include "src/topology/as_graph.h"
#include "src/topology/region.h"

namespace ac::topo {

struct graph_plan {
    int tier1_count = 12;
    int transits_per_continent = 16;     // scaled by continent Internet share
    int eyeball_count = 1200;
    int enterprise_count = 200;
    int public_dns_count = 4;            // Google-Public-DNS-like open resolvers

    // Connectivity knobs.
    double transit_extra_provider_p = 0.5;   // chance of a 2nd tier-1 provider
    double transit_peering_p = 0.25;         // same-continent transit peering
    double eyeball_multihome_p = 0.35;       // chance of a 2nd transit provider
    double eyeball_ixp_peering_p = 0.08;     // eyeball<->eyeball peering

    // Latency model knobs.
    double eyeball_last_mile_ms_min = 2.0;
    double eyeball_last_mile_ms_max = 14.0;
};

/// First ASN of each block; keeps synthetic ASNs human-readable.
struct asn_blocks {
    static constexpr asn_t tier1_base = 100;
    static constexpr asn_t transit_base = 1000;
    static constexpr asn_t eyeball_base = 10000;
    static constexpr asn_t enterprise_base = 50000;
    static constexpr asn_t public_dns_base = 90000;
    static constexpr asn_t content_base = 95000;  // reserved for callers
};

/// Builds the base graph (tier-1s, transits, eyeballs, enterprises, public
/// DNS). Content networks (the CDN, root-letter hosts) are added afterwards
/// by their own modules via `attach_content_as`. Deterministic in `seed`.
[[nodiscard]] as_graph make_graph(const region_table& regions, const graph_plan& plan,
                                  std::uint64_t seed);

/// Options controlling how a content network attaches to the base graph.
struct content_attachment {
    asn_t asn = asn_blocks::content_base;
    std::string name;
    std::string organization;
    std::vector<region_id> presence;    // PoP regions (often = site regions)
    int tier1_providers = 2;            // transit from this many tier-1s
    double transit_peering_fraction = 0.3;  // fraction of transits peered with
    double eyeball_peering_fraction = 0.0;  // fraction of eyeballs peered with
    double peer_circuitousness = 1.15;  // direct paths are close to fiber-optimal
    std::uint64_t seed = 1;
};

/// Attaches a content AS (CDN, root-operator host network, cloud) to the
/// graph. Peering links land at the content network's PoP nearest to each
/// counterpart; eyeball peering is population-biased (big eyeballs peer
/// first), matching how CDNs prioritise interconnection.
void attach_content_as(as_graph& graph, const region_table& regions,
                       const content_attachment& options);

} // namespace ac::topo
