// Address space allocation and IP -> (ASN, region) mapping.
//
// The study keys trace volumes by source /24 and attributes them to ASes via
// a Team-Cymru-style longest-prefix database (§2.1: 99.4% of DITL addresses
// mapped) and to locations via a MaxMind-style geolocation database (§3.1).
// We allocate synthetic address space per <AS, presence region> so both
// databases can be derived from ground truth, with configurable imperfection.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/netbase/ipv4.h"
#include "src/netbase/rng.h"
#include "src/topology/as_graph.h"

namespace ac::topo {

/// Ground truth about one allocated /24.
struct slash24_info {
    asn_t asn = 0;
    region_id region = 0;
};

/// The world's address plan: contiguous /24 ranges per <AS, region>.
class address_space {
public:
    /// Allocates `count` consecutive /24s to <asn, region>; returns the first.
    net::slash24 allocate(asn_t asn, region_id region, std::uint32_t count);

    /// Reserves `count` /24s as IXP interconnection space (announced by no
    /// AS; traceroute analysis strips such hops, §7.1).
    net::slash24 allocate_ixp(std::uint32_t count);

    /// Ground truth lookup. nullopt for unallocated or IXP space.
    [[nodiscard]] std::optional<slash24_info> lookup(net::slash24 s24) const;

    [[nodiscard]] bool is_ixp(net::slash24 s24) const;

    /// All /24s allocated to an AS (across regions).
    [[nodiscard]] std::vector<net::slash24> blocks_of(asn_t asn) const;
    /// All /24s allocated to an AS in one region.
    [[nodiscard]] std::vector<net::slash24> blocks_of(asn_t asn, region_id region) const;

    [[nodiscard]] std::size_t range_count() const noexcept { return ranges_.size(); }
    [[nodiscard]] std::uint32_t allocated_slash24s() const noexcept { return next_key_; }

    /// One allocation range in serialization form (snapshot container).
    struct raw_range {
        std::uint32_t first_key = 0;  // inclusive /24 key
        std::uint32_t last_key = 0;   // inclusive
        asn_t asn = 0;                // 0 => IXP space
        region_id region = 0;
    };

    /// The full allocation state, in allocation order.
    [[nodiscard]] std::vector<raw_range> export_ranges() const;

    /// Rebuilds an address space from exported state. The restored object is
    /// observably identical to the one exported (lookup, is_ixp, blocks_of,
    /// future allocations). Throws std::invalid_argument on unsorted or
    /// overlapping ranges.
    [[nodiscard]] static address_space restore(const std::vector<raw_range>& ranges,
                                               std::uint32_t next_key);

private:
    struct range {
        std::uint32_t first_key = 0;  // inclusive /24 key
        std::uint32_t last_key = 0;   // inclusive
        asn_t asn = 0;                // 0 => IXP space
        region_id region = 0;
    };
    std::vector<range> ranges_;           // sorted by construction (monotone allocator)
    std::uint32_t next_key_ = 0x01000000u >> 8;  // start allocations at 1.0.0.0
};

/// Team-Cymru-style IP -> ASN database derived from an address_space, with a
/// configurable fraction of ranges missing (unmapped lookups return nullopt).
class ip_to_asn {
public:
    ip_to_asn(const address_space& space, double unmapped_fraction, std::uint64_t seed);

    [[nodiscard]] std::optional<asn_t> lookup(net::slash24 s24) const;
    [[nodiscard]] std::optional<asn_t> lookup(net::ipv4_addr addr) const {
        return lookup(net::slash24{addr});
    }

    /// Fraction of allocated /24s present in the database.
    [[nodiscard]] double coverage() const noexcept { return coverage_; }

private:
    struct entry {
        std::uint32_t first_key = 0;
        std::uint32_t last_key = 0;
        asn_t asn = 0;
    };
    std::vector<entry> entries_;  // sorted by first_key
    double coverage_ = 1.0;
};

/// MaxMind-style geolocation database with an error model: most lookups
/// return a point near the true region centre; a small fraction return a
/// point in a different region on the same continent.
class geo_database {
public:
    struct options {
        double wrong_region_p = 0.03;   // probability of a gross error
        double jitter_km = 35.0;        // scatter around the region centre
    };

    geo_database(const address_space& space, const region_table& regions, options opts,
                 std::uint64_t seed);

    /// Located point for the /24, or nullopt if unallocated/IXP.
    [[nodiscard]] std::optional<geo::point> locate(net::slash24 s24) const;

private:
    const address_space* space_;
    const region_table* regions_;
    options opts_;
    std::uint64_t seed_;
};

} // namespace ac::topo
