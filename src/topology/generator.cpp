#include "src/topology/generator.h"

#include <algorithm>
#include <cmath>
#include "src/netbase/strfmt.h"
#include <limits>
#include <stdexcept>
#include <unordered_set>

namespace ac::topo {

namespace {

// Samples `count` distinct region ids, weighted by population, from `pool`.
std::vector<region_id> sample_regions(const region_table& regions,
                                      std::span<const region_id> pool, std::size_t count,
                                      rand::rng& gen) {
    count = std::min(count, pool.size());
    std::vector<double> weights;
    weights.reserve(pool.size());
    std::size_t eligible = 0;
    for (region_id id : pool) {
        const double w = regions.at(id).population_weight;
        weights.push_back(w);
        if (w > 0.0) ++eligible;
    }
    count = std::min(count, eligible);

    std::vector<region_id> chosen;
    std::vector<bool> used(pool.size(), false);
    while (chosen.size() < count) {
        const std::size_t i = gen.weighted_index(weights);
        if (used[i]) continue;
        used[i] = true;
        weights[i] = 0.0;
        chosen.push_back(pool[i]);
    }
    return chosen;
}

// The region of `as_presence` geographically nearest to `target`.
region_id nearest_presence(const region_table& regions, std::span<const region_id> as_presence,
                           const geo::point& target) {
    region_id best = as_presence.front();
    double best_km = std::numeric_limits<double>::infinity();
    for (region_id id : as_presence) {
        const double d = geo::distance_km(target, regions.at(id).location);
        if (d < best_km) {
            best_km = d;
            best = id;
        }
    }
    return best;
}

// Interconnect regions for a link: shared PoP regions if any, otherwise the
// provider-side PoP nearest the customer's first footprint region.
std::vector<region_id> interconnects(const region_table& regions,
                                     const autonomous_system& a, const autonomous_system& b,
                                     std::size_t max_points, rand::rng& gen) {
    std::vector<region_id> shared;
    std::unordered_set<region_id> b_set(b.presence.begin(), b.presence.end());
    for (region_id id : a.presence) {
        if (b_set.contains(id)) shared.push_back(id);
    }
    if (!shared.empty()) {
        if (shared.size() > max_points) {
            gen.shuffle(shared);
            shared.resize(max_points);
        }
        return shared;
    }
    // No common metro: meet at b's PoP nearest to a's anchor region.
    const geo::point anchor = regions.at(a.presence.front()).location;
    return {nearest_presence(regions, b.presence, anchor)};
}

double link_circuitousness(rand::rng& gen) { return gen.uniform(1.12, 1.45); }

// Backbone fibers between tier-1s follow well-engineered long-haul routes.
double backbone_circuitousness(rand::rng& gen) { return gen.uniform(1.08, 1.22); }

continent pick_continent_by_share(rand::rng& gen) {
    // Internet population share per continent, matching region generation.
    static constexpr double shares[] = {0.16, 0.08, 0.18, 0.12, 0.40, 0.05, 0.01};
    static constexpr continent conts[] = {
        continent::north_america, continent::south_america, continent::europe,
        continent::africa,        continent::asia,          continent::oceania,
        continent::antarctica};
    const std::size_t i = gen.weighted_index(std::span<const double>{shares});
    return conts[i];
}

} // namespace

as_graph make_graph(const region_table& regions, const graph_plan& plan, std::uint64_t seed) {
    rand::rng gen{rand::mix_seed(seed, 0xa59b17u)};
    as_graph graph;

    std::vector<region_id> all_regions;
    all_regions.reserve(regions.size());
    for (const auto& r : regions.all()) all_regions.push_back(r.id);

    // --- Tier-1 backbone: global footprints, full-mesh peering. ---
    std::vector<asn_t> tier1s;
    for (int i = 0; i < plan.tier1_count; ++i) {
        autonomous_system as;
        as.asn = asn_blocks::tier1_base + static_cast<asn_t>(i);
        as.role = as_role::tier1;
        as.name = strfmt::indexed_name("tier1", i, 2);
        as.organization = as.name;
        as.presence = sample_regions(regions, all_regions,
                                     static_cast<std::size_t>(gen.uniform_int(25, 45)), gen);
        as.last_mile_ms = 0.2;
        tier1s.push_back(as.asn);
        graph.add_as(std::move(as));
    }
    for (std::size_t i = 0; i < tier1s.size(); ++i) {
        for (std::size_t j = i + 1; j < tier1s.size(); ++j) {
            const auto& a = graph.at(tier1s[i]);
            const auto& b = graph.at(tier1s[j]);
            graph.add_link(tier1s[i], tier1s[j], as_relationship::peer,
                           interconnects(regions, a, b, 6, gen), backbone_circuitousness(gen));
        }
    }

    // --- Continental transit providers. ---
    std::vector<asn_t> transits;
    std::unordered_map<asn_t, continent> transit_continent;
    asn_t next_transit = asn_blocks::transit_base;
    for (continent cont :
         {continent::north_america, continent::south_america, continent::europe,
          continent::africa, continent::asia, continent::oceania, continent::antarctica}) {
        const auto& pool = regions.on_continent(cont);
        if (pool.empty()) continue;
        const int count = (cont == continent::antarctica) ? 1 : plan.transits_per_continent;
        for (int i = 0; i < count; ++i) {
            autonomous_system as;
            as.asn = next_transit++;
            as.role = as_role::transit;
            as.name = strfmt::indexed_name(std::string{"transit-"} + std::string{to_string(cont)}, i, 2);
            as.organization = as.name;
            const auto footprint = static_cast<std::size_t>(gen.uniform_int(2, 10));
            as.presence = sample_regions(regions, pool, footprint, gen);
            as.last_mile_ms = 0.5;
            const asn_t asn = as.asn;
            transits.push_back(asn);
            transit_continent.emplace(asn, cont);
            graph.add_as(std::move(as));

            // Transit is a customer of one or two tier-1s.
            const asn_t primary = tier1s[gen.uniform_index(tier1s.size())];
            graph.add_link(asn, primary, as_relationship::provider,
                           interconnects(regions, graph.at(asn), graph.at(primary), 4, gen),
                           link_circuitousness(gen));
            if (gen.chance(plan.transit_extra_provider_p)) {
                asn_t secondary = tier1s[gen.uniform_index(tier1s.size())];
                if (secondary != primary) {
                    graph.add_link(asn, secondary, as_relationship::provider,
                                   interconnects(regions, graph.at(asn), graph.at(secondary), 4, gen),
                                   link_circuitousness(gen));
                }
            }
        }
    }
    // Same-continent transit peering.
    for (std::size_t i = 0; i < transits.size(); ++i) {
        for (std::size_t j = i + 1; j < transits.size(); ++j) {
            if (transit_continent.at(transits[i]) != transit_continent.at(transits[j])) continue;
            if (!gen.chance(plan.transit_peering_p)) continue;
            graph.add_link(transits[i], transits[j], as_relationship::peer,
                           interconnects(regions, graph.at(transits[i]), graph.at(transits[j]), 3, gen),
                           link_circuitousness(gen));
        }
    }

    // --- Eyeball access networks. ---
    std::vector<asn_t> eyeballs;
    for (int i = 0; i < plan.eyeball_count; ++i) {
        const continent cont = pick_continent_by_share(gen);
        const auto& pool = regions.on_continent(cont);
        if (pool.empty()) {
            continue;
        }
        autonomous_system as;
        as.asn = asn_blocks::eyeball_base + static_cast<asn_t>(i);
        as.role = as_role::eyeball;
        as.name = strfmt::indexed_name("eyeball", i, 5);
        as.organization = as.name;
        const auto footprint = static_cast<std::size_t>(
            1 + static_cast<int>(gen.pareto(1.0, 1.7)) % 5);
        as.presence = sample_regions(regions, pool, footprint, gen);
        as.last_mile_ms = gen.uniform(plan.eyeball_last_mile_ms_min, plan.eyeball_last_mile_ms_max);
        const asn_t asn = as.asn;
        eyeballs.push_back(asn);
        graph.add_as(std::move(as));

        // Providers: transits on the same continent, nearest-biased.
        std::vector<asn_t> continent_transits;
        for (asn_t t : transits) {
            if (transit_continent.at(t) == cont) continent_transits.push_back(t);
        }
        if (continent_transits.empty()) continent_transits = transits;
        const asn_t primary = continent_transits[gen.uniform_index(continent_transits.size())];
        graph.add_link(asn, primary, as_relationship::provider,
                       interconnects(regions, graph.at(asn), graph.at(primary), 2, gen),
                       link_circuitousness(gen));
        if (gen.chance(plan.eyeball_multihome_p)) {
            const asn_t secondary = continent_transits[gen.uniform_index(continent_transits.size())];
            if (secondary != primary && !graph.has_link(asn, secondary)) {
                graph.add_link(asn, secondary, as_relationship::provider,
                               interconnects(regions, graph.at(asn), graph.at(secondary), 2, gen),
                               link_circuitousness(gen));
            }
        }
    }
    // Sparse eyeball<->eyeball IXP peering within a continent.
    for (std::size_t i = 0; i + 1 < eyeballs.size(); ++i) {
        if (!gen.chance(plan.eyeball_ixp_peering_p)) continue;
        const std::size_t j = i + 1 + gen.uniform_index(std::min<std::size_t>(40, eyeballs.size() - i - 1));
        const auto& a = graph.at(eyeballs[i]);
        const auto& b = graph.at(eyeballs[j]);
        if (regions.at(a.presence.front()).cont != regions.at(b.presence.front()).cont) continue;
        if (graph.has_link(a.asn, b.asn)) continue;
        graph.add_link(a.asn, b.asn, as_relationship::peer, interconnects(regions, a, b, 2, gen),
                       link_circuitousness(gen));
    }

    // --- Enterprises (stubs). ---
    for (int i = 0; i < plan.enterprise_count; ++i) {
        const continent cont = pick_continent_by_share(gen);
        const auto& pool = regions.on_continent(cont);
        if (pool.empty()) continue;
        autonomous_system as;
        as.asn = asn_blocks::enterprise_base + static_cast<asn_t>(i);
        as.role = as_role::enterprise;
        as.name = strfmt::indexed_name("enterprise", i, 5);
        as.organization = as.name;
        as.presence = sample_regions(regions, pool, 1, gen);
        as.last_mile_ms = gen.uniform(0.5, 4.0);
        const asn_t asn = as.asn;
        graph.add_as(std::move(as));

        // Customer of an eyeball or a transit.
        const bool via_eyeball = !eyeballs.empty() && gen.chance(0.5);
        const asn_t provider = via_eyeball ? eyeballs[gen.uniform_index(eyeballs.size())]
                                           : transits[gen.uniform_index(transits.size())];
        graph.add_link(asn, provider, as_relationship::provider,
                       interconnects(regions, graph.at(asn), graph.at(provider), 1, gen),
                       link_circuitousness(gen));
    }

    // --- Public DNS providers: well-connected content-style networks. ---
    for (int i = 0; i < plan.public_dns_count; ++i) {
        content_attachment options;
        options.asn = asn_blocks::public_dns_base + static_cast<asn_t>(i);
        options.name = strfmt::indexed_name("public-dns", i, 2);
        options.organization = options.name;
        options.presence = sample_regions(regions, all_regions,
                                          static_cast<std::size_t>(gen.uniform_int(15, 30)), gen);
        options.tier1_providers = 2;
        options.transit_peering_fraction = 0.4;
        options.eyeball_peering_fraction = 0.1;
        options.seed = gen.fork(1000 + static_cast<std::uint64_t>(i)).seed();
        attach_content_as(graph, regions, options);
    }

    return graph;
}

void attach_content_as(as_graph& graph, const region_table& regions,
                       const content_attachment& options) {
    rand::rng gen{rand::mix_seed(options.seed, 0xc0117e17u)};

    autonomous_system as;
    as.asn = options.asn;
    as.role = as_role::content;
    as.name = options.name;
    as.organization = options.organization.empty() ? options.name : options.organization;
    as.presence = options.presence;
    as.last_mile_ms = 0.3;
    if (as.presence.empty()) {
        throw std::invalid_argument("attach_content_as: presence must not be empty");
    }
    graph.add_as(as);

    // Tier-1 transit.
    auto tier1s = graph.with_role(as_role::tier1);
    gen.shuffle(tier1s);
    const int provider_count = std::min<int>(options.tier1_providers,
                                             static_cast<int>(tier1s.size()));
    for (int i = 0; i < provider_count; ++i) {
        graph.add_link(options.asn, tier1s[static_cast<std::size_t>(i)], as_relationship::provider,
                       interconnects(regions, graph.at(options.asn),
                                     graph.at(tier1s[static_cast<std::size_t>(i)]), 4, gen),
                       gen.uniform(1.15, 1.4));
    }

    // Transit peering (helps reach eyeballs single-homed behind transits).
    for (asn_t transit : graph.with_role(as_role::transit)) {
        if (!gen.chance(options.transit_peering_fraction)) continue;
        // Peer at this network's PoP nearest to the transit's anchor.
        const geo::point anchor = regions.at(graph.at(transit).presence.front()).location;
        const region_id meet = nearest_presence(regions, graph.at(options.asn).presence, anchor);
        graph.add_link(options.asn, transit, as_relationship::peer, {meet},
                       options.peer_circuitousness + gen.uniform(0.0, 0.1));
    }

    // Direct eyeball peering, population-biased: large eyeballs peer first.
    if (options.eyeball_peering_fraction > 0.0) {
        auto eyeballs = graph.with_role(as_role::eyeball);
        std::vector<std::pair<double, asn_t>> ranked;
        ranked.reserve(eyeballs.size());
        for (asn_t e : eyeballs) {
            double weight = 0.0;
            for (region_id r : graph.at(e).presence) {
                weight += regions.at(r).population_weight;
            }
            // Jitter the ranking so the cut-off is not a strict threshold.
            ranked.emplace_back(weight * gen.lognormal(0.0, 0.5), e);
        }
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto& a, const auto& b) { return a.first > b.first; });
        const auto take = static_cast<std::size_t>(
            options.eyeball_peering_fraction * static_cast<double>(ranked.size()));
        for (std::size_t i = 0; i < take; ++i) {
            const asn_t e = ranked[i].second;
            const geo::point anchor = regions.at(graph.at(e).presence.front()).location;
            const region_id meet = nearest_presence(regions, graph.at(options.asn).presence, anchor);
            graph.add_link(options.asn, e, as_relationship::peer, {meet},
                           options.peer_circuitousness + gen.uniform(0.0, 0.1));
        }
    }
}

} // namespace ac::topo
