#include "src/topology/as_graph.h"

#include <algorithm>
#include <stdexcept>

namespace ac::topo {

std::string_view to_string(as_role role) noexcept {
    switch (role) {
        case as_role::tier1: return "tier1";
        case as_role::transit: return "transit";
        case as_role::eyeball: return "eyeball";
        case as_role::content: return "content";
        case as_role::enterprise: return "enterprise";
    }
    return "unknown";
}

namespace {

std::uint64_t link_key(asn_t a, asn_t b) noexcept {
    const auto lo = std::min(a, b);
    const auto hi = std::max(a, b);
    return (std::uint64_t{lo} << 32) | hi;
}

} // namespace

void as_graph::add_as(autonomous_system as) {
    if (index_.contains(as.asn)) {
        throw std::invalid_argument("as_graph: duplicate ASN " + std::to_string(as.asn));
    }
    index_.emplace(as.asn, systems_.size());
    adjacency_.emplace_back();
    systems_.push_back(std::move(as));
}

void as_graph::add_link(asn_t a, asn_t b, as_relationship kind_for_a,
                        std::vector<region_id> interconnect_regions, double circuitousness) {
    if (a == b) throw std::invalid_argument("as_graph: self-link on ASN " + std::to_string(a));
    if (!has_as(a) || !has_as(b)) {
        throw std::invalid_argument("as_graph: link references unregistered ASN");
    }
    if (interconnect_regions.empty()) {
        throw std::invalid_argument("as_graph: link requires at least one interconnect region");
    }
    const auto key = link_key(a, b);
    if (link_lookup_.contains(key)) {
        throw std::invalid_argument("as_graph: duplicate link");
    }
    const auto link_index = static_cast<std::uint32_t>(links_.size());
    link_lookup_.emplace(key, link_index);
    links_.push_back(as_link{a, b, kind_for_a, std::move(interconnect_regions), circuitousness});
    const std::size_t ia = index_of(a);
    const std::size_t ib = index_of(b);
    adjacency_[ia].push_back(
        neighbor_ref{b, kind_for_a, link_index, static_cast<std::uint32_t>(ib)});
    adjacency_[ib].push_back(
        neighbor_ref{a, invert(kind_for_a), link_index, static_cast<std::uint32_t>(ia)});
}

bool as_graph::has_link(asn_t a, asn_t b) const noexcept {
    return link_lookup_.contains(link_key(a, b));
}

const autonomous_system& as_graph::at(asn_t asn) const {
    return systems_[index_of(asn)];
}

std::span<const neighbor_ref> as_graph::neighbors(asn_t asn) const {
    return adjacency_[index_of(asn)];
}

std::size_t as_graph::find_index(asn_t asn) const noexcept {
    auto it = index_.find(asn);
    return it == index_.end() ? npos : it->second;
}

std::vector<asn_t> as_graph::with_role(as_role role) const {
    std::vector<asn_t> out;
    for (const auto& as : systems_) {
        if (as.role == role) out.push_back(as.asn);
    }
    return out;
}

std::size_t as_graph::index_of(asn_t asn) const {
    auto it = index_.find(asn);
    if (it == index_.end()) {
        throw std::out_of_range("as_graph: unknown ASN " + std::to_string(asn));
    }
    return it->second;
}

} // namespace ac::topo
