// Metro regions: the geographic unit of the study.
//
// Microsoft aggregates users by "region", a metro-sized area; the paper
// reports 508 of them (135 Europe, 62 Africa, 102 Asia, 2 Antarctica,
// 137 North America, 41 South America, 29 Oceania — §2.2). We synthesize a
// region catalogue with the same per-continent counts, placing regions
// inside per-continent bounding areas and assigning heavy-tailed population
// weights so that a few metros dominate, as in reality.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/netbase/geo.h"
#include "src/netbase/rng.h"

namespace ac::topo {

enum class continent : std::uint8_t {
    north_america,
    south_america,
    europe,
    africa,
    asia,
    oceania,
    antarctica,
};

[[nodiscard]] std::string_view to_string(continent c) noexcept;

/// Index into the world's region table.
using region_id = std::uint32_t;

struct region {
    region_id id = 0;
    std::string name;          // synthetic, e.g. "europe-017"
    continent cont = continent::europe;
    geo::point location;       // metro centre
    double population_weight = 1.0;  // relative Internet population
};

/// Per-continent region counts; defaults mirror the paper's 508 regions.
struct region_plan {
    int north_america = 137;
    int south_america = 41;
    int europe = 135;
    int africa = 62;
    int asia = 102;
    int oceania = 29;
    int antarctica = 2;

    [[nodiscard]] int total() const noexcept {
        return north_america + south_america + europe + africa + asia + oceania + antarctica;
    }
};

/// The catalogue of regions plus convenience lookups.
class region_table {
public:
    region_table() = default;
    explicit region_table(std::vector<region> regions);

    [[nodiscard]] const region& at(region_id id) const { return regions_.at(id); }
    [[nodiscard]] const std::vector<region>& all() const noexcept { return regions_; }
    [[nodiscard]] std::size_t size() const noexcept { return regions_.size(); }

    /// Ids of regions on one continent.
    [[nodiscard]] const std::vector<region_id>& on_continent(continent c) const;

    /// Id of the region whose centre is nearest to `p`.
    [[nodiscard]] region_id nearest(const geo::point& p) const;

    /// Precomputed great-circle distance between two region centres, km.
    /// Bit-identical to `geo::distance_km` over the same centre points, so
    /// hot paths (route selection, CDN WAN legs) can use lookups instead of
    /// haversine trig without changing a single output byte.
    [[nodiscard]] double distance_km(region_id a, region_id b) const noexcept {
        return distances_.between(a, b);
    }
    [[nodiscard]] const geo::distance_table& distances() const noexcept { return distances_; }

    /// Total population weight across all regions.
    [[nodiscard]] double total_population_weight() const noexcept { return total_weight_; }

private:
    std::vector<region> regions_;
    std::vector<std::vector<region_id>> by_continent_;
    geo::distance_table distances_;
    double total_weight_ = 0.0;
};

/// Builds a synthetic region catalogue. Deterministic in `seed`.
///
/// Regions are scattered inside continent-specific anchor zones (a handful of
/// dense "coastal corridors" per continent plus a diffuse interior), and
/// population weights are Pareto-distributed, scaled by a per-continent
/// Internet-population share.
[[nodiscard]] region_table make_regions(const region_plan& plan, std::uint64_t seed);

} // namespace ac::topo
