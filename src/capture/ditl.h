// DITL-style root-DNS captures.
//
// Each participating letter contributes per-site capture streams over ~48 h.
// We synthesize the same artifact: per-letter record sets keyed by exact
// source IP (aggregation to /24 is an analysis step, as in the paper), with
// the defects the paper had to work around — G missing, I fully anonymized,
// B truncated to /24, D/L TCP-unusable — plus the traffic the preprocessing
// step drops: invalid-TLD junk, PTR, private-source, spoofed-source and
// IPv6 volume (§2.1).
#pragma once

#include <cstdint>
#include <vector>

#include "src/dns/query_model.h"
#include "src/dns/root_letters.h"
#include "src/engine/thread_pool.h"
#include "src/netbase/ipv4.h"
#include "src/population/population.h"
#include "src/topology/addressing.h"

namespace ac::capture {

enum class query_category : std::uint8_t {
    valid_tld,    // queries for existing TLDs (potentially user-facing)
    invalid_tld,  // Chromium probes, leaked corporate suffixes, typos
    ptr,          // reverse lookups
};

/// One aggregated capture row: a source IP's daily query rate of one
/// category landing at one site of one letter. (Real DITL is per-packet;
/// rates are the paper-relevant sufficient statistic.)
struct capture_record {
    net::ipv4_addr source_ip;
    route::site_id site = 0;
    query_category category = query_category::valid_tld;
    double queries_per_day = 0.0;
};

/// TCP-handshake RTT evidence for one <source /24, site>: the paper derives
/// latency from TCP RTTs [57], keeping medians with >= 10 samples (§3).
struct tcp_latency_row {
    net::slash24 source;
    route::site_id site = 0;
    int sample_count = 0;
    double median_rtt_ms = 0.0;
    double queries_per_day = 0.0;  // volume this row represents
};

struct letter_capture {
    char letter = 'A';
    dns::letter_spec spec;
    std::vector<capture_record> records;       // IPv4 only; incl. junk/private
    std::vector<tcp_latency_row> tcp_rtts;     // empty if !spec.tcp_usable
    double ipv6_queries_per_day = 0.0;         // volume excluded up front

    [[nodiscard]] double total_queries_per_day() const;
};

struct ditl_options {
    double ipv6_fraction = 0.12;       // of total traffic (excluded, §2.1)
    double private_fraction = 0.07;    // queries sourced from private space
    double spoofed_fraction = 0.012;   // spoofed-source share of valid volume
    int junk_source_count = 8000;      // non-recursive /24s emitting junk
    int junk_ips_per_source = 3;       // distinct source IPs per junk /24
    double junk_source_median_qpd = 1500.0;
    double junk_source_sigma = 2.0;
    int min_tcp_samples = 10;          // paper's floor for a usable median
    double capture_days = 2.0;
    /// Share of /24s with a secondary site that split whole IPs to it (the
    /// rest split each IP's flow) — App. B.2's two instability flavors.
    double per_ip_split_share = 0.6;
    /// Bounded streamed generation (large tier / sweep cells): when nonzero,
    /// per-letter records flow through a `bounded_record_writer` with this
    /// ring bound and profiles are processed in fixed-size chunks, so
    /// generation scratch stays flat instead of holding every profile's
    /// partial output at once. 0 keeps the fully materialized path. Output
    /// bytes are identical either way (pinned by ditl_test).
    std::size_t max_buffered_records = 0;
};

struct ditl_dataset {
    std::vector<letter_capture> letters;  // only letters with in_ditl=true

    /// Streamed-generation accounting (zero when max_buffered_records == 0;
    /// not serialized into snapshots — live builds only). The peak is the
    /// max bounded-writer high-water across letters: a deterministic,
    /// machine-independent function of the config, gated by bench_sweep.
    std::size_t stream_peak_buffered_bytes = 0;
    std::size_t stream_spilled_records = 0;

    [[nodiscard]] const letter_capture& of(char letter) const;
    [[nodiscard]] double total_queries_per_day() const;
};

/// Generates the full DITL dataset. Junk sources allocate fresh /24s from
/// `space` (they must geolocate and map to ASes like everything else).
///
/// Per-source synthesis draws from streams keyed by (seed, stage, item) —
/// engine/stream_rng.h — so a non-serial `pool` chunks profiles across
/// threads and the dataset is byte-identical at any thread count.
[[nodiscard]] ditl_dataset generate_ditl(const dns::root_system& roots,
                                         const pop::user_base& base,
                                         const std::vector<dns::recursive_query_profile>& profiles,
                                         topo::address_space& space,
                                         const ditl_options& options, std::uint64_t seed,
                                         engine::thread_pool* pool = nullptr);

} // namespace ac::capture
