// Hard-bounded capture writer: the per-site/per-letter record streams that
// DITL synthesis produces can reach millions of rows at the large tier, so
// the generator never buffers more than a fixed number of rows in RAM.
// Appends land in an in-memory ring; when the ring fills it is flushed as
// one frame to an anonymous spill file, and `drain` streams every record
// back in exact insertion order. The high-water mark is a pure function of
// the append sequence, which makes it a machine-independent bench scalar.
#pragma once

#include <cstdio>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/capture/ditl.h"

namespace ac::capture {

class bounded_record_writer {
public:
    /// `max_buffered_records` is the hard ring bound; 0 means unbounded
    /// (never spills — equivalent to a plain vector, useful for tests).
    explicit bounded_record_writer(std::size_t max_buffered_records);
    ~bounded_record_writer();

    bounded_record_writer(const bounded_record_writer&) = delete;
    bounded_record_writer& operator=(const bounded_record_writer&) = delete;

    void append(const capture_record& record);
    void append(std::span<const capture_record> records);

    /// Records appended so far (buffered + spilled).
    [[nodiscard]] std::size_t size() const noexcept { return total_; }
    [[nodiscard]] std::size_t spilled_records() const noexcept { return spilled_; }
    /// Deterministic high-water mark of the in-memory ring, in bytes.
    [[nodiscard]] std::size_t peak_buffered_bytes() const noexcept {
        return peak_buffered_ * sizeof(capture_record);
    }

    /// Streams every record in insertion order through `sink`, in chunks of
    /// at most the ring bound. Consumes the writer (call once).
    void drain(const std::function<void(std::span<const capture_record>)>& sink);

    /// Materializing convenience over `drain`.
    [[nodiscard]] std::vector<capture_record> take();

private:
    void spill();

    std::size_t bound_;
    std::vector<capture_record> ring_;
    std::FILE* spill_file_ = nullptr;  // tmpfile(): unlinked, auto-reclaimed
    std::size_t total_ = 0;
    std::size_t spilled_ = 0;
    std::size_t peak_buffered_ = 0;
    bool drained_ = false;
};

} // namespace ac::capture
