#include "src/capture/filter.h"

#include <algorithm>

#include "src/table/table.h"

namespace ac::capture {

filtered_letter filter_letter(const letter_capture& capture, const filter_options& options) {
    filtered_letter out;
    out.letter = capture.letter;
    out.spec = capture.spec;
    out.tcp_rtts = capture.tcp_rtts;
    out.stats.ipv6_dropped = capture.ipv6_queries_per_day;
    out.stats.raw_queries_per_day = capture.ipv6_queries_per_day;

    for (const auto& record : capture.records) {
        out.stats.raw_queries_per_day += record.queries_per_day;
        if (options.drop_private_sources && net::is_private_or_reserved(record.source_ip)) {
            out.stats.private_dropped += record.queries_per_day;
            continue;
        }
        if (options.drop_invalid_tld && record.category == query_category::invalid_tld) {
            out.stats.invalid_dropped += record.queries_per_day;
            continue;
        }
        if (options.drop_ptr && record.category == query_category::ptr) {
            out.stats.ptr_dropped += record.queries_per_day;
            continue;
        }
        out.stats.kept += record.queries_per_day;
        out.records.push_back(record);
    }
    return out;
}

std::vector<filtered_letter> filter_all(const ditl_dataset& dataset,
                                        const filter_options& options) {
    std::vector<filtered_letter> out;
    out.reserve(dataset.letters.size());
    for (const auto& lc : dataset.letters) out.push_back(filter_letter(lc, options));
    return out;
}

namespace {

/// Composite (source key << 32) | site, so one stable sort yields runs
/// ordered by source then site — the same (key, site) order the analyses
/// expect from the old map-based aggregation.
template <typename Extract>
std::pair<table::column<std::uint64_t>, table::column<double>> keyed_rows(
    std::span<const capture_record> records, Extract extract) {
    table::column<std::uint64_t> keys;
    table::column<double> qpd;
    keys.reserve(records.size());
    qpd.reserve(records.size());
    for (const auto& r : records) {
        keys.push_back((std::uint64_t{extract(r)} << 32) | r.site);
        qpd.push_back(r.queries_per_day);
    }
    return {std::move(keys), std::move(qpd)};
}

} // namespace

std::vector<slash24_volume> aggregate_by_slash24(std::span<const capture_record> records) {
    const auto [keys, qpd] = keyed_rows(
        records, [](const capture_record& r) { return net::slash24{r.source_ip}.key(); });
    const auto grouping = table::make_grouping(keys.view());
    const auto sums = table::sum_by(grouping, qpd.view());

    std::vector<slash24_volume> out;
    for (std::size_t g = 0; g < grouping.groups(); ++g) {
        const auto s24_key = static_cast<std::uint32_t>(grouping.keys[g] >> 32);
        const auto site = static_cast<route::site_id>(grouping.keys[g]);
        if (out.empty() || out.back().source.key() != s24_key) {
            slash24_volume v;
            v.source = net::slash24{net::ipv4_addr{s24_key << 8}};
            out.push_back(std::move(v));
        }
        out.back().sites.push_back(slash24_site_volume{site, sums[g]});
        out.back().total_queries_per_day += sums[g];
    }
    return out;
}

std::vector<ip_volume> aggregate_by_ip(std::span<const capture_record> records) {
    const auto [keys, qpd] =
        keyed_rows(records, [](const capture_record& r) { return r.source_ip.value(); });
    const auto grouping = table::make_grouping(keys.view());
    const auto sums = table::sum_by(grouping, qpd.view());

    std::vector<ip_volume> out;
    for (std::size_t g = 0; g < grouping.groups(); ++g) {
        const auto ip_value = static_cast<std::uint32_t>(grouping.keys[g] >> 32);
        const auto site = static_cast<route::site_id>(grouping.keys[g]);
        if (out.empty() || out.back().source.value() != ip_value) {
            ip_volume v;
            v.source = net::ipv4_addr{ip_value};
            out.push_back(std::move(v));
        }
        out.back().sites.push_back(slash24_site_volume{site, sums[g]});
        out.back().total_queries_per_day += sums[g];
    }
    return out;
}

namespace {

letter_table columns_of(char letter, const dns::letter_spec& spec,
                        std::span<const capture_record> records,
                        std::span<const tcp_latency_row> tcp_rtts) {
    letter_table t;
    t.letter = letter;
    t.spec = spec;
    t.source_ip.reserve(records.size());
    t.site.reserve(records.size());
    t.category.reserve(records.size());
    t.queries_per_day.reserve(records.size());
    for (const auto& r : records) {
        t.source_ip.push_back(r.source_ip.value());
        t.site.push_back(r.site);
        t.category.push_back(r.category);
        t.queries_per_day.push_back(r.queries_per_day);
    }
    t.tcp_key.reserve(tcp_rtts.size());
    t.tcp_median_rtt_ms.reserve(tcp_rtts.size());
    for (const auto& row : tcp_rtts) {
        t.tcp_key.push_back((std::uint64_t{row.source.key()} << 32) | row.site);
        t.tcp_median_rtt_ms.push_back(row.median_rtt_ms);
    }
    return t;
}

} // namespace

letter_table to_table(const filtered_letter& letter) {
    return columns_of(letter.letter, letter.spec, letter.records, letter.tcp_rtts);
}

letter_table to_table(const letter_capture& capture) {
    return columns_of(capture.letter, capture.spec, capture.records, capture.tcp_rtts);
}

std::vector<letter_table> to_tables(std::span<const filtered_letter> letters) {
    std::vector<letter_table> out;
    out.reserve(letters.size());
    for (const auto& letter : letters) out.push_back(to_table(letter));
    return out;
}

} // namespace ac::capture
