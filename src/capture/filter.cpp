#include "src/capture/filter.h"

#include <algorithm>
#include <map>

namespace ac::capture {

filtered_letter filter_letter(const letter_capture& capture, const filter_options& options) {
    filtered_letter out;
    out.letter = capture.letter;
    out.spec = capture.spec;
    out.tcp_rtts = capture.tcp_rtts;
    out.stats.ipv6_dropped = capture.ipv6_queries_per_day;
    out.stats.raw_queries_per_day = capture.ipv6_queries_per_day;

    for (const auto& record : capture.records) {
        out.stats.raw_queries_per_day += record.queries_per_day;
        if (options.drop_private_sources && net::is_private_or_reserved(record.source_ip)) {
            out.stats.private_dropped += record.queries_per_day;
            continue;
        }
        if (options.drop_invalid_tld && record.category == query_category::invalid_tld) {
            out.stats.invalid_dropped += record.queries_per_day;
            continue;
        }
        if (options.drop_ptr && record.category == query_category::ptr) {
            out.stats.ptr_dropped += record.queries_per_day;
            continue;
        }
        out.stats.kept += record.queries_per_day;
        out.records.push_back(record);
    }
    return out;
}

std::vector<filtered_letter> filter_all(const ditl_dataset& dataset,
                                        const filter_options& options) {
    std::vector<filtered_letter> out;
    out.reserve(dataset.letters.size());
    for (const auto& lc : dataset.letters) out.push_back(filter_letter(lc, options));
    return out;
}

namespace {

template <typename Key, typename Extract>
auto aggregate(std::span<const capture_record> records, Extract extract) {
    // (key, site) -> volume
    std::map<std::pair<Key, route::site_id>, double> acc;
    for (const auto& r : records) {
        acc[{extract(r), r.site}] += r.queries_per_day;
    }
    return acc;
}

} // namespace

std::vector<slash24_volume> aggregate_by_slash24(std::span<const capture_record> records) {
    auto acc = aggregate<std::uint32_t>(
        records, [](const capture_record& r) { return net::slash24{r.source_ip}.key(); });
    std::vector<slash24_volume> out;
    for (const auto& [key, qpd] : acc) {
        const auto& [s24_key, site] = key;
        if (out.empty() || out.back().source.key() != s24_key) {
            slash24_volume v;
            v.source = net::slash24{net::ipv4_addr{s24_key << 8}};
            out.push_back(std::move(v));
        }
        out.back().sites.push_back(slash24_site_volume{site, qpd});
        out.back().total_queries_per_day += qpd;
    }
    return out;
}

std::vector<ip_volume> aggregate_by_ip(std::span<const capture_record> records) {
    auto acc = aggregate<std::uint32_t>(
        records, [](const capture_record& r) { return r.source_ip.value(); });
    std::vector<ip_volume> out;
    for (const auto& [key, qpd] : acc) {
        const auto& [ip_value, site] = key;
        if (out.empty() || out.back().source.value() != ip_value) {
            ip_volume v;
            v.source = net::ipv4_addr{ip_value};
            out.push_back(std::move(v));
        }
        out.back().sites.push_back(slash24_site_volume{site, qpd});
        out.back().total_queries_per_day += qpd;
    }
    return out;
}

} // namespace ac::capture
