#include "src/capture/ditl.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <span>
#include <stdexcept>
#include <unordered_map>

#include "src/anycast/deployment.h"
#include "src/capture/bounded_writer.h"
#include "src/engine/stream_rng.h"

namespace ac::capture {

double letter_capture::total_queries_per_day() const {
    double total = ipv6_queries_per_day;
    for (const auto& r : records) total += r.queries_per_day;
    return total;
}

const letter_capture& ditl_dataset::of(char letter) const {
    for (const auto& lc : letters) {
        if (lc.letter == letter) return lc;
    }
    throw std::out_of_range(std::string{"ditl_dataset: no capture for letter "} + letter);
}

double ditl_dataset::total_queries_per_day() const {
    double total = 0.0;
    for (const auto& lc : letters) total += lc.total_queries_per_day();
    return total;
}

namespace {

/// A non-recursive junk emitter (scanner, malware, misconfigured box).
struct junk_source {
    net::slash24 block;
    topo::asn_t asn = 0;
    topo::region_id region = 0;
    double queries_per_day = 0.0;
};

/// Anonymizes a source address per the letter's policy.
net::ipv4_addr anonymize(net::ipv4_addr ip, dns::anonymization anon) {
    switch (anon) {
        case dns::anonymization::none:
            return ip;
        case dns::anonymization::slash24:
            // Truncate to the /24 base: joins by /24 still work (§2.1).
            return net::ipv4_addr{ip.value() & 0xffffff00u};
        case dns::anonymization::full: {
            // Scramble into space that matches nothing in any other dataset.
            const auto h = rand::splitmix64(ip.value());
            return net::ipv4_addr{0xc8000000u | static_cast<std::uint32_t>(h & 0x00ffffffu)};
        }
    }
    return ip;
}

/// Stage ids for per-item RNG streams (engine/stream_rng.h). The per-letter
/// profile stage mixes the letter in, so every (letter, profile) pair owns
/// one independent stream.
constexpr std::uint64_t stage_junk = 0xd171'0001ULL;
constexpr std::uint64_t stage_profiles = 0xd171'0002ULL;

/// Streamed-mode chunk length (profiles per map/reduce round). A constant —
/// never derived from the thread count or the ring bound — so the chunking
/// cannot change a single output byte.
constexpr std::size_t stream_profile_chunk = 2048;

} // namespace

ditl_dataset generate_ditl(const dns::root_system& roots, const pop::user_base& base,
                           const std::vector<dns::recursive_query_profile>& profiles,
                           topo::address_space& space, const ditl_options& options,
                           std::uint64_t seed, engine::thread_pool* pool) {
    rand::rng gen{rand::mix_seed(seed, 0xd171ull)};

    // --- Junk sources: allocate fresh /24s scattered across the world. ---
    // Serial: address allocation is order-sensitive, but each source's draws
    // come from its own keyed stream, not from a shared sequential one.
    std::vector<junk_source> junk;
    {
        // Junk comes from anywhere; reuse locations of recursives' ASes is
        // enough diversity and avoids needing the graph here.
        std::unordered_map<std::uint64_t, std::pair<topo::asn_t, topo::region_id>> locs;
        for (const auto& rec : base.recursives()) {
            locs.emplace((std::uint64_t{rec.asn} << 32) | rec.region,
                         std::make_pair(rec.asn, rec.region));
        }
        std::vector<std::pair<topo::asn_t, topo::region_id>> loc_list;
        loc_list.reserve(locs.size());
        for (const auto& [_, v] : locs) loc_list.push_back(v);
        std::sort(loc_list.begin(), loc_list.end());
        for (int i = 0; i < options.junk_source_count && !loc_list.empty(); ++i) {
            auto jgen = engine::item_rng(seed, stage_junk, static_cast<std::uint64_t>(i));
            const auto& [asn, region] = loc_list[jgen.uniform_index(loc_list.size())];
            junk_source js;
            js.block = space.allocate(asn, region, 1);
            js.asn = asn;
            js.region = region;
            js.queries_per_day =
                options.junk_source_median_qpd * jgen.lognormal(0.0, options.junk_source_sigma);
            junk.push_back(js);
        }
    }

    // --- Catchments per letter over every source location. ---
    std::vector<anycast::source> sources;
    {
        std::unordered_map<std::uint64_t, bool> seen;
        auto add = [&](topo::asn_t asn, topo::region_id region) {
            const std::uint64_t key = (std::uint64_t{asn} << 32) | region;
            if (seen.emplace(key, true).second) {
                sources.push_back(anycast::source{asn, region});
            }
        };
        for (const auto& rec : base.recursives()) add(rec.asn, rec.region);
        for (const auto& js : junk) add(js.asn, js.region);
    }

    ditl_dataset dataset;
    for (char letter : roots.all_letters()) {
        const auto& spec = roots.spec(letter);
        if (!spec.in_ditl) continue;  // G contributes nothing

        const auto& dep = roots.deployment_of(letter);
        anycast::catchment_table catchment{dep, sources,
                                           rand::mix_seed(seed, 0xca7ull, static_cast<std::uint64_t>(letter)),
                                           pool};
        const int li = dns::letter_index(letter);

        letter_capture lc;
        lc.letter = letter;
        lc.spec = spec;
        auto lgen = gen.fork(0x1000 + static_cast<std::uint64_t>(letter));

        // Per-/24 aggregation buffer for TCP rows.
        std::unordered_map<std::uint64_t, tcp_latency_row> tcp_acc;  // (s24, site)

        // Record sink: the two generation modes differ only in where rows
        // land — a plain vector, or the bounded ring/spill writer (streamed
        // mode, options.max_buffered_records != 0). The running totals
        // accumulate in append order, which is the exact addition sequence
        // the whole-vector passes below used to perform, so every derived
        // volume is bit-identical across modes.
        const bool streamed = options.max_buffered_records != 0;
        std::unique_ptr<bounded_record_writer> writer;
        if (streamed) {
            writer = std::make_unique<bounded_record_writer>(options.max_buffered_records);
        }
        double valid_total = 0.0;  // valid_tld volume appended so far (§3.1 spoof base)
        double qpd_total = 0.0;    // all-category volume appended so far
        auto sink = [&](const capture_record& r) {
            if (r.category == query_category::valid_tld) valid_total += r.queries_per_day;
            qpd_total += r.queries_per_day;
            if (writer) {
                writer->append(r);
            } else {
                lc.records.push_back(r);
            }
        };

        // --- Recursive-sourced traffic: the hot loop. Map phase computes
        // each profile's records and TCP contributions into its own slot
        // from a (seed, stage^letter, profile) keyed stream; the ordered
        // reduce below makes the output independent of thread count.
        // Streamed mode walks the profiles in fixed-size chunks so at most
        // one chunk's partial output is ever resident. ---
        struct tcp_part {
            std::uint64_t key = 0;
            net::slash24 source;
            route::site_id site = 0;
            int samples = 0;
            double queries_per_day = 0.0;
            double median_rtt_ms = 0.0;
        };
        struct profile_part {
            std::vector<capture_record> records;
            std::vector<tcp_part> tcp;
        };
        const std::uint64_t profile_stage =
            stage_profiles ^ (static_cast<std::uint64_t>(letter) << 32);
        const std::size_t chunk_len =
            streamed ? std::min(profiles.size(), stream_profile_chunk) : profiles.size();
        std::vector<profile_part> parts;
        auto process_chunk = [&](std::size_t chunk_begin, std::size_t len) {
            parts.assign(len, profile_part{});
            engine::parallel_over(pool, len, [&](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) {
                    const std::size_t pi = chunk_begin + i;
                    const auto& profile = profiles[pi];
                    auto& part = parts[i];
                    const auto& rec = base.recursives()[profile.recursive_index];
                    const double weight = profile.letter_weight[static_cast<std::size_t>(li)];
                    if (weight <= 0.0) continue;
                    const auto* row = catchment.find(rec.asn, rec.region);
                    if (row == nullptr) continue;

                    auto emit = [&](net::ipv4_addr ip, route::site_id site, query_category cat,
                                    double qpd) {
                        if (qpd <= 0.0) return;
                        part.records.push_back(
                            capture_record{anonymize(ip, spec.anon), site, cat, qpd});
                    };

                    const double valid = profile.valid_per_day * weight;
                    const double invalid = profile.invalid_per_day() * weight;
                    const double ptr = profile.ptr_per_day * weight;

                    // Decide the /24's split mode once.
                    auto rgen = engine::item_rng(seed, profile_stage, pi);
                    const bool per_ip_split =
                        row->secondary.has_value() && rgen.chance(options.per_ip_split_share);

                    double secondary_budget = row->secondary_fraction;  // IP share, per-ip mode
                    for (std::size_t ip_i = 0; ip_i < rec.resolver_ips.size(); ++ip_i) {
                        const double ip_share = rec.ip_activity_share[ip_i];
                        const auto ip = rec.resolver_ips[ip_i];
                        route::site_id primary_site = row->primary.site;
                        double secondary_share = 0.0;
                        if (row->secondary) {
                            if (per_ip_split) {
                                // Whole IPs move to the secondary site until the
                                // split fraction is consumed.
                                if (secondary_budget >= ip_share * 0.5) {
                                    primary_site = row->secondary->site;
                                    secondary_budget -= ip_share;
                                }
                            } else {
                                secondary_share = row->secondary_fraction;
                            }
                        }
                        const route::site_id other_site =
                            row->secondary ? row->secondary->site : primary_site;
                        for (auto [cat, qpd] : {std::pair{query_category::valid_tld, valid},
                                                std::pair{query_category::invalid_tld, invalid},
                                                std::pair{query_category::ptr, ptr}}) {
                            const double at_ip = qpd * ip_share;
                            emit(ip, primary_site, cat, at_ip * (1.0 - secondary_share));
                            if (secondary_share > 0.0) {
                                emit(ip, other_site, cat, at_ip * secondary_share);
                            }
                        }
                    }

                    // TCP RTT evidence (usable letters only; D/L PCAPs are broken).
                    if (spec.tcp_usable && profile.tcp_share > 0.0) {
                        const double tcp_qpd = valid * profile.tcp_share;
                        auto add_tcp = [&](const route::path_result& path, double share) {
                            const double qpd = tcp_qpd * share;
                            const auto samples =
                                static_cast<int>(std::floor(qpd * options.capture_days));
                            if (samples <= 0) return;
                            // Median handshake RTT tracks the path's steady-state RTT.
                            part.tcp.push_back(tcp_part{
                                (std::uint64_t{rec.block.key()} << 16) | path.site, rec.block,
                                path.site, samples, qpd, path.rtt_ms * rgen.lognormal(0.0, 0.03)});
                        };
                        add_tcp(row->primary, 1.0 - row->secondary_fraction);
                        if (row->secondary) add_tcp(*row->secondary, row->secondary_fraction);
                    }
                }
            });

            // Ordered reduce: identical to what the old sequential loop built.
            for (auto& part : parts) {
                for (const auto& r : part.records) sink(r);
                for (const auto& t : part.tcp) {
                    auto& acc = tcp_acc[t.key];
                    acc.source = t.source;
                    acc.site = t.site;
                    acc.sample_count += t.samples;
                    acc.queries_per_day += t.queries_per_day;
                    acc.median_rtt_ms = t.median_rtt_ms;
                }
            }
        };
        for (std::size_t chunk_begin = 0; chunk_begin < profiles.size();
             chunk_begin += chunk_len) {
            process_chunk(chunk_begin, std::min(chunk_len, profiles.size() - chunk_begin));
        }
        parts.clear();
        parts.shrink_to_fit();

        auto emit = [&](net::ipv4_addr ip, route::site_id site, query_category cat, double qpd) {
            if (qpd <= 0.0) return;
            sink(capture_record{anonymize(ip, spec.anon), site, cat, qpd});
        };

        // --- Junk-only sources (never resolve for users). ---
        for (const auto& js : junk) {
            const auto* row = catchment.find(js.asn, js.region);
            if (row == nullptr) continue;
            // Scanners spread roughly evenly over letters and source IPs.
            const double qpd = js.queries_per_day /
                               static_cast<double>(dns::letter_count) /
                               static_cast<double>(options.junk_ips_per_source);
            for (int ip = 0; ip < options.junk_ips_per_source; ++ip) {
                emit(js.block.prefix().address_at(static_cast<std::uint64_t>(1 + ip)),
                     row->primary.site, query_category::invalid_tld, qpd);
            }
        }

        // --- Spoofed-source traffic: victim /24 appears at the spoofer's
        // site, making the victim's route look inflated (§3.1). ---
        {
            // `valid_total` was accumulated record-by-record in append order:
            // the same addition sequence the old whole-vector pass performed,
            // read here before any spoofed rows (themselves valid) land.
            const double spoof_total = valid_total * options.spoofed_fraction;
            const int spoof_pairs = 200;
            for (int i = 0; i < spoof_pairs; ++i) {
                const auto& victim =
                    base.recursives()[lgen.uniform_index(base.recursives().size())];
                const auto& spoofer =
                    base.recursives()[lgen.uniform_index(base.recursives().size())];
                const auto* row = catchment.find(spoofer.asn, spoofer.region);
                if (row == nullptr || victim.resolver_ips.empty()) continue;
                emit(victim.resolver_ips[0], row->primary.site, query_category::valid_tld,
                     spoof_total / spoof_pairs);
            }
        }

        // --- Private-source leakage: volume the filter must drop. ---
        {
            const double public_total = qpd_total;  // every record so far is public
            const double private_total =
                public_total * options.private_fraction / (1.0 - options.private_fraction);
            const int private_blocks = 150;
            for (int i = 0; i < private_blocks; ++i) {
                const auto addr = net::ipv4_addr{
                    (10u << 24) | static_cast<std::uint32_t>(lgen.uniform_index(1u << 16)) << 8 | 1u};
                // Landed site is arbitrary (private sources are unroutable
                // anyway); use a random global site.
                const auto site = static_cast<route::site_id>(
                    lgen.uniform_index(dep.sites().size()));
                emit(addr, site, query_category::invalid_tld, private_total / private_blocks);
            }
        }

        // --- IPv6 volume: recorded only as an excluded aggregate. ---
        {
            const double v4_total = qpd_total;  // incl. the private rows above
            lc.ipv6_queries_per_day =
                v4_total * options.ipv6_fraction / (1.0 - options.ipv6_fraction);
        }

        // Streamed mode: everything lives in the writer until now; stream it
        // back (bounded chunks) into the final dataset and keep the ring
        // high-water + spill totals as the cell's memory evidence.
        if (writer) {
            dataset.stream_peak_buffered_bytes =
                std::max(dataset.stream_peak_buffered_bytes, writer->peak_buffered_bytes());
            dataset.stream_spilled_records += writer->spilled_records();
            lc.records.reserve(writer->size());
            writer->drain([&](std::span<const capture_record> rows) {
                lc.records.insert(lc.records.end(), rows.begin(), rows.end());
            });
        }

        lc.tcp_rtts.reserve(tcp_acc.size());
        for (auto& [_, row] : tcp_acc) {
            if (row.sample_count >= options.min_tcp_samples) lc.tcp_rtts.push_back(row);
        }
        std::sort(lc.tcp_rtts.begin(), lc.tcp_rtts.end(), [](const auto& a, const auto& b) {
            return std::pair{a.source.key(), a.site} < std::pair{b.source.key(), b.site};
        });

        dataset.letters.push_back(std::move(lc));
    }
    return dataset;
}

} // namespace ac::capture
