// Capture serialization: a text format for DITL-style datasets.
//
// Real DITL ships as per-site PCAPs; our sufficient statistic is the
// rate-aggregated record set, which serializes to a simple line format so
// captures can be generated once, archived, and re-analyzed — the workflow
// the paper's pipelines assume. The format is self-describing and
// round-trips bit-exactly for the fields analysis consumes.
//
//   ditl-capture v1
//   letter A anon=none in_ditl=1 tcp_usable=1 complete=1 global=5 local=0 ipv6_qpd=<f>
//   R <source-ip> <site> <category> <queries-per-day>
//   T <source-/24-base> <site> <samples> <median-rtt-ms> <queries-per-day>
//   end
#pragma once

#include <iosfwd>

#include "src/capture/ditl.h"

namespace ac::capture {

/// Writes one letter's capture.
void write_capture(std::ostream& os, const letter_capture& capture);

/// Writes a whole dataset (concatenated letter sections with a header).
void write_dataset(std::ostream& os, const ditl_dataset& dataset);

/// Parses one letter capture. Throws std::runtime_error on malformed input.
[[nodiscard]] letter_capture read_capture(std::istream& is);

/// Parses a whole dataset.
[[nodiscard]] ditl_dataset read_dataset(std::istream& is);

} // namespace ac::capture
