#include "src/capture/bounded_writer.h"

#include <cstring>
#include <stdexcept>
#include <type_traits>

namespace ac::capture {

static_assert(std::is_trivially_copyable_v<capture_record>,
              "spill frames are raw capture_record bytes");

bounded_record_writer::bounded_record_writer(std::size_t max_buffered_records)
    : bound_(max_buffered_records) {
    if (bound_ != 0) ring_.reserve(bound_);
}

bounded_record_writer::~bounded_record_writer() {
    if (spill_file_ != nullptr) std::fclose(spill_file_);
}

void bounded_record_writer::spill() {
    if (spill_file_ == nullptr) {
        spill_file_ = std::tmpfile();
        if (spill_file_ == nullptr) {
            throw std::runtime_error("bounded_record_writer: tmpfile() failed");
        }
    }
    if (std::fwrite(ring_.data(), sizeof(capture_record), ring_.size(), spill_file_) !=
        ring_.size()) {
        throw std::runtime_error("bounded_record_writer: spill write failed");
    }
    spilled_ += ring_.size();
    ring_.clear();
}

void bounded_record_writer::append(const capture_record& record) {
    if (bound_ != 0 && ring_.size() == bound_) spill();
    ring_.push_back(record);
    ++total_;
    if (ring_.size() > peak_buffered_) peak_buffered_ = ring_.size();
}

void bounded_record_writer::append(std::span<const capture_record> records) {
    for (const auto& r : records) append(r);
}

void bounded_record_writer::drain(
    const std::function<void(std::span<const capture_record>)>& sink) {
    if (drained_) throw std::logic_error("bounded_record_writer: drained twice");
    drained_ = true;
    if (spill_file_ != nullptr) {
        std::rewind(spill_file_);
        // Read back in ring-sized chunks so draining obeys the same bound.
        std::vector<capture_record> chunk(bound_ == 0 ? std::size_t{1} : bound_);
        std::size_t remaining = spilled_;
        while (remaining > 0) {
            const std::size_t n = remaining < chunk.size() ? remaining : chunk.size();
            if (std::fread(chunk.data(), sizeof(capture_record), n, spill_file_) != n) {
                throw std::runtime_error("bounded_record_writer: spill read failed");
            }
            sink(std::span<const capture_record>{chunk.data(), n});
            remaining -= n;
        }
        std::fclose(spill_file_);
        spill_file_ = nullptr;
    }
    if (!ring_.empty()) sink(std::span<const capture_record>{ring_.data(), ring_.size()});
    ring_.clear();
    ring_.shrink_to_fit();
}

std::vector<capture_record> bounded_record_writer::take() {
    std::vector<capture_record> out;
    out.reserve(total_);
    drain([&](std::span<const capture_record> chunk) {
        out.insert(out.end(), chunk.begin(), chunk.end());
    });
    return out;
}

} // namespace ac::capture
