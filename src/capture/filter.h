// The §2.1 preprocessing pipeline.
//
// Of 51.9 B daily root queries, the paper discards 31 B to non-existent
// names, 2 B PTR, 7% private-source, and all IPv6 before any analysis; the
// remainder is what can plausibly sit on a user's critical path. Appendix
// B.1 shows skipping this step shifts per-user query counts ~20x, so the
// filter is itself an experiment knob (Fig. 8 re-runs everything unfiltered).
#pragma once

#include <span>

#include "src/capture/ditl.h"
#include "src/table/column.h"

namespace ac::capture {

struct filter_options {
    bool drop_invalid_tld = true;  // Fig. 8 sets this false
    bool drop_ptr = true;          // Fig. 8 sets this false
    bool drop_private_sources = true;
};

struct filter_stats {
    double raw_queries_per_day = 0.0;       // incl. IPv6
    double invalid_dropped = 0.0;
    double ptr_dropped = 0.0;
    double private_dropped = 0.0;
    double ipv6_dropped = 0.0;
    double kept = 0.0;
};

struct filtered_letter {
    char letter = 'A';
    dns::letter_spec spec;
    std::vector<capture_record> records;   // surviving rows
    std::vector<tcp_latency_row> tcp_rtts; // carried through unchanged
    filter_stats stats;
};

[[nodiscard]] filtered_letter filter_letter(const letter_capture& capture,
                                            const filter_options& options = {});

[[nodiscard]] std::vector<filtered_letter> filter_all(const ditl_dataset& dataset,
                                                      const filter_options& options = {});

/// Per-site volume of one /24 after grouping records by source /24 — the
/// paper's unit of analysis ("we henceforth refer to these /24's as
/// recursives", §2.1).
struct slash24_site_volume {
    route::site_id site = 0;
    double queries_per_day = 0.0;
};

struct slash24_volume {
    net::slash24 source;
    std::vector<slash24_site_volume> sites;  // ascending site id
    double total_queries_per_day = 0.0;
};

/// Groups records by source /24, accumulating per-site volumes.
[[nodiscard]] std::vector<slash24_volume> aggregate_by_slash24(
    std::span<const capture_record> records);

/// Groups records by exact source IP (for the no-/24-join sensitivity
/// analysis of Fig. 9 and the per-IP favorite-site measure of App. B.2).
struct ip_volume {
    net::ipv4_addr source;
    std::vector<slash24_site_volume> sites;
    double total_queries_per_day = 0.0;
};

[[nodiscard]] std::vector<ip_volume> aggregate_by_ip(std::span<const capture_record> records);

/// Columnar (struct-of-arrays) form of one letter's capture rows: one
/// contiguous column per record attribute, plus the TCP medians keyed by
/// a packed (source /24 key << 32) | site composite. This is the layout the
/// analysis kernels (src/table/) consume; the row forms above remain the
/// generator/serialization interchange format.
struct letter_table {
    char letter = 'A';
    dns::letter_spec spec;
    table::column<std::uint32_t> source_ip;  // ipv4_addr::value()
    table::column<std::uint32_t> site;
    table::column<query_category> category;
    table::column<double> queries_per_day;
    table::column<std::uint64_t> tcp_key;    // (slash24 key << 32) | site
    table::column<double> tcp_median_rtt_ms;

    [[nodiscard]] std::size_t rows() const noexcept { return source_ip.size(); }
};

[[nodiscard]] letter_table to_table(const filtered_letter& letter);
[[nodiscard]] letter_table to_table(const letter_capture& capture);
[[nodiscard]] std::vector<letter_table> to_tables(std::span<const filtered_letter> letters);

} // namespace ac::capture
