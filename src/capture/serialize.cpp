#include "src/capture/serialize.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ac::capture {

namespace {

constexpr const char* format_tag = "ditl-capture v1";

const char* anon_name(dns::anonymization anon) {
    switch (anon) {
        case dns::anonymization::none: return "none";
        case dns::anonymization::slash24: return "slash24";
        case dns::anonymization::full: return "full";
    }
    return "none";
}

dns::anonymization parse_anon(const std::string& text) {
    if (text == "none") return dns::anonymization::none;
    if (text == "slash24") return dns::anonymization::slash24;
    if (text == "full") return dns::anonymization::full;
    throw std::runtime_error("ditl-capture: bad anonymization '" + text + "'");
}

const char* category_name(query_category cat) {
    switch (cat) {
        case query_category::valid_tld: return "valid";
        case query_category::invalid_tld: return "invalid";
        case query_category::ptr: return "ptr";
    }
    return "valid";
}

query_category parse_category(const std::string& text) {
    if (text == "valid") return query_category::valid_tld;
    if (text == "invalid") return query_category::invalid_tld;
    if (text == "ptr") return query_category::ptr;
    throw std::runtime_error("ditl-capture: bad category '" + text + "'");
}

// "key=value" -> value, validating the key.
std::string expect_kv(std::istringstream& line, const std::string& key) {
    std::string token;
    if (!(line >> token)) throw std::runtime_error("ditl-capture: missing field " + key);
    const auto eq = token.find('=');
    if (eq == std::string::npos || token.substr(0, eq) != key) {
        throw std::runtime_error("ditl-capture: expected " + key + "=..., got '" + token + "'");
    }
    return token.substr(eq + 1);
}

net::ipv4_addr parse_addr(const std::string& text) {
    const auto addr = net::ipv4_addr::parse(text);
    if (!addr) throw std::runtime_error("ditl-capture: bad address '" + text + "'");
    return *addr;
}

} // namespace

void write_capture(std::ostream& os, const letter_capture& capture) {
    os.precision(17);
    os << "letter " << capture.letter << " anon=" << anon_name(capture.spec.anon)
       << " in_ditl=" << (capture.spec.in_ditl ? 1 : 0)
       << " tcp_usable=" << (capture.spec.tcp_usable ? 1 : 0)
       << " complete=" << (capture.spec.complete ? 1 : 0)
       << " global=" << capture.spec.global_sites << " local=" << capture.spec.local_sites
       << " ipv6_qpd=" << capture.ipv6_queries_per_day << "\n";
    for (const auto& r : capture.records) {
        os << "R " << r.source_ip.to_string() << " " << r.site << " "
           << category_name(r.category) << " " << r.queries_per_day << "\n";
    }
    for (const auto& t : capture.tcp_rtts) {
        os << "T " << t.source.prefix().base().to_string() << " " << t.site << " "
           << t.sample_count << " " << t.median_rtt_ms << " " << t.queries_per_day << "\n";
    }
    os << "end\n";
}

void write_dataset(std::ostream& os, const ditl_dataset& dataset) {
    os << format_tag << "\n";
    for (const auto& lc : dataset.letters) write_capture(os, lc);
}

letter_capture read_capture(std::istream& is) {
    std::string line;
    // Skip blank lines between sections.
    while (std::getline(is, line)) {
        if (!line.empty()) break;
    }
    std::istringstream header{line};
    std::string keyword;
    header >> keyword;
    if (keyword != "letter") {
        throw std::runtime_error("ditl-capture: expected 'letter', got '" + line + "'");
    }
    letter_capture capture;
    std::string letter_text;
    header >> letter_text;
    if (letter_text.size() != 1) throw std::runtime_error("ditl-capture: bad letter");
    capture.letter = letter_text[0];
    capture.spec.letter = capture.letter;
    capture.spec.anon = parse_anon(expect_kv(header, "anon"));
    capture.spec.in_ditl = expect_kv(header, "in_ditl") == "1";
    capture.spec.tcp_usable = expect_kv(header, "tcp_usable") == "1";
    capture.spec.complete = expect_kv(header, "complete") == "1";
    capture.spec.global_sites = std::stoi(expect_kv(header, "global"));
    capture.spec.local_sites = std::stoi(expect_kv(header, "local"));
    capture.ipv6_queries_per_day = std::stod(expect_kv(header, "ipv6_qpd"));

    while (std::getline(is, line)) {
        if (line == "end") return capture;
        if (line.empty()) continue;
        std::istringstream row{line};
        std::string tag;
        row >> tag;
        if (tag == "R") {
            std::string ip;
            std::string category;
            capture_record record;
            row >> ip >> record.site >> category >> record.queries_per_day;
            if (!row) throw std::runtime_error("ditl-capture: bad record line '" + line + "'");
            record.source_ip = parse_addr(ip);
            record.category = parse_category(category);
            capture.records.push_back(record);
        } else if (tag == "T") {
            std::string base;
            tcp_latency_row tcp;
            row >> base >> tcp.site >> tcp.sample_count >> tcp.median_rtt_ms >>
                tcp.queries_per_day;
            if (!row) throw std::runtime_error("ditl-capture: bad tcp line '" + line + "'");
            tcp.source = net::slash24{parse_addr(base)};
            capture.tcp_rtts.push_back(tcp);
        } else {
            throw std::runtime_error("ditl-capture: unknown row tag '" + tag + "'");
        }
    }
    throw std::runtime_error("ditl-capture: missing 'end'");
}

ditl_dataset read_dataset(std::istream& is) {
    std::string line;
    if (!std::getline(is, line) || line != format_tag) {
        throw std::runtime_error("ditl-capture: bad or missing format header");
    }
    ditl_dataset dataset;
    while (true) {
        // Peek for another section.
        const auto position = is.tellg();
        std::string probe;
        if (!(is >> probe)) break;
        is.seekg(position);
        if (probe != "letter") break;
        dataset.letters.push_back(read_capture(is));
    }
    return dataset;
}

} // namespace ac::capture
