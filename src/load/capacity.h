// Per-front-end capacity model (ROADMAP item 2, FastRoute-style).
//
// The paper's CDN routes purely on latency; the Sinha/Mani/Flavel load-
// management line (PAPERS.md) adds the production constraint this module
// captures: every front-end has finite serving capacity, and the operator
// provisions the fleet for nominal demand plus a headroom margin. We do not
// model individual machines — capacity is apportioned across front-ends by
// ring membership (`cdn_network::ring_membership_count`): a front-end in
// every ring is one the operator built out hardest, so it gets the largest
// share of the fleet total. All capacities are integer connection counts per
// time bucket, like the demand model's offered load, so conservation checks
// are exact.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "src/cdn/cdn.h"

namespace ac::load {

/// Sentinel for "no capacity limit". Safe in `capacity - load` arithmetic:
/// subtracting any reachable load still leaves more headroom than any
/// bucket's total offered connections.
inline constexpr std::int64_t unlimited_capacity = std::numeric_limits<std::int64_t>::max();

struct capacity_plan {
    /// Fleet capacity as a multiple of nominal demand (offered connections
    /// per bucket at demand level 100%). 1.3 = 30% provisioning margin.
    double headroom = 1.3;
    /// Infinite capacity everywhere: the load-aware policy degenerates to
    /// latency-only routing (the policy-differential acceptance check).
    bool unlimited = false;
};

/// Integer per-front-end capacities for one CDN + nominal demand level.
class capacity_model {
public:
    /// `nominal_conn` is the fleet-wide offered load (connections per
    /// bucket) the operator provisioned for; the fleet total is
    /// headroom * nominal_conn, apportioned by ring membership weight.
    capacity_model(const cdn::cdn_network& cdn, std::int64_t nominal_conn,
                   const capacity_plan& plan);

    [[nodiscard]] std::span<const std::int64_t> per_front_end() const noexcept {
        return capacity_;
    }
    /// Sum of per-front-end capacities (0 request of an unlimited model is
    /// meaningless, so it reports unlimited_capacity).
    [[nodiscard]] std::int64_t total() const noexcept { return total_; }
    [[nodiscard]] bool unlimited() const noexcept { return unlimited_; }

private:
    std::vector<std::int64_t> capacity_;
    std::int64_t total_ = 0;
    bool unlimited_ = false;
};

} // namespace ac::load
