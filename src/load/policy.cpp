#include "src/load/policy.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace ac::load {

namespace {

obs::counter& shed_counter() {
    static obs::counter& c = obs::registry::global().get_counter("load.shed_conn");
    return c;
}

obs::counter& overflow_hop_counter() {
    static obs::counter& c = obs::registry::global().get_counter("load.overflow_hop_conn");
    return c;
}

} // namespace

std::string_view policy_name(policy_kind kind) noexcept {
    switch (kind) {
        case policy_kind::latency_only: return "latency";
        case policy_kind::load_aware: return "load-aware";
    }
    return "?";
}

route_plan::route_plan(const cdn::cdn_network& cdn, const pop::user_base& base,
                       engine::thread_pool* pool) {
    const auto& locs = base.locations();
    locations_ = locs.size();
    rings_ = cdn.ring_count();
    front_ends_ = static_cast<int>(cdn.front_end_regions().size());

    obs::span plan_span{"load/route_plan"};
    plan_span.set_items(locations_);

    const auto rings = static_cast<std::size_t>(rings_);
    fe_.assign(locations_ * rings, -1);
    rtt_.assign(locations_ * rings, std::numeric_limits<double>::infinity());
    engine::parallel_over(pool, locations_, [&](std::size_t begin, std::size_t end) {
        for (std::size_t l = begin; l < end; ++l) {
            for (int r = 0; r < rings_; ++r) {
                const auto path = cdn.evaluate(locs[l].asn, locs[l].region, r);
                if (!path) break;  // reachability is ring-independent
                fe_[l * rings + static_cast<std::size_t>(r)] = path->front_end;
                rtt_[l * rings + static_cast<std::size_t>(r)] = path->rtt_ms;
            }
        }
    });

    for (std::size_t l = 0; l < locations_; ++l) {
        if (reachable(l)) ++reachable_;
    }

    // Inverse mapping, one CSR segment per ring. Each reachable location
    // appears under exactly one front-end per ring, in ascending location
    // order — the order every per-front-end reduction accumulates in.
    const auto fe_count = static_cast<std::size_t>(front_ends_);
    offsets_.assign(rings * (fe_count + 1), 0);
    members_.resize(rings * reachable_);
    for (std::size_t r = 0; r < rings; ++r) {
        std::uint32_t* row = offsets_.data() + r * (fe_count + 1);
        for (std::size_t l = 0; l < locations_; ++l) {
            const int f = fe_[l * rings + r];
            if (f >= 0) ++row[static_cast<std::size_t>(f) + 1];
        }
        for (std::size_t f = 0; f < fe_count; ++f) row[f + 1] += row[f];
        std::vector<std::uint32_t> cursor(row, row + fe_count);
        std::uint32_t* seg = members_.data() + r * reachable_;
        for (std::size_t l = 0; l < locations_; ++l) {
            const int f = fe_[l * rings + r];
            if (f >= 0) seg[cursor[static_cast<std::size_t>(f)]++] = static_cast<std::uint32_t>(l);
        }
    }
}

std::span<const std::uint32_t> route_plan::members(int fe, int ring) const noexcept {
    const auto fe_count = static_cast<std::size_t>(front_ends_);
    const std::uint32_t* row = offsets_.data() + static_cast<std::size_t>(ring) * (fe_count + 1);
    const auto f = static_cast<std::size_t>(fe);
    return std::span<const std::uint32_t>{
        members_.data() + static_cast<std::size_t>(ring) * reachable_ + row[f],
        static_cast<std::size_t>(row[f + 1] - row[f])};
}

namespace {

/// Proportional shed of `excess` out of `arrived` across `mem`'s pending
/// connections: floor(cur * excess / arrived) each, then the remainder
/// distributed by largest fractional part (ties to the lowest member
/// position) so the shed sums to the excess exactly. Writes each member's
/// shed amount to `next`.
void apportion_shed(std::span<const std::uint32_t> mem, const std::int64_t* cur,
                    std::int64_t excess, std::int64_t arrived, std::int64_t* next,
                    std::vector<std::pair<std::uint64_t, std::uint32_t>>& scratch) {
    scratch.clear();
    std::int64_t floor_sum = 0;
    for (std::uint32_t i = 0; i < mem.size(); ++i) {
        const std::int64_t pending = cur[mem[i]];
        if (pending == 0) continue;
        const auto prod =
            static_cast<unsigned __int128>(pending) * static_cast<unsigned __int128>(excess);
        const auto q = static_cast<std::int64_t>(prod / static_cast<unsigned __int128>(arrived));
        const auto rem = static_cast<std::uint64_t>(prod % static_cast<unsigned __int128>(arrived));
        next[mem[i]] = q;
        floor_sum += q;
        if (rem != 0) scratch.emplace_back(rem, i);
    }
    std::int64_t deficit = excess - floor_sum;
    if (deficit == 0) return;
    std::sort(scratch.begin(), scratch.end(), [](const auto& a, const auto& b) {
        return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
    for (std::size_t k = 0; deficit > 0; ++k, --deficit) {
        next[mem[scratch[k].second]] += 1;
    }
}

} // namespace

bucket_result assign_bucket(const route_plan& plan, const demand_series& demand, int t,
                            int level_pct, std::span<const std::int64_t> capacity,
                            policy_kind kind, engine::thread_pool* pool) {
    obs::span assign_span{"load/assign"};
    assign_span.set_items(plan.locations());

    const auto locations = plan.locations();
    const int rings = plan.rings();
    const auto fe_count = static_cast<std::size_t>(plan.front_ends());

    bucket_result out;
    out.kept.assign(locations * static_cast<std::size_t>(rings), 0);
    out.fe_load.assign(fe_count, 0);

    std::vector<std::int64_t> cur(locations, 0);
    for (std::size_t l = 0; l < locations; ++l) {
        const std::int64_t c = demand.offered(l, t, level_pct);
        if (!plan.reachable(l)) {
            out.unreachable += c;
        } else {
            cur[l] = c;
            out.offered += c;
        }
    }

    const int top = rings - 1;
    if (kind == policy_kind::latency_only) {
        // Everyone is served by their outermost-ring front-end; per-front-end
        // sums are self-contained (disjoint member lists), so full fan-out.
        engine::parallel_over(
            pool, fe_count,
            [&](std::size_t begin, std::size_t end) {
                for (std::size_t f = begin; f < end; ++f) {
                    std::int64_t arrived = 0;
                    for (const std::uint32_t l : plan.members(static_cast<int>(f), top)) {
                        arrived += cur[l];
                        out.kept[l * static_cast<std::size_t>(rings) +
                                 static_cast<std::size_t>(top)] = cur[l];
                    }
                    out.fe_load[f] = arrived;
                }
            },
            1);
        out.served_first = out.offered;
        for (std::size_t f = 0; f < fe_count; ++f) {
            out.unserved += std::max<std::int64_t>(0, out.fe_load[f] - capacity[f]);
        }
        return out;
    }

    // Load-aware waterfall: outermost ring first, shed excess rides the next
    // ring inward. Each ring pass fans out over front-ends (grain 1: member
    // lists are uneven); a front-end touches only its own members' slots in
    // `next`/`kept`, so passes are race-free and thread-count independent.
    std::vector<std::int64_t> next(locations, 0);
    std::vector<std::int64_t> shed_at(fe_count, 0);
    for (int r = top; r >= 0; --r) {
        std::fill(next.begin(), next.end(), 0);
        std::fill(shed_at.begin(), shed_at.end(), 0);
        engine::parallel_over(
            pool, fe_count,
            [&](std::size_t begin, std::size_t end) {
                std::vector<std::pair<std::uint64_t, std::uint32_t>> scratch;
                for (std::size_t f = begin; f < end; ++f) {
                    const auto mem = plan.members(static_cast<int>(f), r);
                    std::int64_t arrived = 0;
                    for (const std::uint32_t l : mem) arrived += cur[l];
                    if (arrived == 0) continue;
                    const std::int64_t avail =
                        std::max<std::int64_t>(0, capacity[f] - out.fe_load[f]);
                    const std::int64_t excess = std::max<std::int64_t>(0, arrived - avail);
                    if (excess > 0) {
                        apportion_shed(mem, cur.data(), excess, arrived, next.data(), scratch);
                    }
                    for (const std::uint32_t l : mem) {
                        out.kept[l * static_cast<std::size_t>(rings) +
                                 static_cast<std::size_t>(r)] = cur[l] - next[l];
                    }
                    shed_at[f] = excess;
                    out.fe_load[f] += arrived - excess;
                }
            },
            1);
        std::int64_t ring_shed = 0;
        for (const std::int64_t s : shed_at) ring_shed += s;
        if (r == top) out.shed = ring_shed;
        if (r > 0) {
            out.overflow_hop_conn += ring_shed;
        } else {
            out.unserved = ring_shed;
        }
        cur.swap(next);
    }
    out.served_first = out.offered - out.shed;

    shed_counter().add(static_cast<std::uint64_t>(out.shed));
    overflow_hop_counter().add(static_cast<std::uint64_t>(out.overflow_hop_conn));
    return out;
}

} // namespace ac::load
