// Time-bucketed offered-load demand model.
//
// Turns the ground-truth <region, AS> user populations and the telemetry
// `connections_per_user` seed into an integer series of offered connections
// per location per time bucket. The shape of the series is driven by the
// scenario timeline's demand-* events (src/scenario/event.h): a global
// demand level, a deterministic diurnal triangle wave, transient regional
// flash crowds, and persistent regional hot spots. Everything is integer
// arithmetic — percentages and per-mille factors applied with floor
// division — so offered load is exact, byte-stable, and conservation checks
// against the assignment policies (shed + served == offered) can use ==.
//
// The multiplier chain for location `l` (region r) at bucket `t`, swept at
// frontier level `level_pct`:
//
//   base      = llround(users_l * connections_per_user)
//   c         = base * level_pct / 100            (frontier x-axis)
//   c         = c * demand_level_pct[t] / 100     (demand-level events)
//   c         = c * diurnal_pm[t] / 1000          (demand-diurnal wave)
//   c         = c * region_factor[t][r] / 100     (flash crowds x hot spots)
//
// Each step floors; intermediate products go through 128-bit arithmetic so
// the chain cannot overflow within the parser-enforced event bounds
// (scenario::max_demand_pct and friends).
#pragma once

#include <cstdint>
#include <vector>

#include "src/population/population.h"
#include "src/scenario/event.h"

namespace ac::load {

struct demand_plan {
    /// Connections per user per bucket; callers seed this from
    /// `cdn::telemetry_options::connections_per_user` so the demand model
    /// and the server-log generator describe the same traffic.
    double connections_per_user = 2.0;
    /// Number of time buckets; 0 derives it from the timeline (last demand
    /// step + 1, minimum 1).
    int buckets = 0;
};

/// Precomputed offered-load series. Non-demand events in the timeline are
/// ignored here (the scenario driver replays them against routing state).
class demand_series {
public:
    /// Throws scenario::timeline_error when a demand event names a region
    /// outside [0, region_count).
    demand_series(const pop::user_base& base, const scenario::timeline& tl,
                  const demand_plan& plan, topo::region_id region_count);

    [[nodiscard]] int buckets() const noexcept { return buckets_; }
    [[nodiscard]] std::size_t locations() const noexcept { return base_conn_.size(); }
    /// Sum of per-location base connections: the nominal fleet demand the
    /// capacity model provisions against.
    [[nodiscard]] std::int64_t nominal_total() const noexcept { return nominal_total_; }

    [[nodiscard]] std::int64_t base_conn(std::size_t loc) const noexcept {
        return base_conn_[loc];
    }
    [[nodiscard]] topo::region_id region(std::size_t loc) const noexcept {
        return region_[loc];
    }

    /// Offered connections from location `loc` at bucket `t`, with the whole
    /// series additionally scaled by `level_pct` percent (the frontier sweep).
    [[nodiscard]] std::int64_t offered(std::size_t loc, int t, int level_pct) const noexcept;

    // Per-bucket state, exposed for tests and summaries.
    [[nodiscard]] int level_pct(int t) const noexcept {
        return level_pct_[static_cast<std::size_t>(t)];
    }
    [[nodiscard]] int diurnal_pm(int t) const noexcept {
        return diurnal_pm_[static_cast<std::size_t>(t)];
    }
    /// Regional multiplier in percent (100 = neutral).
    [[nodiscard]] std::int64_t region_factor(int t, topo::region_id r) const noexcept {
        return region_factor_[static_cast<std::size_t>(t) * regions_ + r];
    }

private:
    std::vector<std::int64_t> base_conn_;      // per location
    std::vector<topo::region_id> region_;      // per location
    std::vector<int> level_pct_;               // per bucket
    std::vector<int> diurnal_pm_;              // per bucket, 1000 = neutral
    std::vector<std::int64_t> region_factor_;  // bucket-major [buckets x regions]
    std::size_t regions_ = 0;
    int buckets_ = 1;
    std::int64_t nominal_total_ = 0;
};

} // namespace ac::load
