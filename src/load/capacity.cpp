#include "src/load/capacity.h"

#include <cmath>
#include <stdexcept>

namespace ac::load {

capacity_model::capacity_model(const cdn::cdn_network& cdn, std::int64_t nominal_conn,
                               const capacity_plan& plan) {
    const auto front_ends = cdn.front_end_regions().size();
    if (plan.unlimited) {
        capacity_.assign(front_ends, unlimited_capacity);
        total_ = unlimited_capacity;
        unlimited_ = true;
        return;
    }
    if (!(plan.headroom > 0.0)) {
        throw std::invalid_argument("capacity_model: headroom must be positive");
    }
    if (nominal_conn < 0) {
        throw std::invalid_argument("capacity_model: negative nominal demand");
    }

    // Integer apportionment: capacity_f = fleet * weight_f / total_weight,
    // with the fleet total = headroom * nominal in permille so the knob stays
    // exact integer arithmetic (headroom 1.3 -> 1300/1000).
    const auto headroom_pm = static_cast<std::int64_t>(std::llround(plan.headroom * 1000.0));
    std::vector<std::int64_t> weight(front_ends, 0);
    std::int64_t total_weight = 0;
    for (std::size_t f = 0; f < front_ends; ++f) {
        weight[f] = cdn.ring_membership_count(static_cast<int>(f));
        total_weight += weight[f];
    }
    capacity_.assign(front_ends, 0);
    if (total_weight == 0) return;
    for (std::size_t f = 0; f < front_ends; ++f) {
        const auto fleet = static_cast<__int128>(nominal_conn) * headroom_pm;
        capacity_[f] =
            static_cast<std::int64_t>(fleet * weight[f] / (1000 * static_cast<__int128>(total_weight)));
        total_ += capacity_[f];
    }
}

} // namespace ac::load
