#include "src/load/gauges.h"

#include <vector>

#include "src/obs/metrics.h"
#include "src/table/table.h"

namespace ac::load {

std::string front_end_conn_gauge_name(int front_end) {
    return "load.front_end_conn." + std::to_string(front_end);
}

std::string letter_users_gauge_name(std::string_view letter) {
    return "load.letter_users." + std::string{letter};
}

void set_front_end_conn_gauges(std::span<const double> conn_by_front_end) {
    auto& reg = obs::registry::global();
    for (std::size_t f = 0; f < conn_by_front_end.size(); ++f) {
        reg.get_gauge(front_end_conn_gauge_name(static_cast<int>(f)))
            .set(conn_by_front_end[f]);
    }
}

void publish_front_end_conn_gauges(const cdn::server_log_table& logs,
                                   engine::thread_pool* pool) {
    if (logs.rows() == 0) return;
    const auto grouping = table::make_grouping(logs.front_end, pool);
    std::vector<double> conn(logs.rows());
    for (std::size_t i = 0; i < logs.rows(); ++i) {
        conn[i] = static_cast<double>(logs.sample_count[i]);
    }
    const auto totals = table::sum_by(grouping, std::span<const double>{conn});
    auto& reg = obs::registry::global();
    for (std::size_t g = 0; g < grouping.groups(); ++g) {
        reg.get_gauge(front_end_conn_gauge_name(static_cast<int>(grouping.keys[g])))
            .set(totals[g]);
    }
}

} // namespace ac::load
