// Latency-only vs load-aware anycast assignment (the two policies).
//
// `route_plan` freezes what BGP + the WAN decide for every user location:
// which front-end serves it on each ring and at what RTT. On top of that,
// `assign_bucket` computes where one time bucket's offered connections
// actually land under either policy:
//
//   * latency_only — the paper's CDN: every connection is served by its
//     outermost-ring front-end regardless of load. Overload shows up as
//     connections served by a front-end past its capacity.
//   * load_aware — FastRoute-style overflow: rings are tried outermost
//     (lowest latency) first; a saturated front-end sheds its excess
//     proportionally across the locations feeding it, and the shed
//     connections ride the next ring inward. What ring 0 cannot take is
//     unserved. This is a deterministic fixed-point: each ring pass is a
//     parallel sweep over front-ends with per-front-end/per-location slot
//     writes and integer largest-remainder apportionment, so the result is
//     byte-identical at any thread count.
//
// Connection counts are int64 throughout; every bucket satisfies
// shed + served_first == offered exactly (tests/load_test.cpp pins it).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "src/cdn/cdn.h"
#include "src/engine/thread_pool.h"
#include "src/load/demand.h"
#include "src/population/population.h"

namespace ac::load {

enum class policy_kind : std::uint8_t {
    latency_only,
    load_aware,
};

[[nodiscard]] std::string_view policy_name(policy_kind kind) noexcept;

/// Per-location routing state, fixed for a converged world: front-end and
/// RTT per (location, ring), plus the inverse mapping (which locations feed
/// each front-end on each ring) in CSR form for the per-front-end sweeps.
class route_plan {
public:
    /// Evaluates every <asn, region> location against every ring. A
    /// non-serial pool chunks locations; outputs are per-slot writes.
    route_plan(const cdn::cdn_network& cdn, const pop::user_base& base,
               engine::thread_pool* pool = nullptr);

    [[nodiscard]] int rings() const noexcept { return rings_; }
    [[nodiscard]] int front_ends() const noexcept { return front_ends_; }
    [[nodiscard]] std::size_t locations() const noexcept { return locations_; }
    [[nodiscard]] std::size_t reachable_locations() const noexcept { return reachable_; }

    /// Reachability is ring-independent (all rings share PoP announcements).
    [[nodiscard]] bool reachable(std::size_t loc) const noexcept {
        return fe_[loc * static_cast<std::size_t>(rings_)] >= 0;
    }
    /// Front-end serving `loc` on `ring` (-1 if unreachable).
    [[nodiscard]] int front_end(std::size_t loc, int ring) const noexcept {
        return fe_[loc * static_cast<std::size_t>(rings_) + static_cast<std::size_t>(ring)];
    }
    [[nodiscard]] double rtt_ms(std::size_t loc, int ring) const noexcept {
        return rtt_[loc * static_cast<std::size_t>(rings_) + static_cast<std::size_t>(ring)];
    }
    /// Locations served by front-end `fe` on `ring`, ascending location id.
    [[nodiscard]] std::span<const std::uint32_t> members(int fe, int ring) const noexcept;

private:
    std::vector<int> fe_;        // location-major [locations x rings], -1 = unreachable
    std::vector<double> rtt_;    // same layout
    std::vector<std::uint32_t> members_;  // ring-major CSR payload
    std::vector<std::uint32_t> offsets_;  // rings x (front_ends + 1)
    std::size_t locations_ = 0;
    std::size_t reachable_ = 0;
    int rings_ = 0;
    int front_ends_ = 0;
};

/// Where one bucket's connections landed. `kept` is location-major
/// [locations x rings]: connections from a location served on each ring
/// (latency_only uses only the outermost ring).
struct bucket_result {
    std::int64_t offered = 0;       // connections from reachable locations
    std::int64_t unreachable = 0;   // connections with no route to the CDN
    std::int64_t served_first = 0;  // served on their first-choice ring
    std::int64_t shed = 0;          // shed off the first-choice ring
    std::int64_t unserved = 0;      // latency_only: served past capacity;
                                    // load_aware: no front-end could take them
    std::int64_t overflow_hop_conn = 0;  // sum of connections x rings traversed
    std::vector<std::int64_t> kept;      // [locations x rings]
    std::vector<std::int64_t> fe_load;   // connections landed per front-end
};

/// Assigns bucket `t` of `demand` (swept at `level_pct`) under `kind`.
/// `capacity` is the per-front-end limit (capacity_model::per_front_end()).
[[nodiscard]] bucket_result assign_bucket(const route_plan& plan, const demand_series& demand,
                                          int t, int level_pct,
                                          std::span<const std::int64_t> capacity,
                                          policy_kind kind,
                                          engine::thread_pool* pool = nullptr);

} // namespace ac::load
