#include "src/load/demand.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace ac::load {

namespace {

/// floor(v * num / den) through 128-bit so the product cannot overflow.
[[nodiscard]] std::int64_t scale(std::int64_t v, std::int64_t num, std::int64_t den) noexcept {
    return static_cast<std::int64_t>(static_cast<__int128>(v) * num / den);
}

/// Regional multipliers compound (hot spot x overlapping flash crowds) but
/// are clamped so the offered-load chain stays within its overflow audit.
inline constexpr std::int64_t max_region_factor_pct = 1'000'000;

} // namespace

demand_series::demand_series(const pop::user_base& base, const scenario::timeline& tl,
                             const demand_plan& plan, topo::region_id region_count) {
    if (!(plan.connections_per_user >= 0.0)) {
        throw std::invalid_argument("demand_series: negative connections_per_user");
    }
    regions_ = static_cast<std::size_t>(region_count);

    const auto& locs = base.locations();
    base_conn_.reserve(locs.size());
    region_.reserve(locs.size());
    for (const auto& loc : locs) {
        const auto conn =
            static_cast<std::int64_t>(std::llround(loc.users * plan.connections_per_user));
        base_conn_.push_back(conn);
        region_.push_back(loc.region);
        nominal_total_ += conn;
    }

    // Demand events are state-setting; walk buckets and events in lockstep
    // (the timeline is sorted by step).
    struct flash_window {
        topo::region_id region;
        int pct;
        int last_bucket;  // inclusive
    };
    int last_demand_step = 0;
    for (const auto& e : tl.events) {
        if (!scenario::is_demand_event(e.type)) continue;
        if ((e.type == scenario::event_type::demand_flash ||
             e.type == scenario::event_type::demand_hotspot) &&
            e.region >= region_count) {
            throw scenario::timeline_error("timeline: unknown region " +
                                           std::to_string(e.region));
        }
        last_demand_step = std::max(last_demand_step, e.step);
    }
    buckets_ = plan.buckets > 0 ? plan.buckets : last_demand_step + 1;

    level_pct_.assign(static_cast<std::size_t>(buckets_), 100);
    diurnal_pm_.assign(static_cast<std::size_t>(buckets_), 1000);
    region_factor_.assign(static_cast<std::size_t>(buckets_) * regions_, 100);

    int level = 100;
    int diurnal_amp = 0;
    int diurnal_period = 0;
    int diurnal_start = 0;
    std::vector<std::int64_t> hotspot_pct(regions_, 100);
    std::vector<flash_window> flashes;
    std::size_t next_event = 0;
    for (int t = 0; t < buckets_; ++t) {
        while (next_event < tl.events.size() && tl.events[next_event].step == t) {
            const auto& e = tl.events[next_event++];
            switch (e.type) {
                case scenario::event_type::demand_level:
                    level = e.pct;
                    break;
                case scenario::event_type::demand_diurnal:
                    diurnal_amp = e.pct;
                    diurnal_period = e.window;
                    diurnal_start = t;
                    break;
                case scenario::event_type::demand_flash:
                    flashes.push_back(flash_window{e.region, e.pct, t + e.window - 1});
                    break;
                case scenario::event_type::demand_hotspot:
                    hotspot_pct[e.region] = e.pct;
                    break;
                default:
                    break;  // routing events: the scenario driver's business
            }
        }

        level_pct_[static_cast<std::size_t>(t)] = level;
        if (diurnal_amp > 0 && diurnal_period >= 2) {
            // Integer triangle wave in per-mille: trough (-amp%) at the
            // firing bucket, peak (+amp%) half a period later.
            const int p = (t - diurnal_start) % diurnal_period;
            const int half = diurnal_period / 2;
            const int pos = p <= half ? p : diurnal_period - p;
            const int dev_pm = diurnal_amp * 10 * (2 * pos - half) / half;
            diurnal_pm_[static_cast<std::size_t>(t)] = 1000 + dev_pm;
        }
        std::int64_t* row = region_factor_.data() + static_cast<std::size_t>(t) * regions_;
        for (std::size_t r = 0; r < regions_; ++r) row[r] = hotspot_pct[r];
        for (const auto& fw : flashes) {
            if (t > fw.last_bucket) continue;
            auto& f = row[fw.region];
            f = std::min(f * fw.pct / 100, max_region_factor_pct);
        }
    }
}

std::int64_t demand_series::offered(std::size_t loc, int t, int level_pct) const noexcept {
    const auto bucket = static_cast<std::size_t>(t);
    std::int64_t c = base_conn_[loc];
    c = scale(c, level_pct, 100);
    c = scale(c, level_pct_[bucket], 100);
    c = scale(c, diurnal_pm_[bucket], 1000);
    c = scale(c, region_factor_[bucket * regions_ + region_[loc]], 100);
    return c;
}

} // namespace ac::load
