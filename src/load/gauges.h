// Shared load gauge names + publishers.
//
// The load analysis (`acctx load`) and the query service (`acctx serve`,
// /metricsz) report front-end and per-letter load through the same obs
// gauges, so a dashboard reading /metricsz and a frontier run write to the
// same metric names. Helpers here own the naming scheme:
//
//   load.front_end_conn.<fe>   connections landing on front-end <fe>
//   load.letter_users.<L>      users behind root letter <L>'s catchment
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "src/cdn/telemetry.h"
#include "src/engine/thread_pool.h"

namespace ac::load {

[[nodiscard]] std::string front_end_conn_gauge_name(int front_end);
[[nodiscard]] std::string letter_users_gauge_name(std::string_view letter);

/// Sets load.front_end_conn.<f> for every front-end in [0, size).
void set_front_end_conn_gauges(std::span<const double> conn_by_front_end);

/// Aggregates a server-side log table to per-front-end connection totals
/// (group-by front_end, sum of sample_count) and publishes them as the
/// front-end gauges. This is the serve-path entry: a snapshot that carries
/// telemetry surfaces the same gauges a live `acctx load` run would.
void publish_front_end_conn_gauges(const cdn::server_log_table& logs,
                                   engine::thread_pool* pool = nullptr);

} // namespace ac::load
