#include "src/analysis/stats.h"

#include <algorithm>
#include <stdexcept>

namespace ac::analysis {

void weighted_cdf::add(double value, double weight) {
    if (weight <= 0.0) return;
    samples_.emplace_back(value, weight);
    total_weight_ += weight;
    sorted_ = false;
}

void weighted_cdf::sort() const {
    if (sorted_) return;
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
}

double weighted_cdf::quantile(double q) const {
    if (samples_.empty()) throw std::logic_error("weighted_cdf: empty");
    sort();
    const double target = std::clamp(q, 0.0, 1.0) * total_weight_;
    double cumulative = 0.0;
    for (const auto& [value, weight] : samples_) {
        cumulative += weight;
        if (cumulative >= target) return value;
    }
    return samples_.back().first;
}

double weighted_cdf::fraction_leq(double v) const {
    if (samples_.empty()) return 0.0;
    sort();
    double cumulative = 0.0;
    for (const auto& [value, weight] : samples_) {
        if (value > v) break;
        cumulative += weight;
    }
    return cumulative / total_weight_;
}

double weighted_cdf::min() const {
    if (samples_.empty()) throw std::logic_error("weighted_cdf: empty");
    sort();
    return samples_.front().first;
}

double weighted_cdf::max() const {
    if (samples_.empty()) throw std::logic_error("weighted_cdf: empty");
    sort();
    return samples_.back().first;
}

double weighted_cdf::mean() const {
    if (samples_.empty()) throw std::logic_error("weighted_cdf: empty");
    double sum = 0.0;
    for (const auto& [value, weight] : samples_) sum += value * weight;
    return sum / total_weight_;
}

std::vector<std::pair<double, double>> weighted_cdf::curve(int points) const {
    std::vector<std::pair<double, double>> out;
    if (samples_.empty() || points < 2) return out;
    sort();
    out.reserve(static_cast<std::size_t>(points));
    for (int i = 0; i < points; ++i) {
        const double q = static_cast<double>(i) / static_cast<double>(points - 1);
        out.emplace_back(quantile(q), q);
    }
    return out;
}

box_summary summarize(const weighted_cdf& cdf) {
    box_summary box;
    if (cdf.empty()) return box;
    box.minimum = cdf.min();
    box.q1 = cdf.quantile(0.25);
    box.median = cdf.quantile(0.5);
    box.q3 = cdf.quantile(0.75);
    box.maximum = cdf.max();
    box.weight = cdf.total_weight();
    return box;
}

double median_of(std::vector<double> values) {
    if (values.empty()) return 0.0;
    const auto mid = values.size() / 2;
    std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                     values.end());
    return values[mid];
}

double weighted_median(std::span<const std::pair<double, double>> value_weight) {
    weighted_cdf cdf;
    for (const auto& [v, w] : value_weight) cdf.add(v, w);
    return cdf.empty() ? 0.0 : cdf.median();
}

} // namespace ac::analysis
