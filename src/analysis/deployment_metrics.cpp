#include "src/analysis/deployment_metrics.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "src/netbase/geo.h"

namespace ac::analysis {

namespace {

coverage_curve curve_from_distances(std::string name, int global_sites,
                                    const weighted_cdf& distances,
                                    std::span<const double> radii_km) {
    coverage_curve curve;
    curve.name = std::move(name);
    curve.global_sites = global_sites;
    curve.radii_km.assign(radii_km.begin(), radii_km.end());
    curve.covered_fraction.reserve(radii_km.size());
    for (double r : radii_km) curve.covered_fraction.push_back(distances.fraction_leq(r));
    return curve;
}

} // namespace

coverage_curve compute_coverage(const anycast::deployment& dep, const pop::user_base& base,
                                const topo::region_table& regions,
                                std::span<const double> radii_km) {
    weighted_cdf distances;
    for (const auto& loc : base.locations()) {
        distances.add(dep.nearest_global_site_km(regions.at(loc.region).location), loc.users);
    }
    return curve_from_distances(dep.name(), dep.global_site_count(), distances, radii_km);
}

coverage_curve compute_ring_coverage(const cdn::cdn_network& cdn, int ring,
                                     const pop::user_base& base,
                                     const topo::region_table& regions,
                                     std::span<const double> radii_km) {
    weighted_cdf distances;
    for (const auto& loc : base.locations()) {
        distances.add(cdn.nearest_front_end_km(regions.at(loc.region).location, ring),
                      loc.users);
    }
    return curve_from_distances(cdn.ring_name(ring), cdn.ring_size(ring), distances, radii_km);
}

coverage_curve compute_all_roots_coverage(const dns::root_system& roots,
                                          const pop::user_base& base,
                                          const topo::region_table& regions,
                                          std::span<const double> radii_km) {
    weighted_cdf distances;
    int total_sites = 0;
    for (char letter : roots.all_letters()) {
        total_sites += roots.deployment_of(letter).global_site_count();
    }
    for (const auto& loc : base.locations()) {
        const auto p = regions.at(loc.region).location;
        double best = std::numeric_limits<double>::infinity();
        for (char letter : roots.all_letters()) {
            best = std::min(best, roots.deployment_of(letter).nearest_global_site_km(p));
        }
        distances.add(best, loc.users);
    }
    return curve_from_distances("All Roots", total_sites, distances, radii_km);
}

double median_probe_latency(const atlas::probe_fleet& fleet, const anycast::deployment& dep,
                            std::uint64_t seed) {
    std::vector<double> rtts;
    rtts.reserve(fleet.probes().size());
    for (const auto& p : fleet.probes()) {
        const auto result = atlas::ping(p, dep, /*attempts=*/3, seed);
        if (result.reachable) rtts.push_back(result.rtt_ms);
    }
    return median_of(std::move(rtts));
}

double median_probe_latency_to_ring(const atlas::probe_fleet& fleet,
                                    const cdn::cdn_network& cdn, int ring,
                                    std::uint64_t seed) {
    std::vector<double> rtts;
    rtts.reserve(fleet.probes().size());
    for (const auto& p : fleet.probes()) {
        const auto result = atlas::ping_ring(p, cdn, ring, /*attempts=*/3, seed);
        if (result.reachable) rtts.push_back(result.rtt_ms);
    }
    return median_of(std::move(rtts));
}

namespace {

constexpr std::size_t length_bucket(int length) {
    if (length <= 2) return 0;
    if (length == 3) return 1;
    if (length == 4) return 2;
    return 3;
}

constexpr std::size_t inflation_bucket(int length) {
    if (length <= 2) return 0;
    if (length == 3) return 1;
    return 2;  // 4+
}

struct destination_acc {
    std::array<double, 4> length_weight{};
    std::array<weighted_cdf, 3> inflation;
    double total_weight = 0.0;

    void record(int length, double gi_ms) {
        length_weight[length_bucket(length)] += 1.0;
        total_weight += 1.0;
        inflation[inflation_bucket(length)].add(gi_ms, 1.0);
    }
};

} // namespace

aspath_study_result run_aspath_study(const atlas::probe_fleet& fleet,
                                     const dns::root_system& roots,
                                     const cdn::cdn_network& cdn,
                                     const topo::as_graph& graph) {
    // Deduplicate probes to <region, AS> locations (the paper weights
    // locations, not probes).
    std::unordered_map<std::uint64_t, atlas::probe> locations;
    for (const auto& p : fleet.probes()) {
        locations.emplace((std::uint64_t{p.asn} << 32) | p.region, p);
    }

    const auto& regions = cdn.regions();
    std::map<std::string, destination_acc> accs;
    const auto letters = roots.geographic_analysis_letters();

    for (const auto& [key, probe] : locations) {
        const auto loc = regions.at(probe.region).location;

        // CDN: external path is ring-independent; inflation uses R110.
        if (const auto path = cdn.evaluate(probe.asn, probe.region, cdn.ring_count() - 1)) {
            const int length = atlas::organization_path_length(path->as_path, graph);
            const double min_km = cdn.nearest_front_end_km(loc, cdn.ring_count() - 1);
            const double gi = std::max(0.0, geo::round_trip_fiber_ms(path->front_end_km) -
                                                geo::round_trip_fiber_ms(min_km));
            accs["CDN"].record(length, gi);
        }

        // Letters, individually and pooled as "All Roots" (grouped by
        // <region, AS, root>, so each letter contributes one sample).
        for (char letter : letters) {
            const auto& dep = roots.deployment_of(letter);
            const auto path = dep.rib().select(probe.asn, probe.region);
            if (!path) continue;
            const int length = atlas::organization_path_length(path->as_path, graph);
            const auto& site = dep.site_at(path->site);
            const double site_km =
                geo::distance_km(loc, regions.at(site.region).location);
            const double min_km = dep.nearest_global_site_km(loc);
            const double gi = std::max(0.0, geo::round_trip_fiber_ms(site_km) -
                                                geo::round_trip_fiber_ms(min_km));
            accs[std::string{letter}].record(length, gi);
            accs["All Roots"].record(length, gi);
        }
    }

    aspath_study_result result;
    // Stable presentation order: CDN, All Roots, then letters by size desc.
    std::vector<std::string> order{"CDN", "All Roots"};
    std::vector<std::pair<int, char>> sized;
    for (char letter : letters) {
        sized.emplace_back(roots.deployment_of(letter).global_site_count(), letter);
    }
    std::sort(sized.begin(), sized.end(), std::greater<>());
    for (const auto& [_, letter] : sized) order.emplace_back(1, letter);

    for (const auto& name : order) {
        auto it = accs.find(name);
        if (it == accs.end() || it->second.total_weight <= 0.0) continue;
        path_length_distribution dist;
        dist.destination = name;
        for (std::size_t b = 0; b < 4; ++b) {
            dist.share[b] = it->second.length_weight[b] / it->second.total_weight;
        }
        result.lengths.push_back(dist);

        inflation_by_path_length infl;
        infl.destination = name;
        for (std::size_t b = 0; b < 3; ++b) {
            infl.boxes[b] = summarize(it->second.inflation[b]);
        }
        result.inflation.push_back(infl);
    }
    return result;
}

} // namespace ac::analysis
