#include "src/analysis/deployment_metrics.h"

#include <algorithm>
#include <limits>

#include "src/netbase/geo.h"
#include "src/table/table.h"

namespace ac::analysis {

namespace {

coverage_curve curve_from_distances(std::string name, int global_sites,
                                    const weighted_cdf& distances,
                                    std::span<const double> radii_km) {
    coverage_curve curve;
    curve.name = std::move(name);
    curve.global_sites = global_sites;
    curve.radii_km.assign(radii_km.begin(), radii_km.end());
    curve.covered_fraction.reserve(radii_km.size());
    for (double r : radii_km) curve.covered_fraction.push_back(distances.fraction_leq(r));
    return curve;
}

} // namespace

coverage_curve compute_coverage(const anycast::deployment& dep, const pop::user_base& base,
                                const topo::region_table& regions,
                                std::span<const double> radii_km) {
    weighted_cdf distances;
    for (const auto& loc : base.locations()) {
        distances.add(dep.nearest_global_site_km(regions.at(loc.region).location), loc.users);
    }
    return curve_from_distances(dep.name(), dep.global_site_count(), distances, radii_km);
}

coverage_curve compute_ring_coverage(const cdn::cdn_network& cdn, int ring,
                                     const pop::user_base& base,
                                     const topo::region_table& regions,
                                     std::span<const double> radii_km) {
    weighted_cdf distances;
    for (const auto& loc : base.locations()) {
        distances.add(cdn.nearest_front_end_km(regions.at(loc.region).location, ring),
                      loc.users);
    }
    return curve_from_distances(cdn.ring_name(ring), cdn.ring_size(ring), distances, radii_km);
}

coverage_curve compute_all_roots_coverage(const dns::root_system& roots,
                                          const pop::user_base& base,
                                          const topo::region_table& regions,
                                          std::span<const double> radii_km) {
    weighted_cdf distances;
    int total_sites = 0;
    for (char letter : roots.all_letters()) {
        total_sites += roots.deployment_of(letter).global_site_count();
    }
    for (const auto& loc : base.locations()) {
        const auto p = regions.at(loc.region).location;
        double best = std::numeric_limits<double>::infinity();
        for (char letter : roots.all_letters()) {
            best = std::min(best, roots.deployment_of(letter).nearest_global_site_km(p));
        }
        distances.add(best, loc.users);
    }
    return curve_from_distances("All Roots", total_sites, distances, radii_km);
}

double median_probe_latency(const atlas::probe_fleet& fleet, const anycast::deployment& dep,
                            std::uint64_t seed) {
    std::vector<double> rtts;
    rtts.reserve(fleet.probes().size());
    for (const auto& p : fleet.probes()) {
        const auto result = atlas::ping(p, dep, /*attempts=*/3, seed);
        if (result.reachable) rtts.push_back(result.rtt_ms);
    }
    return median_of(std::move(rtts));
}

double median_probe_latency_to_ring(const atlas::probe_fleet& fleet,
                                    const cdn::cdn_network& cdn, int ring,
                                    std::uint64_t seed) {
    std::vector<double> rtts;
    rtts.reserve(fleet.probes().size());
    for (const auto& p : fleet.probes()) {
        const auto result = atlas::ping_ring(p, cdn, ring, /*attempts=*/3, seed);
        if (result.reachable) rtts.push_back(result.rtt_ms);
    }
    return median_of(std::move(rtts));
}

namespace {

constexpr std::size_t length_bucket(int length) {
    if (length <= 2) return 0;
    if (length == 3) return 1;
    if (length == 4) return 2;
    return 3;
}

constexpr std::size_t inflation_bucket(int length) {
    if (length <= 2) return 0;
    if (length == 3) return 1;
    return 2;  // 4+
}

struct destination_acc {
    std::array<double, 4> length_weight{};
    std::array<weighted_cdf, 3> inflation;
    double total_weight = 0.0;

    void record(int length, double gi_ms) {
        length_weight[length_bucket(length)] += 1.0;
        total_weight += 1.0;
        inflation[inflation_bucket(length)].add(gi_ms, 1.0);
    }
};

} // namespace

aspath_study_result run_aspath_study(const atlas::probe_fleet& fleet,
                                     const dns::root_system& roots,
                                     const cdn::cdn_network& cdn,
                                     const topo::as_graph& graph) {
    // Deduplicate probes to <region, AS> locations (the paper weights
    // locations, not probes): one grouping over packed keys, keeping each
    // group's first row, visited in ascending key order.
    const auto& probes = fleet.probes();
    table::column<std::uint64_t> loc_keys;
    loc_keys.reserve(probes.size());
    for (const auto& p : probes) {
        loc_keys.push_back((std::uint64_t{p.asn} << 32) | p.region);
    }
    const auto locations = table::make_grouping(loc_keys.view());

    // Samples as columns, tagged by destination id; grouped once at the end.
    constexpr std::uint32_t dest_cdn = 0;
    constexpr std::uint32_t dest_all_roots = 1;
    constexpr std::uint32_t dest_letter0 = 2;
    const auto letters = roots.geographic_analysis_letters();

    const auto& regions = cdn.regions();
    table::column<std::uint32_t> dest;
    table::column<int> length_col;
    table::column<double> gi_col;

    for (std::size_t g = 0; g < locations.groups(); ++g) {
        const auto& probe = probes[locations.rows(g).front()];
        const auto loc = regions.at(probe.region).location;

        // CDN: external path is ring-independent; inflation uses R110.
        if (const auto path = cdn.evaluate(probe.asn, probe.region, cdn.ring_count() - 1)) {
            const int length = atlas::organization_path_length(path->as_path, graph);
            const double min_km = cdn.nearest_front_end_km(loc, cdn.ring_count() - 1);
            const double gi = std::max(0.0, geo::round_trip_fiber_ms(path->front_end_km) -
                                                geo::round_trip_fiber_ms(min_km));
            dest.push_back(dest_cdn);
            length_col.push_back(length);
            gi_col.push_back(gi);
        }

        // Letters, individually and pooled as "All Roots" (grouped by
        // <region, AS, root>, so each letter contributes one sample).
        for (std::size_t li = 0; li < letters.size(); ++li) {
            const auto& dep = roots.deployment_of(letters[li]);
            const auto path = dep.rib().select(probe.asn, probe.region);
            if (!path) continue;
            const int length = atlas::organization_path_length(path->as_path, graph);
            const auto& site = dep.site_at(path->site);
            const double site_km =
                geo::distance_km(loc, regions.at(site.region).location);
            const double min_km = dep.nearest_global_site_km(loc);
            const double gi = std::max(0.0, geo::round_trip_fiber_ms(site_km) -
                                                geo::round_trip_fiber_ms(min_km));
            dest.push_back(dest_letter0 + static_cast<std::uint32_t>(li));
            length_col.push_back(length);
            gi_col.push_back(gi);
            dest.push_back(dest_all_roots);
            length_col.push_back(length);
            gi_col.push_back(gi);
        }
    }

    // Per-destination accumulators over the grouped sample columns, rows in
    // original append order.
    const auto by_dest = table::make_grouping(dest.view());
    std::vector<destination_acc> accs(by_dest.groups());
    for (std::size_t g = 0; g < by_dest.groups(); ++g) {
        for (const auto row : by_dest.rows(g)) {
            accs[g].record(length_col[row], gi_col[row]);
        }
    }
    const auto acc_of = [&](std::uint32_t id) -> const destination_acc* {
        const auto it = std::lower_bound(by_dest.keys.begin(), by_dest.keys.end(), id);
        if (it == by_dest.keys.end() || *it != id) return nullptr;
        return &accs[static_cast<std::size_t>(it - by_dest.keys.begin())];
    };

    aspath_study_result result;
    // Stable presentation order: CDN, All Roots, then letters by size desc.
    std::vector<std::pair<std::string, std::uint32_t>> order{{"CDN", dest_cdn},
                                                             {"All Roots", dest_all_roots}};
    std::vector<std::pair<int, std::size_t>> sized;
    for (std::size_t li = 0; li < letters.size(); ++li) {
        sized.emplace_back(roots.deployment_of(letters[li]).global_site_count(), li);
    }
    std::sort(sized.begin(), sized.end(), [&](const auto& a, const auto& b) {
        if (a.first != b.first) return a.first > b.first;
        return letters[a.second] > letters[b.second];  // ties: letter desc
    });
    for (const auto& [_, li] : sized) {
        order.emplace_back(std::string{letters[li]},
                           dest_letter0 + static_cast<std::uint32_t>(li));
    }

    for (const auto& [name, id] : order) {
        const auto* acc = acc_of(id);
        if (acc == nullptr || acc->total_weight <= 0.0) continue;
        path_length_distribution dist;
        dist.destination = name;
        for (std::size_t b = 0; b < 4; ++b) {
            dist.share[b] = acc->length_weight[b] / acc->total_weight;
        }
        result.lengths.push_back(dist);

        inflation_by_path_length infl;
        infl.destination = name;
        for (std::size_t b = 0; b < 3; ++b) {
            infl.boxes[b] = summarize(acc->inflation[b]);
        }
        result.inflation.push_back(infl);
    }
    return result;
}

} // namespace ac::analysis
