// The latency-vs-load frontier: the headline figure of the load subsystem.
//
// Sweeps demand from light to saturating and, at each level, assigns every
// time bucket's offered connections under both policies (latency-only vs
// load-aware, src/load/policy.h). Each point reports user-experienced
// latency (p50/p95 over served connections, weighted by connection count)
// and the overload fraction — for latency-only, the fraction of connections
// served by a front-end past its capacity; for load-aware, the fraction no
// front-end could take at all. The crossover is the figure: load-aware pays
// a small latency premium (overflow rides inner rings) to keep overload
// near zero until the fleet is truly saturated.
//
// NOTE: this header belongs to the analysis layer but the implementation is
// compiled into `ac_load` (src/load/CMakeLists.txt): it depends on the load
// subsystem, and ac_scenario already links ac_analysis, so linking ac_load
// from ac_analysis would cycle.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <vector>

#include "src/cdn/cdn.h"
#include "src/engine/thread_pool.h"
#include "src/load/capacity.h"
#include "src/load/demand.h"
#include "src/load/policy.h"
#include "src/population/population.h"
#include "src/scenario/event.h"

namespace ac::analysis {

struct load_frontier_options {
    load::capacity_plan capacity;
    load::demand_plan demand;
    /// Demand sweep, percent of nominal. The default spans comfortable
    /// (25%) to 4x-saturated (400%) around the 1.3x-provisioned fleet.
    std::vector<int> levels{25, 50, 100, 200, 400};
    bool run_latency_only = true;
    bool run_load_aware = true;
};

/// One (policy, demand level, bucket) cell of the frontier.
struct load_frontier_point {
    load::policy_kind policy = load::policy_kind::latency_only;
    int level_pct = 100;
    int bucket = 0;
    std::int64_t offered_conn = 0;
    std::int64_t served_first_conn = 0;
    std::int64_t shed_conn = 0;
    std::int64_t unserved_conn = 0;
    std::int64_t overflow_hop_conn = 0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double overload_fraction = 0.0;
    double shed_fraction = 0.0;
    double mean_overflow_hops = 0.0;
};

struct load_frontier_result {
    std::vector<load_frontier_point> points;  // policy-major, then level, bucket
    int buckets = 0;
    std::size_t locations = 0;
    std::size_t reachable_locations = 0;
    std::int64_t nominal_conn = 0;         // fleet demand at level 100
    std::int64_t total_capacity_conn = 0;  // provisioned fleet capacity
    std::vector<std::int64_t> capacity_conn;  // per front-end
    /// Connections served per front-end at the reference point (load-aware
    /// at 100% if run, else latency-only), via the table group-by kernels.
    std::vector<double> fe_served_conn;
};

[[nodiscard]] load_frontier_result compute_load_frontier(
    const cdn::cdn_network& cdn, const pop::user_base& base, const scenario::timeline& tl,
    const load_frontier_options& options, engine::thread_pool* pool = nullptr);

/// Writes the frontier CSV. With `only` set, rows are filtered to that
/// policy and the `policy` column is omitted entirely — so two single-policy
/// runs that agree numerically produce byte-identical files (the
/// infinite-capacity acceptance check compares them with cmp).
void write_load_frontier_csv(std::ostream& out, const load_frontier_result& result,
                             std::optional<load::policy_kind> only = std::nullopt);

} // namespace ac::analysis
