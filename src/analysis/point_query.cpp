#include "src/analysis/point_query.h"

#include <algorithm>

#include "src/table/table.h"

namespace ac::analysis {

namespace {

/// Per-(letter, /24) contribution rows for the All-Roots expectation, the
/// same shape compute_root_inflation accumulates: grouped by /24 key so each
/// key's sums accumulate in letter-encounter order.
struct expectation_rows {
    table::column<std::uint32_t> key;
    table::column<double> gi_weighted;  // gi_ms * global-site volume
    table::column<double> volume;
    table::column<double> li_weighted;  // li_ms * TCP-covered volume
    table::column<double> lat_volume;
    table::column<double> users;
};

} // namespace

point_query_index point_query_index::build(std::span<const capture::letter_table> letters,
                                           const dns::root_system& roots,
                                           const topo::geo_database& geodb,
                                           const pop::cdn_user_counts& users,
                                           const topo::ip_to_asn& as_mapper,
                                           engine::thread_pool* pool) {
    point_query_index index;

    // Amortized points: the Fig. 3 CDN-line join, keyed instead of
    // accumulated into a CDF. Same volume aggregation, same quotient.
    const auto volumes = ditl_volumes_by_slash24(letters, pool);
    index.slash24_keys_.reserve(volumes.size());
    index.amortized_.reserve(volumes.size());
    for (std::size_t i = 0; i < volumes.size(); ++i) {
        const net::slash24 block{net::ipv4_addr{volumes.keys[i] << 8}};
        const auto count = users.count(block);
        if (!count || *count <= 0.0) continue;  // outside the DITL∩CDN join
        amortized_point point;
        point.queries_per_day = volumes.volumes[i];
        point.users = *count;
        point.queries_per_user_day = volumes.volumes[i] / *count;
        index.slash24_keys_.push_back(volumes.keys[i]);
        index.amortized_.push_back(point);
    }

    // Inflation rollups: per-/24 All-Roots expectations from the shared
    // letter slices, then a user-weighted mean per origin AS.
    const auto geo_letters = roots.geographic_analysis_letters();
    const auto lat_letters = roots.latency_analysis_letters();
    expectation_rows rows;
    for (const auto& letter : letters) {
        const bool in_geo = std::find(geo_letters.begin(), geo_letters.end(), letter.letter) !=
                            geo_letters.end();
        if (!in_geo) continue;
        const bool in_lat = std::find(lat_letters.begin(), lat_letters.end(), letter.letter) !=
                            lat_letters.end();
        const auto slices = letter_inflation_slices(
            letter, roots.deployment_of(letter.letter), in_lat, geodb, users, {}, pool);
        for (const auto& slice : slices) {
            rows.key.push_back(slice.key);
            rows.gi_weighted.push_back(slice.gi_ms * slice.vol_total);
            rows.volume.push_back(slice.vol_total);
            rows.li_weighted.push_back(slice.has_li ? slice.li_ms * slice.lat_vol : 0.0);
            rows.lat_volume.push_back(slice.has_li ? slice.lat_vol : 0.0);
            rows.users.push_back(slice.weight);
        }
    }

    const auto grouping = table::make_grouping(rows.key.view(), pool);
    const auto gi_sums = table::sum_by(grouping, rows.gi_weighted.view());
    const auto vol_sums = table::sum_by(grouping, rows.volume.view());
    const auto li_sums = table::sum_by(grouping, rows.li_weighted.view());
    const auto lat_sums = table::sum_by(grouping, rows.lat_volume.view());

    // Map each /24 expectation to its origin AS; /24 keys ascend, so each
    // AS's accumulation order is fixed by construction.
    table::column<topo::asn_t> as_keys;
    table::column<double> as_gi;   // weight * E[gi]
    table::column<double> as_li;   // weight * E[li] over latency-covered /24s
    table::column<double> as_w;    // user weight
    table::column<double> as_lw;   // user weight behind the latency mean
    for (std::size_t g = 0; g < grouping.groups(); ++g) {
        if (vol_sums[g] <= 0.0) continue;
        const net::slash24 block{net::ipv4_addr{grouping.keys[g] << 8}};
        const auto asn = as_mapper.lookup(block);
        if (!asn) continue;
        const double weight = rows.users[grouping.rows(g).back()];
        as_keys.push_back(*asn);
        as_gi.push_back(weight * (gi_sums[g] / vol_sums[g]));
        as_w.push_back(weight);
        if (lat_sums[g] > 0.0) {
            as_li.push_back(weight * (li_sums[g] / lat_sums[g]));
            as_lw.push_back(weight);
        } else {
            as_li.push_back(0.0);
            as_lw.push_back(0.0);
        }
    }

    const auto as_grouping = table::make_grouping(as_keys.view(), pool);
    const auto gi_by_as = table::sum_by(as_grouping, as_gi.view());
    const auto w_by_as = table::sum_by(as_grouping, as_w.view());
    const auto li_by_as = table::sum_by(as_grouping, as_li.view());
    const auto lw_by_as = table::sum_by(as_grouping, as_lw.view());
    index.asns_.reserve(as_grouping.groups());
    index.inflation_.reserve(as_grouping.groups());
    for (std::size_t g = 0; g < as_grouping.groups(); ++g) {
        if (w_by_as[g] <= 0.0) continue;
        as_inflation_point point;
        point.gi_ms = gi_by_as[g] / w_by_as[g];
        point.users = w_by_as[g];
        point.slash24s = static_cast<std::uint32_t>(as_grouping.rows(g).size());
        if (lw_by_as[g] > 0.0) {
            point.li_ms = li_by_as[g] / lw_by_as[g];
            point.has_latency = true;
        }
        index.asns_.push_back(as_grouping.keys[g]);
        index.inflation_.push_back(point);
    }
    return index;
}

const amortized_point* point_query_index::amortized(std::uint32_t slash24_key) const noexcept {
    const auto it = std::lower_bound(slash24_keys_.begin(), slash24_keys_.end(), slash24_key);
    if (it == slash24_keys_.end() || *it != slash24_key) return nullptr;
    return &amortized_[static_cast<std::size_t>(it - slash24_keys_.begin())];
}

const as_inflation_point* point_query_index::inflation(topo::asn_t asn) const noexcept {
    const auto it = std::lower_bound(asns_.begin(), asns_.end(), asn);
    if (it == asns_.end() || *it != asn) return nullptr;
    return &inflation_[static_cast<std::size_t>(it - asns_.begin())];
}

std::optional<as_inflation_point> inflation_for_as(const point_query_index& index,
                                                   topo::asn_t asn) {
    const auto* point = index.inflation(asn);
    if (point == nullptr) return std::nullopt;
    return *point;
}

std::optional<amortized_point> amortized_for_slash24(const point_query_index& index,
                                                     net::slash24 block) {
    const auto* point = index.amortized(block.key());
    if (point == nullptr) return std::nullopt;
    return *point;
}

} // namespace ac::analysis
