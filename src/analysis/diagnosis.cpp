#include "src/analysis/diagnosis.h"

#include <algorithm>

#include "src/netbase/geo.h"

namespace ac::analysis {

std::string_view to_string(path_problem problem) noexcept {
    switch (problem) {
        case path_problem::healthy: return "healthy";
        case path_problem::no_peering: return "no-peering";
        case path_problem::far_ingress: return "far-ingress";
        case path_problem::far_front_end: return "far-front-end";
        case path_problem::isolated_user: return "isolated-user";
    }
    return "unknown";
}

std::vector<path_diagnosis> diagnosis_report::worst(std::size_t count) const {
    std::vector<path_diagnosis> sorted;
    sorted.reserve(diagnoses.size());
    for (const auto& d : diagnoses) {
        if (d.problem != path_problem::healthy) sorted.push_back(d);
    }
    std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
        return a.excess_ms * a.users > b.excess_ms * b.users;
    });
    if (sorted.size() > count) sorted.resize(count);
    return sorted;
}

diagnosis_report diagnose_cdn_paths(const cdn::cdn_network& cdn, const pop::user_base& users,
                                    const diagnosis_options& options) {
    const int ring = options.ring >= 0 ? options.ring : cdn.ring_count() - 1;
    diagnosis_report report;
    double total_users = 0.0;

    for (const auto& loc : users.locations()) {
        const auto path = cdn.evaluate(loc.asn, loc.region, ring);
        if (!path) continue;
        total_users += loc.users;

        path_diagnosis d;
        d.asn = loc.asn;
        d.region = loc.region;
        d.users = loc.users;
        d.rtt_ms = path->rtt_ms;
        const auto user_loc = cdn.regions().at(loc.region).location;
        const double nearest_km = cdn.nearest_front_end_km(user_loc, ring);
        d.optimal_ms = geo::best_case_rtt_ms(nearest_km);
        d.excess_ms = std::max(0.0, d.rtt_ms - d.optimal_ms);

        // Classification, most actionable cause first.
        const double ingress_km =
            geo::distance_km(user_loc, cdn.regions().at(path->ingress_pop).location);
        const bool direct = path->as_path.size() <= 2;
        if (d.excess_ms <= options.healthy_budget_ms) {
            d.problem = path_problem::healthy;
        } else if (nearest_km > options.isolated_km) {
            d.problem = path_problem::isolated_user;
        } else if (!direct) {
            d.problem = path_problem::no_peering;
        } else if (ingress_km > options.far_km) {
            d.problem = path_problem::far_ingress;
        } else if (path->front_end_km > options.far_km) {
            d.problem = path_problem::far_front_end;
        } else {
            // Direct, near ingress, near front-end, yet over budget: the
            // residual is circuitous fiber — count as healthy-adjacent
            // ingress trouble for the worklist.
            d.problem = path_problem::far_ingress;
        }
        report.user_share_by_problem[static_cast<std::size_t>(d.problem)] += loc.users;
        report.diagnoses.push_back(d);
    }

    if (total_users > 0.0) {
        for (auto& share : report.user_share_by_problem) share /= total_users;
    }
    return report;
}

} // namespace ac::analysis
