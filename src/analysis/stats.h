// Weighted distribution utilities.
//
// Every figure in the paper is a CDF "of users" — values weighted by the
// user population behind them — or a box-and-whisker summary. These helpers
// implement weighted quantiles, CDF evaluation, and five-number summaries.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ac::analysis {

/// A weighted empirical distribution.
class weighted_cdf {
public:
    void add(double value, double weight = 1.0);
    void reserve(std::size_t n) { samples_.reserve(n); }

    [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
    [[nodiscard]] double total_weight() const noexcept { return total_weight_; }

    /// Value at cumulative fraction q in [0, 1].
    [[nodiscard]] double quantile(double q) const;
    /// Cumulative fraction of weight at values <= v.
    [[nodiscard]] double fraction_leq(double v) const;
    /// Convenience: fraction strictly above v.
    [[nodiscard]] double fraction_above(double v) const { return 1.0 - fraction_leq(v); }
    [[nodiscard]] double median() const { return quantile(0.5); }
    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;
    [[nodiscard]] double mean() const;

    /// (value, cumulative fraction) pairs suitable for plotting/printing.
    [[nodiscard]] std::vector<std::pair<double, double>> curve(int points) const;

private:
    void sort() const;
    mutable std::vector<std::pair<double, double>> samples_;  // (value, weight)
    mutable bool sorted_ = true;
    double total_weight_ = 0.0;
};

/// Five-number summary (Fig. 6b's box-and-whisker rows).
struct box_summary {
    double minimum = 0.0;
    double q1 = 0.0;
    double median = 0.0;
    double q3 = 0.0;
    double maximum = 0.0;
    double weight = 0.0;  // total weight behind the box
};

[[nodiscard]] box_summary summarize(const weighted_cdf& cdf);

/// Unweighted median of a scratch vector.
[[nodiscard]] double median_of(std::vector<double> values);

/// Exact median of a weighted value set (helper for small aggregations).
[[nodiscard]] double weighted_median(std::span<const std::pair<double, double>> value_weight);

} // namespace ac::analysis
