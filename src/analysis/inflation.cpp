#include "src/analysis/inflation.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "src/netbase/geo.h"

namespace ac::analysis {

namespace {

/// Per-/24 accumulation for the All-Roots expectation: inflation weighted by
/// the recursive's query spread over letters.
struct all_roots_acc {
    double weighted_inflation = 0.0;  // sum of per-letter inflation * volume
    double volume = 0.0;
    double users = 0.0;
};

} // namespace

double root_inflation_result::efficiency(char letter) const {
    auto it = geographic.find(letter);
    if (it == geographic.end() || it->second.empty()) return 0.0;
    return it->second.fraction_leq(zero_inflation_epsilon_ms);
}

root_inflation_result compute_root_inflation(std::span<const capture::filtered_letter> letters,
                                             const dns::root_system& roots,
                                             const topo::geo_database& geodb,
                                             const pop::cdn_user_counts& users,
                                             const root_inflation_options& options) {
    root_inflation_result result;
    const auto geo_letters = roots.geographic_analysis_letters();
    const auto lat_letters = roots.latency_analysis_letters();

    std::unordered_map<std::uint32_t, all_roots_acc> gi_all;  // by /24 key
    std::unordered_map<std::uint32_t, all_roots_acc> li_all;

    for (const auto& letter : letters) {
        const bool in_geo = std::find(geo_letters.begin(), geo_letters.end(), letter.letter) !=
                            geo_letters.end();
        if (!in_geo) continue;
        const bool in_lat = std::find(lat_letters.begin(), lat_letters.end(), letter.letter) !=
                            lat_letters.end();
        const auto& dep = roots.deployment_of(letter.letter);

        // Median TCP RTT per (source /24, site).
        std::unordered_map<std::uint64_t, double> tcp_median;
        if (in_lat) {
            for (const auto& row : letter.tcp_rtts) {
                tcp_median[(std::uint64_t{row.source.key()} << 16) | row.site] =
                    row.median_rtt_ms;
            }
        }

        auto& gi_cdf = result.geographic[letter.letter];
        weighted_cdf* li_cdf = in_lat ? &result.latency[letter.letter] : nullptr;

        for (const auto& volume : capture::aggregate_by_slash24(letter.records)) {
            const auto located = geodb.locate(volume.source);
            if (!located) continue;  // unallocated (e.g. scrambled) source

            double weight = 1.0;
            if (options.weight_by_users) {
                const auto count = users.count(volume.source);
                if (!count) continue;  // outside the DITL∩CDN join
                weight = *count;
            }

            // Per-site aggregation over *global* sites only.
            double vol_total = 0.0;
            double dist_weighted = 0.0;     // sum of volume * distance
            double lat_vol = 0.0;
            double lat_weighted = 0.0;      // sum of volume * median RTT
            for (const auto& site_vol : volume.sites) {
                const auto& site = dep.site_at(site_vol.site);
                if (site.scope != route::announcement_scope::global) continue;
                const auto site_loc = dep.regions().at(site.region).location;
                const double d = geo::distance_km(*located, site_loc);
                vol_total += site_vol.queries_per_day;
                dist_weighted += site_vol.queries_per_day * d;
                if (in_lat) {
                    auto it = tcp_median.find(
                        (std::uint64_t{volume.source.key()} << 16) | site_vol.site);
                    if (it != tcp_median.end()) {
                        lat_vol += site_vol.queries_per_day;
                        lat_weighted += site_vol.queries_per_day * it->second;
                    }
                }
            }
            if (vol_total <= 0.0) continue;

            const double min_km = dep.nearest_global_site_km(*located);
            const double avg_km = dist_weighted / vol_total;
            const double gi_ms = std::max(
                0.0, geo::round_trip_fiber_ms(avg_km) - geo::round_trip_fiber_ms(min_km));
            gi_cdf.add(gi_ms, weight);

            auto& acc = gi_all[volume.source.key()];
            acc.weighted_inflation += gi_ms * vol_total;
            acc.volume += vol_total;
            acc.users = weight;

            if (in_lat && lat_vol > 0.0) {
                const double avg_rtt = lat_weighted / lat_vol;
                const double li_ms = std::max(0.0, avg_rtt - geo::best_case_rtt_ms(min_km));
                li_cdf->add(li_ms, weight);
                auto& lacc = li_all[volume.source.key()];
                lacc.weighted_inflation += li_ms * lat_vol;
                lacc.volume += lat_vol;
                lacc.users = weight;
            }
        }
    }

    for (const auto& [key, acc] : gi_all) {
        if (acc.volume > 0.0) {
            result.geographic_all_roots.add(acc.weighted_inflation / acc.volume, acc.users);
        }
    }
    for (const auto& [key, acc] : li_all) {
        if (acc.volume > 0.0) {
            result.latency_all_roots.add(acc.weighted_inflation / acc.volume, acc.users);
        }
    }
    return result;
}

double cdn_inflation_result::efficiency(int ring) const {
    const auto& cdf = geographic_by_ring.at(static_cast<std::size_t>(ring));
    return cdf.empty() ? 0.0 : cdf.fraction_leq(zero_inflation_epsilon_ms);
}

cdn_inflation_result compute_cdn_inflation(std::span<const cdn::server_log_row> logs,
                                           const cdn::cdn_network& cdn) {
    cdn_inflation_result result;
    result.geographic_by_ring.resize(static_cast<std::size_t>(cdn.ring_count()));
    result.latency_by_ring.resize(static_cast<std::size_t>(cdn.ring_count()));

    for (const auto& row : logs) {
        const auto user_loc = cdn.regions().at(row.region).location;
        const double min_km = cdn.nearest_front_end_km(user_loc, row.ring);
        const double gi_ms =
            std::max(0.0, geo::round_trip_fiber_ms(row.front_end_km) -
                              geo::round_trip_fiber_ms(min_km));
        const double li_ms = std::max(0.0, row.median_rtt_ms - geo::best_case_rtt_ms(min_km));
        result.geographic_by_ring[static_cast<std::size_t>(row.ring)].add(gi_ms, row.users);
        result.latency_by_ring[static_cast<std::size_t>(row.ring)].add(li_ms, row.users);
    }
    return result;
}

} // namespace ac::analysis
