#include "src/analysis/inflation.h"

#include <algorithm>
#include <cmath>

#include "src/netbase/geo.h"
#include "src/table/table.h"

namespace ac::analysis {

namespace {

/// Row-major accumulator columns for the All-Roots expectation: one row per
/// (letter, /24) contribution, grouped by /24 key at the end so per-key sums
/// accumulate in letter-encounter order.
struct all_roots_rows {
    table::column<std::uint32_t> key;
    table::column<double> weighted_inflation;  // per-letter inflation * volume
    table::column<double> volume;
    table::column<double> users;

    void push(std::uint32_t k, double inflation, double vol, double w) {
        key.push_back(k);
        weighted_inflation.push_back(inflation * vol);
        volume.push_back(vol);
        users.push_back(w);
    }

    void finalize_into(weighted_cdf& cdf) const {
        const auto grouping = table::make_grouping(key.view());
        const auto inflation_sums = table::sum_by(grouping, weighted_inflation.view());
        const auto volume_sums = table::sum_by(grouping, volume.view());
        for (std::size_t g = 0; g < grouping.groups(); ++g) {
            if (volume_sums[g] > 0.0) {
                // A /24's user weight is the same in every letter; take the
                // last row's, matching assignment semantics.
                cdf.add(inflation_sums[g] / volume_sums[g], users[grouping.rows(g).back()]);
            }
        }
    }
};

} // namespace

double root_inflation_result::efficiency(char letter) const {
    auto it = geographic.find(letter);
    if (it == geographic.end() || it->second.empty()) return 0.0;
    return it->second.fraction_leq(zero_inflation_epsilon_ms);
}

std::vector<slash24_inflation> letter_inflation_slices(const capture::letter_table& letter,
                                                       const anycast::deployment& dep,
                                                       bool include_latency,
                                                       const topo::geo_database& geodb,
                                                       const pop::cdn_user_counts& users,
                                                       const root_inflation_options& options,
                                                       engine::thread_pool* pool) {
    /// Reduction output; has_gi marks /24s that survive the filters so they
    /// can be committed serially in key order after the parallel reduce.
    struct slash24_slice {
        slash24_inflation value;
        bool has_gi = false;
    };

    // Median TCP RTT per packed (source /24 key << 32) | site. The
    // column constructor scans encoded snapshot columns directly.
    table::sorted_lookup<std::uint64_t, double> tcp_median;
    if (include_latency) {
        tcp_median = table::sorted_lookup<std::uint64_t, double>(letter.tcp_key,
                                                                 letter.tcp_median_rtt_ms);
    }

    table::column<std::uint32_t> s24;
    s24.reserve(letter.rows());
    letter.source_ip.for_each([&](std::uint32_t ip) { s24.push_back(ip >> 8); });
    const auto grouping = table::make_grouping(s24.view(), pool);

    const auto slices = table::group_reduce<slash24_slice>(
        pool, grouping,
        [&](std::uint32_t key, std::span<const table::row_index> rows) {
            slash24_slice slice;
            const net::slash24 block{net::ipv4_addr{key << 8}};
            const auto located = geodb.locate(block);
            if (!located) return slice;  // unallocated (e.g. scrambled) source

            double weight = 1.0;
            if (options.weight_by_users) {
                const auto count = users.count(block);
                if (!count) return slice;  // outside the DITL∩CDN join
                weight = *count;
            }

            // Per-site volume runs: rows stably sorted by site keep the
            // original row order inside each site, so each site's sum is
            // bitwise what the row-order aggregation produced.
            std::vector<table::row_index> by_site(rows.begin(), rows.end());
            std::stable_sort(by_site.begin(), by_site.end(),
                             [&](table::row_index a, table::row_index b) {
                                 return letter.site[a] < letter.site[b];
                             });

            // Per-site aggregation over *global* sites only.
            double vol_total = 0.0;
            double dist_weighted = 0.0;  // sum of volume * distance
            double lat_vol = 0.0;
            double lat_weighted = 0.0;   // sum of volume * median RTT
            std::size_t i = 0;
            while (i < by_site.size()) {
                const std::uint32_t site_id = letter.site[by_site[i]];
                double site_volume = 0.0;
                for (; i < by_site.size() && letter.site[by_site[i]] == site_id; ++i) {
                    site_volume += letter.queries_per_day[by_site[i]];
                }
                const auto& site = dep.site_at(site_id);
                if (site.scope != route::announcement_scope::global) continue;
                const auto site_loc = dep.regions().at(site.region).location;
                const double d = geo::distance_km(*located, site_loc);
                vol_total += site_volume;
                dist_weighted += site_volume * d;
                if (include_latency) {
                    const auto* rtt = tcp_median.find((std::uint64_t{key} << 32) | site_id);
                    if (rtt) {
                        lat_vol += site_volume;
                        lat_weighted += site_volume * *rtt;
                    }
                }
            }
            if (vol_total <= 0.0) return slice;

            const double min_km = dep.nearest_global_site_km(*located);
            const double avg_km = dist_weighted / vol_total;
            slice.value.key = key;
            slice.value.gi_ms = std::max(
                0.0, geo::round_trip_fiber_ms(avg_km) - geo::round_trip_fiber_ms(min_km));
            slice.value.weight = weight;
            slice.value.vol_total = vol_total;
            slice.has_gi = true;

            if (include_latency && lat_vol > 0.0) {
                const double avg_rtt = lat_weighted / lat_vol;
                slice.value.li_ms = std::max(0.0, avg_rtt - geo::best_case_rtt_ms(min_km));
                slice.value.lat_vol = lat_vol;
                slice.value.has_li = true;
            }
            return slice;
        });

    std::vector<slash24_inflation> out;
    out.reserve(slices.size());
    for (const auto& slice : slices) {
        if (slice.has_gi) out.push_back(slice.value);
    }
    return out;
}

root_inflation_result compute_root_inflation(std::span<const capture::letter_table> letters,
                                             const dns::root_system& roots,
                                             const topo::geo_database& geodb,
                                             const pop::cdn_user_counts& users,
                                             const root_inflation_options& options,
                                             engine::thread_pool* pool) {
    root_inflation_result result;
    const auto geo_letters = roots.geographic_analysis_letters();
    const auto lat_letters = roots.latency_analysis_letters();

    all_roots_rows gi_all;
    all_roots_rows li_all;

    for (const auto& letter : letters) {
        const bool in_geo = std::find(geo_letters.begin(), geo_letters.end(), letter.letter) !=
                            geo_letters.end();
        if (!in_geo) continue;
        const bool in_lat = std::find(lat_letters.begin(), lat_letters.end(), letter.letter) !=
                            lat_letters.end();
        const auto& dep = roots.deployment_of(letter.letter);

        const auto slices =
            letter_inflation_slices(letter, dep, in_lat, geodb, users, options, pool);

        auto& gi_cdf = result.geographic[letter.letter];
        weighted_cdf* li_cdf = in_lat ? &result.latency[letter.letter] : nullptr;
        for (const auto& slice : slices) {
            gi_cdf.add(slice.gi_ms, slice.weight);
            gi_all.push(slice.key, slice.gi_ms, slice.vol_total, slice.weight);
            if (slice.has_li) {
                li_cdf->add(slice.li_ms, slice.weight);
                li_all.push(slice.key, slice.li_ms, slice.lat_vol, slice.weight);
            }
        }
    }

    gi_all.finalize_into(result.geographic_all_roots);
    li_all.finalize_into(result.latency_all_roots);
    return result;
}

root_inflation_result compute_root_inflation(std::span<const capture::filtered_letter> letters,
                                             const dns::root_system& roots,
                                             const topo::geo_database& geodb,
                                             const pop::cdn_user_counts& users,
                                             const root_inflation_options& options,
                                             engine::thread_pool* pool) {
    return compute_root_inflation(capture::to_tables(letters), roots, geodb, users, options,
                                  pool);
}

double cdn_inflation_result::efficiency(int ring) const {
    const auto& cdf = geographic_by_ring.at(static_cast<std::size_t>(ring));
    return cdf.empty() ? 0.0 : cdf.fraction_leq(zero_inflation_epsilon_ms);
}

cdn_inflation_result compute_cdn_inflation(const cdn::server_log_table& logs,
                                           const cdn::cdn_network& cdn) {
    cdn_inflation_result result;
    result.geographic_by_ring.resize(static_cast<std::size_t>(cdn.ring_count()));
    result.latency_by_ring.resize(static_cast<std::size_t>(cdn.ring_count()));

    for (std::size_t i = 0; i < logs.rows(); ++i) {
        const auto ring = static_cast<std::size_t>(logs.ring[i]);
        const auto user_loc = cdn.regions().at(logs.region[i]).location;
        const double min_km = cdn.nearest_front_end_km(user_loc, logs.ring[i]);
        const double gi_ms =
            std::max(0.0, geo::round_trip_fiber_ms(logs.front_end_km[i]) -
                              geo::round_trip_fiber_ms(min_km));
        const double li_ms =
            std::max(0.0, logs.median_rtt_ms[i] - geo::best_case_rtt_ms(min_km));
        result.geographic_by_ring[ring].add(gi_ms, logs.users[i]);
        result.latency_by_ring[ring].add(li_ms, logs.users[i]);
    }
    return result;
}

cdn_inflation_result compute_cdn_inflation(std::span<const cdn::server_log_row> logs,
                                           const cdn::cdn_network& cdn) {
    return compute_cdn_inflation(cdn::to_table(logs), cdn);
}

} // namespace ac::analysis
