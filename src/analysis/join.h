// Joining DITL query volumes with user populations (§2.1, §4.3, App. B).
//
// The paper's central methodological move: amortize root-DNS query volumes
// over the users each recursive serves, joining the two datasets by /24
// (DITL∩CDN). This module implements the join, the resulting
// queries-per-user-per-day CDFs (Fig. 3 / Fig. 8 / Fig. 9), the overlap
// statistics that justify the /24 aggregation (Table 4), and the
// favorite-site coherence measure of Eq. 3 (Fig. 10).
//
// All aggregation runs on the shared columnar kernels (src/table/): volumes
// are grouped by sorted key, so every result is deterministic by
// construction — iteration order is ascending key order, never hash order.
// Each function has a columnar form (the primary implementation, fed
// `capture::letter_table` views) and a row-oriented shim that converts.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "src/analysis/stats.h"
#include "src/capture/filter.h"
#include "src/dns/query_model.h"
#include "src/engine/thread_pool.h"
#include "src/population/population.h"
#include "src/topology/addressing.h"

namespace ac::analysis {

struct amortization_options {
    /// Join DITL volumes and user counts by /24 (true; Fig. 3) or by exact
    /// resolver IP (false; Fig. 9's sensitivity analysis).
    bool join_by_slash24 = true;
};

struct amortization_result {
    /// Queries per user per day, weighted by users: the CDN line.
    weighted_cdf cdn;
    /// The APNIC line: volume accumulated by ASN, divided by the AS's
    /// estimated user population.
    weighted_cdf apnic;
    /// The Ideal line: once-per-TTL querying amortized over CDN user counts.
    weighted_cdf ideal;
    /// Fraction of DITL query volume attributable to a user population.
    double attributed_volume_fraction = 0.0;
};

/// Builds Fig. 3 (or Fig. 8 when fed unfiltered captures, or Fig. 9 with
/// join_by_slash24=false). Columnar form. The big DITL∩CDN key sort runs
/// radix-partitioned over `pool` when one is given (null = serial); the
/// partitioned sort yields the exact serial permutation, so results are
/// identical at any thread count.
[[nodiscard]] amortization_result compute_amortization(
    std::span<const capture::letter_table> letters, const pop::user_base& base,
    const pop::cdn_user_counts& cdn_users, const pop::apnic_user_counts& apnic_users,
    const topo::ip_to_asn& as_mapper, const dns::query_model_options& model_options,
    const amortization_options& options = {}, engine::thread_pool* pool = nullptr);

/// Row-oriented shim: converts to columns and delegates.
[[nodiscard]] amortization_result compute_amortization(
    std::span<const capture::filtered_letter> letters, const pop::user_base& base,
    const pop::cdn_user_counts& cdn_users, const pop::apnic_user_counts& apnic_users,
    const topo::ip_to_asn& as_mapper, const dns::query_model_options& model_options,
    const amortization_options& options = {}, engine::thread_pool* pool = nullptr);

/// Per-/24 daily DITL query volume summed across letters, as parallel sorted
/// columns (keys ascend, volumes aligned). This is the join input both
/// compute_amortization and the serve layer's amortized point queries start
/// from — one implementation, no logic fork.
struct slash24_volumes {
    std::vector<std::uint32_t> keys;
    std::vector<double> volumes;

    [[nodiscard]] std::size_t size() const noexcept { return keys.size(); }
};

/// The /24-keyed DITL volume aggregation. The concatenated key sort runs
/// radix-partitioned over `pool` when given (null = serial); results are
/// identical at any thread count.
[[nodiscard]] slash24_volumes ditl_volumes_by_slash24(
    std::span<const capture::letter_table> letters, engine::thread_pool* pool = nullptr);

/// Table 4: how much of each dataset the other covers, with and without the
/// /24 aggregation.
struct overlap_stats {
    double ditl_recursives = 0.0;  // share of DITL sources with CDN user data
    double ditl_volume = 0.0;      // share of DITL query volume covered
    double cdn_recursives = 0.0;   // share of CDN-observed resolvers seen in DITL
    double cdn_volume = 0.0;       // share of CDN-observed users covered
};

struct overlap_comparison {
    overlap_stats by_ip;       // exact-address join
    overlap_stats by_slash24;  // /24 join
};

/// Columnar form: both universes are sorted key columns merged in one pass.
/// The DITL key sort runs radix-partitioned over `pool` when given.
[[nodiscard]] overlap_comparison compute_overlap(
    std::span<const capture::letter_table> letters, const pop::cdn_user_counts& cdn_users,
    engine::thread_pool* pool = nullptr);

/// Row-oriented shim: converts to columns and delegates.
[[nodiscard]] overlap_comparison compute_overlap(
    std::span<const capture::filtered_letter> letters, const pop::cdn_user_counts& cdn_users,
    engine::thread_pool* pool = nullptr);

/// Fig. 10 / Eq. 3: for each /24 with more than one active source IP, the
/// fraction of its queries that do not reach its most popular ("favorite")
/// site. Returns one CDF of /24s per letter.
struct favorite_site_result {
    std::map<char, weighted_cdf> fraction_not_favorite;  // CDF over /24s
};

/// Columnar form. Per-/24 reductions fan out over `pool` (null = inline);
/// output is identical at any thread count.
[[nodiscard]] favorite_site_result compute_favorite_site(
    std::span<const capture::letter_table> captures, engine::thread_pool* pool = nullptr);

/// Row-oriented shim: converts to columns and delegates.
[[nodiscard]] favorite_site_result compute_favorite_site(
    std::span<const capture::letter_capture> captures, engine::thread_pool* pool = nullptr);

} // namespace ac::analysis
