// Point-query entry points over a built world: the operational workload the
// paper frames in §1 — "what is the inflation for AS X?", "how amortized is
// /24 Y?" — extracted from the batch figure paths so the serve layer
// (src/serve) and the CLI answer from one implementation, no logic fork.
//
// The index is built once (from the same letter_inflation_slices /
// ditl_volumes_by_slash24 primitives the figures use) and is immutable
// afterwards: lookups are binary searches over sorted key columns, allocate
// nothing, and are safe to call from any number of threads concurrently.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/analysis/inflation.h"
#include "src/analysis/join.h"

namespace ac::analysis {

/// Amortization answer for one /24 in the DITL∩CDN join (the Fig. 3 CDN
/// line, as a point): queries_per_user_day is bitwise the value the CDF got.
struct amortized_point {
    double queries_per_day = 0.0;       // summed DITL volume across letters
    double users = 0.0;                 // Microsoft user count behind the /24
    double queries_per_user_day = 0.0;  // the amortized quotient
};

/// Inflation answer for one origin AS: the user-weighted mean of the
/// All-Roots per-/24 expectations (the quantities behind Fig. 2's All Roots
/// lines) over the AS's joined /24s.
struct as_inflation_point {
    double gi_ms = 0.0;         // expected geographic inflation per query
    double li_ms = 0.0;         // expected latency inflation per query
    double users = 0.0;         // joined users behind the AS
    std::uint32_t slash24s = 0; // /24 blocks contributing
    bool has_latency = false;   // at least one /24 had TCP-usable volume
};

/// Immutable query-side index: sorted /24 keys -> amortized points, sorted
/// ASNs -> inflation rollups. Build fans out over `pool` (null = inline);
/// contents are identical at any thread count.
class point_query_index {
public:
    /// Builds from the same inputs the figures consume (callers typically
    /// pass a world's accessors; analysis stays below core in the layering).
    [[nodiscard]] static point_query_index build(
        std::span<const capture::letter_table> letters, const dns::root_system& roots,
        const topo::geo_database& geodb, const pop::cdn_user_counts& users,
        const topo::ip_to_asn& as_mapper, engine::thread_pool* pool = nullptr);

    /// Binary-searched point lookups; nullptr = key outside the join.
    [[nodiscard]] const amortized_point* amortized(std::uint32_t slash24_key) const noexcept;
    [[nodiscard]] const as_inflation_point* inflation(topo::asn_t asn) const noexcept;

    /// Full sorted views, for grid exports and differential tests.
    [[nodiscard]] std::span<const std::uint32_t> slash24_keys() const noexcept {
        return slash24_keys_;
    }
    [[nodiscard]] std::span<const amortized_point> amortized_points() const noexcept {
        return amortized_;
    }
    [[nodiscard]] std::span<const topo::asn_t> asns() const noexcept { return asns_; }
    [[nodiscard]] std::span<const as_inflation_point> inflation_points() const noexcept {
        return inflation_;
    }

private:
    std::vector<std::uint32_t> slash24_keys_;  // ascending
    std::vector<amortized_point> amortized_;   // aligned with slash24_keys_
    std::vector<topo::asn_t> asns_;            // ascending
    std::vector<as_inflation_point> inflation_;  // aligned with asns_
};

/// The satellite-named point queries: thin lookups over the index so call
/// sites read like the paper's questions.
[[nodiscard]] std::optional<as_inflation_point> inflation_for_as(const point_query_index& index,
                                                                 topo::asn_t asn);
[[nodiscard]] std::optional<amortized_point> amortized_for_slash24(
    const point_query_index& index, net::slash24 block);

} // namespace ac::analysis
