// Anycast vs best-unicast comparison.
//
// Prior work ([51], discussed in §3) frames inflation against the best
// *unicast* alternative: what if each user could address the single best
// site directly? The paper deliberately measures deployment-relative
// inflation instead (coverage + unpublished unicast addresses), but with a
// simulated world both are computable, so this module provides the
// comparison the two methodologies disagree over: anycast penalty
// (anycast RTT minus best per-site unicast RTT) and residual unicast
// inflation (best unicast RTT minus the physical bound).
#pragma once

#include "src/analysis/stats.h"
#include "src/anycast/deployment.h"
#include "src/population/population.h"

namespace ac::analysis {

struct unicast_comparison {
    /// Anycast penalty per user, ms: selected-anycast RTT minus the best
    /// unicast RTT over all global sites ([51]'s "anycast inflation").
    weighted_cdf anycast_penalty_ms;
    /// Best-unicast residual inflation over the Eq. 2 physical bound: even
    /// the best unicast route is inflated (§3.1's third reason for using a
    /// theoretical lower bound).
    weighted_cdf unicast_inflation_ms;
    /// Share of users for whom anycast already picks the unicast-best site.
    double anycast_optimal_share = 0.0;
};

/// Compares anycast selection against per-site unicast routing for every
/// user location. Only global sites participate (local-site reachability is
/// scoped by BGP propagation and carries over automatically).
[[nodiscard]] unicast_comparison compare_with_unicast(const anycast::deployment& dep,
                                                      const pop::user_base& users);

} // namespace ac::analysis
