// Poor-path diagnosis: why is this <region, AS> slow?
//
// §6 closes with "there is still room for latency optimization in anycast
// deployments, which is an active area of research [43, 47, 82]". This
// module is that tooling for the synthetic world: it classifies each user
// location's CDN path against its physical optimum and attributes the
// excess to one of the operational causes an engineer would act on —
// missing peering (transit detour), a far ingress (early-exit mismatch), a
// far front-end (ring too small near this user), or plain distance (no site
// anywhere near).
#pragma once

#include <string_view>
#include <vector>

#include "src/cdn/cdn.h"
#include "src/population/population.h"

namespace ac::analysis {

enum class path_problem : std::uint8_t {
    healthy,          // within budget of the physical optimum
    no_peering,       // enters via transit: peering would shortcut the path
    far_ingress,      // peered, but the chosen ingress PoP is far away
    far_front_end,    // ingress is fine; the ring's nearest front-end is far
    isolated_user,    // no front-end anywhere near: a deployment gap
};

[[nodiscard]] std::string_view to_string(path_problem problem) noexcept;

struct path_diagnosis {
    topo::asn_t asn = 0;
    topo::region_id region = 0;
    double users = 0.0;
    double rtt_ms = 0.0;
    double optimal_ms = 0.0;     // best_case_rtt over the nearest front-end
    double excess_ms = 0.0;      // rtt - optimal
    path_problem problem = path_problem::healthy;
};

struct diagnosis_options {
    int ring = -1;                   // -1 = largest ring
    double healthy_budget_ms = 25.0; // excess below this is "healthy"
    double far_km = 1500.0;          // ingress/front-end distance threshold
    double isolated_km = 3000.0;     // nearest front-end beyond this = gap
};

struct diagnosis_report {
    std::vector<path_diagnosis> diagnoses;       // every reachable location
    /// User-weighted share per problem class, indexed by path_problem.
    std::array<double, 5> user_share_by_problem{};

    /// The worst offenders by user-weighted excess (for an engineer's
    /// worklist), largest first.
    [[nodiscard]] std::vector<path_diagnosis> worst(std::size_t count) const;
};

[[nodiscard]] diagnosis_report diagnose_cdn_paths(const cdn::cdn_network& cdn,
                                                  const pop::user_base& users,
                                                  const diagnosis_options& options = {});

} // namespace ac::analysis
