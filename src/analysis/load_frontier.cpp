#include "src/analysis/load_frontier.h"

#include <ostream>
#include <stdexcept>

#include "src/analysis/stats.h"
#include "src/load/gauges.h"
#include "src/netbase/strfmt.h"
#include "src/obs/trace.h"
#include "src/table/table.h"

namespace ac::analysis {

namespace {

load_frontier_point make_point(const load::route_plan& plan, const load::bucket_result& r,
                               load::policy_kind policy, int level, int bucket) {
    load_frontier_point p;
    p.policy = policy;
    p.level_pct = level;
    p.bucket = bucket;
    p.offered_conn = r.offered;
    p.served_first_conn = r.served_first;
    p.shed_conn = r.shed;
    p.unserved_conn = r.unserved;
    p.overflow_hop_conn = r.overflow_hop_conn;

    // Latency of what was actually served: every kept (location, ring) cell
    // weighs its RTT by its connections. Latency-only keeps everything on
    // the outermost ring (overloaded front-ends still serve, just badly —
    // that shows up in overload_fraction, not here); load-aware's unserved
    // residue is excluded because those users got nothing.
    weighted_cdf rtt;
    const auto rings = static_cast<std::size_t>(plan.rings());
    for (std::size_t l = 0; l < plan.locations(); ++l) {
        for (std::size_t ring = 0; ring < rings; ++ring) {
            const std::int64_t kept = r.kept[l * rings + ring];
            if (kept > 0) {
                rtt.add(plan.rtt_ms(l, static_cast<int>(ring)), static_cast<double>(kept));
            }
        }
    }
    if (!rtt.empty()) {
        p.p50_ms = rtt.quantile(0.5);
        p.p95_ms = rtt.quantile(0.95);
    }
    if (r.offered > 0) {
        p.overload_fraction = static_cast<double>(r.unserved) / static_cast<double>(r.offered);
        p.shed_fraction = static_cast<double>(r.shed) / static_cast<double>(r.offered);
    }
    if (r.shed > 0) {
        p.mean_overflow_hops =
            static_cast<double>(r.overflow_hop_conn) / static_cast<double>(r.shed);
    }
    return p;
}

/// Per-front-end served totals through the table kernels: group every kept
/// (location, ring) cell by its front-end and sum connections.
std::vector<double> served_by_front_end(const load::route_plan& plan,
                                        const load::bucket_result& r,
                                        engine::thread_pool* pool) {
    std::vector<std::uint32_t> keys;
    std::vector<double> conn;
    const auto rings = static_cast<std::size_t>(plan.rings());
    for (std::size_t l = 0; l < plan.locations(); ++l) {
        for (std::size_t ring = 0; ring < rings; ++ring) {
            const std::int64_t kept = r.kept[l * rings + ring];
            if (kept > 0) {
                keys.push_back(
                    static_cast<std::uint32_t>(plan.front_end(l, static_cast<int>(ring))));
                conn.push_back(static_cast<double>(kept));
            }
        }
    }
    const auto grouping = table::make_grouping(std::span<const std::uint32_t>{keys}, pool);
    const auto totals = table::sum_by(grouping, std::span<const double>{conn});
    std::vector<double> served(static_cast<std::size_t>(plan.front_ends()), 0.0);
    for (std::size_t g = 0; g < grouping.groups(); ++g) {
        served[grouping.keys[g]] = totals[g];
    }
    return served;
}

} // namespace

load_frontier_result compute_load_frontier(const cdn::cdn_network& cdn,
                                           const pop::user_base& base,
                                           const scenario::timeline& tl,
                                           const load_frontier_options& options,
                                           engine::thread_pool* pool) {
    if (options.levels.empty()) {
        throw std::invalid_argument("load_frontier: no demand levels");
    }
    obs::span frontier_span{"load/frontier"};

    const load::demand_series demand{base, tl, options.demand,
                                     static_cast<topo::region_id>(cdn.regions().size())};
    const load::route_plan plan{cdn, base, pool};
    const load::capacity_model capacity{cdn, demand.nominal_total(), options.capacity};

    load_frontier_result out;
    out.buckets = demand.buckets();
    out.locations = plan.locations();
    out.reachable_locations = plan.reachable_locations();
    out.nominal_conn = demand.nominal_total();
    out.total_capacity_conn = capacity.total();
    out.capacity_conn.assign(capacity.per_front_end().begin(), capacity.per_front_end().end());

    // Reference cell for the per-front-end serving profile: the load-aware
    // policy at nominal demand when available, else latency-only.
    const load::policy_kind ref_policy = options.run_load_aware
                                             ? load::policy_kind::load_aware
                                             : load::policy_kind::latency_only;
    int ref_level = options.levels.front();
    for (const int level : options.levels) {
        if (level == 100) ref_level = 100;
    }

    const load::policy_kind kinds[] = {load::policy_kind::latency_only,
                                       load::policy_kind::load_aware};
    for (const load::policy_kind kind : kinds) {
        if (kind == load::policy_kind::latency_only && !options.run_latency_only) continue;
        if (kind == load::policy_kind::load_aware && !options.run_load_aware) continue;
        for (const int level : options.levels) {
            for (int t = 0; t < demand.buckets(); ++t) {
                const auto r = load::assign_bucket(plan, demand, t, level,
                                                   capacity.per_front_end(), kind, pool);
                if (kind == ref_policy && level == ref_level && t == 0) {
                    out.fe_served_conn = served_by_front_end(plan, r, pool);
                }
                out.points.push_back(make_point(plan, r, kind, level, t));
            }
        }
    }
    frontier_span.set_items(out.points.size());

    if (!out.fe_served_conn.empty()) {
        load::set_front_end_conn_gauges(out.fe_served_conn);
    }
    return out;
}

void write_load_frontier_csv(std::ostream& out, const load_frontier_result& result,
                             std::optional<load::policy_kind> only) {
    if (!only) out << "policy,";
    out << "demand_pct,bucket,offered_conn,served_first_conn,shed_conn,unserved_conn,"
           "p50_ms,p95_ms,overload_fraction,shed_fraction,mean_overflow_hops\n";
    for (const auto& p : result.points) {
        if (only && p.policy != *only) continue;
        if (!only) out << load::policy_name(p.policy) << ',';
        out << p.level_pct << ',' << p.bucket << ',' << p.offered_conn << ','
            << p.served_first_conn << ',' << p.shed_conn << ',' << p.unserved_conn << ','
            << strfmt::fixed(p.p50_ms, 3) << ',' << strfmt::fixed(p.p95_ms, 3) << ','
            << strfmt::fixed(p.overload_fraction, 6) << ','
            << strfmt::fixed(p.shed_fraction, 6) << ','
            << strfmt::fixed(p.mean_overflow_hops, 4) << '\n';
    }
}

} // namespace ac::analysis
