// The paper's inflation metrics (§3.1, Eq. 1 and Eq. 2), applied with one
// methodology to both systems (§6's direct-comparability requirement).
//
// Geographic inflation per query for recursive R and deployment j:
//   GI(R,j) = (2/c_f) * ( sum_i N(R,j_i) d(R,j_i) / N(R,j) - min_k d(R,j_k) )
// over *global* sites only. Latency inflation replaces measured distance
// with TCP-derived median RTTs and lower-bounds the optimum by the (2/3)c_f
// rule [46]:
//   LI(R,j) = sum_i N(R,j_i) l(R,j_i) / N(R,j) - best_case_rtt(min_k d).
//
// Results are CDFs of *users*: each /24's value is weighted by the Microsoft
// user count behind it (the DITL∩CDN join).
//
// Both metrics run on the shared columnar kernels (src/table/): records are
// grouped by source /24 through a stable sort, so /24s are visited in
// ascending key order and every floating-point accumulation order is a pure
// function of the input rows. The columnar forms are the primary
// implementations; the row-oriented overloads convert and delegate.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "src/analysis/stats.h"
#include "src/anycast/deployment.h"
#include "src/capture/filter.h"
#include "src/cdn/cdn.h"
#include "src/cdn/telemetry.h"
#include "src/dns/root_letters.h"
#include "src/engine/thread_pool.h"
#include "src/population/population.h"
#include "src/topology/addressing.h"

namespace ac::analysis {

struct root_inflation_options {
    /// Weight /24s by Microsoft user counts (the DITL∩CDN join). When false,
    /// every /24 weighs 1 (a recursive-level rather than user-level view).
    bool weight_by_users = true;
};

struct root_inflation_result {
    /// Geographic inflation per root query, ms, per letter (Fig. 2a).
    std::map<char, weighted_cdf> geographic;
    /// System-wide per-query inflation, accounting for each recursive's
    /// spread of queries over letters (the "All Roots" line).
    weighted_cdf geographic_all_roots;
    /// Latency inflation per root query, ms (Fig. 2b; TCP-usable letters).
    std::map<char, weighted_cdf> latency;
    weighted_cdf latency_all_roots;

    /// Fraction of users with zero geographic inflation, per letter — the
    /// y-intercepts of Fig. 2a and the "efficiency" of Fig. 7a-right.
    [[nodiscard]] double efficiency(char letter) const;
};

/// One /24's inflation contribution for a single letter. Produced in
/// ascending /24 key order; only /24s that pass the paper's filters (located,
/// inside the DITL∩CDN join when weighting, nonzero global-site volume)
/// appear. Shared by the batch CDFs (compute_root_inflation) and the serve
/// layer's per-AS point queries — one implementation, no logic fork.
struct slash24_inflation {
    std::uint32_t key = 0;   // /24 key (source ip >> 8)
    double gi_ms = 0.0;      // geographic inflation per query (Eq. 1)
    double li_ms = 0.0;      // latency inflation per query (Eq. 2)
    double weight = 0.0;     // user weight behind the /24
    double vol_total = 0.0;  // global-site query volume behind gi_ms
    double lat_vol = 0.0;    // TCP-covered volume behind li_ms
    bool has_li = false;     // latency metric available for this /24
};

/// Per-/24 inflation slices for one letter's capture against its deployment.
/// `include_latency` gates the TCP RTT join (letters without usable TCP data
/// get gi only). Reductions fan out over `pool` (null = inline); output is
/// identical at any thread count.
[[nodiscard]] std::vector<slash24_inflation> letter_inflation_slices(
    const capture::letter_table& letter, const anycast::deployment& dep,
    bool include_latency, const topo::geo_database& geodb, const pop::cdn_user_counts& users,
    const root_inflation_options& options = {}, engine::thread_pool* pool = nullptr);

/// Computes Fig. 2 from columnar DITL captures. Letters are selected by
/// their data-availability flags (G/I excluded; H single-site excluded;
/// D/L excluded from the latency metric). Per-/24 reductions fan out over
/// `pool` (null = inline); output is identical at any thread count.
[[nodiscard]] root_inflation_result compute_root_inflation(
    std::span<const capture::letter_table> letters, const dns::root_system& roots,
    const topo::geo_database& geodb, const pop::cdn_user_counts& users,
    const root_inflation_options& options = {}, engine::thread_pool* pool = nullptr);

/// Row-oriented shim: converts to columns and delegates.
[[nodiscard]] root_inflation_result compute_root_inflation(
    std::span<const capture::filtered_letter> letters, const dns::root_system& roots,
    const topo::geo_database& geodb, const pop::cdn_user_counts& users,
    const root_inflation_options& options = {}, engine::thread_pool* pool = nullptr);

struct cdn_inflation_result {
    std::vector<weighted_cdf> geographic_by_ring;  // indexed by ring
    std::vector<weighted_cdf> latency_by_ring;

    [[nodiscard]] double efficiency(int ring) const;
};

/// Computes Fig. 5's CDN curves from columnar server-side logs. Users in a
/// <region, AS> location sit at the location's mean position (§6).
[[nodiscard]] cdn_inflation_result compute_cdn_inflation(const cdn::server_log_table& logs,
                                                         const cdn::cdn_network& cdn);

/// Row-oriented shim: converts to columns and delegates.
[[nodiscard]] cdn_inflation_result compute_cdn_inflation(
    std::span<const cdn::server_log_row> logs, const cdn::cdn_network& cdn);

/// Zero-inflation tolerance: distances within this round-trip budget of the
/// optimum count as uninflated (sub-ms wobble is measurement noise).
inline constexpr double zero_inflation_epsilon_ms = 0.5;

} // namespace ac::analysis
