// Deployment-level metrics: size vs latency vs efficiency (Fig. 7) and
// AS-path structure vs inflation (Fig. 6).
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "src/analysis/stats.h"
#include "src/anycast/deployment.h"
#include "src/atlas/atlas.h"
#include "src/cdn/cdn.h"
#include "src/dns/root_letters.h"
#include "src/population/population.h"

namespace ac::analysis {

/// Fig. 7b: coverage curves — the share of users whose nearest (global)
/// site is within a radius.
struct coverage_curve {
    std::string name;
    int global_sites = 0;
    std::vector<double> radii_km;
    std::vector<double> covered_fraction;  // aligned with radii_km
};

[[nodiscard]] coverage_curve compute_coverage(const anycast::deployment& dep,
                                              const pop::user_base& base,
                                              const topo::region_table& regions,
                                              std::span<const double> radii_km);

[[nodiscard]] coverage_curve compute_ring_coverage(const cdn::cdn_network& cdn, int ring,
                                                   const pop::user_base& base,
                                                   const topo::region_table& regions,
                                                   std::span<const double> radii_km);

/// "All Roots" coverage: nearest global site of *any* letter.
[[nodiscard]] coverage_curve compute_all_roots_coverage(const dns::root_system& roots,
                                                        const pop::user_base& base,
                                                        const topo::region_table& regions,
                                                        std::span<const double> radii_km);

/// Fig. 7a-left: median Atlas-probe latency to a deployment or ring.
[[nodiscard]] double median_probe_latency(const atlas::probe_fleet& fleet,
                                          const anycast::deployment& dep, std::uint64_t seed);
[[nodiscard]] double median_probe_latency_to_ring(const atlas::probe_fleet& fleet,
                                                  const cdn::cdn_network& cdn, int ring,
                                                  std::uint64_t seed);

/// Fig. 6a: distribution of organization-level path lengths from probe
/// locations, bucketed 2 / 3 / 4 / 5+ ASes; each <region, AS> location gets
/// equal weight, split across observed lengths.
struct path_length_distribution {
    std::string destination;            // "CDN", "All Roots", or a letter
    std::array<double, 4> share{};      // buckets: 2, 3, 4, 5+
};

/// Fig. 6b: geographic inflation grouped by AS-path length toward one
/// destination (buckets 2, 3, 4+).
struct inflation_by_path_length {
    std::string destination;
    std::array<box_summary, 3> boxes{};  // buckets: 2, 3, 4+
};

struct aspath_study_result {
    std::vector<path_length_distribution> lengths;        // CDN, All Roots, letters
    std::vector<inflation_by_path_length> inflation;      // CDN, All Roots, letters
};

/// Runs the §7.1 analysis over the probe fleet: traceroute-derived org-path
/// lengths to every letter and to the CDN, paired with the probe location's
/// geographic inflation toward that destination.
[[nodiscard]] aspath_study_result run_aspath_study(const atlas::probe_fleet& fleet,
                                                   const dns::root_system& roots,
                                                   const cdn::cdn_network& cdn,
                                                   const topo::as_graph& graph);

} // namespace ac::analysis
