#include "src/analysis/join.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace ac::analysis {

namespace {

/// Per-source daily query volume summed across letters, keyed either by /24
/// or by exact IP.
std::unordered_map<std::uint32_t, double> volumes_by_key(
    std::span<const capture::filtered_letter> letters, bool by_slash24) {
    std::unordered_map<std::uint32_t, double> volumes;
    for (const auto& letter : letters) {
        for (const auto& record : letter.records) {
            const std::uint32_t key = by_slash24 ? net::slash24{record.source_ip}.key()
                                                 : record.source_ip.value();
            volumes[key] += record.queries_per_day;
        }
    }
    return volumes;
}

} // namespace

amortization_result compute_amortization(std::span<const capture::filtered_letter> letters,
                                         const pop::user_base& base,
                                         const pop::cdn_user_counts& cdn_users,
                                         const pop::apnic_user_counts& apnic_users,
                                         const topo::ip_to_asn& as_mapper,
                                         const dns::query_model_options& model_options,
                                         const amortization_options& options) {
    amortization_result result;
    const auto volumes = volumes_by_key(letters, options.join_by_slash24);

    double total_volume = 0.0;
    double attributed_volume = 0.0;
    std::unordered_map<topo::asn_t, double> volume_by_as;

    for (const auto& [key, volume] : volumes) {
        total_volume += volume;
        const net::slash24 block =
            options.join_by_slash24 ? net::slash24{net::ipv4_addr{key << 8}}
                                    : net::slash24{net::ipv4_addr{key}};

        // CDN line: join with Microsoft user counts at the same granularity.
        std::optional<double> users;
        if (options.join_by_slash24) {
            users = cdn_users.count(block);
        } else {
            users = cdn_users.count(net::ipv4_addr{key});
        }
        if (users && *users > 0.0) {
            result.cdn.add(volume / *users, *users);
            attributed_volume += volume;
        }

        // APNIC accumulates by origin AS regardless of the join mode (§2.1).
        if (const auto asn = as_mapper.lookup(block)) {
            volume_by_as[*asn] += volume;
        }
    }

    for (const auto& [asn, volume] : volume_by_as) {
        const auto users = apnic_users.count(asn);
        if (users && *users > 0.0) {
            result.apnic.add(volume / *users, *users);
        }
    }

    // Ideal: one query per TLD record per TTL, amortized over Microsoft user
    // counts (§4.3). The whole zone is refreshed, not just active TLDs.
    const double ideal_rate = model_options.max_tlds / model_options.ttl_days;
    for (const auto& rec : base.recursives()) {
        const auto users = cdn_users.count(rec.block);
        if (users && *users > 0.0) {
            result.ideal.add(ideal_rate / *users, *users);
        }
    }

    result.attributed_volume_fraction =
        total_volume > 0.0 ? attributed_volume / total_volume : 0.0;
    return result;
}

overlap_comparison compute_overlap(std::span<const capture::filtered_letter> letters,
                                   const pop::cdn_user_counts& cdn_users) {
    overlap_comparison comparison;

    for (const bool by_slash24 : {false, true}) {
        const auto ditl_volumes = volumes_by_key(letters, by_slash24);

        // CDN-side universe at matching granularity, with user counts as the
        // CDN's volume proxy.
        std::unordered_map<std::uint32_t, double> cdn_universe;
        if (by_slash24) {
            for (const auto block : cdn_users.observed_blocks()) {
                cdn_universe.emplace(block.key(), cdn_users.count(block).value_or(0.0));
            }
        } else {
            for (const auto ip : cdn_users.observed_ips()) {
                cdn_universe.emplace(ip.value(), cdn_users.count(ip).value_or(0.0));
            }
        }

        double ditl_total_volume = 0.0;
        double ditl_matched_volume = 0.0;
        std::size_t ditl_matched_sources = 0;
        for (const auto& [key, volume] : ditl_volumes) {
            ditl_total_volume += volume;
            if (cdn_universe.contains(key)) {
                ditl_matched_volume += volume;
                ++ditl_matched_sources;
            }
        }

        double cdn_total_users = 0.0;
        double cdn_matched_users = 0.0;
        std::size_t cdn_matched_sources = 0;
        for (const auto& [key, users] : cdn_universe) {
            cdn_total_users += users;
            if (ditl_volumes.contains(key)) {
                cdn_matched_users += users;
                ++cdn_matched_sources;
            }
        }

        overlap_stats stats;
        stats.ditl_recursives = ditl_volumes.empty()
                                    ? 0.0
                                    : static_cast<double>(ditl_matched_sources) /
                                          static_cast<double>(ditl_volumes.size());
        stats.ditl_volume =
            ditl_total_volume > 0.0 ? ditl_matched_volume / ditl_total_volume : 0.0;
        stats.cdn_recursives = cdn_universe.empty()
                                   ? 0.0
                                   : static_cast<double>(cdn_matched_sources) /
                                         static_cast<double>(cdn_universe.size());
        stats.cdn_volume = cdn_total_users > 0.0 ? cdn_matched_users / cdn_total_users : 0.0;

        (by_slash24 ? comparison.by_slash24 : comparison.by_ip) = stats;
    }
    return comparison;
}

favorite_site_result compute_favorite_site(
    std::span<const capture::letter_capture> captures) {
    favorite_site_result result;
    for (const auto& capture : captures) {
        if (capture.spec.anon == dns::anonymization::full) continue;

        // /24 -> { ip set, site -> volume }.
        struct acc {
            std::unordered_set<std::uint32_t> ips;
            std::unordered_map<route::site_id, double> by_site;
            double total = 0.0;
        };
        std::unordered_map<std::uint32_t, acc> per_block;
        for (const auto& record : capture.records) {
            auto& a = per_block[net::slash24{record.source_ip}.key()];
            a.ips.insert(record.source_ip.value());
            a.by_site[record.site] += record.queries_per_day;
            a.total += record.queries_per_day;
        }

        auto& cdf = result.fraction_not_favorite[capture.letter];
        for (const auto& [key, a] : per_block) {
            // Paper: skip /24s where only one IP queried this letter.
            if (a.ips.size() < 2 || a.total <= 0.0) continue;
            double favorite = 0.0;
            for (const auto& [site, volume] : a.by_site) {
                favorite = std::max(favorite, volume);
            }
            cdf.add(1.0 - favorite / a.total, 1.0);
        }
    }
    return result;
}

} // namespace ac::analysis
