#include "src/analysis/join.h"

#include <algorithm>

#include "src/table/table.h"

namespace ac::analysis {

namespace {

/// Per-source daily query volume summed across letters, keyed either by /24
/// or by exact IP. Keys ascend; volumes are aligned with keys.
struct keyed_volumes {
    std::vector<std::uint32_t> keys;
    std::vector<double> volumes;

    [[nodiscard]] std::size_t size() const noexcept { return keys.size(); }
};

keyed_volumes volumes_by_key(std::span<const capture::letter_table> letters,
                             bool by_slash24, engine::thread_pool* pool) {
    std::size_t rows = 0;
    for (const auto& letter : letters) rows += letter.rows();

    table::column<std::uint32_t> keys;
    table::column<double> qpd;
    keys.reserve(rows);
    qpd.reserve(rows);
    for (const auto& letter : letters) {
        // Sequential decode of the (possibly encoded) per-letter columns;
        // the concatenated key column then sorts radix-partitioned on the
        // pool.
        letter.source_ip.for_each(
            [&](std::uint32_t ip) { keys.push_back(by_slash24 ? ip >> 8 : ip); });
        letter.queries_per_day.for_each([&](double q) { qpd.push_back(q); });
    }

    auto grouping = table::make_grouping(keys.view(), pool);
    keyed_volumes out;
    out.volumes = table::sum_by(grouping, qpd.view());
    out.keys = std::move(grouping.keys);
    return out;
}

/// The CDN-side universe at one granularity, as sorted parallel columns:
/// observed keys ascending with user counts as the CDN's volume proxy.
keyed_volumes cdn_universe(const pop::cdn_user_counts& cdn_users, bool by_slash24) {
    table::column<std::uint32_t> keys;
    table::column<double> users;
    if (by_slash24) {
        for (const auto block : cdn_users.observed_blocks()) {
            keys.push_back(block.key());
            users.push_back(cdn_users.count(block).value_or(0.0));
        }
    } else {
        for (const auto ip : cdn_users.observed_ips()) {
            keys.push_back(ip.value());
            users.push_back(cdn_users.count(ip).value_or(0.0));
        }
    }
    const auto perm = table::sort_permutation(keys.view());
    keyed_volumes out;
    out.keys = table::gather(keys.view(), perm);
    out.volumes = table::gather(users.view(), perm);
    return out;
}

} // namespace

slash24_volumes ditl_volumes_by_slash24(std::span<const capture::letter_table> letters,
                                        engine::thread_pool* pool) {
    auto keyed = volumes_by_key(letters, /*by_slash24=*/true, pool);
    slash24_volumes out;
    out.keys = std::move(keyed.keys);
    out.volumes = std::move(keyed.volumes);
    return out;
}

amortization_result compute_amortization(std::span<const capture::letter_table> letters,
                                         const pop::user_base& base,
                                         const pop::cdn_user_counts& cdn_users,
                                         const pop::apnic_user_counts& apnic_users,
                                         const topo::ip_to_asn& as_mapper,
                                         const dns::query_model_options& model_options,
                                         const amortization_options& options,
                                         engine::thread_pool* pool) {
    amortization_result result;
    const auto volumes = volumes_by_key(letters, options.join_by_slash24, pool);

    double total_volume = 0.0;
    double attributed_volume = 0.0;
    table::column<topo::asn_t> as_keys;
    table::column<double> as_volume_rows;

    for (std::size_t i = 0; i < volumes.size(); ++i) {
        const std::uint32_t key = volumes.keys[i];
        const double volume = volumes.volumes[i];
        total_volume += volume;
        const net::slash24 block =
            options.join_by_slash24 ? net::slash24{net::ipv4_addr{key << 8}}
                                    : net::slash24{net::ipv4_addr{key}};

        // CDN line: join with Microsoft user counts at the same granularity.
        std::optional<double> users;
        if (options.join_by_slash24) {
            users = cdn_users.count(block);
        } else {
            users = cdn_users.count(net::ipv4_addr{key});
        }
        if (users && *users > 0.0) {
            result.cdn.add(volume / *users, *users);
            attributed_volume += volume;
        }

        // APNIC accumulates by origin AS regardless of the join mode (§2.1).
        if (const auto asn = as_mapper.lookup(block)) {
            as_keys.push_back(*asn);
            as_volume_rows.push_back(volume);
        }
    }

    const auto as_grouping = table::make_grouping(as_keys.view(), pool);
    const auto volume_by_as = table::sum_by(as_grouping, as_volume_rows.view());
    for (std::size_t g = 0; g < as_grouping.groups(); ++g) {
        const auto users = apnic_users.count(as_grouping.keys[g]);
        if (users && *users > 0.0) {
            result.apnic.add(volume_by_as[g] / *users, *users);
        }
    }

    // Ideal: one query per TLD record per TTL, amortized over Microsoft user
    // counts (§4.3). The whole zone is refreshed, not just active TLDs.
    const double ideal_rate = model_options.max_tlds / model_options.ttl_days;
    for (const auto& rec : base.recursives()) {
        const auto users = cdn_users.count(rec.block);
        if (users && *users > 0.0) {
            result.ideal.add(ideal_rate / *users, *users);
        }
    }

    result.attributed_volume_fraction =
        total_volume > 0.0 ? attributed_volume / total_volume : 0.0;
    return result;
}

amortization_result compute_amortization(std::span<const capture::filtered_letter> letters,
                                         const pop::user_base& base,
                                         const pop::cdn_user_counts& cdn_users,
                                         const pop::apnic_user_counts& apnic_users,
                                         const topo::ip_to_asn& as_mapper,
                                         const dns::query_model_options& model_options,
                                         const amortization_options& options,
                                         engine::thread_pool* pool) {
    return compute_amortization(capture::to_tables(letters), base, cdn_users, apnic_users,
                                as_mapper, model_options, options, pool);
}

overlap_comparison compute_overlap(std::span<const capture::letter_table> letters,
                                   const pop::cdn_user_counts& cdn_users,
                                   engine::thread_pool* pool) {
    overlap_comparison comparison;

    for (const bool by_slash24 : {false, true}) {
        const auto ditl = volumes_by_key(letters, by_slash24, pool);
        const auto cdn = cdn_universe(cdn_users, by_slash24);

        // One merge pass over the two sorted key columns.
        double ditl_total_volume = 0.0;
        double ditl_matched_volume = 0.0;
        std::size_t ditl_matched_sources = 0;
        double cdn_total_users = 0.0;
        double cdn_matched_users = 0.0;
        std::size_t cdn_matched_sources = 0;

        for (const double volume : ditl.volumes) ditl_total_volume += volume;
        for (const double users : cdn.volumes) cdn_total_users += users;

        std::size_t d = 0;
        std::size_t c = 0;
        while (d < ditl.size() && c < cdn.size()) {
            if (ditl.keys[d] < cdn.keys[c]) {
                ++d;
            } else if (cdn.keys[c] < ditl.keys[d]) {
                ++c;
            } else {
                ditl_matched_volume += ditl.volumes[d];
                ++ditl_matched_sources;
                cdn_matched_users += cdn.volumes[c];
                ++cdn_matched_sources;
                ++d;
                ++c;
            }
        }

        overlap_stats stats;
        stats.ditl_recursives = ditl.size() == 0
                                    ? 0.0
                                    : static_cast<double>(ditl_matched_sources) /
                                          static_cast<double>(ditl.size());
        stats.ditl_volume =
            ditl_total_volume > 0.0 ? ditl_matched_volume / ditl_total_volume : 0.0;
        stats.cdn_recursives = cdn.size() == 0
                                   ? 0.0
                                   : static_cast<double>(cdn_matched_sources) /
                                         static_cast<double>(cdn.size());
        stats.cdn_volume = cdn_total_users > 0.0 ? cdn_matched_users / cdn_total_users : 0.0;

        (by_slash24 ? comparison.by_slash24 : comparison.by_ip) = stats;
    }
    return comparison;
}

overlap_comparison compute_overlap(std::span<const capture::filtered_letter> letters,
                                   const pop::cdn_user_counts& cdn_users,
                                   engine::thread_pool* pool) {
    return compute_overlap(capture::to_tables(letters), cdn_users, pool);
}

favorite_site_result compute_favorite_site(std::span<const capture::letter_table> captures,
                                           engine::thread_pool* pool) {
    favorite_site_result result;
    for (const auto& capture : captures) {
        if (capture.spec.anon == dns::anonymization::full) continue;

        table::column<std::uint32_t> s24;
        s24.reserve(capture.rows());
        for (std::size_t i = 0; i < capture.rows(); ++i) {
            s24.push_back(capture.source_ip[i] >> 8);
        }
        const auto grouping = table::make_grouping(s24.view());

        struct sample {
            double value = 0.0;
            bool keep = false;
        };
        const auto samples = table::group_reduce<sample>(
            pool, grouping,
            [&](std::uint32_t, std::span<const table::row_index> rows) {
                sample s;
                // Paper: skip /24s where only one IP queried this letter.
                std::vector<std::uint32_t> ips;
                ips.reserve(rows.size());
                for (const auto row : rows) ips.push_back(capture.source_ip[row]);
                std::sort(ips.begin(), ips.end());
                ips.erase(std::unique(ips.begin(), ips.end()), ips.end());
                if (ips.size() < 2) return s;

                // Block total accumulates in original row order (bitwise
                // reproducibility of the float sum); the favorite comes from
                // per-site runs, stably sorted so each site's sum also
                // accumulates in row order.
                double total = 0.0;
                for (const auto row : rows) total += capture.queries_per_day[row];

                std::vector<table::row_index> by_site(rows.begin(), rows.end());
                std::stable_sort(by_site.begin(), by_site.end(),
                                 [&](table::row_index a, table::row_index b) {
                                     return capture.site[a] < capture.site[b];
                                 });
                double favorite = 0.0;
                std::size_t i = 0;
                while (i < by_site.size()) {
                    const std::uint32_t site = capture.site[by_site[i]];
                    double site_volume = 0.0;
                    for (; i < by_site.size() && capture.site[by_site[i]] == site; ++i) {
                        site_volume += capture.queries_per_day[by_site[i]];
                    }
                    favorite = std::max(favorite, site_volume);
                }
                if (total <= 0.0) return s;
                s.value = 1.0 - favorite / total;
                s.keep = true;
                return s;
            });

        auto& cdf = result.fraction_not_favorite[capture.letter];
        for (const auto& s : samples) {
            if (s.keep) cdf.add(s.value, 1.0);
        }
    }
    return result;
}

favorite_site_result compute_favorite_site(std::span<const capture::letter_capture> captures,
                                           engine::thread_pool* pool) {
    std::vector<capture::letter_table> tables;
    tables.reserve(captures.size());
    for (const auto& capture : captures) tables.push_back(capture::to_table(capture));
    return compute_favorite_site(tables, pool);
}

} // namespace ac::analysis
