#include "src/analysis/unicast.h"

#include <algorithm>
#include <limits>

#include "src/netbase/geo.h"

namespace ac::analysis {

unicast_comparison compare_with_unicast(const anycast::deployment& dep,
                                        const pop::user_base& users) {
    unicast_comparison result;
    double total_users = 0.0;
    double optimal_users = 0.0;

    for (const auto& loc : users.locations()) {
        const auto anycast_path = dep.rib().select(loc.asn, loc.region);
        if (!anycast_path) continue;

        // Unicast alternative: route to every global site individually and
        // take the fastest. evaluate() *is* the unicast path: it follows the
        // AS-level route toward that specific origin announcement.
        double best_unicast = std::numeric_limits<double>::infinity();
        route::site_id best_site = anycast_path->site;
        for (const auto& s : dep.sites()) {
            if (s.scope != route::announcement_scope::global) continue;
            const auto unicast = dep.rib().evaluate(loc.asn, loc.region, s.id);
            if (unicast && unicast->rtt_ms < best_unicast) {
                best_unicast = unicast->rtt_ms;
                best_site = s.id;
            }
        }
        if (!std::isfinite(best_unicast)) continue;

        total_users += loc.users;
        if (best_site == anycast_path->site) optimal_users += loc.users;
        result.anycast_penalty_ms.add(std::max(0.0, anycast_path->rtt_ms - best_unicast),
                                      loc.users);
        const double bound = geo::best_case_rtt_ms(
            dep.nearest_global_site_km(dep.regions().at(loc.region).location));
        result.unicast_inflation_ms.add(std::max(0.0, best_unicast - bound), loc.users);
    }

    result.anycast_optimal_share = total_users > 0.0 ? optimal_users / total_users : 0.0;
    return result;
}

} // namespace ac::analysis
