// Per-recursive daily query rates toward the root DNS.
//
// DITL sees ~51.9 B queries/day: roughly 31 B to non-existent TLDs (28% of
// which are Chromium captive-portal probes [4, 34, 73]), 2 B PTR, 7%
// private-source, 12% IPv6 (§2.1). The filtered remainder is what reaches
// users. Valid-TLD load is driven by cache-refresh behaviour: ideal
// once-per-TTL querying is orders of magnitude below reality (§4.3), partly
// because of redundant-query bugs (Appendix E). This module turns the
// ground-truth user base into per-recursive daily rates by category, plus
// per-letter preference weights (recursives favor low-latency letters [60]).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "src/dns/root_letters.h"
#include "src/population/population.h"

namespace ac::dns {

inline constexpr int letter_count = 13;

[[nodiscard]] constexpr int letter_index(char letter) noexcept { return letter - 'A'; }
[[nodiscard]] constexpr char letter_at(int index) noexcept {
    return static_cast<char>('A' + index);
}

struct query_model_options {
    // Valid-TLD cache-miss load: tld_count(users) = min(max_tlds,
    // tld_base * users^tld_exponent); per-TTL need = tld_count / ttl_days.
    double tld_base = 30.0;
    double tld_exponent = 0.30;
    double max_tlds = 1400.0;
    double ttl_days = 2.0;

    // Multiplier over the per-TTL ideal, by resolver software (median of a
    // lognormal). Appendix E finds ~80% of root queries at one resolver are
    // redundant; population-wide the real/ideal ratio is ~140x (Fig. 3:
    // median 1 query/user/day vs ideal 0.007).
    double refresh_median_bind_redundant = 1500.0;
    double refresh_median_bind_fixed = 150.0;
    double refresh_median_other = 550.0;
    double refresh_sigma = 1.1;

    // Junk load (never on the user path; filtered in §2.1 preprocessing).
    double chromium_probes_per_user = 4.0;   // NXD probes per user per day
    double junk_per_user_median = 3.0;       // other invalid-TLD load
    /// Junk concentrates at /24s with many users (App. B.1): per-recursive
    /// junk scales as users^junk_user_exponent around the reference size.
    double junk_user_exponent = 1.15;
    double junk_reference_users = 1.0e5;
    double junk_sigma = 1.2;
    double ptr_per_user = 0.9;

    // Letter preference (recursives favor low-RTT letters [60]).
    double preference_gamma_lo = 1.2;
    double preference_gamma_hi = 2.6;
    double preference_uniform_mix = 0.10;  // exploration floor

    // Transport.
    double tcp_share_zero_p = 0.30;   // recursives that essentially never use TCP
    double tcp_share_median = 0.03;   // otherwise, lognormal median TCP share
    double tcp_share_sigma = 0.8;
};

/// The counterfactual resolver-cache behaviour for sweep cells (`dim cache
/// ideal`): every resolver refreshes each TLD exactly once per TTL, i.e. the
/// refresh multipliers collapse to 1 with no dispersion — the paper's ideal
/// lower bound that real resolver populations exceed by ~140x (Fig. 3).
[[nodiscard]] query_model_options ideal_cache(query_model_options base) noexcept;

/// Daily root-DNS query rates for one recursive (summed over letters; the
/// per-letter split applies `letter_weight`).
struct recursive_query_profile {
    std::size_t recursive_index = 0;       // into user_base::recursives()
    double valid_per_day = 0.0;            // existing-TLD queries
    double chromium_per_day = 0.0;         // Chromium NXD probes
    double junk_per_day = 0.0;             // other invalid-TLD queries
    double ptr_per_day = 0.0;
    double tcp_share = 0.0;                // fraction of queries over TCP
    std::array<double, letter_count> letter_weight{};  // sums to 1

    [[nodiscard]] double invalid_per_day() const noexcept {
        return chromium_per_day + junk_per_day;
    }
    [[nodiscard]] double total_per_day() const noexcept {
        return valid_per_day + invalid_per_day() + ptr_per_day;
    }
};

/// Per-letter median RTTs for each recursive, used to derive preferences.
/// rtts[i][l] is recursive i's RTT to letter l ('A'+l); negative = no route.
using letter_rtt_table = std::vector<std::array<double, letter_count>>;

/// Computes RTTs from every recursive's <region, AS> to every letter via the
/// letters' routing state. Route selection is stateless, so the unique
/// locations can be evaluated on `pool` without affecting results.
[[nodiscard]] letter_rtt_table compute_letter_rtts(const pop::user_base& base,
                                                   const root_system& roots,
                                                   engine::thread_pool* pool = nullptr);

/// Builds query profiles for all recursives. Deterministic in `seed`.
[[nodiscard]] std::vector<recursive_query_profile> build_query_profiles(
    const pop::user_base& base, const letter_rtt_table& rtts,
    const query_model_options& options, std::uint64_t seed);

/// The per-TTL "Ideal" rate of Fig. 3: one query per TLD record per TTL.
[[nodiscard]] double ideal_queries_per_day(double users, const query_model_options& options);

} // namespace ac::dns
