// The 13 root-DNS letters as anycast deployments.
//
// Letter sizes and data-availability quirks mirror the 2018 DITL (§2.1, §3):
// G provides no data; I is fully anonymized (unusable); B is anonymized at
// /24 (usable, since the analysis keys by /24); D and L have malformed TCP
// PCAPs (excluded from latency inflation); H had a single site in 2018 (zero
// inflation by construction, omitted from Fig. 2). The 2020 catalogue
// (App. B.3 / Fig. 11) has its own availability holes.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/anycast/deployment.h"

namespace ac::dns {

enum class anonymization : std::uint8_t {
    none,
    slash24,  // source truncated to /24 (B root) — harmless to this analysis
    full,     // sources unrecoverable (I root; L root in 2020)
};

struct letter_spec {
    char letter = 'A';
    int global_sites = 1;
    int local_sites = 0;
    anycast::hosting_strategy strategy = anycast::hosting_strategy::operator_run;
    anonymization anon = anonymization::none;
    bool in_ditl = true;        // false: operator did not contribute captures
    bool tcp_usable = true;     // false: malformed PCAPs (D, L in 2018)
    bool complete = true;       // false: only a subset of sites captured (2020 E/F)
};

/// The 2018 DITL letter catalogue (site counts as of the 2018 capture).
[[nodiscard]] std::vector<letter_spec> letters_2018();

/// The 2020 DITL letter catalogue (App. B.3).
[[nodiscard]] std::vector<letter_spec> letters_2020();

/// All 13 letters built as deployments over one AS graph. Building mutates
/// `graph` (dedicated host networks attach to it), so construct the system
/// once per world.
class root_system {
public:
    /// A non-serial `pool` parallelizes per-site route propagation inside
    /// each letter's deployment (letters themselves build in order, since
    /// each mutates the shared graph).
    root_system(std::vector<letter_spec> specs, topo::as_graph& graph,
                const topo::region_table& regions, std::uint64_t seed,
                engine::thread_pool* pool = nullptr);

    [[nodiscard]] const std::vector<letter_spec>& specs() const noexcept { return specs_; }
    [[nodiscard]] const letter_spec& spec(char letter) const;
    [[nodiscard]] const anycast::deployment& deployment_of(char letter) const;
    /// Mutable access for scenario event replay (src/scenario): timelines
    /// withdraw/re-announce letter sites through the deployment's RIB.
    [[nodiscard]] anycast::deployment& mutable_deployment_of(char letter);

    /// Letters usable for geographic-inflation analysis (Fig. 2a): in DITL,
    /// not fully anonymized, and more than one site.
    [[nodiscard]] std::vector<char> geographic_analysis_letters() const;
    /// Letters usable for latency-inflation analysis (Fig. 2b): additionally
    /// requires parseable TCP.
    [[nodiscard]] std::vector<char> latency_analysis_letters() const;
    /// Every letter that exists (recursives query all of them).
    [[nodiscard]] std::vector<char> all_letters() const;

private:
    std::vector<letter_spec> specs_;
    std::map<char, std::unique_ptr<anycast::deployment>> deployments_;
};

} // namespace ac::dns
