#include "src/dns/root_letters.h"

#include <stdexcept>

#include "src/topology/generator.h"

namespace ac::dns {

namespace {

using anycast::hosting_strategy;

constexpr topo::asn_t letter_asn(char letter) {
    // Dedicated host networks for operator-run letters live in the content
    // ASN block, one slot per letter.
    return topo::asn_blocks::content_base + 100 + static_cast<topo::asn_t>(letter - 'A');
}

} // namespace

std::vector<letter_spec> letters_2018() {
    // Global/total site counts from the paper (Fig. 2 and Fig. 10 legends).
    return {
        {'A', 5, 0, hosting_strategy::operator_run, anonymization::none, true, true, true},
        {'B', 2, 0, hosting_strategy::operator_run, anonymization::slash24, true, true, true},
        {'C', 10, 0, hosting_strategy::operator_run, anonymization::none, true, true, true},
        {'D', 20, 97, hosting_strategy::operator_run, anonymization::none, true, false, true},
        {'E', 15, 70, hosting_strategy::operator_run, anonymization::none, true, true, true},
        {'F', 94, 47, hosting_strategy::cdn_partnered, anonymization::none, true, true, true},
        {'G', 6, 0, hosting_strategy::operator_run, anonymization::none, false, false, true},
        {'H', 1, 0, hosting_strategy::operator_run, anonymization::none, true, true, true},
        {'I', 48, 0, hosting_strategy::open_hosting, anonymization::full, true, true, true},
        {'J', 68, 42, hosting_strategy::operator_run, anonymization::none, true, true, true},
        {'K', 52, 1, hosting_strategy::open_hosting, anonymization::none, true, true, true},
        {'L', 138, 0, hosting_strategy::open_hosting, anonymization::none, true, false, true},
        {'M', 5, 1, hosting_strategy::operator_run, anonymization::none, true, true, true},
    };
}

std::vector<letter_spec> letters_2020() {
    // App. B.3: B unavailable, E includes one site of 132 (incomplete),
    // F misses Cloudflare sites (incomplete), L fully anonymized, G absent,
    // I anonymized. Usable letters with Fig. 11b global-site counts:
    // M-8, H-8, C-10, D-23, A-51, K-75, J-127.
    return {
        {'A', 51, 0, hosting_strategy::operator_run, anonymization::none, true, true, true},
        {'B', 3, 0, hosting_strategy::operator_run, anonymization::slash24, false, true, true},
        {'C', 10, 0, hosting_strategy::operator_run, anonymization::none, true, true, true},
        {'D', 23, 130, hosting_strategy::operator_run, anonymization::none, true, false, true},
        {'E', 1, 131, hosting_strategy::operator_run, anonymization::none, true, true, false},
        {'F', 120, 60, hosting_strategy::cdn_partnered, anonymization::none, true, true, false},
        {'G', 6, 0, hosting_strategy::operator_run, anonymization::none, false, false, true},
        {'H', 8, 0, hosting_strategy::operator_run, anonymization::none, true, true, true},
        {'I', 60, 0, hosting_strategy::open_hosting, anonymization::full, true, true, true},
        {'J', 127, 40, hosting_strategy::operator_run, anonymization::none, true, true, true},
        {'K', 75, 1, hosting_strategy::open_hosting, anonymization::none, true, true, true},
        {'L', 150, 0, hosting_strategy::open_hosting, anonymization::full, true, false, true},
        {'M', 8, 1, hosting_strategy::operator_run, anonymization::none, true, true, true},
    };
}

root_system::root_system(std::vector<letter_spec> specs, topo::as_graph& graph,
                         const topo::region_table& regions, std::uint64_t seed,
                         engine::thread_pool* pool)
    : specs_(std::move(specs)) {
    for (const auto& spec : specs_) {
        anycast::deployment_plan plan;
        plan.name = std::string{"root-"} + spec.letter;
        plan.strategy = spec.strategy;
        plan.global_sites = spec.global_sites;
        plan.local_sites = spec.local_sites;
        plan.seed = rand::mix_seed(seed, static_cast<std::uint64_t>(spec.letter));
        if (spec.strategy != hosting_strategy::open_hosting) {
            plan.dedicated_asn = letter_asn(spec.letter);
        }
        // Root host networks do not buy broad eyeball peering; the
        // CDN-partnered letter (F) rides a well-peered partner (§7.2).
        plan.eyeball_peering_fraction =
            spec.strategy == hosting_strategy::cdn_partnered ? 0.35 : 0.0;
        plan.transit_peering_fraction =
            spec.strategy == hosting_strategy::cdn_partnered ? 0.5 : 0.45;
        plan.local_ixp_peering_p =
            spec.strategy == hosting_strategy::open_hosting ? 0.45 : 0.0;
        deployments_.emplace(
            spec.letter,
            std::make_unique<anycast::deployment>(
                anycast::build_deployment(plan, graph, regions, pool)));
    }
}

const letter_spec& root_system::spec(char letter) const {
    for (const auto& s : specs_) {
        if (s.letter == letter) return s;
    }
    throw std::out_of_range(std::string{"root_system: unknown letter "} + letter);
}

const anycast::deployment& root_system::deployment_of(char letter) const {
    auto it = deployments_.find(letter);
    if (it == deployments_.end()) {
        throw std::out_of_range(std::string{"root_system: unknown letter "} + letter);
    }
    return *it->second;
}

anycast::deployment& root_system::mutable_deployment_of(char letter) {
    auto it = deployments_.find(letter);
    if (it == deployments_.end()) {
        throw std::out_of_range(std::string{"root_system: unknown letter "} + letter);
    }
    return *it->second;
}

std::vector<char> root_system::geographic_analysis_letters() const {
    std::vector<char> out;
    for (const auto& s : specs_) {
        if (!s.in_ditl || s.anon == anonymization::full || !s.complete) continue;
        if (s.global_sites <= 1) continue;  // H in 2018: zero inflation by construction
        out.push_back(s.letter);
    }
    return out;
}

std::vector<char> root_system::latency_analysis_letters() const {
    std::vector<char> out;
    for (char c : geographic_analysis_letters()) {
        if (spec(c).tcp_usable) out.push_back(c);
    }
    return out;
}

std::vector<char> root_system::all_letters() const {
    std::vector<char> out;
    for (const auto& s : specs_) out.push_back(s.letter);
    return out;
}

} // namespace ac::dns
