#include "src/dns/query_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace ac::dns {

namespace {

double tld_count(double users, const query_model_options& o) {
    if (users <= 1.0) return std::min(o.max_tlds, o.tld_base);
    return std::min(o.max_tlds, o.tld_base * std::pow(users, o.tld_exponent));
}

double refresh_median(pop::resolver_software software, const query_model_options& o) {
    switch (software) {
        case pop::resolver_software::bind_redundant: return o.refresh_median_bind_redundant;
        case pop::resolver_software::bind_fixed: return o.refresh_median_bind_fixed;
        case pop::resolver_software::other: return o.refresh_median_other;
    }
    return o.refresh_median_other;
}

} // namespace

letter_rtt_table compute_letter_rtts(const pop::user_base& base, const root_system& roots,
                                     engine::thread_pool* pool) {
    letter_rtt_table table(base.recursives().size());
    // Many recursives share a <region, AS> location: collect the unique
    // locations (in first-appearance order) and evaluate each letter's RIB
    // over them in bulk, so the selection work can run on the pool.
    std::vector<route::source_key> locations;
    std::unordered_map<std::uint64_t, std::size_t> location_of;
    for (const auto& rec : base.recursives()) {
        const std::uint64_t key = (std::uint64_t{rec.asn} << 32) | rec.region;
        if (location_of.emplace(key, locations.size()).second) {
            locations.push_back(route::source_key{rec.asn, rec.region});
        }
    }

    std::vector<std::array<double, letter_count>> per_location(locations.size());
    for (auto& rtts : per_location) rtts.fill(-1.0);
    for (char letter : roots.all_letters()) {
        const auto paths = roots.deployment_of(letter).rib().select_many(locations, pool);
        const auto li = static_cast<std::size_t>(letter_index(letter));
        for (std::size_t i = 0; i < locations.size(); ++i) {
            if (paths[i]) per_location[i][li] = paths[i]->rtt_ms;
        }
    }

    for (std::size_t i = 0; i < base.recursives().size(); ++i) {
        const auto& rec = base.recursives()[i];
        table[i] = per_location[location_of.at((std::uint64_t{rec.asn} << 32) | rec.region)];
    }
    return table;
}

std::vector<recursive_query_profile> build_query_profiles(const pop::user_base& base,
                                                          const letter_rtt_table& rtts,
                                                          const query_model_options& options,
                                                          std::uint64_t seed) {
    std::vector<recursive_query_profile> profiles;
    profiles.reserve(base.recursives().size());
    rand::rng gen{rand::mix_seed(seed, 0x90de1ull)};

    for (std::size_t i = 0; i < base.recursives().size(); ++i) {
        const auto& rec = base.recursives()[i];
        auto g = gen.fork(rec.block.key());

        recursive_query_profile p;
        p.recursive_index = i;

        // Forwarders never query the roots themselves: their demand shows up
        // (approximately) inside the public-DNS recursives' volumes.
        if (rec.is_forwarder) {
            profiles.push_back(p);
            continue;
        }

        // Valid-TLD load: per-TTL ideal times a software-dependent
        // over-refresh multiplier.
        const double ideal = ideal_queries_per_day(rec.users_served, options);
        const double median = refresh_median(rec.software, options);
        const double multiplier = median * g.lognormal(0.0, options.refresh_sigma);
        p.valid_per_day = ideal * multiplier;

        // Junk: Chromium probes scale with users (probes fire on startup /
        // network change); corporate junk is heavy-tailed per recursive.
        p.chromium_per_day = rec.users_served * options.chromium_probes_per_user *
                             g.lognormal(0.0, 0.4);
        const double junk_scale =
            rec.users_served <= 0.0
                ? 0.0
                : std::pow(rec.users_served / options.junk_reference_users,
                           options.junk_user_exponent - 1.0);
        p.junk_per_day = rec.users_served * options.junk_per_user_median * junk_scale *
                         g.lognormal(0.0, options.junk_sigma);
        p.ptr_per_day = rec.users_served * options.ptr_per_user * g.lognormal(0.0, 0.5);

        // TCP usage.
        p.tcp_share = g.chance(options.tcp_share_zero_p)
                          ? 0.0
                          : std::min(0.6, options.tcp_share_median *
                                              g.lognormal(0.0, options.tcp_share_sigma));

        // Letter preference: softmax-like weighting of inverse RTT with an
        // exploration floor; unreachable letters get zero weight.
        const double gamma = g.uniform(options.preference_gamma_lo, options.preference_gamma_hi);
        double total = 0.0;
        std::array<double, letter_count> pref{};
        int reachable = 0;
        for (int l = 0; l < letter_count; ++l) {
            const double rtt = rtts[i][static_cast<std::size_t>(l)];
            if (rtt < 0.0) continue;
            pref[static_cast<std::size_t>(l)] = std::pow(1.0 / (rtt + 5.0), gamma);
            total += pref[static_cast<std::size_t>(l)];
            ++reachable;
        }
        if (reachable == 0 || total <= 0.0) {
            profiles.push_back(p);  // no reachable letter: all weights zero
            continue;
        }
        const double mix = options.preference_uniform_mix;
        for (int l = 0; l < letter_count; ++l) {
            auto& w = p.letter_weight[static_cast<std::size_t>(l)];
            const double base_w = pref[static_cast<std::size_t>(l)];
            if (rtts[i][static_cast<std::size_t>(l)] < 0.0) {
                w = 0.0;
            } else {
                w = (1.0 - mix) * base_w / total + mix / static_cast<double>(reachable);
            }
        }
        profiles.push_back(p);
    }
    return profiles;
}

double ideal_queries_per_day(double users, const query_model_options& options) {
    return tld_count(users, options) / options.ttl_days;
}

query_model_options ideal_cache(query_model_options base) noexcept {
    base.refresh_median_bind_redundant = 1.0;
    base.refresh_median_bind_fixed = 1.0;
    base.refresh_median_other = 1.0;
    base.refresh_sigma = 0.0;
    return base;
}

} // namespace ac::dns
