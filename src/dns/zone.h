// DNS names, records, and the root zone.
//
// The root zone holds NS/glue for ~1,000 TLDs, nearly all with two-day TTLs
// (§4.1) — the fact that makes resolver caching so effective. The resolver
// simulation (Fig. 12/13, Table 5, §4.3 cache-miss rates) resolves names
// against this zone; the query-amortization "Ideal" line counts its records.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/netbase/rng.h"

namespace ac::dns {

enum class rr_type : std::uint8_t { a, aaaa, ns, ptr, soa };

[[nodiscard]] std::string_view to_string(rr_type type) noexcept;

struct resource_record {
    std::string name;   // fully qualified, lower-case, no trailing dot
    rr_type type = rr_type::a;
    std::uint32_t ttl_s = 0;
    std::string data;   // address text or target hostname
};

/// Lower-cases a name and strips one trailing dot.
[[nodiscard]] std::string normalize_name(std::string_view name);

/// The final label of a name ("www.example.com" -> "com"); the whole string
/// for single-label names. Empty input yields empty output.
[[nodiscard]] std::string_view tld_of(std::string_view name) noexcept;

/// Number of dot-separated labels.
[[nodiscard]] int label_count(std::string_view name) noexcept;

/// True for names Chromium's captive-portal detector would generate: a
/// single random-looking label (the probes that dominate root NXD traffic
/// [4, 34]).
[[nodiscard]] bool looks_like_chromium_probe(std::string_view name) noexcept;

/// Default TTL of TLD NS records: two days (§4.1).
inline constexpr std::uint32_t tld_ttl_s = 172800;

/// A referral (or negative answer) from the root.
struct root_response {
    bool nxdomain = false;
    std::string tld;
    std::vector<resource_record> authority;   // NS records for the TLD
    std::vector<resource_record> additional;  // glue A/AAAA for TLD servers
    std::uint32_t ttl_s = tld_ttl_s;
};

/// The root zone: a synthetic TLD catalogue with Zipf popularity.
class root_zone {
public:
    root_zone(int tld_count, std::uint64_t seed);

    [[nodiscard]] int tld_count() const noexcept { return static_cast<int>(tlds_.size()); }
    [[nodiscard]] const std::vector<std::string>& tlds() const noexcept { return tlds_; }
    [[nodiscard]] bool tld_exists(std::string_view tld) const;

    /// Zipf popularity weight of the i-th TLD (descending; normalized).
    [[nodiscard]] double popularity(int index) const { return popularity_.at(static_cast<std::size_t>(index)); }

    /// Draws a TLD index by popularity.
    [[nodiscard]] int sample_tld(rand::rng& gen) const;

    /// Answers a query: a referral for names under an existing TLD,
    /// NXDOMAIN otherwise.
    [[nodiscard]] root_response resolve(std::string_view qname) const;

private:
    std::vector<std::string> tlds_;      // sorted for lookup? kept in rank order
    std::vector<double> popularity_;     // aligned, sums to 1
    std::vector<std::size_t> by_name_;   // indices sorted by name
};

} // namespace ac::dns
