#include "src/dns/zone.h"

#include <algorithm>
#include <cctype>

#include "src/netbase/strfmt.h"

namespace ac::dns {

std::string_view to_string(rr_type type) noexcept {
    switch (type) {
        case rr_type::a: return "A";
        case rr_type::aaaa: return "AAAA";
        case rr_type::ns: return "NS";
        case rr_type::ptr: return "PTR";
        case rr_type::soa: return "SOA";
    }
    return "?";
}

std::string normalize_name(std::string_view name) {
    if (!name.empty() && name.back() == '.') name.remove_suffix(1);
    std::string out;
    out.reserve(name.size());
    for (char c : name) out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    return out;
}

std::string_view tld_of(std::string_view name) noexcept {
    if (!name.empty() && name.back() == '.') name.remove_suffix(1);
    const auto dot = name.rfind('.');
    return dot == std::string_view::npos ? name : name.substr(dot + 1);
}

int label_count(std::string_view name) noexcept {
    if (name.empty()) return 0;
    if (name.back() == '.') name.remove_suffix(1);
    int count = 1;
    for (char c : name) {
        if (c == '.') ++count;
    }
    return count;
}

bool looks_like_chromium_probe(std::string_view name) noexcept {
    // Chromium probes are 7-15 character single random labels.
    if (label_count(name) != 1) return false;
    if (name.size() < 7 || name.size() > 15) return false;
    for (char c : name) {
        if (!std::isalpha(static_cast<unsigned char>(c))) return false;
    }
    return true;
}

root_zone::root_zone(int tld_count, std::uint64_t seed) {
    rand::rng gen{rand::mix_seed(seed, 0x700a0071ull)};
    tlds_.reserve(static_cast<std::size_t>(tld_count));
    // A few fixed high-rank TLDs keep traces readable; the rest are synthetic.
    static constexpr const char* fixed[] = {"com", "net",  "org", "io",  "de",
                                            "uk",  "jp",   "cn",  "br",  "in",
                                            "ru",  "info", "biz", "dev", "app"};
    for (const char* t : fixed) {
        if (static_cast<int>(tlds_.size()) >= tld_count) break;
        tlds_.emplace_back(t);
    }
    int synth = 0;
    while (static_cast<int>(tlds_.size()) < tld_count) {
        std::string label = "tld" + strfmt::zero_padded(synth++, 4);
        tlds_.push_back(std::move(label));
    }

    // Zipf(1.0) popularity over rank order.
    popularity_.resize(tlds_.size());
    double total = 0.0;
    for (std::size_t i = 0; i < tlds_.size(); ++i) {
        popularity_[i] = 1.0 / static_cast<double>(i + 1);
        total += popularity_[i];
    }
    for (auto& p : popularity_) p /= total;

    by_name_.resize(tlds_.size());
    for (std::size_t i = 0; i < tlds_.size(); ++i) by_name_[i] = i;
    std::sort(by_name_.begin(), by_name_.end(),
              [this](std::size_t a, std::size_t b) { return tlds_[a] < tlds_[b]; });
    (void)gen;  // reserved for future randomized TLD naming
}

bool root_zone::tld_exists(std::string_view tld) const {
    const std::string normalized = normalize_name(tld);
    auto it = std::lower_bound(by_name_.begin(), by_name_.end(), normalized,
                               [this](std::size_t i, const std::string& v) { return tlds_[i] < v; });
    return it != by_name_.end() && tlds_[*it] == normalized;
}

int root_zone::sample_tld(rand::rng& gen) const {
    return static_cast<int>(gen.weighted_index(popularity_));
}

root_response root_zone::resolve(std::string_view qname) const {
    root_response response;
    const std::string normalized = normalize_name(qname);
    const std::string tld{tld_of(normalized)};
    if (!tld_exists(tld)) {
        response.nxdomain = true;
        // Negative answers carry the SOA minimum TTL (1 day at the root).
        response.ttl_s = 86400;
        return response;
    }
    response.tld = tld;
    // Two TLD nameservers with glue; AAAA glue only for the first, which is
    // one of the asymmetries that triggers the Appendix E redundant-query
    // pattern downstream.
    for (int i = 0; i < 2; ++i) {
        const std::string host = std::string(1, static_cast<char>('a' + i)) + ".nic." + tld;
        response.authority.push_back(resource_record{tld, rr_type::ns, tld_ttl_s, host});
        response.additional.push_back(
            resource_record{host, rr_type::a, tld_ttl_s, "192.0.2." + std::to_string(10 + i)});
        if (i == 0) {
            response.additional.push_back(
                resource_record{host, rr_type::aaaa, tld_ttl_s, "2001:db8::" + std::to_string(10 + i)});
        }
    }
    return response;
}

} // namespace ac::dns
