#include "src/engine/stage_graph.h"

#include <ostream>
#include <stdexcept>
#include <unordered_map>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace ac::engine {

namespace {

void write_json_string(std::ostream& out, const std::string& s) {
    out << '"';
    for (char c : s) {
        if (c == '"' || c == '\\') out << '\\';
        out << c;
    }
    out << '"';
}

} // namespace

void stage_report::write_json(std::ostream& out) const {
    out << "{\n  \"threads\": " << threads << ",\n  \"total_wall_ms\": " << total_wall_ms
        << ",\n  \"stages\": [\n";
    for (std::size_t i = 0; i < stages.size(); ++i) {
        const auto& s = stages[i];
        out << "    {\"name\": ";
        write_json_string(out, s.name);
        out << ", \"wall_ms\": " << s.wall_ms << ", \"items\": " << s.items << "}";
        out << (i + 1 < stages.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
}

void stage_graph::add(std::string name, std::vector<std::string> deps, stage_fn fn) {
    for (const auto& s : stages_) {
        if (s.name == name) {
            throw std::invalid_argument("stage_graph: duplicate stage '" + name + "'");
        }
    }
    stages_.push_back(stage{std::move(name), std::move(deps), std::move(fn)});
}

stage_report stage_graph::run(int threads) {
    std::unordered_map<std::string, std::size_t> index;
    index.reserve(stages_.size());
    for (std::size_t i = 0; i < stages_.size(); ++i) index.emplace(stages_[i].name, i);

    std::vector<std::vector<std::size_t>> deps(stages_.size());
    for (std::size_t i = 0; i < stages_.size(); ++i) {
        deps[i].reserve(stages_[i].deps.size());
        for (const auto& d : stages_[i].deps) {
            auto it = index.find(d);
            if (it == index.end()) {
                throw std::invalid_argument("stage_graph: stage '" + stages_[i].name +
                                            "' depends on unknown stage '" + d + "'");
            }
            deps[i].push_back(it->second);
        }
    }

    stage_report report;
    report.threads = threads;
    report.stages.reserve(stages_.size());

    // Observability (DESIGN §10): the obs::span IS the stage timer — the
    // stage_stats wall time is read back from the span, so `--timing` and
    // `--trace` can never disagree — and every stage also feeds the
    // process-wide metrics registry.
    auto& stage_count = obs::registry::global().get_counter("engine.stages_executed");
    auto& stage_items = obs::registry::global().get_counter("engine.stage_items");
    auto& stage_wall = obs::registry::global().get_histogram("engine.stage_wall_ms");
    obs::span run_span{"engine/stage_graph.run", obs::span::policy::always};

    // Kahn's algorithm, but scanning in registration order each round so the
    // schedule is deterministic and honors the order stages were declared in.
    std::vector<bool> done(stages_.size(), false);
    std::size_t executed = 0;
    while (executed < stages_.size()) {
        bool progressed = false;
        for (std::size_t i = 0; i < stages_.size(); ++i) {
            if (done[i]) continue;
            bool ready = true;
            for (std::size_t d : deps[i]) {
                if (!done[d]) {
                    ready = false;
                    break;
                }
            }
            if (!ready) continue;

            double wall_ms = 0.0;
            std::size_t items = 0;
            {
                obs::span stage_span{"stage/" + stages_[i].name,
                                     obs::span::policy::always};
                items = stages_[i].fn();
                stage_span.set_items(items);
                wall_ms = stage_span.elapsed_ms();
            }
            report.stages.push_back(stage_stats{stages_[i].name, wall_ms, items});
            stage_count.add(1);
            stage_items.add(items);
            stage_wall.observe(wall_ms);
            done[i] = true;
            ++executed;
            progressed = true;
        }
        if (!progressed) {
            throw std::invalid_argument("stage_graph: dependency cycle");
        }
    }

    run_span.set_items(executed);
    report.total_wall_ms = run_span.elapsed_ms();
    return report;
}

} // namespace ac::engine
