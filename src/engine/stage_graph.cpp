#include "src/engine/stage_graph.h"

#include <chrono>
#include <ostream>
#include <stdexcept>
#include <unordered_map>

namespace ac::engine {

namespace {

void write_json_string(std::ostream& out, const std::string& s) {
    out << '"';
    for (char c : s) {
        if (c == '"' || c == '\\') out << '\\';
        out << c;
    }
    out << '"';
}

} // namespace

void stage_report::write_json(std::ostream& out) const {
    out << "{\n  \"threads\": " << threads << ",\n  \"total_wall_ms\": " << total_wall_ms
        << ",\n  \"stages\": [\n";
    for (std::size_t i = 0; i < stages.size(); ++i) {
        const auto& s = stages[i];
        out << "    {\"name\": ";
        write_json_string(out, s.name);
        out << ", \"wall_ms\": " << s.wall_ms << ", \"items\": " << s.items << "}";
        out << (i + 1 < stages.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
}

void stage_graph::add(std::string name, std::vector<std::string> deps, stage_fn fn) {
    for (const auto& s : stages_) {
        if (s.name == name) {
            throw std::invalid_argument("stage_graph: duplicate stage '" + name + "'");
        }
    }
    stages_.push_back(stage{std::move(name), std::move(deps), std::move(fn)});
}

stage_report stage_graph::run(int threads) {
    std::unordered_map<std::string, std::size_t> index;
    index.reserve(stages_.size());
    for (std::size_t i = 0; i < stages_.size(); ++i) index.emplace(stages_[i].name, i);

    std::vector<std::vector<std::size_t>> deps(stages_.size());
    for (std::size_t i = 0; i < stages_.size(); ++i) {
        deps[i].reserve(stages_[i].deps.size());
        for (const auto& d : stages_[i].deps) {
            auto it = index.find(d);
            if (it == index.end()) {
                throw std::invalid_argument("stage_graph: stage '" + stages_[i].name +
                                            "' depends on unknown stage '" + d + "'");
            }
            deps[i].push_back(it->second);
        }
    }

    stage_report report;
    report.threads = threads;
    report.stages.reserve(stages_.size());

    using clock = std::chrono::steady_clock;
    const auto run_start = clock::now();

    // Kahn's algorithm, but scanning in registration order each round so the
    // schedule is deterministic and honors the order stages were declared in.
    std::vector<bool> done(stages_.size(), false);
    std::size_t executed = 0;
    while (executed < stages_.size()) {
        bool progressed = false;
        for (std::size_t i = 0; i < stages_.size(); ++i) {
            if (done[i]) continue;
            bool ready = true;
            for (std::size_t d : deps[i]) {
                if (!done[d]) {
                    ready = false;
                    break;
                }
            }
            if (!ready) continue;

            const auto start = clock::now();
            const std::size_t items = stages_[i].fn();
            const std::chrono::duration<double, std::milli> wall = clock::now() - start;
            report.stages.push_back(stage_stats{stages_[i].name, wall.count(), items});
            done[i] = true;
            ++executed;
            progressed = true;
        }
        if (!progressed) {
            throw std::invalid_argument("stage_graph: dependency cycle");
        }
    }

    const std::chrono::duration<double, std::milli> total = clock::now() - run_start;
    report.total_wall_ms = total.count();
    return report;
}

} // namespace ac::engine
