// Fixed-size worker pool with a chunked parallel_for primitive.
//
// The engine is the substrate-independent execution layer: it knows nothing
// about worlds, routes or captures. Callers hand it closures; determinism is
// the *caller's* contract (see stream_rng.h) — the pool only guarantees that
// every submitted task runs exactly once and that parallel_for covers every
// index exactly once, regardless of thread count or schedule.
//
// Thread-count semantics (shared with `world_config::threads`):
//   0  -> hardware concurrency
//   1  -> serial: no worker threads are created and every task runs inline
//         on the calling thread (the pool is bypassed entirely)
//   N  -> N worker threads
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ac::engine {

class thread_pool {
public:
    explicit thread_pool(int threads = 0);
    ~thread_pool();

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    /// Number of worker threads (0 in serial mode).
    [[nodiscard]] int workers() const noexcept { return static_cast<int>(workers_.size()); }
    /// True when tasks run inline on the calling thread.
    [[nodiscard]] bool serial() const noexcept { return workers_.empty(); }
    /// Useful parallel width: max(1, workers()).
    [[nodiscard]] int lanes() const noexcept { return serial() ? 1 : workers(); }

    /// Enqueues one task (runs it inline in serial mode). Tasks must not
    /// themselves call submit/wait on the same pool.
    void submit(std::function<void()> task);

    /// Blocks until every submitted task has finished. Rethrows the first
    /// exception any task raised.
    void wait();

    /// Runs `body(begin, end)` over disjoint chunks covering [0, count).
    /// `grain` is the chunk length (0 = auto). Blocks until all chunks are
    /// done; rethrows the first exception. Serial mode runs one inline chunk.
    ///
    /// Auto grain targets ~4 chunks per effective lane but never drops below
    /// `min_items_per_chunk`, and a range that fits in a single chunk runs
    /// inline on the calling thread — tiny stages would otherwise pay more in
    /// dispatch latency than the work itself costs (the pre-fix bench showed
    /// sub-millisecond stages slowing 5x on the pool). Call sites whose items
    /// are individually heavy (e.g. per-site BGP propagation) should pass an
    /// explicit small grain to keep full fan-out.
    ///
    /// "Effective" lanes = min(workers, hardware cores): workers the machine
    /// cannot run concurrently are not worth dispatching to. On a single-core
    /// machine chunks keep their boundaries but run inline on the calling
    /// thread — same per-chunk call pattern, none of the queue round-trips.
    void parallel_for(std::size_t count, std::size_t grain,
                      const std::function<void(std::size_t, std::size_t)>& body);

    /// Resolves the `threads` config value to a concrete worker count.
    [[nodiscard]] static int resolve(int threads) noexcept;

private:
    void worker_loop();
    void record_exception() noexcept;

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable work_cv_;   // workers wait for tasks
    std::condition_variable idle_cv_;   // wait() waits for drain
    std::size_t in_flight_ = 0;         // queued + running tasks
    std::exception_ptr first_error_;
    bool stopping_ = false;
};

/// Smallest auto-grain chunk: ranges of at most this many items run inline
/// (see parallel_for). Chunking never affects output bytes, only scheduling.
inline constexpr std::size_t min_items_per_chunk = 64;

/// Chunked map over [0, count) that works with or without a pool: a null or
/// serial pool runs inline. This is the one entry point substrates use, so a
/// `thread_pool* pool = nullptr` default parameter keeps them pool-optional.
void parallel_over(thread_pool* pool, std::size_t count,
                   const std::function<void(std::size_t, std::size_t)>& body,
                   std::size_t grain = 0);

} // namespace ac::engine
