// Counter-based deterministic RNG streams for parallel generators.
//
// The bit-identity contract ("two worlds with the same config are
// bit-identical", world.h) must survive parallel execution: a chunk's draws
// may not depend on how many items some other thread already processed.
// Sequential-draw generators break that — the Nth draw depends on the N-1
// before it. The fix is *per-item keying*: every item of every stage owns an
// independent stream seeded by splitmix64-mixing
//
//     (world seed, stage id, item index)
//
// so any thread can compute item i's draws from scratch, in any order, and
// get the same values as a serial run. Stage ids are 64-bit constants chosen
// by each substrate (see e.g. capture/ditl.cpp); they only need to be
// distinct within one world seed's lifetime.
#pragma once

#include <cstdint>

#include "src/netbase/rng.h"

namespace ac::engine {

/// The seed of item `item`'s stream within stage `stage` of a world.
[[nodiscard]] constexpr std::uint64_t item_seed(std::uint64_t world_seed, std::uint64_t stage,
                                                std::uint64_t item) noexcept {
    return rand::mix_seed(world_seed, stage, item);
}

/// A ready-to-draw generator for one item's stream.
[[nodiscard]] inline rand::rng item_rng(std::uint64_t world_seed, std::uint64_t stage,
                                        std::uint64_t item) noexcept {
    return rand::rng{item_seed(world_seed, stage, item)};
}

} // namespace ac::engine
