// Stage graph: named world-construction stages executed in dependency order,
// with per-stage instrumentation.
//
// Stages are registered with name-based dependencies and executed one at a
// time in a *deterministic* topological order (among ready stages, earliest
// registration wins). Running stages sequentially is deliberate: stages
// mutate shared substrate state (the AS graph grows, the address space
// allocates), so cross-stage parallelism would break the bit-identity
// contract. Parallelism lives *inside* a stage, via the thread_pool the
// stage body captures.
//
// Each stage reports how many items it processed; the runner adds wall time
// and thread count, producing a `stage_report` that renders as JSON for
// `acctx world --timing` and `bench_world_build`.
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace ac::engine {

/// Instrumentation for one executed stage.
struct stage_stats {
    std::string name;
    double wall_ms = 0.0;
    std::size_t items = 0;  // stage-defined unit (rows, sources, ASes, ...)
};

/// The full execution record of one stage_graph::run.
struct stage_report {
    std::vector<stage_stats> stages;  // in execution order
    double total_wall_ms = 0.0;
    int threads = 1;  // parallel lanes available to stage bodies

    void write_json(std::ostream& out) const;
};

class stage_graph {
public:
    /// A stage body returns the number of items it processed.
    using stage_fn = std::function<std::size_t()>;

    /// Registers a stage. Dependencies are stage names; they may be
    /// registered before or after this call, but must exist by run().
    /// Duplicate names are rejected.
    void add(std::string name, std::vector<std::string> deps, stage_fn fn);

    [[nodiscard]] std::size_t size() const noexcept { return stages_.size(); }

    /// Executes every stage in dependency order and returns the report.
    /// `threads` is recorded in the report (the runner itself is serial).
    /// Throws std::invalid_argument on unknown dependencies or cycles.
    [[nodiscard]] stage_report run(int threads = 1);

private:
    struct stage {
        std::string name;
        std::vector<std::string> deps;
        stage_fn fn;
    };
    std::vector<stage> stages_;
};

} // namespace ac::engine
