#include "src/engine/thread_pool.h"

#include <algorithm>
#include <utility>

namespace ac::engine {

int thread_pool::resolve(int threads) noexcept {
    if (threads == 1) return 0;  // serial: bypass the pool entirely
    if (threads <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw > 1 ? static_cast<int>(hw) : 0;
    }
    return threads;
}

thread_pool::thread_pool(int threads) {
    const int n = resolve(threads);
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

thread_pool::~thread_pool() {
    {
        std::unique_lock lock{mutex_};
        stopping_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void thread_pool::record_exception() noexcept {
    // Caller holds no lock; keep only the first failure.
    std::unique_lock lock{mutex_};
    if (!first_error_) first_error_ = std::current_exception();
}

void thread_pool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock{mutex_};
            work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stopping and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        try {
            task();
        } catch (...) {
            record_exception();
        }
        {
            std::unique_lock lock{mutex_};
            if (--in_flight_ == 0) idle_cv_.notify_all();
        }
    }
}

void thread_pool::submit(std::function<void()> task) {
    if (serial()) {
        try {
            task();
        } catch (...) {
            record_exception();
        }
        return;
    }
    {
        std::unique_lock lock{mutex_};
        queue_.push_back(std::move(task));
        ++in_flight_;
    }
    work_cv_.notify_one();
}

void thread_pool::wait() {
    std::exception_ptr error;
    {
        std::unique_lock lock{mutex_};
        idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
        error = std::exchange(first_error_, nullptr);
    }
    if (error) std::rethrow_exception(error);
}

void thread_pool::parallel_for(std::size_t count, std::size_t grain,
                               const std::function<void(std::size_t, std::size_t)>& body) {
    if (count == 0) return;
    if (serial()) {
        body(0, count);  // exceptions propagate directly
        return;
    }
    // Oversubscription guard: workers beyond the machine's cores cannot run
    // concurrently, so dispatching to them only buys queue contention and
    // context switches (the pre-guard bench showed the roots stage 30% slower
    // with 4 workers on a 1-core box). Size chunks for the parallelism the
    // machine can actually deliver; hardware_concurrency() == 0 means unknown,
    // in which case trust the configured lane count.
    const unsigned hw = std::thread::hardware_concurrency();
    const std::size_t effective =
        hw == 0 ? static_cast<std::size_t>(lanes())
                : std::min(static_cast<std::size_t>(lanes()), std::size_t{hw});
    if (grain == 0) {
        // ~4 chunks per effective lane keeps load balanced without queue
        // churn, floored so tiny ranges don't shatter into dispatch-dominated
        // chunks.
        grain = std::max(min_items_per_chunk, count / (effective * 4));
    }
    if (count <= grain) {
        body(0, count);  // single chunk: skip dispatch, exceptions propagate
        return;
    }
    if (effective <= 1) {
        // One runnable lane: keep the chunk boundaries (the per-chunk call
        // pattern is observable and callers may rely on the granularity) but
        // run them inline instead of round-tripping through the queue.
        for (std::size_t begin = 0; begin < count; begin += grain) {
            body(begin, std::min(count, begin + grain));
        }
        return;
    }
    for (std::size_t begin = 0; begin < count; begin += grain) {
        const std::size_t end = std::min(count, begin + grain);
        submit([&body, begin, end] { body(begin, end); });
    }
    wait();
}

void parallel_over(thread_pool* pool, std::size_t count,
                   const std::function<void(std::size_t, std::size_t)>& body,
                   std::size_t grain) {
    if (pool == nullptr || pool->serial()) {
        if (count > 0) body(0, count);
        return;
    }
    pool->parallel_for(count, grain, body);
}

} // namespace ac::engine
