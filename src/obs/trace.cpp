#include "src/obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <ostream>
#include <vector>

namespace ac::obs {

namespace {

/// Microseconds on the steady clock; events store absolute values and the
/// exporter rebases onto the enable_tracing epoch.
double now_us() noexcept {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct trace_state {
    std::atomic<bool> enabled{false};
    std::atomic<std::size_t> next{0};
    std::atomic<std::uint64_t> dropped{0};
    std::vector<trace_event> ring;
    double epoch_us = 0.0;
    std::mutex control;  // serializes enable/disable/export
};

trace_state& state() {
    static trace_state instance;
    return instance;
}

std::uint32_t this_thread_id() noexcept {
    static std::atomic<std::uint32_t> next_tid{0};
    static thread_local const std::uint32_t tid =
        next_tid.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

void copy_name(char (&dst)[span_name_capacity + 1], std::string_view src) noexcept {
    const std::size_t n = src.size() < span_name_capacity ? src.size() : span_name_capacity;
    std::memcpy(dst, src.data(), n);
    dst[n] = '\0';
}

void write_json_string(std::ostream& out, const char* s) {
    out << '"';
    for (; *s != '\0'; ++s) {
        const char c = *s;
        switch (c) {
            case '"': out << "\\\""; break;
            case '\\': out << "\\\\"; break;
            case '\n': out << "\\n"; break;
            case '\t': out << "\\t"; break;
            case '\r': out << "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    const char* hex = "0123456789abcdef";
                    out << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
                } else {
                    out << c;
                }
        }
    }
    out << '"';
}

} // namespace

bool trace_enabled() noexcept {
    return state().enabled.load(std::memory_order_relaxed);
}

void enable_tracing(std::size_t capacity) {
    auto& s = state();
    std::lock_guard lock{s.control};
    s.enabled.store(false, std::memory_order_relaxed);
    s.ring.assign(capacity == 0 ? 1 : capacity, trace_event{});
    s.next.store(0, std::memory_order_relaxed);
    s.dropped.store(0, std::memory_order_relaxed);
    s.epoch_us = now_us();
    s.enabled.store(true, std::memory_order_release);
}

void disable_tracing() noexcept {
    state().enabled.store(false, std::memory_order_relaxed);
}

std::size_t trace_event_count() noexcept {
    auto& s = state();
    const std::size_t n = s.next.load(std::memory_order_acquire);
    return n < s.ring.size() ? n : s.ring.size();
}

std::uint64_t trace_dropped_count() noexcept {
    return state().dropped.load(std::memory_order_relaxed);
}

void write_chrome_trace(std::ostream& out) {
    auto& s = state();
    std::lock_guard lock{s.control};
    const std::size_t claimed = s.next.load(std::memory_order_acquire);
    const std::size_t count = claimed < s.ring.size() ? claimed : s.ring.size();
    out << "{\"traceEvents\": [\n";
    for (std::size_t i = 0; i < count; ++i) {
        const trace_event& e = s.ring[i];
        double ts = e.start_us - s.epoch_us;
        if (ts < 0.0) ts = 0.0;  // span opened before enable_tracing
        out << "  {\"name\": ";
        write_json_string(out, e.name);
        out << ", \"ph\": \"X\", \"cat\": \"ac\", \"pid\": 1, \"tid\": " << e.tid
            << ", \"ts\": " << ts << ", \"dur\": " << e.dur_us;
        if (e.items != 0) out << ", \"args\": {\"items\": " << e.items << "}";
        out << "}" << (i + 1 < count ? ",\n" : "\n");
    }
    out << "], \"displayTimeUnit\": \"ms\", \"otherData\": {\"dropped\": "
        << s.dropped.load(std::memory_order_relaxed) << "}}\n";
}

span::span(std::string_view name, policy p) noexcept {
    armed_ = trace_enabled();
    timed_ = armed_ || p == policy::always;
    if (timed_) {
        copy_name(name_, name);
        start_us_ = now_us();
    }
}

span::~span() {
    if (armed_) finish();
}

double span::elapsed_ms() const noexcept {
    return timed_ ? (now_us() - start_us_) / 1000.0 : 0.0;
}

void span::finish() noexcept {
    const double end_us = now_us();
    auto& s = state();
    if (!s.enabled.load(std::memory_order_relaxed)) return;  // disabled mid-span
    const std::size_t slot = s.next.fetch_add(1, std::memory_order_acq_rel);
    if (slot >= s.ring.size()) {
        s.dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    trace_event& e = s.ring[slot];
    std::memcpy(e.name, name_, sizeof name_);
    e.start_us = start_us_;
    e.dur_us = end_us - start_us_;
    e.items = items_;
    e.tid = this_thread_id();
}

} // namespace ac::obs
