#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <ostream>
#include <stdexcept>
#include <thread>

namespace ac::obs {

namespace detail {

std::size_t shard_of_thread() noexcept {
    // Hash the thread id once per thread; `thread_local` keeps the hot path
    // to a single TLS read.
    static thread_local const std::size_t shard =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) % counter_shards;
    return shard;
}

} // namespace detail

namespace {

void write_json_string(std::ostream& out, std::string_view s) {
    out << '"';
    for (const char c : s) {
        switch (c) {
            case '"': out << "\\\""; break;
            case '\\': out << "\\\\"; break;
            case '\n': out << "\\n"; break;
            case '\t': out << "\\t"; break;
            case '\r': out << "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    const char* hex = "0123456789abcdef";
                    out << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
                } else {
                    out << c;
                }
        }
    }
    out << '"';
}

/// JSON numbers must not be NaN/inf; gauges are user-set doubles.
void write_json_number(std::ostream& out, double v) {
    if (std::isfinite(v)) {
        out << v;
    } else {
        out << "null";
    }
}

void atomic_add_double(std::atomic<double>& target, double v) noexcept {
    double expected = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(expected, expected + v, std::memory_order_relaxed)) {
    }
}

} // namespace

histogram::histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()), buckets_(bounds.size() + 1) {
    if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
        throw std::invalid_argument("obs::histogram: bucket bounds must be ascending");
    }
}

void histogram::observe(double v) noexcept {
    // First bucket whose upper bound >= v; above the last bound -> overflow.
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    buckets_[static_cast<std::size_t>(it - bounds_.begin())].value.fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomic_add_double(sum_, v);
}

std::vector<std::uint64_t> histogram::bucket_counts() const {
    std::vector<std::uint64_t> out;
    out.reserve(buckets_.size());
    for (const auto& b : buckets_) out.push_back(b.value.load(std::memory_order_relaxed));
    return out;
}

void histogram::reset_for_test() noexcept {
    for (auto& b : buckets_) b.value.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

std::span<const double> default_latency_bounds_ms() noexcept {
    static const double bounds[] = {0.01, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0,
                                    100.0, 500.0, 1000.0, 10000.0};
    return bounds;
}

registry& registry::global() {
    static registry instance;
    return instance;
}

template <typename T, typename... Args>
T& registry::get_metric(std::string_view name, kind k, std::deque<T>& store, Args&&... args) {
    std::lock_guard lock{mutex_};
    for (const auto& e : entries_) {
        if (e.name == name) {
            if (e.k != k) {
                throw std::invalid_argument("obs::registry: metric '" + std::string{name} +
                                            "' already registered as a different kind");
            }
            return store[e.index];
        }
    }
    store.emplace_back(std::forward<Args>(args)...);
    entries_.push_back(entry{std::string{name}, k, store.size() - 1});
    return store.back();
}

counter& registry::get_counter(std::string_view name) {
    return get_metric(name, kind::counter_k, counters_);
}

gauge& registry::get_gauge(std::string_view name) {
    return get_metric(name, kind::gauge_k, gauges_);
}

histogram& registry::get_histogram(std::string_view name, std::span<const double> bounds) {
    histogram& h = get_metric(name, kind::histogram_k, histograms_, bounds);
    if (h.bounds().size() != bounds.size() ||
        !std::equal(bounds.begin(), bounds.end(), h.bounds().begin())) {
        throw std::invalid_argument("obs::registry: histogram '" + std::string{name} +
                                    "' re-registered with different bounds");
    }
    return h;
}

std::size_t registry::size() const {
    std::lock_guard lock{mutex_};
    return entries_.size();
}

void registry::write_json(std::ostream& out) const {
    std::lock_guard lock{mutex_};
    out << "{\n  \"schema\": \"ac-metrics-v1\",\n  \"metrics\": [\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const auto& e = entries_[i];
        out << "    {\"name\": ";
        write_json_string(out, e.name);
        switch (e.k) {
            case kind::counter_k:
                out << ", \"type\": \"counter\", \"value\": " << counters_[e.index].value();
                break;
            case kind::gauge_k:
                out << ", \"type\": \"gauge\", \"value\": ";
                write_json_number(out, gauges_[e.index].value());
                break;
            case kind::histogram_k: {
                const auto& h = histograms_[e.index];
                out << ", \"type\": \"histogram\", \"count\": " << h.count() << ", \"sum\": ";
                write_json_number(out, h.sum());
                out << ", \"buckets\": [";
                const auto counts = h.bucket_counts();
                for (std::size_t b = 0; b < counts.size(); ++b) {
                    if (b != 0) out << ", ";
                    out << "{\"le\": ";
                    if (b < h.bounds().size()) {
                        write_json_number(out, h.bounds()[b]);
                    } else {
                        out << "\"inf\"";
                    }
                    out << ", \"count\": " << counts[b] << "}";
                }
                out << "]";
                break;
            }
        }
        out << "}" << (i + 1 < entries_.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
}

void registry::reset_values_for_test() {
    std::lock_guard lock{mutex_};
    for (auto& c : counters_) c.reset_for_test();
    for (auto& g : gauges_) g.reset_for_test();
    for (auto& h : histograms_) h.reset_for_test();
}

} // namespace ac::obs
