// Process-wide metrics registry (DESIGN §10).
//
// Counters, gauges, and fixed-bucket latency histograms register once by
// name and are updated from any thread without further registry locking:
//
//   * counters are lock-sharded — each holds a small array of cache-line
//     padded atomics and `add` picks a shard by hashed thread id, so hot
//     paths (the route select cache, table kernels) pay one relaxed
//     fetch_add with no cross-core ping-pong;
//   * gauges are single relaxed atomic doubles (last write wins);
//   * histograms count observations into fixed ascending upper-bound
//     buckets (`le` semantics: value v lands in the first bucket whose
//     bound >= v, values above the last bound land in the +inf overflow
//     bucket) and track count/sum for mean recovery.
//
// Registration order is stable: the JSON snapshot lists metrics in the
// order they were first registered, which is deterministic because every
// registration site in this repo runs in a deterministic order (world
// stages execute sequentially). Handles returned by the registry are valid
// for the life of the process; call sites on hot paths should cache them
// (`static auto& c = registry::global().get_counter(...)`).
//
// Snapshots never reset values: `write_json` reads relaxed and reports
// monotone totals. `reset_for_test` zeroes values (not registrations) so
// unit tests can assert deltas.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ac::obs {

namespace detail {

inline constexpr std::size_t counter_shards = 8;

struct alignas(64) padded_u64 {
    std::atomic<std::uint64_t> value{0};
};

/// Shard picked by hashed thread id (stable per thread, cheap to compute).
[[nodiscard]] std::size_t shard_of_thread() noexcept;

} // namespace detail

/// Monotone event counter. add() is wait-free and thread-safe.
class counter {
public:
    void add(std::uint64_t n = 1) noexcept {
        shards_[detail::shard_of_thread()].value.fetch_add(n, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t value() const noexcept {
        std::uint64_t total = 0;
        for (const auto& s : shards_) total += s.value.load(std::memory_order_relaxed);
        return total;
    }
    void reset_for_test() noexcept {
        for (auto& s : shards_) s.value.store(0, std::memory_order_relaxed);
    }

private:
    std::array<detail::padded_u64, detail::counter_shards> shards_;
};

/// Last-write-wins scalar (thread counts, file sizes, hit rates).
class gauge {
public:
    void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
    [[nodiscard]] double value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }
    void reset_for_test() noexcept { set(0.0); }

private:
    std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bounds are ascending upper bounds ("le"), plus an
/// implicit +inf overflow bucket. observe() is one relaxed fetch_add per
/// bucket/count/sum; bounds are immutable after registration.
class histogram {
public:
    explicit histogram(std::span<const double> bounds);

    void observe(double v) noexcept;

    [[nodiscard]] std::uint64_t count() const noexcept {
        return count_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
    [[nodiscard]] std::span<const double> bounds() const noexcept { return bounds_; }
    /// bounds().size() + 1 entries; the last is the +inf overflow bucket.
    [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
    void reset_for_test() noexcept;

private:
    std::vector<double> bounds_;
    std::vector<detail::padded_u64> buckets_;  // bounds_.size() + 1
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/// Default latency bucket bounds (ms), roughly log-spaced 10us .. 10s.
[[nodiscard]] std::span<const double> default_latency_bounds_ms() noexcept;

class registry {
public:
    /// The process-wide instance every instrumentation site uses.
    [[nodiscard]] static registry& global();

    /// Returns the metric registered under `name`, creating it on first use.
    /// Re-registering a name as a different kind (or a histogram with
    /// different bounds) throws std::invalid_argument.
    [[nodiscard]] counter& get_counter(std::string_view name);
    [[nodiscard]] gauge& get_gauge(std::string_view name);
    [[nodiscard]] histogram& get_histogram(
        std::string_view name, std::span<const double> bounds = default_latency_bounds_ms());

    /// Number of registered metrics (all kinds).
    [[nodiscard]] std::size_t size() const;

    /// Writes the `ac-metrics-v1` JSON snapshot, metrics in registration
    /// order (see README / DESIGN §10 for the schema).
    void write_json(std::ostream& out) const;

    /// Zeroes every metric's value; registrations (and their order) remain.
    void reset_values_for_test();

private:
    enum class kind : std::uint8_t { counter_k, gauge_k, histogram_k };
    struct entry {
        std::string name;
        kind k;
        std::size_t index;  // into the deque for its kind
    };

    template <typename T, typename... Args>
    T& get_metric(std::string_view name, kind k, std::deque<T>& store, Args&&... args);

    mutable std::mutex mutex_;
    std::vector<entry> entries_;  // registration order
    std::deque<counter> counters_;  // deques: stable addresses across growth
    std::deque<gauge> gauges_;
    std::deque<histogram> histograms_;
};

} // namespace ac::obs
