// Scoped trace spans with Chrome trace_event export (DESIGN §10).
//
// `obs::span` is the one timing instrument in the repo: world stages, BGP
// propagation, snapshot section I/O, and the table kernels all open a span
// around their work. When tracing is disabled (the default) a span costs a
// single relaxed atomic load in its constructor — no clock read, no
// allocation — so instrumented kernels stay at full speed. When enabled
// (`acctx ... --trace FILE`), completed spans append to a fixed-capacity
// ring of plain-old-data events: a slot is claimed with one fetch_add and
// written without locks; events past capacity are counted as dropped
// rather than torn. Span names are copied into a fixed in-slot buffer
// (truncated at `span_name_capacity`), so callers may pass temporaries.
//
// `write_chrome_trace` renders the buffer as Chrome's trace_event JSON
// ("X" complete events, microsecond timestamps) — load it at
// chrome://tracing or https://ui.perfetto.dev. Export expects the spans it
// reports to have completed (join your workers first); spans still open at
// export time are simply absent.
//
// Tracing never changes output bytes: spans observe, they do not
// participate in any computation (pinned by report_test's
// golden-with-trace assertion).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string_view>

namespace ac::obs {

inline constexpr std::size_t span_name_capacity = 47;  // + NUL = 48-byte field

struct trace_event {
    char name[span_name_capacity + 1];
    double start_us = 0.0;
    double dur_us = 0.0;
    std::uint64_t items = 0;  // 0 = omitted from args
    std::uint32_t tid = 0;
};

/// True while spans record. One relaxed atomic load.
[[nodiscard]] bool trace_enabled() noexcept;

/// Starts recording into a fresh ring of `capacity` events and resets the
/// trace clock epoch. Idempotent-safe: re-enabling discards prior events.
void enable_tracing(std::size_t capacity = 1 << 16);

/// Stops recording. Already-recorded events remain available for export.
void disable_tracing() noexcept;

/// Completed events currently in the ring (capped at capacity).
[[nodiscard]] std::size_t trace_event_count() noexcept;

/// Spans that finished after the ring filled.
[[nodiscard]] std::uint64_t trace_dropped_count() noexcept;

/// Writes every recorded event as Chrome trace_event JSON.
void write_chrome_trace(std::ostream& out);

class span {
public:
    enum class policy : std::uint8_t {
        when_traced,  // timestamps only taken while tracing is enabled
        always,       // always timed; elapsed_ms() is valid (stage_graph)
    };

    explicit span(std::string_view name, policy p = policy::when_traced) noexcept;
    ~span();

    span(const span&) = delete;
    span& operator=(const span&) = delete;

    /// Attaches an item count, exported as args.items in the trace.
    void set_items(std::uint64_t n) noexcept { items_ = n; }

    /// Milliseconds since construction. Requires policy::always.
    [[nodiscard]] double elapsed_ms() const noexcept;

private:
    void finish() noexcept;

    std::uint64_t items_ = 0;
    double start_us_ = 0.0;  // trace-epoch microseconds (valid when timed_)
    bool armed_ = false;     // record into the ring at destruction
    bool timed_ = false;     // start_us_ holds a real timestamp
    char name_[span_name_capacity + 1];
};

} // namespace ac::obs
