// Minimal HTTP/1.1 front end for the query engine (DESIGN §13).
//
// Deliberately small: blocking POSIX sockets, thread-per-connection,
// GET-only, keep-alive. Each connection owns a request-scoped arena — four
// grow-only buffers (request, response, body, key scratch) reused across
// every request on the connection, so after the first few requests the hot
// path performs zero heap allocations end to end: parse in place, probe the
// sealed indexes, append the answer into the reused body buffer.
//
// Endpoints (all GET):
//   /healthz                         liveness probe
//   /metricsz                        obs registry snapshot (ac-metrics-v1)
//   /inflation?asn=A[,A...]          per-AS inflation points (batched)
//   /amortized?slash24=a.b.c.0[,..]  per-/24 amortization points (batched)
//   /catchment?letter=K[&site=S,..]  per-site catchment shares
//   /route?letter=K&asn=A&region=R   one selection (wait-free when sealed)
//   /grid?stride=N                   differential CSV (== `acctx serve --grid`)
//
// Malformed requests (bad numbers, unknown params, missing required params,
// oversized lines) get 400; unknown paths 404; non-GET 405. Errors never
// throw across the connection loop — a connection that misbehaves is
// answered and, for protocol-level garbage, closed.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>
#include <string_view>
#include <thread>

#include "src/serve/query_engine.h"

namespace ac::serve {

namespace detail {
struct conn_arena;  // the per-connection request-scoped buffers (http.cpp)
}

struct http_options {
    std::uint16_t port = 0;    // 0 = kernel-assigned ephemeral port
    int max_connections = 64;  // concurrent connection cap (excess queue in listen backlog)
};

class http_server {
public:
    /// Binds and listens on 127.0.0.1 immediately (so `port()` is valid
    /// before `start()`); throws std::runtime_error when the bind fails.
    http_server(const query_engine& engine, http_options options);
    ~http_server();

    http_server(const http_server&) = delete;
    http_server& operator=(const http_server&) = delete;

    /// The bound port (the kernel's choice when options.port was 0).
    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

    /// Spawns the acceptor; returns immediately.
    void start();
    /// start() + block until stop() is called from another thread (or the
    /// process is signalled). The CLI's serving mode.
    void run();
    /// Stops accepting, shuts down live connections, joins all threads.
    /// Idempotent.
    void stop();

private:
    void accept_loop();
    void handle_connection(int fd);
    /// Parses one request's header block and fills arena.response; returns
    /// the HTTP status. Pure request handling — no socket I/O.
    int handle_request(std::string_view headers, detail::conn_arena& arena,
                       bool keep_alive) const;

    const query_engine& engine_;
    http_options options_;
    /// Atomic: stop() closes and clears the fd while the acceptor thread is
    /// still reading it for accept() (the close is what unblocks accept).
    std::atomic<int> listen_fd_{-1};
    std::uint16_t port_ = 0;
    std::atomic<bool> stopping_{false};
    std::thread acceptor_;

    std::mutex mutex_;
    std::condition_variable idle_;
    std::set<int> live_fds_;  // open connection sockets, for shutdown on stop()
    int active_ = 0;          // live connection threads
};

} // namespace ac::serve
