#include "src/serve/query_engine.h"

#include <algorithm>

#include "src/load/gauges.h"
#include "src/netbase/strfmt.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/snapshot/world_io.h"

namespace ac::serve {

namespace {

/// One fixed-precision rendering for every served value, online and
/// offline: 6 fractional digits, no locale. Byte-equivalence between the
/// JSON endpoints, the /grid CSV, and `acctx serve --grid` rests on all of
/// them funnelling through here.
void append_value(std::string& out, double v) { out += strfmt::fixed(v, 6); }

void append_u64(std::string& out, std::uint64_t v) { out += std::to_string(v); }

void append_slash24(std::string& out, std::uint32_t key) {
    out += net::slash24{net::ipv4_addr{key << 8}}.to_string();
}

} // namespace

query_engine query_engine::open(const std::string& snapshot_path, int threads) {
    obs::span open_span{"serve/open"};
    auto bundle = snapshot::bundle::open(snapshot_path, snapshot::load_mode::mapped);
    return query_engine{
        snapshot::hydrate_world_ptr(std::move(bundle), threads > 0 ? threads : -1)};
}

query_engine::query_engine(std::unique_ptr<core::world> w) : world_(std::move(w)) {
    build_indexes();
}

void query_engine::build_indexes() {
    obs::span index_span{"serve/build_indexes"};
    engine::thread_pool* pool = world_->pool();

    index_ = analysis::point_query_index::build(world_->filtered_tables(), world_->roots(),
                                                world_->geodb(), world_->cdn_user_counts(),
                                                world_->as_mapper(), pool);

    // Warm + freeze every letter's select cache over the query population —
    // the unique <AS, region> locations hosting recursives, exactly the
    // sources dns::compute_letter_rtts evaluates (user locations can sit in
    // ASes the RIBs never saw) — rolling up catchments from the same
    // selections. After the freeze the serving read path never takes a shard
    // mutex or the topo gate.
    std::vector<route::source_key> sources;
    std::vector<double> source_users;  // users_served summed per location
    {
        std::map<std::uint64_t, std::size_t> location_of;
        for (const auto& rec : world_->users().recursives()) {
            const std::uint64_t key = (std::uint64_t{rec.asn} << 32) | rec.region;
            const auto [it, inserted] = location_of.try_emplace(key, sources.size());
            if (inserted) {
                sources.push_back({rec.asn, rec.region});
                source_users.push_back(0.0);
            }
            source_users[it->second] += rec.users_served;
        }
    }

    auto& registry = obs::registry::global();
    for (const char letter : world_->roots().all_letters()) {
        auto& dep = world_->mutable_roots().mutable_deployment_of(letter);
        const auto selections = dep.rib().select_many(sources, pool);

        letter_catchment catchment;
        catchment.sites.resize(dep.sites().size());
        for (std::size_t i = 0; i < selections.size(); ++i) {
            if (!selections[i]) continue;
            auto& site = catchment.sites[selections[i]->site];
            site.users += source_users[i];
            site.locations += 1;
            catchment.total_users += source_users[i];
        }
        registry.get_gauge(load::letter_users_gauge_name({&letter, 1}))
            .set(catchment.total_users);
        catchments_.emplace(letter, std::move(catchment));

        frozen_entries_ += dep.mutable_rib().freeze_select_cache();
    }
    index_span.set_items(frozen_entries_);

    // Surface the snapshot's load profile in /metricsz: when the archive
    // carries server-side telemetry, per-front-end connection totals appear
    // under the same gauge names a live `acctx load` run publishes.
    load::publish_front_end_conn_gauges(world_->server_log_table(), pool);
}

void query_engine::inflation_json(std::span<const topo::asn_t> asns, std::string& out) const {
    out.clear();
    out += "{\"results\":[";
    for (std::size_t i = 0; i < asns.size(); ++i) {
        if (i > 0) out += ',';
        out += "{\"asn\":";
        append_u64(out, asns[i]);
        const auto* point = index_.inflation(asns[i]);
        if (point == nullptr) {
            out += ",\"found\":false}";
            continue;
        }
        out += ",\"found\":true,\"gi_ms\":";
        append_value(out, point->gi_ms);
        out += ",\"has_latency\":";
        out += point->has_latency ? "true" : "false";
        if (point->has_latency) {
            out += ",\"li_ms\":";
            append_value(out, point->li_ms);
        }
        out += ",\"users\":";
        append_value(out, point->users);
        out += ",\"slash24s\":";
        append_u64(out, point->slash24s);
        out += '}';
    }
    out += "]}";
}

void query_engine::amortized_json(std::span<const std::uint32_t> slash24_keys,
                                  std::string& out) const {
    out.clear();
    out += "{\"results\":[";
    for (std::size_t i = 0; i < slash24_keys.size(); ++i) {
        if (i > 0) out += ',';
        out += "{\"slash24\":\"";
        append_slash24(out, slash24_keys[i]);
        out += '"';
        const auto* point = index_.amortized(slash24_keys[i]);
        if (point == nullptr) {
            out += ",\"found\":false}";
            continue;
        }
        out += ",\"found\":true,\"queries_per_day\":";
        append_value(out, point->queries_per_day);
        out += ",\"users\":";
        append_value(out, point->users);
        out += ",\"queries_per_user_day\":";
        append_value(out, point->queries_per_user_day);
        out += '}';
    }
    out += "]}";
}

bool query_engine::catchment_json(char letter, std::span<const std::uint32_t> sites,
                                  std::string& out) const {
    const auto it = catchments_.find(letter);
    if (it == catchments_.end()) return false;
    const auto& catchment = it->second;
    for (const std::uint32_t site : sites) {
        if (site >= catchment.sites.size()) return false;
    }

    out.clear();
    out += "{\"letter\":\"";
    out += letter;
    out += "\",\"total_users\":";
    append_value(out, catchment.total_users);
    out += ",\"sites\":[";
    bool first = true;
    const auto emit = [&](std::uint32_t site) {
        if (!first) out += ',';
        first = false;
        const auto& s = catchment.sites[site];
        out += "{\"site\":";
        append_u64(out, site);
        out += ",\"users\":";
        append_value(out, s.users);
        out += ",\"share\":";
        append_value(out, catchment.total_users > 0.0 ? s.users / catchment.total_users : 0.0);
        out += ",\"locations\":";
        append_u64(out, s.locations);
        out += '}';
    };
    if (sites.empty()) {
        for (std::uint32_t site = 0; site < catchment.sites.size(); ++site) emit(site);
    } else {
        for (const std::uint32_t site : sites) emit(site);
    }
    out += "]}";
    return true;
}

bool query_engine::route_json(char letter, topo::asn_t asn, topo::region_id region,
                              std::string& out) const {
    if (catchments_.find(letter) == catchments_.end()) return false;
    const auto& rib = world_->roots().deployment_of(letter).rib();

    // The wait-free path: sealed keys answer from the frozen table. Cold
    // keys (sources outside the warmed population) fall back to the locked
    // select, which also memoizes them for the next freeze.
    const std::optional<route::path_result>* sealed = rib.select_frozen(asn, region);
    std::optional<route::path_result> fallback;
    const std::optional<route::path_result>* result = sealed;
    if (result == nullptr) {
        try {
            fallback = rib.select(asn, region);
        } catch (const std::out_of_range&) {
            fallback = std::nullopt;  // unknown AS/region: answered, not thrown
        }
        result = &fallback;
    }

    out.clear();
    out += "{\"letter\":\"";
    out += letter;
    out += "\",\"asn\":";
    append_u64(out, asn);
    out += ",\"region\":";
    append_u64(out, region);
    out += ",\"frozen\":";
    out += sealed != nullptr ? "true" : "false";
    if (!result->has_value()) {
        out += ",\"found\":false}";
        return true;
    }
    const auto& path = **result;
    out += ",\"found\":true,\"site\":";
    append_u64(out, path.site);
    out += ",\"rtt_ms\":";
    append_value(out, path.rtt_ms);
    out += ",\"path_km\":";
    append_value(out, path.path_km);
    out += ",\"hops\":";
    append_u64(out, path.as_path.size());
    out += '}';
    return true;
}

void query_engine::grid_csv(std::size_t stride, std::string& out) const {
    if (stride == 0) stride = 1;
    out.clear();
    out += "kind,key,v1,v2,v3\n";
    const auto asns = index_.asns();
    const auto inflations = index_.inflation_points();
    for (std::size_t i = 0; i < asns.size(); i += stride) {
        out += "inflation,";
        append_u64(out, asns[i]);
        out += ',';
        append_value(out, inflations[i].gi_ms);
        out += ',';
        if (inflations[i].has_latency) append_value(out, inflations[i].li_ms);
        out += ',';
        append_value(out, inflations[i].users);
        out += '\n';
    }
    const auto keys = index_.slash24_keys();
    const auto amortized = index_.amortized_points();
    for (std::size_t i = 0; i < keys.size(); i += stride) {
        out += "amortized,";
        append_slash24(out, keys[i]);
        out += ',';
        append_value(out, amortized[i].queries_per_day);
        out += ',';
        append_value(out, amortized[i].users);
        out += ',';
        append_value(out, amortized[i].queries_per_user_day);
        out += '\n';
    }
}

} // namespace ac::serve
