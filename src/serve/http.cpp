#include "src/serve/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <sys/time.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "src/obs/metrics.h"

namespace ac::serve {

namespace detail {

/// All per-request storage, owned by the connection and reused for every
/// request on it. Buffers only grow; after warmup no handler allocates.
struct conn_arena {
    std::string request;    // raw bytes read so far
    std::string body;       // the JSON/CSV payload
    std::string response;   // status line + headers + body
    std::vector<std::uint32_t> keys;   // parsed asn=/slash24= lists
    std::vector<std::uint32_t> sites;  // parsed site= list (catchment)
};

} // namespace detail

using detail::conn_arena;

namespace {

// --- observability ---------------------------------------------------------

obs::counter& request_counter() {
    static obs::counter& c = obs::registry::global().get_counter("serve.requests");
    return c;
}
obs::counter& bad_request_counter() {
    static obs::counter& c = obs::registry::global().get_counter("serve.responses_400");
    return c;
}
obs::counter& not_found_counter() {
    static obs::counter& c = obs::registry::global().get_counter("serve.responses_404");
    return c;
}
obs::counter& connection_counter() {
    static obs::counter& c = obs::registry::global().get_counter("serve.connections");
    return c;
}
obs::histogram& request_us_histogram() {
    static constexpr double bounds[] = {1.0,    2.0,    5.0,    10.0,   20.0,
                                        50.0,   100.0,  200.0,  500.0,  1000.0,
                                        2000.0, 5000.0, 10000.0};
    static obs::histogram& h = obs::registry::global().get_histogram("serve.request_us", bounds);
    return h;
}

// --- tiny strict parsers ---------------------------------------------------

bool parse_u64(std::string_view text, std::uint64_t& out) {
    if (text.empty() || text.size() > 20) return false;
    std::uint64_t v = 0;
    for (const char ch : text) {
        if (ch < '0' || ch > '9') return false;
        const std::uint64_t digit = static_cast<std::uint64_t>(ch - '0');
        if (v > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) return false;
        v = v * 10 + digit;
    }
    out = v;
    return true;
}

bool parse_u32(std::string_view text, std::uint32_t& out) {
    std::uint64_t v = 0;
    if (!parse_u64(text, v) || v > std::numeric_limits<std::uint32_t>::max()) return false;
    out = static_cast<std::uint32_t>(v);
    return true;
}

/// "a.b.c.d" or "a.b.c.d/24" -> /24 key.
bool parse_slash24(std::string_view text, std::uint32_t& key) {
    if (text.ends_with("/24")) text.remove_suffix(3);
    const auto addr = net::ipv4_addr::parse(text);
    if (!addr) return false;
    key = addr->value() >> 8;
    return true;
}

/// Comma-separated values through `parse_one` into `out`. Empty elements and
/// trailing commas are malformed; list size is capped to keep one request
/// from ballooning a response.
template <typename Parse>
bool parse_list(std::string_view text, std::vector<std::uint32_t>& out, Parse parse_one) {
    constexpr std::size_t max_batch = 4096;
    out.clear();
    while (!text.empty()) {
        const std::size_t comma = text.find(',');
        const std::string_view element =
            comma == std::string_view::npos ? text : text.substr(0, comma);
        std::uint32_t value = 0;
        if (!parse_one(element, value) || out.size() >= max_batch) return false;
        out.push_back(value);
        if (comma == std::string_view::npos) break;
        text.remove_prefix(comma + 1);
        if (text.empty()) return false;  // trailing comma
    }
    return !out.empty();
}

/// One query parameter: present at most once, never empty.
struct param {
    std::string_view value;
    bool present = false;
};

/// Splits "k=v&k=v" against a fixed set of allowed keys. Unknown keys,
/// repeats, and empty values are malformed.
bool parse_query(std::string_view query, std::span<const std::string_view> names,
                 std::span<param> out) {
    while (!query.empty()) {
        const std::size_t amp = query.find('&');
        const std::string_view pair =
            amp == std::string_view::npos ? query : query.substr(0, amp);
        const std::size_t eq = pair.find('=');
        if (eq == std::string_view::npos || eq == 0 || eq + 1 == pair.size()) return false;
        const std::string_view key = pair.substr(0, eq);
        const std::string_view value = pair.substr(eq + 1);
        bool known = false;
        for (std::size_t i = 0; i < names.size(); ++i) {
            if (key != names[i]) continue;
            if (out[i].present) return false;  // repeated parameter
            out[i] = {value, true};
            known = true;
            break;
        }
        if (!known) return false;
        if (amp == std::string_view::npos) break;
        query.remove_prefix(amp + 1);
    }
    return true;
}

// --- response assembly -----------------------------------------------------

void build_response(conn_arena& arena, int status, std::string_view reason,
                    std::string_view content_type, bool keep_alive) {
    arena.response.clear();
    arena.response += "HTTP/1.1 ";
    arena.response += std::to_string(status);
    arena.response += ' ';
    arena.response += reason;
    arena.response += "\r\nContent-Type: ";
    arena.response += content_type;
    arena.response += "\r\nContent-Length: ";
    arena.response += std::to_string(arena.body.size());
    arena.response += keep_alive ? "\r\nConnection: keep-alive\r\n\r\n"
                                 : "\r\nConnection: close\r\n\r\n";
    arena.response += arena.body;
}

void error_body(conn_arena& arena, std::string_view message) {
    arena.body.clear();
    arena.body += "{\"error\":\"";
    arena.body += message;
    arena.body += "\"}";
}

bool write_all(int fd, std::string_view data) {
    while (!data.empty()) {
        const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        data.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
}

} // namespace

http_server::http_server(const query_engine& engine, http_options options)
    : engine_(engine), options_(options) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("serve: socket() failed");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.port);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 128) != 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw std::runtime_error("serve: cannot bind 127.0.0.1:" +
                                 std::to_string(options_.port));
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
}

http_server::~http_server() { stop(); }

void http_server::start() {
    if (acceptor_.joinable()) return;
    acceptor_ = std::thread([this] { accept_loop(); });
}

void http_server::run() {
    start();
    acceptor_.join();
    std::unique_lock lock{mutex_};
    idle_.wait(lock, [this] { return active_ == 0; });
}

void http_server::stop() {
    if (stopping_.exchange(true)) {
        if (acceptor_.joinable()) acceptor_.join();
        return;
    }
    if (const int fd = listen_fd_.exchange(-1); fd >= 0) {
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }
    {
        std::lock_guard lock{mutex_};
        for (const int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
        idle_.notify_all();  // wake an acceptor parked on the connection cap
    }
    if (acceptor_.joinable() && acceptor_.get_id() != std::this_thread::get_id()) {
        acceptor_.join();
    }
    std::unique_lock lock{mutex_};
    idle_.wait(lock, [this] { return active_ == 0; });
}

void http_server::accept_loop() {
    while (!stopping_.load(std::memory_order_relaxed)) {
        const int fd = ::accept(listen_fd_.load(), nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) continue;
            break;  // listen socket closed by stop()
        }
        {
            std::unique_lock lock{mutex_};
            idle_.wait(lock, [this] {
                return stopping_.load(std::memory_order_relaxed) ||
                       active_ < options_.max_connections;
            });
            if (stopping_.load(std::memory_order_relaxed)) {
                ::close(fd);
                break;
            }
            ++active_;
            live_fds_.insert(fd);
        }
        connection_counter().add(1);
        // The connection thread never closes fd itself: the close happens
        // after the fd leaves live_fds_, so stop() can't shut down a
        // recycled descriptor.
        std::thread([this, fd] {
            handle_connection(fd);
            {
                std::lock_guard lock{mutex_};
                live_fds_.erase(fd);
                --active_;
                // Notify under the lock: a stop() woken by active_ == 0 can
                // destroy the server the moment it reacquires mutex_, which
                // it cannot do until this block unlocks — so the broadcast
                // never races the condition variable's destruction.
                idle_.notify_all();
            }
            ::close(fd);
        }).detach();
    }
    // Unblock a run() caller waiting on the acceptor.
    std::lock_guard lock{mutex_};
    idle_.notify_all();
}

void http_server::handle_connection(int fd) {
    constexpr std::size_t max_request_bytes = 8192;
    timeval timeout{};
    timeout.tv_sec = 10;  // idle keep-alive connections release their thread
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    conn_arena arena;
    char chunk[4096];
    bool keep_alive = true;

    while (keep_alive && !stopping_.load(std::memory_order_relaxed)) {
        // Read until the end of the header block.
        arena.request.clear();
        std::size_t header_end = std::string::npos;
        while (header_end == std::string::npos) {
            const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
            if (n < 0 && errno == EINTR) continue;
            if (n <= 0) {
                return;  // peer closed, timed out, or was shut down by stop()
            }
            arena.request.append(chunk, static_cast<std::size_t>(n));
            header_end = arena.request.find("\r\n\r\n");
            if (arena.request.size() > max_request_bytes &&
                header_end == std::string::npos) {
                error_body(arena, "request too large");
                build_response(arena, 400, "Bad Request", "application/json", false);
                write_all(fd, arena.response);
                bad_request_counter().add(1);
                return;
            }
        }

        const auto started = std::chrono::steady_clock::now();
        request_counter().add(1);
        const std::string_view request{arena.request};
        const std::string_view headers = request.substr(0, header_end);

        // HTTP/1.1 defaults to keep-alive; honour an explicit close.
        keep_alive = headers.find("Connection: close") == std::string_view::npos &&
                     headers.find("connection: close") == std::string_view::npos;

        // Last-resort guard: a handler that throws answers 500 and closes
        // this connection instead of terminating the detached thread (and
        // with it the whole process).
        int status = 0;
        try {
            status = handle_request(headers, arena, keep_alive);
        } catch (const std::exception& e) {
            error_body(arena, e.what());
            build_response(arena, 500, "Internal Server Error", "application/json", false);
            status = 500;
            keep_alive = false;
        }
        if (status == 400) bad_request_counter().add(1);
        if (status == 404) not_found_counter().add(1);
        const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - started);
        request_us_histogram().observe(static_cast<double>(elapsed.count()) / 1000.0);

        if (!write_all(fd, arena.response)) break;
    }
}

int http_server::handle_request(std::string_view headers, conn_arena& arena,
                                bool keep_alive) const {
    const auto respond = [&](int status, std::string_view reason,
                             std::string_view content_type) {
        build_response(arena, status, reason, content_type, keep_alive);
        return status;
    };
    const auto bad_request = [&](std::string_view message) {
        error_body(arena, message);
        return respond(400, "Bad Request", "application/json");
    };

    // Request line: METHOD SP target SP HTTP/1.x
    const std::size_t line_end = headers.find("\r\n");
    const std::string_view line =
        line_end == std::string_view::npos ? headers : headers.substr(0, line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 = sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
        return bad_request("malformed request line");
    }
    const std::string_view method = line.substr(0, sp1);
    const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string_view version = line.substr(sp2 + 1);
    if (!version.starts_with("HTTP/1.")) return bad_request("unsupported protocol");
    if (method != "GET") {
        error_body(arena, "method not allowed");
        return respond(405, "Method Not Allowed", "application/json");
    }

    const std::size_t qmark = target.find('?');
    const std::string_view path =
        qmark == std::string_view::npos ? target : target.substr(0, qmark);
    const std::string_view query =
        qmark == std::string_view::npos ? std::string_view{} : target.substr(qmark + 1);

    if (path == "/healthz") {
        if (!query.empty()) return bad_request("healthz takes no parameters");
        arena.body.assign("ok\n");
        return respond(200, "OK", "text/plain");
    }

    if (path == "/metricsz") {
        if (!query.empty()) return bad_request("metricsz takes no parameters");
        std::ostringstream json;  // not a hot path: diagnostics only
        obs::registry::global().write_json(json);
        arena.body = json.str();
        return respond(200, "OK", "application/json");
    }

    if (path == "/inflation") {
        const std::string_view names[] = {"asn"};
        param params[1];
        if (!parse_query(query, names, params) || !params[0].present ||
            !parse_list(params[0].value, arena.keys,
                        [](std::string_view t, std::uint32_t& v) { return parse_u32(t, v); })) {
            return bad_request("inflation requires asn=<u32>[,<u32>...]");
        }
        engine_.inflation_json(arena.keys, arena.body);
        return respond(200, "OK", "application/json");
    }

    if (path == "/amortized") {
        const std::string_view names[] = {"slash24"};
        param params[1];
        if (!parse_query(query, names, params) || !params[0].present ||
            !parse_list(params[0].value, arena.keys, parse_slash24)) {
            return bad_request("amortized requires slash24=<a.b.c.0>[,...]");
        }
        engine_.amortized_json(arena.keys, arena.body);
        return respond(200, "OK", "application/json");
    }

    if (path == "/catchment") {
        const std::string_view names[] = {"letter", "site"};
        param params[2];
        if (!parse_query(query, names, params) || !params[0].present ||
            params[0].value.size() != 1) {
            return bad_request("catchment requires letter=<K>[&site=<u32>,...]");
        }
        arena.sites.clear();
        if (params[1].present &&
            !parse_list(params[1].value, arena.sites,
                        [](std::string_view t, std::uint32_t& v) { return parse_u32(t, v); })) {
            return bad_request("catchment site list is malformed");
        }
        if (!engine_.catchment_json(params[0].value[0], arena.sites, arena.body)) {
            return bad_request("unknown letter or site id");
        }
        return respond(200, "OK", "application/json");
    }

    if (path == "/route") {
        const std::string_view names[] = {"letter", "asn", "region"};
        param params[3];
        std::uint32_t asn = 0;
        std::uint64_t region = 0;
        if (!parse_query(query, names, params) || !params[0].present ||
            params[0].value.size() != 1 || !params[1].present ||
            !parse_u32(params[1].value, asn) || !params[2].present ||
            !parse_u64(params[2].value, region) ||
            region > std::numeric_limits<topo::region_id>::max()) {
            return bad_request("route requires letter=<K>&asn=<u32>&region=<id>");
        }
        if (!engine_.route_json(params[0].value[0], asn,
                                static_cast<topo::region_id>(region), arena.body)) {
            return bad_request("unknown letter");
        }
        return respond(200, "OK", "application/json");
    }

    if (path == "/grid") {
        const std::string_view names[] = {"stride"};
        param params[1];
        std::uint64_t stride = 1;
        if (!parse_query(query, names, params) ||
            (params[0].present && (!parse_u64(params[0].value, stride) || stride == 0))) {
            return bad_request("grid takes stride=<u64 >= 1>");
        }
        engine_.grid_csv(static_cast<std::size_t>(stride), arena.body);
        return respond(200, "OK", "text/csv");
    }

    error_body(arena, "unknown path");
    return respond(404, "Not Found", "application/json");
}

} // namespace ac::serve
