// The serving query engine (DESIGN §13): a world snapshot opened once,
// immutable query-side indexes built at startup, and a wait-free routing
// read path.
//
// Startup does all the mutable work — open the snapshot (mapped mode),
// hydrate the world, build the analysis::point_query_index, roll up per-site
// catchments, pre-warm every letter's select cache over the query population
// and seal it (route::anycast_rib::freeze_select_cache). After the
// constructor returns the engine is logically const: every answer is a
// binary search or a wait-free probe over sealed arrays, and the JSON/CSV
// writers append into caller-owned grow-only buffers so the hot path
// performs zero allocations once a connection's arena has warmed up.
//
// Answers are byte-equivalent to the offline `acctx` analyses by
// construction: both sides call the same analysis:: point-query functions
// and format through the same fixed-precision helpers (differential-tested
// in tests/serve_test.cpp and in ci/verify.sh's curl-vs-CSV smoke).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/analysis/point_query.h"
#include "src/core/world.h"

namespace ac::serve {

/// Per-site catchment rollup for one letter, computed once at startup from
/// the same `select` results the figures use.
struct site_catchment {
    double users = 0.0;      // users routed to this site
    std::uint32_t locations = 0;  // <AS, region> sources routed here
};

struct letter_catchment {
    std::vector<site_catchment> sites;  // indexed by site id
    double total_users = 0.0;           // users with any selected route
};

class query_engine {
public:
    /// Opens `snapshot_path` (mapped mode), hydrates, indexes, warms and
    /// freezes. `threads` caps the hydration/warmup pool (0 = snapshot
    /// default). Throws snapshot::snapshot_error / std::runtime_error on a
    /// bad archive.
    [[nodiscard]] static query_engine open(const std::string& snapshot_path, int threads = 0);

    /// Builds from an already-constructed world (tests and benches). Takes
    /// ownership by pointer: core::world is non-movable (its RIBs point at
    /// sibling members), so the engine keeps it at a stable heap address.
    explicit query_engine(std::unique_ptr<core::world> w);

    [[nodiscard]] const core::world& world() const noexcept { return *world_; }
    [[nodiscard]] const analysis::point_query_index& index() const noexcept { return index_; }
    /// Total select-cache entries sealed across letters at startup.
    [[nodiscard]] std::size_t frozen_entries() const noexcept { return frozen_entries_; }

    // --- JSON answer writers (hot path) -----------------------------------
    // Each clears `out` and appends one JSON object. Unknown keys produce
    // {"found":false} entries rather than errors so batched queries degrade
    // per-element. Returns false only for structurally invalid requests
    // (unknown letter / site id out of range), which the HTTP layer maps to
    // a 400.

    void inflation_json(std::span<const topo::asn_t> asns, std::string& out) const;
    void amortized_json(std::span<const std::uint32_t> slash24_keys, std::string& out) const;
    [[nodiscard]] bool catchment_json(char letter, std::span<const std::uint32_t> sites,
                                      std::string& out) const;
    [[nodiscard]] bool route_json(char letter, topo::asn_t asn, topo::region_id region,
                                  std::string& out) const;

    /// The differential surface: every indexed AS and /24 (each `stride`-th
    /// entry), one CSV row per point, identical bytes online (`/grid`) and
    /// offline (`acctx serve --grid`).
    void grid_csv(std::size_t stride, std::string& out) const;

    [[nodiscard]] const std::map<char, letter_catchment>& catchments() const noexcept {
        return catchments_;
    }

private:
    void build_indexes();

    std::unique_ptr<core::world> world_;
    analysis::point_query_index index_;
    std::map<char, letter_catchment> catchments_;
    std::size_t frozen_entries_ = 0;
};

} // namespace ac::serve
