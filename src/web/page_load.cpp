#include "src/web/page_load.h"

#include <algorithm>
#include <cmath>

#include "src/netbase/strfmt.h"

namespace ac::web {

int transfer_rtts(double bytes, double init_window_bytes) {
    if (bytes <= 0.0) return 0;
    if (bytes <= init_window_bytes) return 1;
    return static_cast<int>(std::ceil(std::log2(bytes / init_window_bytes)));
}

int page_load_rtts(const page& p, double init_window_bytes) {
    if (p.connections.empty()) return 0;

    // Largest-first, keep temporally non-overlapping connections.
    std::vector<const connection*> ordered;
    ordered.reserve(p.connections.size());
    for (const auto& c : p.connections) ordered.push_back(&c);
    std::sort(ordered.begin(), ordered.end(),
              [](const connection* a, const connection* b) { return a->bytes > b->bytes; });

    std::vector<const connection*> chain;
    for (const connection* c : ordered) {
        const bool overlaps = std::any_of(chain.begin(), chain.end(), [&](const connection* k) {
            return c->start_s < k->end_s && k->start_s < c->end_s;
        });
        if (!overlaps) chain.push_back(c);
    }

    int rtts = 2;  // first TCP + TLS handshakes; later handshakes overlap
    for (const connection* c : chain) rtts += transfer_rtts(c->bytes, init_window_bytes);
    return rtts;
}

page make_page(const std::string& name, const page_model_options& options, rand::rng& gen) {
    page p;
    p.name = name;

    // Main document: starts at t=0 and anchors the serial chain.
    connection main_doc;
    main_doc.bytes = gen.lognormal(options.main_object_mu, options.main_object_sigma);
    main_doc.start_s = 0.0;
    main_doc.end_s = gen.uniform(0.3, 1.0);
    p.connections.push_back(main_doc);

    const int assets =
        static_cast<int>(gen.uniform_int(options.min_connections, options.max_connections));
    double serial_cursor = main_doc.end_s;
    for (int i = 0; i < assets; ++i) {
        connection c;
        c.bytes = gen.lognormal(options.asset_mu, options.asset_sigma);
        if (gen.chance(options.parallel_overlap_p)) {
            // Parallel fetch: overlaps the main document or a sibling.
            c.start_s = gen.uniform(0.0, std::max(0.05, serial_cursor - 0.05));
            c.end_s = c.start_s + gen.uniform(0.1, 0.8);
        } else {
            // Serial dependency (discovered by parsing earlier responses).
            c.start_s = serial_cursor + 0.01;
            c.end_s = c.start_s + gen.uniform(0.1, 0.6);
            serial_cursor = c.end_s;
        }
        p.connections.push_back(c);
    }
    return p;
}

double page_rtt_study::fraction_within(int rtts) const {
    if (rtt_counts.empty()) return 0.0;
    const auto within = std::count_if(rtt_counts.begin(), rtt_counts.end(),
                                      [&](int n) { return n <= rtts; });
    return static_cast<double>(within) / static_cast<double>(rtt_counts.size());
}

int page_rtt_study::percentile(double q) const {
    if (rtt_counts.empty()) return 0;
    std::vector<int> sorted = rtt_counts;
    std::sort(sorted.begin(), sorted.end());
    const auto index = static_cast<std::size_t>(
        std::min<double>(static_cast<double>(sorted.size()) - 1.0,
                         q * static_cast<double>(sorted.size())));
    return sorted[index];
}

page_rtt_study run_page_rtt_study(int pages, int loads_per_page,
                                  const page_model_options& options, std::uint64_t seed) {
    rand::rng gen{rand::mix_seed(seed, 0x9a9eull)};
    page_rtt_study study;
    study.rtt_counts.reserve(static_cast<std::size_t>(pages * loads_per_page));
    for (int pi = 0; pi < pages; ++pi) {
        for (int load = 0; load < loads_per_page; ++load) {
            // Each load re-draws connection timing/sizes (dynamic content).
            auto lg = gen.fork(rand::mix_seed(static_cast<std::uint64_t>(pi),
                                              static_cast<std::uint64_t>(load)));
            const page p = make_page(strfmt::indexed_name("page", pi, 2), options, lg);
            study.rtt_counts.push_back(page_load_rtts(p));
        }
    }
    return study;
}

} // namespace ac::web
