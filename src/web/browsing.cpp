#include "src/web/browsing.h"

#include <cmath>

namespace ac::web {

browsing_day simulate_browsing_day(const browsing_options& options, rand::rng& gen) {
    browsing_day day;
    day.page_loads = static_cast<int>(std::lround(
        options.page_loads_per_day_median * gen.lognormal(0.0, options.page_loads_sigma)));
    if (day.page_loads < 0) day.page_loads = 0;

    for (int i = 0; i < day.page_loads; ++i) {
        day.cumulative_page_load_s +=
            options.page_load_time_s_median * gen.lognormal(0.0, options.page_load_time_sigma);
        day.active_browsing_s += gen.exponential(1.0 / options.active_time_per_page_s);
    }
    day.browsing_dns_queries = static_cast<int>(std::lround(
        static_cast<double>(day.page_loads) * options.dns_queries_per_page *
        gen.lognormal(0.0, 0.2)));
    day.background_dns_queries = static_cast<int>(
        gen.poisson(options.background_queries_per_day));
    return day;
}

} // namespace ac::web
