// A user's browsing day (§4.3's local perspective).
//
// The two-author experiment compares daily root-DNS latency against median
// daily cumulative page-load time and active browsing time (30-second
// interaction timeout). This model produces those denominators plus the DNS
// query stream a day of browsing generates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/netbase/rng.h"

namespace ac::web {

struct browsing_options {
    double page_loads_per_day_median = 70.0;
    double page_loads_sigma = 0.6;
    double page_load_time_s_median = 1.6;   // until window.onLoad
    double page_load_time_sigma = 0.5;
    double active_time_per_page_s = 35.0;   // interaction with 30 s timeout
    double dns_queries_per_page = 8.0;      // unique names per page load
    double background_queries_per_day = 250.0;  // non-browsing applications
};

/// One simulated day at the end host.
struct browsing_day {
    int page_loads = 0;
    double cumulative_page_load_s = 0.0;
    double active_browsing_s = 0.0;
    int browsing_dns_queries = 0;
    int background_dns_queries = 0;

    [[nodiscard]] int total_dns_queries() const noexcept {
        return browsing_dns_queries + background_dns_queries;
    }
};

[[nodiscard]] browsing_day simulate_browsing_day(const browsing_options& options,
                                                 rand::rng& gen);

} // namespace ac::web
