// Page-load RTT modeling (§5.1 and Appendix C).
//
// Per-RTT anycast inflation matters in proportion to how many RTTs a page
// load costs. The paper lower-bounds that count with Eq. 4 — N = ceil(log2
// (D/W)) RTTs for D bytes under slow start with a W≈15 kB initial window —
// summed over the chain of temporally non-overlapping connections (largest
// first), plus two RTTs for the first TCP and TLS handshakes. The result,
// validated over nine Microsoft pages × 20 loads, is that 10 RTTs is a
// reasonable lower bound and 90% of loads fit in 20.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/netbase/rng.h"

namespace ac::web {

/// Default initial congestion window: ~15 kB (10 MSS), the dominant server
/// configuration [66] and Microsoft's.
inline constexpr double default_init_window_bytes = 15000.0;

/// Eq. 4: RTTs for a connection that delivers `bytes` under slow start.
/// Zero-byte connections cost 0; anything up to one window costs 1.
[[nodiscard]] int transfer_rtts(double bytes, double init_window_bytes = default_init_window_bytes);

/// One TCP connection observed during a page load.
struct connection {
    double bytes = 0.0;      // server-to-client payload until loadEventEnd
    double start_s = 0.0;    // open time relative to navigation start
    double end_s = 0.0;      // last data time
};

struct page {
    std::string name;
    std::vector<connection> connections;
};

/// Appendix C accumulation: take the largest connection, then add
/// connections in descending size order that do not overlap in time with
/// any already-counted connection; sum Eq. 4 over the chain and add two
/// RTTs for the first TCP+TLS handshake.
[[nodiscard]] int page_load_rtts(const page& p,
                                 double init_window_bytes = default_init_window_bytes);

/// Synthetic-page knobs approximating CDN-hosted dynamic pages.
struct page_model_options {
    int min_connections = 6;
    int max_connections = 12;
    double main_object_mu = 12.8;     // lognormal of the main document, bytes
    double main_object_sigma = 0.4;
    double asset_mu = 10.8;           // supporting objects
    double asset_sigma = 1.0;
    double parallel_overlap_p = 0.58; // chance an asset loads in parallel
};

/// Draws one synthetic page.
[[nodiscard]] page make_page(const std::string& name, const page_model_options& options,
                             rand::rng& gen);

/// Appendix C experiment: loads `pages` pages `loads_per_page` times each and
/// reports the distribution of RTT counts.
struct page_rtt_study {
    std::vector<int> rtt_counts;           // one entry per load
    double fraction_within(int rtts) const;
    int percentile(double q) const;        // e.g. 0.9 -> RTTs at p90
};

[[nodiscard]] page_rtt_study run_page_rtt_study(int pages, int loads_per_page,
                                                const page_model_options& options,
                                                std::uint64_t seed);

} // namespace ac::web
