#include "src/scenario/event.h"

#include <algorithm>
#include <charconv>
#include <istream>
#include <sstream>

namespace ac::scenario {

namespace {

/// Parses a non-negative integer field; anything else (sign, trailing
/// garbage, overflow) is malformed.
long long parse_number(const std::string& token, const std::string& field, int line_no) {
    long long value = 0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || ptr != token.data() + token.size() || value < 0) {
        throw timeline_error("timeline line " + std::to_string(line_no) + ": malformed " +
                             field + " '" + token + "'");
    }
    return value;
}

struct event_shape {
    event_type type;
    bool has_target;
    bool has_site;
    bool has_region;
    bool has_amount;
};

const event_shape* shape_of(const std::string& name) {
    static const event_shape shapes[] = {
        {event_type::drain, true, true, false, false},
        {event_type::restore, true, true, false, false},
        {event_type::withdraw, true, false, false, false},
        {event_type::announce, true, false, false, false},
        {event_type::outage, false, false, true, false},
        {event_type::prepend, true, true, false, true},
        {event_type::promote, true, true, false, false},
        {event_type::demote, true, true, false, false},
    };
    for (const auto& s : shapes) {
        if (name == event_type_name(s.type)) return &s;
    }
    return nullptr;
}

} // namespace

std::string_view event_type_name(event_type type) noexcept {
    switch (type) {
        case event_type::drain: return "drain";
        case event_type::restore: return "restore";
        case event_type::withdraw: return "withdraw";
        case event_type::announce: return "announce";
        case event_type::outage: return "outage";
        case event_type::prepend: return "prepend";
        case event_type::promote: return "promote";
        case event_type::demote: return "demote";
    }
    return "?";
}

std::string event::describe() const {
    std::string out{event_type_name(type)};
    if (type == event_type::outage) {
        out += " region " + std::to_string(region);
        return out;
    }
    out += " " + target;
    if (type == event_type::drain || type == event_type::restore ||
        type == event_type::prepend || type == event_type::promote ||
        type == event_type::demote) {
        out += " site " + std::to_string(site);
    }
    if (type == event_type::prepend) out += " x" + std::to_string(prepend);
    return out;
}

int timeline::last_step() const noexcept {
    int last = 0;
    for (const auto& e : events) last = std::max(last, e.step);
    return last;
}

timeline parse_timeline(std::istream& in) {
    timeline tl;
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (const auto hash = line.find('#'); hash != std::string::npos) {
            line.erase(hash);
        }
        std::istringstream fields{line};
        std::vector<std::string> tokens;
        for (std::string tok; fields >> tok;) tokens.push_back(std::move(tok));
        if (tokens.empty()) continue;  // blank or comment-only line

        if (tokens.size() < 2) {
            throw timeline_error("timeline line " + std::to_string(line_no) +
                                 ": expected '<step> <type> [args]', got '" + line + "'");
        }
        event e;
        e.step = static_cast<int>(parse_number(tokens[0], "step", line_no));
        const event_shape* shape = shape_of(tokens[1]);
        if (shape == nullptr) {
            throw timeline_error("timeline line " + std::to_string(line_no) +
                                 ": unknown event type '" + tokens[1] + "'");
        }
        e.type = shape->type;
        const std::size_t expected = 2u + (shape->has_target ? 1u : 0u) +
                                     (shape->has_site ? 1u : 0u) +
                                     (shape->has_region ? 1u : 0u) +
                                     (shape->has_amount ? 1u : 0u);
        if (tokens.size() != expected) {
            throw timeline_error("timeline line " + std::to_string(line_no) + ": '" +
                                 tokens[1] + "' takes " + std::to_string(expected - 2) +
                                 " argument(s), got " + std::to_string(tokens.size() - 2));
        }
        std::size_t next = 2;
        if (shape->has_target) e.target = tokens[next++];
        if (shape->has_site) {
            e.site = static_cast<route::site_id>(parse_number(tokens[next++], "site", line_no));
        }
        if (shape->has_region) {
            e.region =
                static_cast<topo::region_id>(parse_number(tokens[next++], "region", line_no));
        }
        if (shape->has_amount) {
            e.prepend = static_cast<int>(parse_number(tokens[next++], "prepend count", line_no));
            if (e.prepend < 1 || e.prepend > max_prepend) {
                throw timeline_error("timeline line " + std::to_string(line_no) +
                                     ": prepend count must be 1.." +
                                     std::to_string(max_prepend));
            }
        }
        tl.events.push_back(std::move(e));
    }
    std::stable_sort(tl.events.begin(), tl.events.end(),
                     [](const event& a, const event& b) { return a.step < b.step; });
    return tl;
}

timeline parse_timeline_text(std::string_view text) {
    std::istringstream in{std::string{text}};
    return parse_timeline(in);
}

} // namespace ac::scenario
