#include "src/scenario/event.h"

#include <algorithm>
#include <charconv>
#include <istream>
#include <sstream>

namespace ac::scenario {

namespace {

/// Parses a non-negative integer field; anything else (sign, trailing
/// garbage, overflow) is malformed.
long long parse_number(const std::string& token, const std::string& field, int line_no) {
    long long value = 0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || ptr != token.data() + token.size() || value < 0) {
        throw timeline_error("timeline line " + std::to_string(line_no) + ": malformed " +
                             field + " '" + token + "'");
    }
    return value;
}

struct event_shape {
    event_type type;
    bool has_target;
    bool has_site;
    bool has_region;
    bool has_amount;
    bool has_pct;
    bool has_window;
    const char* window_name;  // "period" or "duration" (for messages)
};

const event_shape* shape_of(const std::string& name) {
    static const event_shape shapes[] = {
        {event_type::drain, true, true, false, false, false, false, ""},
        {event_type::restore, true, true, false, false, false, false, ""},
        {event_type::withdraw, true, false, false, false, false, false, ""},
        {event_type::announce, true, false, false, false, false, false, ""},
        {event_type::outage, false, false, true, false, false, false, ""},
        {event_type::prepend, true, true, false, true, false, false, ""},
        {event_type::promote, true, true, false, false, false, false, ""},
        {event_type::demote, true, true, false, false, false, false, ""},
        {event_type::demand_level, false, false, false, false, true, false, ""},
        {event_type::demand_diurnal, false, false, false, false, true, true, "period"},
        {event_type::demand_flash, false, false, true, false, true, true, "duration"},
        {event_type::demand_hotspot, false, false, true, false, true, false, ""},
    };
    for (const auto& s : shapes) {
        if (name == event_type_name(s.type)) return &s;
    }
    return nullptr;
}

/// Identity of the state an event mutates, for same-step conflict detection.
/// Events whose keys compare equal touch the same state; if their payloads
/// differ the outcome would depend on input line order. The first component
/// also encodes scope: a prefix-wide event (withdraw/announce, kind 1) on a
/// target conflicts with any site-level event (kind 0) on the same target,
/// which the checker handles separately since the keys differ.
struct conflict_key {
    int kind;            // 0 site, 1 prefix, 2 outage, 3..6 demand kinds
    std::string target;  // deployment name (site/prefix kinds)
    long scope;          // site id or region id, 0 where unused
};

conflict_key key_of(const event& e) {
    switch (e.type) {
        case event_type::drain:
        case event_type::restore:
        case event_type::prepend:
        case event_type::promote:
        case event_type::demote:
            return {0, e.target, static_cast<long>(e.site)};
        case event_type::withdraw:
        case event_type::announce:
            return {1, e.target, 0};
        case event_type::outage:
            return {2, {}, static_cast<long>(e.region)};
        case event_type::demand_level:
            return {3, {}, 0};
        case event_type::demand_diurnal:
            return {4, {}, 0};
        case event_type::demand_flash:
            return {5, {}, static_cast<long>(e.region)};
        case event_type::demand_hotspot:
            return {6, {}, static_cast<long>(e.region)};
    }
    return {-1, {}, 0};
}

bool same_payload(const event& a, const event& b) {
    return a.type == b.type && a.target == b.target && a.site == b.site &&
           a.region == b.region && a.prepend == b.prepend && a.pct == b.pct &&
           a.window == b.window;
}

[[noreturn]] void throw_conflict(const event& a, const event& b) {
    throw timeline_error("timeline: conflicting events at step " + std::to_string(a.step) +
                         ": '" + a.describe() + "' vs '" + b.describe() + "'");
}

/// Rejects same-step events whose combined effect is order-dependent:
/// identical conflict keys with different payloads, and prefix-wide vs
/// site-level events on the same target. Byte-identical duplicates pass.
void check_conflicts(const std::vector<event>& events) {
    for (std::size_t i = 0; i < events.size(); ++i) {
        const conflict_key ka = key_of(events[i]);
        for (std::size_t j = i + 1;
             j < events.size() && events[j].step == events[i].step; ++j) {
            const conflict_key kb = key_of(events[j]);
            const bool same_key = ka.kind == kb.kind && ka.target == kb.target &&
                                  ka.scope == kb.scope;
            if (same_key && !same_payload(events[i], events[j])) {
                throw_conflict(events[i], events[j]);
            }
            // Whole-prefix withdraw/announce next to any site event on the
            // same target: the prefix event overrides or undoes the site one
            // depending on apply order.
            const bool prefix_vs_site =
                ((ka.kind == 1 && kb.kind == 0) || (ka.kind == 0 && kb.kind == 1)) &&
                ka.target == kb.target;
            if (prefix_vs_site) throw_conflict(events[i], events[j]);
        }
    }
}

} // namespace

std::string_view event_type_name(event_type type) noexcept {
    switch (type) {
        case event_type::drain: return "drain";
        case event_type::restore: return "restore";
        case event_type::withdraw: return "withdraw";
        case event_type::announce: return "announce";
        case event_type::outage: return "outage";
        case event_type::prepend: return "prepend";
        case event_type::promote: return "promote";
        case event_type::demote: return "demote";
        case event_type::demand_level: return "demand-level";
        case event_type::demand_diurnal: return "demand-diurnal";
        case event_type::demand_flash: return "demand-flash";
        case event_type::demand_hotspot: return "demand-hotspot";
    }
    return "?";
}

bool is_demand_event(event_type type) noexcept {
    switch (type) {
        case event_type::demand_level:
        case event_type::demand_diurnal:
        case event_type::demand_flash:
        case event_type::demand_hotspot:
            return true;
        default:
            return false;
    }
}

std::string event::describe() const {
    std::string out{event_type_name(type)};
    if (type == event_type::demand_level) {
        out += " " + std::to_string(pct) + "%";
        return out;
    }
    if (type == event_type::demand_diurnal) {
        out += " amplitude " + std::to_string(pct) + "% period " + std::to_string(window);
        return out;
    }
    if (type == event_type::demand_flash) {
        out += " region " + std::to_string(region) + " " + std::to_string(pct) + "% for " +
               std::to_string(window);
        return out;
    }
    if (type == event_type::demand_hotspot) {
        out += " region " + std::to_string(region) + " " + std::to_string(pct) + "%";
        return out;
    }
    if (type == event_type::outage) {
        out += " region " + std::to_string(region);
        return out;
    }
    out += " " + target;
    if (type == event_type::drain || type == event_type::restore ||
        type == event_type::prepend || type == event_type::promote ||
        type == event_type::demote) {
        out += " site " + std::to_string(site);
    }
    if (type == event_type::prepend) out += " x" + std::to_string(prepend);
    return out;
}

int timeline::last_step() const noexcept {
    int last = 0;
    for (const auto& e : events) last = std::max(last, e.step);
    return last;
}

timeline parse_timeline(std::istream& in) {
    timeline tl;
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (const auto hash = line.find('#'); hash != std::string::npos) {
            line.erase(hash);
        }
        std::istringstream fields{line};
        std::vector<std::string> tokens;
        for (std::string tok; fields >> tok;) tokens.push_back(std::move(tok));
        if (tokens.empty()) continue;  // blank or comment-only line

        if (tokens.size() < 2) {
            throw timeline_error("timeline line " + std::to_string(line_no) +
                                 ": expected '<step> <type> [args]', got '" + line + "'");
        }
        event e;
        e.step = static_cast<int>(parse_number(tokens[0], "step", line_no));
        const event_shape* shape = shape_of(tokens[1]);
        if (shape == nullptr) {
            throw timeline_error("timeline line " + std::to_string(line_no) +
                                 ": unknown event type '" + tokens[1] + "'");
        }
        e.type = shape->type;
        const std::size_t expected = 2u + (shape->has_target ? 1u : 0u) +
                                     (shape->has_site ? 1u : 0u) +
                                     (shape->has_region ? 1u : 0u) +
                                     (shape->has_amount ? 1u : 0u) +
                                     (shape->has_pct ? 1u : 0u) +
                                     (shape->has_window ? 1u : 0u);
        if (tokens.size() != expected) {
            throw timeline_error("timeline line " + std::to_string(line_no) + ": '" +
                                 tokens[1] + "' takes " + std::to_string(expected - 2) +
                                 " argument(s), got " + std::to_string(tokens.size() - 2));
        }
        std::size_t next = 2;
        if (shape->has_target) e.target = tokens[next++];
        if (shape->has_site) {
            e.site = static_cast<route::site_id>(parse_number(tokens[next++], "site", line_no));
        }
        if (shape->has_region) {
            e.region =
                static_cast<topo::region_id>(parse_number(tokens[next++], "region", line_no));
        }
        if (shape->has_amount) {
            e.prepend = static_cast<int>(parse_number(tokens[next++], "prepend count", line_no));
            if (e.prepend < 1 || e.prepend > max_prepend) {
                throw timeline_error("timeline line " + std::to_string(line_no) +
                                     ": prepend count must be 1.." +
                                     std::to_string(max_prepend));
            }
        }
        if (shape->has_pct) {
            e.pct = static_cast<int>(parse_number(tokens[next++], "percent", line_no));
            if (e.type == event_type::demand_diurnal) {
                if (e.pct > max_diurnal_amplitude_pct) {
                    throw timeline_error("timeline line " + std::to_string(line_no) +
                                         ": diurnal amplitude must be 0.." +
                                         std::to_string(max_diurnal_amplitude_pct));
                }
            } else if (e.pct > max_demand_pct) {
                throw timeline_error("timeline line " + std::to_string(line_no) +
                                     ": demand percent must be 0.." +
                                     std::to_string(max_demand_pct));
            }
        }
        if (shape->has_window) {
            e.window = static_cast<int>(parse_number(tokens[next++], shape->window_name, line_no));
            const int min_window = e.type == event_type::demand_diurnal ? 2 : 1;
            if (e.window < min_window) {
                throw timeline_error("timeline line " + std::to_string(line_no) + ": " +
                                     shape->window_name + " must be at least " +
                                     std::to_string(min_window));
            }
        }
        tl.events.push_back(std::move(e));
    }
    std::stable_sort(tl.events.begin(), tl.events.end(),
                     [](const event& a, const event& b) { return a.step < b.step; });
    check_conflicts(tl.events);
    return tl;
}

timeline parse_timeline_text(std::string_view text) {
    std::istringstream in{std::string{text}};
    return parse_timeline(in);
}

} // namespace ac::scenario
