// Scenario driver: replays an event timeline against live deployments and
// re-runs the paper's catchment/inflation measurements after every step.
//
// Determinism: steps execute in order through an `engine::stage_graph`
// (apply → analyze), events within a step apply in timeline order, and the
// analyze stage is a bulk `select_many` over a fixed source list whose rows
// are keyed per source — so two runs with the same inputs produce
// byte-identical metric series at any thread count. Each step mutates the
// targets' RIBs *in place* via the incremental announce/withdraw entry
// points (DESIGN §11); the per-step `reconverge` numbers report how much
// work that saved versus a wholesale rebuild.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/anycast/deployment.h"
#include "src/engine/thread_pool.h"
#include "src/scenario/event.h"
#include "src/topology/as_graph.h"
#include "src/topology/region.h"

namespace ac::scenario {

/// A weighted traffic source (usually a <region, AS> user location).
struct weighted_source {
    topo::asn_t asn = 0;
    topo::region_id region = 0;
    double weight = 1.0;  // user count behind this source
};

/// Per-target measurements after one step.
struct target_metrics {
    std::string target;
    std::size_t active_sites = 0;
    double reach_fraction = 0.0;       // weight share with any route
    double median_rtt_ms = 0.0;        // over reachable weight
    double p90_rtt_ms = 0.0;
    double median_inflation_ms = 0.0;  // rtt minus best-case c-limit rtt
    double shifted_share = 0.0;        // weight whose site changed this step
    double stranded_share = 0.0;       // weight that lost its route this step
    double max_site_share = 0.0;       // catchment concentration (largest site)
};

/// One step of the series: the events applied, the incremental
/// re-convergence work they cost, and the post-step measurements.
struct step_metrics {
    int step = 0;
    std::vector<std::string> applied;  // event descriptions, timeline order
    std::size_t ases_touched = 0;
    std::size_t cache_entries_invalidated = 0;
    std::size_t cache_shards_visited = 0;
    double apply_ms = 0.0;    // stage wall time: mutations + re-convergence
    double analyze_ms = 0.0;  // stage wall time: catchment/inflation sweep
    std::vector<target_metrics> targets;
};

struct driver_options {
    engine::thread_pool* pool = nullptr;  // analyze-stage parallelism
    int threads = 1;                      // recorded in the stage reports
};

class driver {
public:
    driver(const topo::as_graph& graph, const topo::region_table& regions);

    /// Registers a deployment the timeline can address by `name`. The
    /// deployment outlives the driver and is mutated in place by run().
    void add_target(std::string name, anycast::deployment& dep);

    /// The fixed source population measured after every step.
    void set_sources(std::vector<weighted_source> sources);

    [[nodiscard]] std::size_t target_count() const noexcept { return targets_.size(); }

    /// Replays `tl` and returns one `step_metrics` per step 0..last_step().
    /// Step 0 is conventionally the pre-event baseline (timelines start
    /// events at step 1); a step with no events still re-measures.
    /// Throws `timeline_error` if an event names an unknown target, an
    /// out-of-range site, or an out-of-range region.
    [[nodiscard]] std::vector<step_metrics> run(const timeline& tl,
                                               const driver_options& options = {});

private:
    struct target_state {
        std::string name;
        anycast::deployment* dep = nullptr;
        std::vector<route::announcement> baseline;  // announcements at add_target
        /// Site chosen per source at the previous step (-1 = no route),
        /// for shift/strand accounting.
        std::vector<std::int64_t> prev_site;
    };

    void apply_event(const event& e, step_metrics& step);
    target_state& target_named(const std::string& name);
    void measure(target_state& t, const driver_options& options, step_metrics& step);

    const topo::as_graph* graph_;
    const topo::region_table* regions_;
    std::vector<target_state> targets_;
    std::vector<weighted_source> sources_;
    double total_weight_ = 0.0;
};

/// Writes the step series as a CSV figure table:
/// step,target,events,active_sites,reach_fraction,median_rtt_ms,p90_rtt_ms,
/// median_inflation_ms,shifted_share,stranded_share,max_site_share,
/// ases_touched,cache_invalidated
void write_step_csv(std::ostream& out, const std::vector<step_metrics>& steps);

/// Human-readable per-step summary for the terminal.
void print_step_series(std::ostream& out, const std::vector<step_metrics>& steps);

} // namespace ac::scenario
