#include "src/scenario/driver.h"

#include <algorithm>
#include <limits>
#include <ostream>

#include "src/analysis/stats.h"
#include "src/engine/stage_graph.h"
#include "src/netbase/geo.h"
#include "src/netbase/strfmt.h"
#include "src/obs/trace.h"

namespace ac::scenario {

driver::driver(const topo::as_graph& graph, const topo::region_table& regions)
    : graph_(&graph), regions_(&regions) {}

void driver::add_target(std::string name, anycast::deployment& dep) {
    target_state t;
    t.name = std::move(name);
    t.dep = &dep;
    const auto& anns = dep.rib().announcements();
    t.baseline.assign(anns.begin(), anns.end());
    targets_.push_back(std::move(t));
}

void driver::set_sources(std::vector<weighted_source> sources) {
    sources_ = std::move(sources);
    total_weight_ = 0.0;
    for (const auto& s : sources_) total_weight_ += s.weight;
}

driver::target_state& driver::target_named(const std::string& name) {
    for (auto& t : targets_) {
        if (t.name == name) return t;
    }
    throw timeline_error("timeline: unknown target '" + name + "'");
}

void driver::apply_event(const event& e, step_metrics& step) {
    const auto accumulate = [&](const route::anycast_rib::reconverge_stats& s) {
        step.ases_touched += s.ases_touched;
        step.cache_entries_invalidated += s.cache_entries_invalidated;
        step.cache_shards_visited += s.cache_shards_visited;
    };
    const auto check_site = [&](const target_state& t, route::site_id site) {
        if (site >= t.dep->rib().site_count()) {
            throw timeline_error("timeline: target '" + t.name + "' has no site " +
                                 std::to_string(site));
        }
    };

    if (is_demand_event(e.type)) {
        // Demand events rescale the offered-load series (src/load) and never
        // touch routing state; the driver validates and records them so a
        // mixed timeline replays with the same step accounting either way.
        if ((e.type == event_type::demand_flash || e.type == event_type::demand_hotspot) &&
            e.region >= regions_->size()) {
            throw timeline_error("timeline: unknown region " + std::to_string(e.region));
        }
        return;
    }

    if (e.type == event_type::outage) {
        if (e.region >= regions_->size()) {
            throw timeline_error("timeline: unknown region " + std::to_string(e.region));
        }
        // A regional outage is letter-agnostic: every target loses every
        // site homed in the region.
        for (auto& t : targets_) {
            auto& rib = t.dep->mutable_rib();
            for (route::site_id s = 0; s < rib.site_count(); ++s) {
                if (rib.is_withdrawn(s)) continue;
                if (rib.announcements()[s].origin_region != e.region) continue;
                accumulate(rib.withdraw(s));
            }
        }
        return;
    }

    target_state& t = target_named(e.target);
    auto& rib = t.dep->mutable_rib();
    switch (e.type) {
        case event_type::drain: {
            check_site(t, e.site);
            accumulate(rib.withdraw(e.site));
            break;
        }
        case event_type::restore: {
            check_site(t, e.site);
            // Reinstate with current parameters (a prior prepend/promote
            // survives the drain), not the add_target baseline.
            accumulate(rib.announce(rib.announcements()[e.site]));
            break;
        }
        case event_type::withdraw: {
            for (route::site_id s = 0; s < rib.site_count(); ++s) {
                if (!rib.is_withdrawn(s)) accumulate(rib.withdraw(s));
            }
            break;
        }
        case event_type::announce: {
            for (route::site_id s = 0; s < rib.site_count(); ++s) {
                if (rib.is_withdrawn(s)) accumulate(rib.announce(rib.announcements()[s]));
            }
            break;
        }
        case event_type::prepend: {
            check_site(t, e.site);
            auto a = rib.announcements()[e.site];
            a.prepend = static_cast<std::uint8_t>(e.prepend);
            accumulate(rib.announce(a));
            break;
        }
        case event_type::promote: {
            check_site(t, e.site);
            auto a = rib.announcements()[e.site];
            a.scope = route::announcement_scope::global;
            accumulate(rib.announce(a));
            break;
        }
        case event_type::demote: {
            check_site(t, e.site);
            auto a = rib.announcements()[e.site];
            a.scope = route::announcement_scope::local;
            accumulate(rib.announce(a));
            break;
        }
        case event_type::outage:
        case event_type::demand_level:
        case event_type::demand_diurnal:
        case event_type::demand_flash:
        case event_type::demand_hotspot:
            break;  // handled above
    }
}

void driver::measure(target_state& t, const driver_options& options, step_metrics& step) {
    const auto& rib = t.dep->rib();
    target_metrics m;
    m.target = t.name;
    m.active_sites = rib.active_site_count();

    std::vector<route::source_key> keys;
    keys.reserve(sources_.size());
    for (const auto& s : sources_) keys.push_back(route::source_key{s.asn, s.region});
    const auto results = rib.select_many(keys, options.pool);

    analysis::weighted_cdf rtt;
    analysis::weighted_cdf inflation;
    std::vector<double> site_weight(rib.site_count(), 0.0);
    std::vector<std::int64_t> cur_site(sources_.size(), -1);
    double reach_weight = 0.0;
    for (std::size_t i = 0; i < sources_.size(); ++i) {
        const double w = sources_[i].weight;
        if (results[i]) {
            reach_weight += w;
            rtt.add(results[i]->rtt_ms, w);
            inflation.add(results[i]->rtt_ms - geo::best_case_rtt_ms(results[i]->direct_km), w);
            site_weight[results[i]->site] += w;
            cur_site[i] = static_cast<std::int64_t>(results[i]->site);
        }
    }
    if (!t.prev_site.empty()) {
        for (std::size_t i = 0; i < sources_.size(); ++i) {
            const std::int64_t prev = t.prev_site[i];
            if (prev < 0 || cur_site[i] == prev) continue;
            if (cur_site[i] < 0) {
                m.stranded_share += sources_[i].weight;
            } else {
                m.shifted_share += sources_[i].weight;
            }
        }
    }
    t.prev_site = std::move(cur_site);

    if (total_weight_ > 0.0) {
        m.reach_fraction = reach_weight / total_weight_;
        m.shifted_share /= total_weight_;
        m.stranded_share /= total_weight_;
    }
    if (!rtt.empty()) {
        m.median_rtt_ms = rtt.median();
        m.p90_rtt_ms = rtt.quantile(0.9);
        m.median_inflation_ms = inflation.median();
    }
    if (reach_weight > 0.0) {
        const double top = *std::max_element(site_weight.begin(), site_weight.end());
        m.max_site_share = top / reach_weight;
    }
    step.targets.push_back(std::move(m));
}

std::vector<step_metrics> driver::run(const timeline& tl, const driver_options& options) {
    obs::span run_span{"scenario/run"};
    run_span.set_items(tl.events.size());

    // Pre-validate every event against the registered targets so a typo at
    // step 40 fails before step 0 runs (and mutates nothing).
    for (const auto& e : tl.events) {
        if (is_demand_event(e.type)) {
            if ((e.type == event_type::demand_flash ||
                 e.type == event_type::demand_hotspot) &&
                e.region >= regions_->size()) {
                throw timeline_error("timeline: unknown region " + std::to_string(e.region));
            }
        } else if (e.type == event_type::outage) {
            if (e.region >= regions_->size()) {
                throw timeline_error("timeline: unknown region " + std::to_string(e.region));
            }
        } else {
            const target_state& t = target_named(e.target);
            if (e.type != event_type::withdraw && e.type != event_type::announce &&
                e.site >= t.dep->rib().site_count()) {
                throw timeline_error("timeline: target '" + t.name + "' has no site " +
                                     std::to_string(e.site));
            }
        }
    }

    // Start every replay from a cold select cache so the per-step work
    // accounting (entries invalidated) is a pure function of the timeline
    // and sources — identical whether the world was just built live or
    // hydrated from a snapshot with a different query history.
    for (auto& t : targets_) {
        t.dep->mutable_rib().clear_select_cache();
        t.prev_site.clear();
    }

    std::vector<step_metrics> out;
    std::size_t next_event = 0;  // tl.events is sorted by step
    const int last = tl.last_step();
    for (int step_no = 0; step_no <= last; ++step_no) {
        step_metrics sm;
        sm.step = step_no;

        const std::size_t first = next_event;
        while (next_event < tl.events.size() && tl.events[next_event].step == step_no) {
            ++next_event;
        }

        engine::stage_graph stages;
        stages.add("apply", {}, [&] {
            for (std::size_t i = first; i < next_event; ++i) {
                sm.applied.push_back(tl.events[i].describe());
                apply_event(tl.events[i], sm);
            }
            return next_event - first;
        });
        stages.add("analyze", {"apply"}, [&] {
            for (auto& t : targets_) measure(t, options, sm);
            return sources_.size() * targets_.size();
        });
        const auto report = stages.run(options.threads);
        for (const auto& st : report.stages) {
            if (st.name == "apply") sm.apply_ms = st.wall_ms;
            if (st.name == "analyze") sm.analyze_ms = st.wall_ms;
        }
        out.push_back(std::move(sm));
    }
    return out;
}

void write_step_csv(std::ostream& out, const std::vector<step_metrics>& steps) {
    out << "step,target,events,active_sites,reach_fraction,median_rtt_ms,p90_rtt_ms,"
           "median_inflation_ms,shifted_share,stranded_share,max_site_share,"
           "ases_touched,cache_invalidated\n";
    for (const auto& s : steps) {
        std::string events;
        for (const auto& a : s.applied) {
            if (!events.empty()) events += ';';
            events += a;
        }
        for (const auto& t : s.targets) {
            out << s.step << ',' << t.target << ",\"" << events << "\"," << t.active_sites
                << ',' << strfmt::fixed(t.reach_fraction, 4) << ','
                << strfmt::fixed(t.median_rtt_ms, 3) << ',' << strfmt::fixed(t.p90_rtt_ms, 3)
                << ',' << strfmt::fixed(t.median_inflation_ms, 3) << ','
                << strfmt::fixed(t.shifted_share, 4) << ','
                << strfmt::fixed(t.stranded_share, 4) << ','
                << strfmt::fixed(t.max_site_share, 4) << ',' << s.ases_touched << ','
                << s.cache_entries_invalidated << '\n';
        }
    }
}

void print_step_series(std::ostream& out, const std::vector<step_metrics>& steps) {
    for (const auto& s : steps) {
        out << "step " << s.step << ": ";
        if (s.applied.empty()) {
            out << "(no events)";
        } else {
            for (std::size_t i = 0; i < s.applied.size(); ++i) {
                if (i != 0) out << "; ";
                out << s.applied[i];
            }
            out << " | reconverged " << s.ases_touched << " ASes, invalidated "
                << s.cache_entries_invalidated << " cache entries across "
                << s.cache_shards_visited << " shards";
        }
        out << "\n";
        for (const auto& t : s.targets) {
            out << "  " << t.target << ": " << t.active_sites << " sites, reach "
                << strfmt::fixed(100.0 * t.reach_fraction, 1) << "%, median rtt "
                << strfmt::fixed(t.median_rtt_ms, 1) << " ms (p90 "
                << strfmt::fixed(t.p90_rtt_ms, 1) << "), inflation "
                << strfmt::fixed(t.median_inflation_ms, 1) << " ms, shifted "
                << strfmt::fixed(100.0 * t.shifted_share, 1) << "%, stranded "
                << strfmt::fixed(100.0 * t.stranded_share, 1) << "%, top-site share "
                << strfmt::fixed(100.0 * t.max_site_share, 1) << "%\n";
        }
    }
}

} // namespace ac::scenario
