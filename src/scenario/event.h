// Scenario events: the operational timeline vocabulary for dynamic anycast.
//
// The paper's analyses run against one static converged world, but anycast
// operation is defined by events — Tangled's evaluation (PAPERS.md) is a
// catalogue of exactly these failover experiments. A `timeline` is an
// ordered list of events, each firing at an integer step:
//
//   drain    <target> <site>       one site stops announcing (maintenance)
//   restore  <target> <site>       a drained site re-announces
//   withdraw <target>              the whole prefix withdraws (all sites)
//   announce <target>              every withdrawn site re-announces
//   outage   <region>              regional outage: every target's sites in
//                                  that region withdraw
//   prepend  <target> <site> <n>   site re-announces with n AS-path prepends
//   promote  <target> <site>       local site becomes global (ring promotion)
//   demote   <target> <site>       global site becomes local
//
// Demand events shape the offered-load series consumed by `src/load` (the
// FastRoute-style load-aware CDN policies); they never touch routing state,
// so `scenario::driver` records them as applied and re-measures as usual:
//
//   demand-level   <pct>                global demand level, percent of
//                                       nominal (state-setting; default 100)
//   demand-diurnal <amplitude> <period> deterministic diurnal cycle: an
//                                       integer triangle wave of +/-
//                                       amplitude percent with the given
//                                       period in steps (trough at the
//                                       firing step, peak half a period in)
//   demand-flash   <region> <pct> <duration>
//                                       flash crowd: the region's demand
//                                       multiplies by pct percent for
//                                       `duration` steps, then auto-reverts
//   demand-hotspot <region> <pct>       persistent regional multiplier
//                                       (state-setting; 100 clears it)
//
// The text format is one event per line: `<step> <type> <args...>`, with
// `#` comments and blank lines ignored. Parsing is strict: unknown event
// types, missing/extra arguments, and non-numeric fields are
// `timeline_error`s, which `acctx scenario` and `acctx load` map to usage
// errors. Two events firing at the same step whose effects collide — the
// same <target, site>, the same target's whole prefix next to any site
// event on that target, the same region's flash/hot-spot, or two global
// demand settings — are also rejected: their outcome would depend on input
// line order, which a deterministic replay must not be. Byte-identical
// duplicates are allowed (idempotent).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "src/routing/bgp.h"
#include "src/topology/region.h"

namespace ac::scenario {

enum class event_type : std::uint8_t {
    drain,
    restore,
    withdraw,
    announce,
    outage,
    prepend,
    promote,
    demote,
    demand_level,
    demand_diurnal,
    demand_flash,
    demand_hotspot,
};

[[nodiscard]] std::string_view event_type_name(event_type type) noexcept;

/// True for the demand-* kinds: events that rescale offered load (src/load)
/// instead of mutating routing state.
[[nodiscard]] bool is_demand_event(event_type type) noexcept;

/// One timeline entry. Which fields are meaningful depends on `type`
/// (see the table above); the parser only fills the ones the type uses.
struct event {
    int step = 0;
    event_type type = event_type::drain;
    std::string target;            // deployment name; empty for `outage`/demand
    route::site_id site = 0;       // drain/restore/prepend/promote/demote
    topo::region_id region = 0;    // outage/demand-flash/demand-hotspot
    int prepend = 0;               // prepend amount, 1..max_prepend
    int pct = 100;                 // demand percent (diurnal: amplitude)
    int window = 0;                // demand-diurnal period / demand-flash duration

    /// Human-readable rendering, e.g. "drain K site 3".
    [[nodiscard]] std::string describe() const;
};

/// Largest accepted prepend count: path lengths live in a uint8 and real
/// operators rarely prepend more than a handful of hops.
inline constexpr int max_prepend = 16;

/// Largest accepted demand percentage (100x nominal): keeps every factor in
/// the integer demand chain (src/load/demand.h) far from int64 overflow.
inline constexpr int max_demand_pct = 10000;

/// Diurnal amplitude cap: the triangle wave swings nominal by +/- amplitude
/// percent, so anything above 100 would drive demand negative at the trough.
inline constexpr int max_diurnal_amplitude_pct = 100;

/// A parse or validation failure; the message names the offending line.
class timeline_error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

struct timeline {
    std::vector<event> events;  // sorted by step (stable on input order)

    /// Highest step any event fires at (0 for an empty timeline).
    [[nodiscard]] int last_step() const noexcept;
};

/// Parses the line-based timeline format. Throws `timeline_error` on any
/// unknown event type, malformed entry, or same-step conflict (see above).
[[nodiscard]] timeline parse_timeline(std::istream& in);
[[nodiscard]] timeline parse_timeline_text(std::string_view text);

} // namespace ac::scenario
