// Sort-based group-by kernels over columns.
//
// Every analysis in this repo is some flavour of "group rows by a key and
// reduce each group" (volume by /24, inflation by recursive, metrics by
// destination). Instead of one private `unordered_map` per module, the
// kernels here stable-sort a permutation of row indices by key and expose
// the resulting runs as groups, which buys three properties at once:
//
//   * determinism by construction — groups are visited in ascending key
//     order and rows within a group keep their original order, so outputs
//     (and floating-point accumulation order) are a pure function of the
//     input rows, never of a hash function or allocator;
//   * cache-friendliness — reductions stream through permuted contiguous
//     columns rather than chasing hash-table nodes;
//   * parallelism — groups are independent, so `group_reduce` fans them out
//     over the engine's pool into pre-sized slots, keeping the output
//     identical at any thread count.
//
// Unsigned-integer keys (the common case: /24 keys, packed composite keys,
// ASNs) sort through a stable LSD radix path that skips constant bytes;
// everything else falls back to std::stable_sort. Large unsigned-key sorts
// given a thread pool take a partitioned path — a stable MSB-byte partition
// followed by independent per-partition LSD sorts on the pool — that
// produces the exact serial permutation, so parallel joins stay
// byte-identical.
//
// Kernels also accept `column<T>` arguments in any storage state (owned,
// borrowed, encoded — see column.h/encoding.h): encoded columns are scanned
// directly where a fast path exists (dictionary group-by groups by packed
// code and remaps through the sorted dictionary; RLE scans reduce
// run-at-a-time via `for_each`) and are decoded once otherwise.
#pragma once

#include <algorithm>
#include <array>
#include <concepts>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "src/engine/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/table/column.h"

namespace ac::table {

using row_index = std::uint32_t;

namespace detail {

/// Rows-processed counter for the kernels, resolved once per process (the
/// registry lookup locks; kernel calls must stay lock-free).
inline obs::counter& kernel_rows_counter() {
    static obs::counter& c = obs::registry::global().get_counter("table.kernel_rows");
    return c;
}

} // namespace detail

namespace detail {

/// Stable LSD radix sort of row indices by an unsigned-integer key column.
/// Bytes whose value is identical across all keys are skipped. Keys travel
/// with the permutation so every pass reads sequentially (the permuted
/// random-access gather would otherwise dominate).
template <std::unsigned_integral K>
[[nodiscard]] std::vector<row_index> radix_sort_permutation(std::span<const K> keys) {
    std::vector<row_index> perm(keys.size());
    std::iota(perm.begin(), perm.end(), row_index{0});
    if (keys.size() < 2) return perm;

    // All byte histograms in one sequential pass.
    std::array<std::array<std::size_t, 256>, sizeof(K)> counts{};
    for (const K key : keys) {
        for (std::size_t byte = 0; byte < sizeof(K); ++byte) {
            ++counts[byte][static_cast<std::size_t>((key >> (8 * byte)) & 0xffu)];
        }
    }

    std::vector<row_index> scratch(keys.size());
    std::vector<K> sorted_keys(keys.begin(), keys.end());
    std::vector<K> key_scratch(keys.size());
    for (std::size_t byte = 0; byte < sizeof(K); ++byte) {
        auto& count = counts[byte];
        // A byte that is constant across all keys cannot change the order.
        if (std::any_of(count.begin(), count.end(),
                        [&](std::size_t c) { return c == keys.size(); })) {
            continue;
        }
        const unsigned shift = static_cast<unsigned>(8 * byte);
        std::size_t offset = 0;
        for (auto& c : count) {
            const std::size_t next = offset + c;
            c = offset;
            offset = next;
        }
        for (std::size_t i = 0; i < sorted_keys.size(); ++i) {
            const K key = sorted_keys[i];
            const std::size_t slot = count[static_cast<std::size_t>((key >> shift) & 0xffu)]++;
            key_scratch[slot] = key;
            scratch[slot] = perm[i];
        }
        perm.swap(scratch);
        sorted_keys.swap(key_scratch);
    }
    return perm;
}

/// Below this row count the MSB partition's extra passes cost more than the
/// pool saves; the serial LSD sort wins.
inline constexpr std::size_t parallel_sort_min_rows = std::size_t{1} << 15;

/// Stable MSB-byte partition + independent per-partition LSD sorts on the
/// pool. Produces the EXACT permutation of the serial LSD sort: the
/// partition is precisely the serial sort's (stable, counting) pass over
/// the highest non-constant byte reordered to run last, and each
/// partition's own LSD sort skips that byte as constant — skipped constant
/// bytes never change the permutation.
template <std::unsigned_integral K>
[[nodiscard]] std::vector<row_index> radix_partitioned_permutation(
    engine::thread_pool* pool, std::span<const K> keys) {
    std::array<std::array<std::size_t, 256>, sizeof(K)> counts{};
    for (const K key : keys) {
        for (std::size_t byte = 0; byte < sizeof(K); ++byte) {
            ++counts[byte][static_cast<std::size_t>((key >> (8 * byte)) & 0xffu)];
        }
    }
    int top = -1;
    for (int byte = static_cast<int>(sizeof(K)) - 1; byte >= 0; --byte) {
        const auto& count = counts[static_cast<std::size_t>(byte)];
        if (std::none_of(count.begin(), count.end(),
                         [&](std::size_t c) { return c == keys.size(); })) {
            top = byte;
            break;
        }
    }
    std::vector<row_index> out(keys.size());
    if (top < 0) {  // all keys equal
        std::iota(out.begin(), out.end(), row_index{0});
        return out;
    }

    const auto shift = static_cast<unsigned>(8 * top);
    std::array<std::size_t, 257> starts{};
    for (std::size_t b = 0; b < 256; ++b) {
        starts[b + 1] = starts[b] + counts[static_cast<std::size_t>(top)][b];
    }
    std::vector<row_index> part(keys.size());
    std::vector<K> part_keys(keys.size());
    {
        std::array<std::size_t, 256> cursor{};
        std::copy(starts.begin(), starts.end() - 1, cursor.begin());
        for (std::size_t i = 0; i < keys.size(); ++i) {
            const K key = keys[i];
            const std::size_t slot = cursor[static_cast<std::size_t>((key >> shift) & 0xffu)]++;
            part[slot] = static_cast<row_index>(i);
            part_keys[slot] = key;
        }
    }
    engine::parallel_over(
        pool, 256,
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t b = begin; b < end; ++b) {
                const std::size_t lo = starts[b];
                const std::size_t len = starts[b + 1] - lo;
                if (len == 0) continue;
                const auto local = radix_sort_permutation(
                    std::span<const K>{part_keys}.subspan(lo, len));
                for (std::size_t i = 0; i < len; ++i) {
                    out[lo + i] = part[lo + local[i]];
                }
            }
        },
        1);
    return out;
}

} // namespace detail

/// Stable permutation of row indices sorting `keys` ascending: rows with
/// equal keys keep their original relative order. Given a non-serial pool
/// and enough unsigned-key rows, the sort runs radix-partitioned across the
/// pool — same permutation, byte for byte.
template <typename K>
[[nodiscard]] std::vector<row_index> sort_permutation(std::span<const K> keys,
                                                      engine::thread_pool* pool = nullptr) {
    obs::span sort_span{"table/sort_permutation"};
    sort_span.set_items(keys.size());
    detail::kernel_rows_counter().add(keys.size());
    if constexpr (std::unsigned_integral<K>) {
        if (pool != nullptr && !pool->serial() &&
            keys.size() >= detail::parallel_sort_min_rows) {
            return detail::radix_partitioned_permutation(pool, keys);
        }
        return detail::radix_sort_permutation(keys);
    } else {
        std::vector<row_index> perm(keys.size());
        std::iota(perm.begin(), perm.end(), row_index{0});
        std::stable_sort(perm.begin(), perm.end(),
                         [&](row_index a, row_index b) { return keys[a] < keys[b]; });
        return perm;
    }
}

/// Materializes a permuted column: out[i] = values[perm[i]].
template <typename T>
[[nodiscard]] std::vector<T> gather(std::span<const T> values,
                                    std::span<const row_index> perm) {
    std::vector<T> out;
    out.reserve(perm.size());
    for (const row_index row : perm) out.push_back(values[row]);
    return out;
}

/// A sorted grouping of rows by key: group g covers the rows
/// order[offsets[g] .. offsets[g + 1]) and all of them carry keys[g].
/// Groups are in ascending key order; rows within a group keep input order.
template <typename K>
struct grouping {
    std::vector<row_index> order;    // all rows, stably sorted by key
    std::vector<K> keys;             // one ascending entry per group
    std::vector<row_index> offsets;  // keys.size() + 1 boundaries into order

    [[nodiscard]] std::size_t groups() const noexcept { return keys.size(); }
    [[nodiscard]] std::span<const row_index> rows(std::size_t g) const noexcept {
        return std::span<const row_index>{order}.subspan(offsets[g],
                                                         offsets[g + 1] - offsets[g]);
    }
};

template <typename K>
[[nodiscard]] grouping<K> make_grouping(std::span<const K> keys,
                                        engine::thread_pool* pool = nullptr) {
    obs::span grouping_span{"table/make_grouping"};
    grouping_span.set_items(keys.size());
    grouping<K> g;
    g.order = sort_permutation(keys, pool);
    if (g.order.empty()) {
        g.offsets.push_back(0);
        return g;
    }
    for (std::size_t i = 0; i < g.order.size(); ++i) {
        const K key = keys[g.order[i]];
        if (g.keys.empty() || key != g.keys.back()) {
            g.keys.push_back(key);
            g.offsets.push_back(static_cast<row_index>(i));
        }
    }
    g.offsets.push_back(static_cast<row_index>(g.order.size()));
    return g;
}

/// Grouping over a column in any storage state. Dictionary-encoded unsigned
/// key columns take a code-grouping fast path: one counting pass over the
/// bit-packed codes replaces the radix sort entirely (the dictionary is
/// sorted and unsigned keys order like their bit patterns, so code order ==
/// key order), then group keys are remapped through the dictionary. Other
/// encodings decode once and take the span path.
template <typename K>
[[nodiscard]] grouping<K> make_grouping(const column<K>& keys,
                                        engine::thread_pool* pool = nullptr) {
    if (!keys.is_encoded()) return make_grouping(keys.view(), pool);
    const enc::any_view& v = keys.encoded_view();
    if constexpr (std::unsigned_integral<K>) {
        if (v.kind() == enc::encoding::dict) {
            obs::span grouping_span{"table/make_grouping"};
            grouping_span.set_items(v.rows());
            detail::kernel_rows_counter().add(v.rows());
            detail::encoded_bytes_scanned_counter().add(v.encoded_bytes);
            const enc::view_core& d = v.self;
            const auto n = static_cast<std::size_t>(d.rows);
            const auto dict_size = static_cast<std::size_t>(d.aux);
            std::vector<row_index> counts(dict_size, 0);
            for (std::size_t i = 0; i < n; ++i) {
                ++counts[static_cast<std::size_t>(enc::read_packed(d.packed, i, d.width))];
            }
            grouping<K> g;
            g.keys.reserve(dict_size);
            g.offsets.reserve(dict_size + 1);
            std::vector<row_index> starts(dict_size, 0);
            row_index offset = 0;
            for (std::size_t code = 0; code < dict_size; ++code) {
                starts[code] = offset;
                if (counts[code] != 0) {
                    g.keys.push_back(static_cast<K>(d.dict_value_bits(code)));
                    g.offsets.push_back(offset);
                }
                offset += counts[code];
            }
            g.offsets.push_back(offset);
            g.order.resize(n);
            for (std::size_t i = 0; i < n; ++i) {
                const auto code =
                    static_cast<std::size_t>(enc::read_packed(d.packed, i, d.width));
                g.order[starts[code]++] = static_cast<row_index>(i);
            }
            return g;
        }
    }
    const auto values = keys.materialize();
    return make_grouping(std::span<const K>{values}, pool);
}

/// Sequential group-by: calls reduce(key, rows) once per group, in ascending
/// key order.
template <typename K, typename Fn>
void group_by(const grouping<K>& g, Fn&& reduce) {
    obs::span by_span{"table/group_by"};
    by_span.set_items(g.groups());
    for (std::size_t i = 0; i < g.groups(); ++i) reduce(g.keys[i], g.rows(i));
}

/// Parallel group-by: computes reduce(key, rows) for every group on the
/// pool (inline when `pool` is null or serial) and returns one R per group
/// in ascending key order. Each group writes a pre-sized slot, so the result
/// is identical at any thread count.
template <typename R, typename K, typename Fn>
[[nodiscard]] std::vector<R> group_reduce(engine::thread_pool* pool, const grouping<K>& g,
                                          Fn&& reduce) {
    obs::span reduce_span{"table/group_reduce"};
    reduce_span.set_items(g.groups());
    std::vector<R> out(g.groups());
    engine::parallel_over(pool, g.groups(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) out[i] = reduce(g.keys[i], g.rows(i));
    });
    return out;
}

/// Per-group sums of a value column, accumulated in stable row order
/// (bitwise-reproducible floating-point totals).
template <typename K>
[[nodiscard]] std::vector<double> sum_by(const grouping<K>& g,
                                         std::span<const double> values) {
    obs::span sum_span{"table/sum_by"};
    sum_span.set_items(g.order.size());
    std::vector<double> out;
    out.reserve(g.groups());
    for (std::size_t i = 0; i < g.groups(); ++i) {
        double total = 0.0;
        for (const row_index row : g.rows(i)) total += values[row];
        out.push_back(total);
    }
    return out;
}

/// Per-group sums over a value column in any storage state: random access
/// into encoded columns is O(1) for dict/delta/xref (rle pays a run binary
/// search), and accumulation order is the same stable row order.
template <typename K>
[[nodiscard]] std::vector<double> sum_by(const grouping<K>& g,
                                         const column<double>& values) {
    if (!values.is_encoded()) return sum_by(g, values.view());
    obs::span sum_span{"table/sum_by"};
    sum_span.set_items(g.order.size());
    detail::encoded_bytes_scanned_counter().add(values.encoded_view().encoded_bytes);
    std::vector<double> out;
    out.reserve(g.groups());
    for (std::size_t i = 0; i < g.groups(); ++i) {
        double total = 0.0;
        for (const row_index row : g.rows(i)) total += values[row];
        out.push_back(total);
    }
    return out;
}

/// Number of distinct keys in a column.
template <typename K>
[[nodiscard]] std::size_t distinct_count(std::span<const K> keys) {
    if (keys.empty()) return 0;
    const auto perm = sort_permutation(keys);
    std::size_t distinct = 1;
    for (std::size_t i = 1; i < perm.size(); ++i) {
        if (keys[perm[i]] != keys[perm[i - 1]]) ++distinct;
    }
    return distinct;
}

/// Distinct count over a column in any storage state. Dictionary columns
/// skip the sort: one pass over the packed codes marks which dictionary
/// entries are referenced (exact for any valid payload, even one whose
/// dictionary carries unused entries).
template <typename K>
[[nodiscard]] std::size_t distinct_count(const column<K>& keys) {
    if (!keys.is_encoded()) return distinct_count(keys.view());
    const enc::any_view& v = keys.encoded_view();
    if (v.kind() == enc::encoding::dict) {
        detail::kernel_rows_counter().add(v.rows());
        detail::encoded_bytes_scanned_counter().add(v.encoded_bytes);
        const enc::view_core& d = v.self;
        std::vector<bool> used(static_cast<std::size_t>(d.aux), false);
        for (std::uint64_t i = 0; i < d.rows; ++i) {
            used[static_cast<std::size_t>(enc::read_packed(d.packed, i, d.width))] = true;
        }
        return static_cast<std::size_t>(std::count(used.begin(), used.end(), true));
    }
    const auto values = keys.materialize();
    return distinct_count(std::span<const K>{values});
}

/// Binary-searched key -> value map over a pair of columns, replacing
/// lookup-only hash maps. Duplicate keys keep the *last* occurrence
/// (assignment semantics of `map[k] = v` row scans).
template <typename K, typename V>
class sorted_lookup {
public:
    sorted_lookup() = default;
    sorted_lookup(std::span<const K> keys, std::span<const V> values) {
        const auto g = make_grouping(keys);
        keys_.reserve(g.groups());
        values_.reserve(g.groups());
        for (std::size_t i = 0; i < g.groups(); ++i) {
            keys_.push_back(g.keys[i]);
            values_.push_back(values[g.rows(i).back()]);
        }
    }

    /// Builds the map straight from columns in any storage state (groups via
    /// the column fast paths; values read by random access, so encoded value
    /// columns never fully decode).
    sorted_lookup(const column<K>& keys, const column<V>& values) {
        const auto g = make_grouping(keys);
        keys_.reserve(g.groups());
        values_.reserve(g.groups());
        for (std::size_t i = 0; i < g.groups(); ++i) {
            keys_.push_back(g.keys[i]);
            values_.push_back(values[g.rows(i).back()]);
        }
    }

    [[nodiscard]] const V* find(K key) const {
        const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
        if (it == keys_.end() || *it != key) return nullptr;
        return &values_[static_cast<std::size_t>(it - keys_.begin())];
    }

    [[nodiscard]] std::size_t size() const noexcept { return keys_.size(); }

private:
    std::vector<K> keys_;
    std::vector<V> values_;
};

} // namespace ac::table
