// Encoded column storage: dictionary, RLE, frame-of-reference delta and
// cross-reference encodings over typed columns (DESIGN.md §12).
//
// Encodings operate on the little-endian *bit patterns* of the element type
// (1, 4 or 8 bytes, zero-extended to u64), never on interpreted values, so
// every encoding is lossless and value-exact for integers and doubles alike.
// Decode happens on scan, not on load: a view over an encoded payload is a
// handful of pointers into externally owned bytes (typically an mmap'd
// snapshot section) plus O(1)/O(log) per-row decode — nothing is
// materialized until a caller asks for it.
//
// Payload layout (after the snapshot section entry says which encoding):
//
//   all encoded payloads start with a 16-byte header:
//     u32 row count, u8 bit width, u8 flags (0), u16 reserved (0), u64 aux
//
//   dict   aux = dictionary size D; width = code bit width
//     [16,24) u64 minimum dictionary bit pattern
//     [24,25) u8 dictionary value bit width, zero pad to 32
//     [32,..) bit-packed dictionary deltas (D values, sorted ascending by
//             pattern, stored as pattern - minimum), then bit-packed codes
//             (row count values). Codes index the sorted dictionary, so for
//             unsigned key columns code order == value order and group-by
//             can run over codes directly.
//   rle    aux = run count R; width = 0
//     [16,..) R raw element values (8-aligned), then R cumulative u32 run
//             ends (strictly increasing, last == row count)
//   delta  aux = 0; width = 0; frame-of-reference in blocks of 128 rows
//     [16,..) u64 per-block anchors (block minimum pattern), u32 per-block
//             byte offsets into the packed area, u8 per-block bit widths,
//             then the packed per-block deltas (pattern - anchor)
//   xref   aux = source section row count; width = index bit width
//     [16,..) bit-packed row indices into another section of the same
//             element type. The source section index lives in the *section
//             table entry*, not here, so columns sharing one index mapping
//             have byte-identical payloads and dedup to a single payload.
//
// Bit widths are restricted to {0..56, 64} so any packed value spans at most
// 8 bytes and decodes with one unaligned u64 load; packed arrays are padded
// so that load is always in bounds. All sub-arrays start 8-aligned.
//
// The encoder is a pure function of the decoded values: re-encoding a
// decoded column reproduces the input bytes exactly, which is what keeps
// snapshot round trips byte-identical.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace ac::table::enc {

/// On-disk encoding tags (section table entry byte 9). Never renumber.
enum class encoding : std::uint8_t {
    plain = 0,
    dict = 1,
    rle = 2,
    delta = 3,
    xref = 4,
};

inline constexpr std::uint8_t max_encoding_tag = 4;

[[nodiscard]] constexpr const char* encoding_name(encoding e) noexcept {
    switch (e) {
        case encoding::plain: return "plain";
        case encoding::dict: return "dict";
        case encoding::rle: return "rle";
        case encoding::delta: return "delta";
        case encoding::xref: return "xref";
    }
    return "unknown";
}

inline constexpr std::size_t header_bytes = 16;
inline constexpr std::size_t delta_block_rows = 128;

// ------------------------------------------------------------ bit packing --

[[nodiscard]] constexpr bool valid_width(unsigned w) noexcept {
    return w <= 56 || w == 64;
}

/// Smallest permitted width that can hold `max_value` (0 for max_value 0;
/// widths 57..63 round up to 64 so a value never spans more than 8 bytes).
[[nodiscard]] constexpr unsigned bits_for(std::uint64_t max_value) noexcept {
    unsigned w = 0;
    while (w < 64 && (max_value >> w) != 0) ++w;
    return w > 56 ? 64 : w;
}

[[nodiscard]] constexpr std::uint64_t align8(std::uint64_t n) noexcept {
    return (n + 7) / 8 * 8;
}

/// Bytes a packed array of n width-w values occupies, including the padding
/// that keeps the one-u64-load decode of the last value in bounds (for
/// w <= 56, ((n-1)*w)/8 + 8 covers ceil(n*w/8)).
[[nodiscard]] constexpr std::uint64_t packed_bytes(std::uint64_t n, unsigned w) noexcept {
    if (n == 0 || w == 0) return 0;
    if (w == 64) return n * 8;
    return align8((n - 1) * w / 8 + 8);
}

[[nodiscard]] inline std::uint64_t read_packed(const std::byte* base, std::uint64_t i,
                                               unsigned w) noexcept {
    if (w == 0) return 0;
    if (w == 64) {
        std::uint64_t v;
        std::memcpy(&v, base + i * 8, 8);
        return v;
    }
    const std::uint64_t bit = i * w;
    std::uint64_t word;
    std::memcpy(&word, base + (bit >> 3), 8);
    return (word >> (bit & 7)) & ((std::uint64_t{1} << w) - 1);
}

/// Writes value i into a zeroed, padded buffer (values must be written in
/// any order but each exactly once; the OR never crosses a value boundary
/// because widths cap at 56 bits).
inline void write_packed(std::byte* base, std::uint64_t i, unsigned w,
                         std::uint64_t v) noexcept {
    if (w == 0) return;
    if (w == 64) {
        std::memcpy(base + i * 8, &v, 8);
        return;
    }
    const std::uint64_t bit = i * w;
    std::uint64_t word;
    std::memcpy(&word, base + (bit >> 3), 8);
    word |= v << (bit & 7);
    std::memcpy(base + (bit >> 3), &word, 8);
}

/// Zero-extended little-endian load of one element's bit pattern.
[[nodiscard]] inline std::uint64_t load_bits(const std::byte* p,
                                             std::uint32_t elem) noexcept {
    std::uint64_t v = 0;
    std::memcpy(&v, p, elem);
    return v;
}

// ------------------------------------------------------------ view layer --

/// Decoded-on-demand view over one non-xref encoded payload. All pointers
/// reference externally owned bytes; the view itself is trivially copyable.
struct view_core {
    encoding kind = encoding::plain;
    std::uint32_t elem = 0;  // element size in bytes (1, 4 or 8)
    std::uint64_t rows = 0;
    const std::byte* values = nullptr;  // plain: elements; rle: run values
    const std::byte* packed = nullptr;  // dict: codes; delta: packed area; xref: indices
    const std::byte* aux1 = nullptr;    // dict: dict deltas; rle: run ends; delta: anchors
    const std::byte* aux2 = nullptr;    // delta: block byte offsets (u32)
    const std::byte* aux3 = nullptr;    // delta: block bit widths (u8)
    std::uint64_t aux = 0;              // dict: D; rle: R; xref: source rows
    std::uint64_t dict_min = 0;
    unsigned width = 0;        // dict: code width; xref: index width
    unsigned value_width = 0;  // dict: dictionary value width

    [[nodiscard]] std::uint64_t dict_value_bits(std::uint64_t code) const noexcept {
        return dict_min + read_packed(aux1, code, value_width);
    }

    /// Bit pattern of row i. O(1) for plain/dict/delta, O(log runs) for rle.
    [[nodiscard]] std::uint64_t bits_at(std::uint64_t i) const noexcept {
        switch (kind) {
            case encoding::plain: return load_bits(values + i * elem, elem);
            case encoding::dict: return dict_value_bits(read_packed(packed, i, width));
            case encoding::rle: {
                const auto* ends = reinterpret_cast<const std::uint32_t*>(aux1);
                const auto* run =
                    std::upper_bound(ends, ends + aux, static_cast<std::uint32_t>(i));
                return load_bits(values + static_cast<std::uint64_t>(run - ends) * elem,
                                 elem);
            }
            case encoding::delta: {
                const std::uint64_t b = i / delta_block_rows;
                std::uint64_t anchor;
                std::memcpy(&anchor, aux1 + b * 8, 8);
                std::uint32_t offset;
                std::memcpy(&offset, aux2 + b * 4, 4);
                const auto w = static_cast<unsigned>(aux3[b]);
                return anchor + read_packed(packed + offset, i % delta_block_rows, w);
            }
            case encoding::xref: break;  // resolved by any_view
        }
        return 0;
    }
};

/// A full encoded view: either a view_core, or an xref layer over one
/// (xref sources are themselves never xref — no chains).
struct any_view {
    view_core self;
    view_core src;  // valid only when self.kind == xref
    std::uint64_t encoded_bytes = 0;      // payload bytes behind this view (+ source)
    const std::byte* origin = nullptr;    // payload start, for pointer-identity checks

    [[nodiscard]] std::uint64_t rows() const noexcept { return self.rows; }
    [[nodiscard]] encoding kind() const noexcept { return self.kind; }

    [[nodiscard]] std::uint64_t bits_at(std::uint64_t i) const noexcept {
        if (self.kind == encoding::xref) {
            return src.bits_at(read_packed(self.packed, i, self.width));
        }
        return self.bits_at(i);
    }

    template <typename T>
    [[nodiscard]] T at(std::uint64_t i) const noexcept {
        static_assert(sizeof(T) <= 8);
        const std::uint64_t bits = bits_at(i);
        T v;
        std::memcpy(&v, &bits, sizeof(T));
        return v;
    }

    /// Sequential decode of every row in order. RLE decodes each run's value
    /// once and replays it count times (run-at-a-time, no per-row search);
    /// delta decodes each block's anchor/width once.
    template <typename T, typename Fn>
    void for_each(Fn&& fn) const {
        static_assert(sizeof(T) <= 8);
        auto emit = [&](std::uint64_t bits) {
            T v;
            std::memcpy(&v, &bits, sizeof(T));
            fn(v);
        };
        const view_core& v = self.kind == encoding::xref ? src : self;
        if (self.kind == encoding::xref) {
            for (std::uint64_t i = 0; i < self.rows; ++i) {
                emit(v.bits_at(read_packed(self.packed, i, self.width)));
            }
            return;
        }
        switch (v.kind) {
            case encoding::plain:
                for (std::uint64_t i = 0; i < v.rows; ++i) {
                    emit(load_bits(v.values + i * v.elem, v.elem));
                }
                return;
            case encoding::dict:
                for (std::uint64_t i = 0; i < v.rows; ++i) {
                    emit(v.dict_value_bits(read_packed(v.packed, i, v.width)));
                }
                return;
            case encoding::rle: {
                const auto* ends = reinterpret_cast<const std::uint32_t*>(v.aux1);
                std::uint32_t begin = 0;
                for (std::uint64_t r = 0; r < v.aux; ++r) {
                    const std::uint64_t bits = load_bits(v.values + r * v.elem, v.elem);
                    for (std::uint32_t i = begin; i < ends[r]; ++i) emit(bits);
                    begin = ends[r];
                }
                return;
            }
            case encoding::delta:
                for (std::uint64_t b = 0; b * delta_block_rows < v.rows; ++b) {
                    std::uint64_t anchor;
                    std::memcpy(&anchor, v.aux1 + b * 8, 8);
                    std::uint32_t offset;
                    std::memcpy(&offset, v.aux2 + b * 4, 4);
                    const auto w = static_cast<unsigned>(v.aux3[b]);
                    const std::uint64_t n =
                        std::min<std::uint64_t>(delta_block_rows,
                                                v.rows - b * delta_block_rows);
                    for (std::uint64_t i = 0; i < n; ++i) {
                        emit(anchor + read_packed(v.packed + offset, i, w));
                    }
                }
                return;
            case encoding::xref: return;  // unreachable: no chains
        }
    }
};

// -------------------------------------------------------------- encoding --

/// The writer-side result of choosing an encoding for one column: plain
/// keeps `bytes` empty (the caller writes the raw element array).
struct encoded_payload {
    encoding kind = encoding::plain;
    std::vector<std::byte> bytes;
};

namespace detail {

struct header_fields {
    std::uint32_t rows = 0;
    std::uint8_t width = 0;
    std::uint64_t aux = 0;
};

inline void write_header(std::byte* at, const header_fields& h) {
    std::memcpy(at, &h.rows, 4);
    at[4] = static_cast<std::byte>(h.width);
    at[5] = std::byte{0};                    // flags
    std::memset(at + 6, 0, 2);               // reserved
    std::memcpy(at + 8, &h.aux, 8);
}

} // namespace detail

/// Auto-chooses the smallest encoding for a column of bit patterns and
/// materializes its payload. Deterministic: size ties break toward the
/// smaller encoding tag, and anything that fails to beat plain stays plain.
template <typename T>
[[nodiscard]] encoded_payload choose_and_encode(std::span<const T> values) {
    static_assert(sizeof(T) == 1 || sizeof(T) == 4 || sizeof(T) == 8);
    encoded_payload out;
    const std::uint64_t n = values.size();
    if (n == 0 || n >= (std::uint64_t{1} << 32)) return out;
    const std::uint64_t plain_size = n * sizeof(T);

    std::vector<std::uint64_t> bits(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        bits[i] = load_bits(reinterpret_cast<const std::byte*>(values.data()) + i * sizeof(T),
                            sizeof(T));
    }

    // dict candidate: sorted unique patterns, frame-of-reference packed.
    std::vector<std::uint64_t> dict_values = bits;
    std::sort(dict_values.begin(), dict_values.end());
    dict_values.erase(std::unique(dict_values.begin(), dict_values.end()),
                      dict_values.end());
    const std::uint64_t dict_size = dict_values.size();
    const unsigned code_width = bits_for(dict_size - 1);
    const unsigned dict_value_width = bits_for(dict_values.back() - dict_values.front());
    const std::uint64_t dict_bytes = header_bytes + 16 +
                                     packed_bytes(dict_size, dict_value_width) +
                                     packed_bytes(n, code_width);

    // rle candidate: run values + cumulative run ends.
    std::uint64_t runs = 1;
    for (std::uint64_t i = 1; i < n; ++i) runs += bits[i] != bits[i - 1] ? 1 : 0;
    const std::uint64_t rle_bytes =
        header_bytes + align8(runs * sizeof(T)) + align8(runs * 4);

    // delta candidate: per-128-row-block frame of reference.
    const std::uint64_t blocks = (n + delta_block_rows - 1) / delta_block_rows;
    std::vector<std::uint8_t> block_widths(blocks);
    std::uint64_t delta_packed = 0;
    for (std::uint64_t b = 0; b < blocks; ++b) {
        const std::uint64_t begin = b * delta_block_rows;
        const std::uint64_t end = std::min(n, begin + delta_block_rows);
        std::uint64_t lo = bits[begin];
        std::uint64_t hi = bits[begin];
        for (std::uint64_t i = begin + 1; i < end; ++i) {
            lo = std::min(lo, bits[i]);
            hi = std::max(hi, bits[i]);
        }
        block_widths[b] = static_cast<std::uint8_t>(bits_for(hi - lo));
        delta_packed += packed_bytes(end - begin, block_widths[b]);
    }
    const std::uint64_t delta_bytes =
        header_bytes + blocks * 8 + align8(blocks * 4) + align8(blocks) + delta_packed;

    const std::uint64_t best = std::min({dict_bytes, rle_bytes, delta_bytes});
    if (best >= plain_size) return out;

    if (best == dict_bytes) {
        out.kind = encoding::dict;
        out.bytes.assign(dict_bytes, std::byte{0});
        detail::write_header(out.bytes.data(),
                             {static_cast<std::uint32_t>(n),
                              static_cast<std::uint8_t>(code_width), dict_size});
        std::memcpy(out.bytes.data() + 16, &dict_values.front(), 8);
        out.bytes[24] = static_cast<std::byte>(dict_value_width);
        std::byte* dict_area = out.bytes.data() + 32;
        for (std::uint64_t d = 0; d < dict_size; ++d) {
            write_packed(dict_area, d, dict_value_width,
                         dict_values[d] - dict_values.front());
        }
        std::byte* codes = dict_area + packed_bytes(dict_size, dict_value_width);
        for (std::uint64_t i = 0; i < n; ++i) {
            const auto it =
                std::lower_bound(dict_values.begin(), dict_values.end(), bits[i]);
            write_packed(codes, i, code_width,
                         static_cast<std::uint64_t>(it - dict_values.begin()));
        }
        return out;
    }
    if (best == rle_bytes) {
        out.kind = encoding::rle;
        out.bytes.assign(rle_bytes, std::byte{0});
        detail::write_header(out.bytes.data(),
                             {static_cast<std::uint32_t>(n), 0, runs});
        std::byte* run_values = out.bytes.data() + header_bytes;
        std::byte* run_ends = run_values + align8(runs * sizeof(T));
        std::uint64_t r = 0;
        for (std::uint64_t i = 0; i < n; ++i) {
            if (i + 1 == n || bits[i + 1] != bits[i]) {
                std::memcpy(run_values + r * sizeof(T), &bits[i], sizeof(T));
                const auto end = static_cast<std::uint32_t>(i + 1);
                std::memcpy(run_ends + r * 4, &end, 4);
                ++r;
            }
        }
        return out;
    }
    out.kind = encoding::delta;
    out.bytes.assign(delta_bytes, std::byte{0});
    detail::write_header(out.bytes.data(), {static_cast<std::uint32_t>(n), 0, 0});
    std::byte* anchors = out.bytes.data() + header_bytes;
    std::byte* offsets = anchors + blocks * 8;
    std::byte* widths = offsets + align8(blocks * 4);
    std::byte* packed = widths + align8(blocks);
    std::uint32_t cursor = 0;
    for (std::uint64_t b = 0; b < blocks; ++b) {
        const std::uint64_t begin = b * delta_block_rows;
        const std::uint64_t end = std::min(n, begin + delta_block_rows);
        std::uint64_t lo = bits[begin];
        for (std::uint64_t i = begin + 1; i < end; ++i) lo = std::min(lo, bits[i]);
        std::memcpy(anchors + b * 8, &lo, 8);
        std::memcpy(offsets + b * 4, &cursor, 4);
        widths[b] = static_cast<std::byte>(block_widths[b]);
        const auto w = static_cast<unsigned>(block_widths[b]);
        for (std::uint64_t i = begin; i < end; ++i) {
            write_packed(packed + cursor, i - begin, w, bits[i] - lo);
        }
        cursor += static_cast<std::uint32_t>(packed_bytes(end - begin, w));
    }
    return out;
}

/// Encodes a cross-reference payload: bit-packed row indices into a source
/// section of `source_rows` rows. The source's identity lives in the section
/// table entry, so identical index arrays produce identical payloads.
[[nodiscard]] inline std::vector<std::byte> encode_xref(
    std::span<const std::uint32_t> indices, std::uint64_t source_rows) {
    const std::uint64_t n = indices.size();
    const unsigned w = bits_for(source_rows == 0 ? 0 : source_rows - 1);
    std::vector<std::byte> bytes(header_bytes + packed_bytes(n, w), std::byte{0});
    detail::write_header(bytes.data(),
                         {static_cast<std::uint32_t>(n), static_cast<std::uint8_t>(w),
                          source_rows});
    for (std::uint64_t i = 0; i < n; ++i) {
        write_packed(bytes.data() + header_bytes, i, w, indices[i]);
    }
    return bytes;
}

// ------------------------------------------------------------ validation --

/// Parses and fully validates one non-xref encoded payload into a view.
/// Returns an empty string on success, else a description of the defect
/// (every payload array is bounds- and range-checked before any caller
/// trusts an offset, so corrupt encodings fail typed, never UB).
[[nodiscard]] inline std::string parse_view(encoding kind,
                                            std::span<const std::byte> payload,
                                            std::uint32_t elem, view_core& out) {
    out = view_core{};
    out.kind = kind;
    out.elem = elem;
    if (kind == encoding::plain) {
        out.values = payload.data();
        out.rows = payload.size() / elem;
        return {};
    }
    if (elem != 1 && elem != 4 && elem != 8) return "encoded section element size";
    if (payload.size() < header_bytes) return "payload shorter than encoding header";
    std::uint32_t rows;
    std::memcpy(&rows, payload.data(), 4);
    const auto width = static_cast<unsigned>(payload[4]);
    if (payload[5] != std::byte{0} || payload[6] != std::byte{0} ||
        payload[7] != std::byte{0}) {
        return "nonzero flags/reserved in encoding header";
    }
    std::uint64_t aux;
    std::memcpy(&aux, payload.data() + 8, 8);
    out.rows = rows;
    out.aux = aux;
    out.width = width;
    if (rows == 0) return "zero-row encoded payload";
    if (!valid_width(width)) return "invalid bit width";

    switch (kind) {
        case encoding::dict: {
            if (aux == 0 || aux > rows) return "dictionary size out of range";
            if (payload.size() < 32) return "dict payload shorter than its header";
            std::memcpy(&out.dict_min, payload.data() + 16, 8);
            out.value_width = static_cast<unsigned>(payload[24]);
            if (!valid_width(out.value_width)) return "invalid dictionary value width";
            const std::uint64_t want = 32 + packed_bytes(aux, out.value_width) +
                                       packed_bytes(rows, width);
            if (payload.size() != want) return "dict payload size mismatch";
            out.aux1 = payload.data() + 32;
            out.packed = out.aux1 + packed_bytes(aux, out.value_width);
            for (std::uint64_t i = 0; i < rows; ++i) {
                if (read_packed(out.packed, i, width) >= aux) {
                    return "dictionary code out of range";
                }
            }
            return {};
        }
        case encoding::rle: {
            if (aux == 0 || aux > rows) return "run count out of range";
            const std::uint64_t want =
                header_bytes + align8(aux * elem) + align8(aux * 4);
            if (payload.size() != want) return "rle payload size mismatch";
            out.values = payload.data() + header_bytes;
            out.aux1 = out.values + align8(aux * elem);
            const auto* ends = reinterpret_cast<const std::uint32_t*>(out.aux1);
            std::uint32_t prev = 0;
            for (std::uint64_t r = 0; r < aux; ++r) {
                if (ends[r] <= prev) return "rle run ends not strictly increasing";
                prev = ends[r];
            }
            if (prev != rows) return "rle run ends do not cover the row count";
            return {};
        }
        case encoding::delta: {
            if (width != 0 || aux != 0) return "delta header width/aux must be zero";
            const std::uint64_t blocks =
                (std::uint64_t{rows} + delta_block_rows - 1) / delta_block_rows;
            const std::uint64_t fixed =
                header_bytes + blocks * 8 + align8(blocks * 4) + align8(blocks);
            if (payload.size() < fixed) return "delta payload shorter than its tables";
            out.aux1 = payload.data() + header_bytes;
            out.aux2 = out.aux1 + blocks * 8;
            out.aux3 = out.aux2 + align8(blocks * 4);
            out.packed = out.aux3 + align8(blocks);
            std::uint64_t cursor = 0;
            for (std::uint64_t b = 0; b < blocks; ++b) {
                const auto w = static_cast<unsigned>(out.aux3[b]);
                if (!valid_width(w)) return "invalid delta block width";
                std::uint32_t offset;
                std::memcpy(&offset, out.aux2 + b * 4, 4);
                if (offset != cursor) return "delta block offsets are inconsistent";
                const std::uint64_t block_n =
                    std::min<std::uint64_t>(delta_block_rows,
                                            rows - b * delta_block_rows);
                cursor += packed_bytes(block_n, w);
            }
            if (payload.size() != fixed + cursor) return "delta payload size mismatch";
            return {};
        }
        case encoding::xref:
        case encoding::plain: break;
    }
    return "encoding tag is not parseable here";
}

/// Parses and validates an xref payload against its (already parsed,
/// non-xref) source view. Same contract as parse_view.
[[nodiscard]] inline std::string parse_xref(std::span<const std::byte> payload,
                                            std::uint32_t elem, const view_core& source,
                                            any_view& out) {
    out = any_view{};
    out.self.kind = encoding::xref;
    out.self.elem = elem;
    out.origin = payload.data();
    if (payload.size() < header_bytes) return "payload shorter than encoding header";
    std::uint32_t rows;
    std::memcpy(&rows, payload.data(), 4);
    const auto width = static_cast<unsigned>(payload[4]);
    if (payload[5] != std::byte{0} || payload[6] != std::byte{0} ||
        payload[7] != std::byte{0}) {
        return "nonzero flags/reserved in encoding header";
    }
    std::uint64_t aux;
    std::memcpy(&aux, payload.data() + 8, 8);
    if (rows == 0) return "zero-row encoded payload";
    if (!valid_width(width)) return "invalid bit width";
    if (source.kind == encoding::xref) return "xref source is itself an xref";
    if (source.elem != elem) return "xref source element size mismatch";
    if (aux != source.rows) return "xref source row count mismatch";
    if (payload.size() != header_bytes + packed_bytes(rows, width)) {
        return "xref payload size mismatch";
    }
    out.self.rows = rows;
    out.self.aux = aux;
    out.self.width = width;
    out.self.packed = payload.data() + header_bytes;
    for (std::uint64_t i = 0; i < rows; ++i) {
        if (read_packed(out.self.packed, i, width) >= aux) {
            return "xref index out of range";
        }
    }
    out.src = source;
    return {};
}

} // namespace ac::table::enc
