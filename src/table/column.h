// Typed columnar storage: one contiguous array per attribute.
//
// The dataset-heavy layers (capture records, CDN telemetry, analysis
// intermediates) store their rows as structs-of-arrays built from these
// columns, so a pass that touches one attribute streams through memory
// instead of striding over wide row structs.
//
// A column is in one of three storage states:
//   * owned    — a vector, the default; mutable via reserve/push_back.
//   * borrowed — a read-only span over storage someone else keeps alive
//                (the snapshot reader hands out borrowed columns whose spans
//                point straight into a memory-mapped file).
//   * encoded  — a read-only `enc::any_view` over a compressed payload
//                (dict/rle/delta/xref, see encoding.h), likewise pointing
//                straight into externally kept bytes. Decode happens on
//                scan (`operator[]`, `for_each`, `materialize`), never on
//                load, so opening a snapshot stays zero-copy.
// Borrowed and encoded columns are read-only; the borrower is responsible
// for the backing storage outliving the column (snapshot::bundle retains
// its mapping, and worlds hydrated from a bundle retain the bundle).
//
// `view()` is only valid for owned/borrowed columns (encoded values are not
// contiguous); scan-style callers use `for_each` or `operator[]`, which work
// in every state.
#pragma once

#include <cassert>
#include <chrono>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/table/encoding.h"

namespace ac::table {

namespace detail {

inline obs::counter& encoded_bytes_scanned_counter() {
    static auto& c = obs::registry::global().get_counter("table.encoded_bytes_scanned");
    return c;
}
inline obs::counter& plain_bytes_scanned_counter() {
    static auto& c = obs::registry::global().get_counter("table.plain_bytes_scanned");
    return c;
}
inline obs::counter& decode_ns_counter() {
    static auto& c = obs::registry::global().get_counter("table.decode_ns");
    return c;
}

} // namespace detail

/// One typed column. T is any trivially copyable scalar: u32/u64/f64, an
/// enum, or a small id type.
template <typename T>
class column {
public:
    using value_type = T;

    column() = default;
    explicit column(std::vector<T> values) : values_(std::move(values)) {}

    /// A non-owning column over externally kept storage (e.g. an mmap'd
    /// snapshot section). Mutation is a contract violation (asserted).
    [[nodiscard]] static column borrowed(std::span<const T> view) {
        column c;
        c.borrow_ = view;
        return c;
    }

    /// A non-owning column over an encoded payload (also externally kept,
    /// e.g. an mmap'd v2 snapshot section). Rows decode on access.
    [[nodiscard]] static column encoded(enc::any_view view) {
        static_assert(sizeof(T) == 1 || sizeof(T) == 4 || sizeof(T) == 8);
        column c;
        c.encoded_ = true;
        c.enc_ = view;
        return c;
    }

    /// False when the column views external storage (borrowed or encoded).
    [[nodiscard]] bool owns() const noexcept {
        return !encoded_ && borrow_.data() == nullptr;
    }
    [[nodiscard]] bool is_encoded() const noexcept { return encoded_; }

    void reserve(std::size_t n) {
        assert(owns());
        values_.reserve(n);
    }
    void push_back(T v) {
        assert(owns());
        values_.push_back(v);
    }
    void clear() {
        values_.clear();
        borrow_ = {};
        enc_ = {};
        encoded_ = false;
    }

    [[nodiscard]] std::size_t size() const noexcept {
        return encoded_ ? enc_.rows() : (owns() ? values_.size() : borrow_.size());
    }
    [[nodiscard]] bool empty() const noexcept { return size() == 0; }
    [[nodiscard]] T operator[](std::size_t i) const noexcept {
        if (encoded_) return enc_.template at<T>(i);
        return owns() ? values_[i] : borrow_[i];
    }

    /// Zero-copy view over contiguous values; not available for encoded
    /// columns (decode with `for_each`/`materialize` instead).
    [[nodiscard]] std::span<const T> view() const noexcept {
        assert(!encoded_);
        return owns() ? std::span<const T>{values_} : borrow_;
    }
    /// The owned backing vector; only valid for owning columns.
    [[nodiscard]] const std::vector<T>& values() const noexcept {
        assert(owns());
        return values_;
    }

    /// The underlying encoded view; only valid for encoded columns.
    [[nodiscard]] const enc::any_view& encoded_view() const noexcept {
        assert(encoded_);
        return enc_;
    }

    /// First byte of the external storage backing this column (the mmap'd
    /// payload for borrowed/encoded columns) — lets tests pin the zero-copy
    /// contract by pointer identity. Null for owned columns.
    [[nodiscard]] const void* storage_origin() const noexcept {
        if (encoded_) return enc_.origin;
        return owns() ? nullptr : static_cast<const void*>(borrow_.data());
    }

    /// Streams every row in order through `fn(T)`. This is the scan
    /// primitive that works in all three storage states: plain states walk
    /// the contiguous array; encoded columns decode run-at-a-time (RLE) or
    /// block-at-a-time (delta) with per-scan obs accounting.
    template <typename Fn>
    void for_each(Fn&& fn) const {
        if (!encoded_) {
            const std::span<const T> v = view();
            detail::plain_bytes_scanned_counter().add(v.size_bytes());
            for (const T& x : v) fn(x);
            return;
        }
        const auto start = std::chrono::steady_clock::now();
        enc_.template for_each<T>(fn);
        const auto stop = std::chrono::steady_clock::now();
        detail::encoded_bytes_scanned_counter().add(enc_.encoded_bytes);
        detail::decode_ns_counter().add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start).count()));
    }

    /// Decodes the column into an owned vector (the one deliberate
    /// decode-everything escape hatch; scans should prefer `for_each`).
    [[nodiscard]] std::vector<T> materialize() const {
        std::vector<T> out;
        out.reserve(size());
        for_each([&](T v) { out.push_back(v); });
        return out;
    }

private:
    std::vector<T> values_;
    std::span<const T> borrow_{};
    enc::any_view enc_{};
    bool encoded_ = false;
};

/// Re-types a column whose element has the same size and an equivalent bit
/// pattern (e.g. `column<std::uint8_t>` -> `column<enum_type>`): the storage
/// state — owned bytes, borrowed span, or encoded view — carries over
/// without a copy for the borrowed/encoded states.
template <typename To, typename From>
[[nodiscard]] column<To> column_cast(const column<From>& from) {
    static_assert(sizeof(To) == sizeof(From));
    if (from.is_encoded()) return column<To>::encoded(from.encoded_view());
    if (!from.owns()) {
        const std::span<const From> v = from.view();
        return column<To>::borrowed(
            {reinterpret_cast<const To*>(v.data()), v.size()});
    }
    std::vector<To> out;
    out.reserve(from.size());
    for (const From& v : from.view()) out.push_back(static_cast<To>(v));
    return column<To>(std::move(out));
}

} // namespace ac::table
