// Typed columnar storage: one contiguous array per attribute.
//
// The dataset-heavy layers (capture records, CDN telemetry, analysis
// intermediates) store their rows as structs-of-arrays built from these
// columns, so a pass that touches one attribute streams through memory
// instead of striding over wide row structs. Columns are plain value
// containers; all views are zero-copy `std::span`s.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace ac::table {

/// One typed column. T is any trivially copyable scalar: u32/u64/f64, an
/// enum, or a small id type.
template <typename T>
class column {
public:
    using value_type = T;

    column() = default;
    explicit column(std::vector<T> values) : values_(std::move(values)) {}

    void reserve(std::size_t n) { values_.reserve(n); }
    void push_back(T v) { values_.push_back(v); }
    void clear() { values_.clear(); }

    [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
    [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
    [[nodiscard]] T operator[](std::size_t i) const noexcept { return values_[i]; }

    /// Zero-copy view over the column's values.
    [[nodiscard]] std::span<const T> view() const noexcept { return values_; }
    [[nodiscard]] const std::vector<T>& values() const noexcept { return values_; }

private:
    std::vector<T> values_;
};

} // namespace ac::table
