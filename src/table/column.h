// Typed columnar storage: one contiguous array per attribute.
//
// The dataset-heavy layers (capture records, CDN telemetry, analysis
// intermediates) store their rows as structs-of-arrays built from these
// columns, so a pass that touches one attribute streams through memory
// instead of striding over wide row structs. Columns are plain value
// containers; all views are zero-copy `std::span`s.
//
// A column either *owns* its values (a vector, the default) or *borrows*
// them from storage someone else keeps alive — the snapshot reader hands out
// borrowed columns whose spans point straight into a memory-mapped file, so
// an analysis pass over a loaded snapshot starts with zero deserialization.
// Borrowed columns are read-only; the borrower is responsible for the
// backing storage outliving the column (snapshot::bundle retains its
// mapping, and worlds hydrated from a bundle retain the bundle).
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace ac::table {

/// One typed column. T is any trivially copyable scalar: u32/u64/f64, an
/// enum, or a small id type.
template <typename T>
class column {
public:
    using value_type = T;

    column() = default;
    explicit column(std::vector<T> values) : values_(std::move(values)) {}

    /// A non-owning column over externally kept storage (e.g. an mmap'd
    /// snapshot section). Mutation is a contract violation (asserted).
    [[nodiscard]] static column borrowed(std::span<const T> view) {
        column c;
        c.borrow_ = view;
        return c;
    }

    /// False when the column views external storage.
    [[nodiscard]] bool owns() const noexcept { return borrow_.data() == nullptr; }

    void reserve(std::size_t n) {
        assert(owns());
        values_.reserve(n);
    }
    void push_back(T v) {
        assert(owns());
        values_.push_back(v);
    }
    void clear() {
        values_.clear();
        borrow_ = {};
    }

    [[nodiscard]] std::size_t size() const noexcept { return view().size(); }
    [[nodiscard]] bool empty() const noexcept { return view().empty(); }
    [[nodiscard]] T operator[](std::size_t i) const noexcept { return view()[i]; }

    /// Zero-copy view over the column's values.
    [[nodiscard]] std::span<const T> view() const noexcept {
        return owns() ? std::span<const T>{values_} : borrow_;
    }
    /// The owned backing vector; only valid for owning columns.
    [[nodiscard]] const std::vector<T>& values() const noexcept {
        assert(owns());
        return values_;
    }

private:
    std::vector<T> values_;
    std::span<const T> borrow_{};
};

} // namespace ac::table
