#include "src/sweep/driver.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>

#include "src/core/report.h"
#include "src/engine/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/snapshot/world_io.h"

namespace fs = std::filesystem;

namespace ac::sweep {

namespace {

constexpr const char* manifest_file = "manifest.tsv";
constexpr const char* manifest_header = "ac-sweep-manifest v1";

std::string hash_hex(std::uint64_t h) {
    std::ostringstream out;
    out << std::hex;
    out.width(16);
    out.fill('0');
    out << h;
    return std::move(out).str();
}

struct manifest_entry {
    std::uint64_t hash = 0;
    std::vector<std::string> files;  // relative to the cell directory
};

/// Reads the manifest left by a previous run. Anything malformed degrades to
/// "nothing done" — the worst case is rebuilding cells, never trusting one.
std::map<std::string, manifest_entry> read_manifest(const fs::path& path) {
    std::map<std::string, manifest_entry> done;
    std::ifstream in(path);
    if (!in) return done;
    std::string line;
    if (!std::getline(in, line) || line != manifest_header) return done;
    while (std::getline(in, line)) {
        std::istringstream row(line);
        std::string tag, name, hash_text, file_list;
        if (!(row >> tag >> name >> hash_text >> file_list) || tag != "cell") return {};
        manifest_entry entry;
        try {
            std::size_t used = 0;
            entry.hash = std::stoull(hash_text, &used, 16);
            if (used != hash_text.size()) return {};
        } catch (const std::exception&) {
            return {};
        }
        std::istringstream files(file_list);
        std::string file;
        while (std::getline(files, file, ',')) {
            if (!file.empty()) entry.files.push_back(file);
        }
        if (entry.files.empty()) return {};
        done.emplace(std::move(name), std::move(entry));
    }
    return done;
}

/// Rewrites the manifest atomically (tmp + rename). `entries` is indexed by
/// cell; only completed cells get a line, in cell-index order — completion
/// *order* (which depends on scheduling) never reaches the bytes.
void write_manifest(const fs::path& dir, const std::vector<cell>& cells,
                    const std::vector<manifest_entry>& entries,
                    const std::vector<bool>& is_done) {
    const fs::path tmp = dir / (std::string{manifest_file} + ".tmp");
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) throw std::runtime_error("sweep: cannot write " + tmp.string());
        out << manifest_header << '\n';
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (!is_done[i]) continue;
            out << "cell\t" << cells[i].name << '\t' << hash_hex(entries[i].hash) << '\t';
            for (std::size_t fi = 0; fi < entries[i].files.size(); ++fi) {
                if (fi != 0) out << ',';
                out << entries[i].files[fi];
            }
            out << '\n';
        }
        if (!out) throw std::runtime_error("sweep: short write to " + tmp.string());
    }
    fs::rename(tmp, dir / manifest_file);
}

/// Builds one cell into `cell_dir`: snapshot, figure CSVs, metrics JSON.
/// Returns the relative file list (manifest order).
std::vector<std::string> build_cell(const cell& c, const fs::path& cell_dir, int world_threads,
                                    std::size_t* stream_peak) {
    core::world_config config = c.config;
    config.threads = world_threads;
    const core::world w(config);
    fs::create_directories(cell_dir);

    std::vector<std::string> files;
    snapshot::save_world(w, (cell_dir / "world.acx").string());
    files.push_back("world.acx");

    for (const auto& fig : core::write_figure_csvs(w, cell_dir.string())) {
        files.push_back(fs::path(fig).filename().string());
    }

    // Per-cell metrics: a *local* registry populated only with values that
    // are pure functions of the config. (The process-global registry holds
    // thread-count-dependent counters — cache hits and the like — which
    // would break grid byte-identity if they leaked into cell files.)
    std::size_t records = 0;
    for (const auto& lc : w.ditl().letters) records += lc.records.size();
    obs::registry reg;
    reg.get_gauge("sweep.cell.index").set(static_cast<double>(c.index));
    reg.get_gauge("sweep.cell.letters").set(static_cast<double>(w.ditl().letters.size()));
    reg.get_gauge("sweep.cell.capture_records").set(static_cast<double>(records));
    reg.get_gauge("sweep.cell.queries_per_day").set(w.ditl().total_queries_per_day());
    reg.get_gauge("sweep.cell.recursives").set(static_cast<double>(w.users().recursives().size()));
    reg.get_gauge("sweep.cell.front_ends")
        .set(static_cast<double>(w.cdn_net().front_end_regions().size()));
    reg.get_gauge("sweep.cell.rings").set(static_cast<double>(w.cdn_net().ring_count()));
    reg.get_gauge("sweep.cell.snapshot_bytes")
        .set(static_cast<double>(fs::file_size(cell_dir / "world.acx")));
    reg.get_gauge("sweep.cell.stream_peak_buffered_bytes")
        .set(static_cast<double>(w.ditl().stream_peak_buffered_bytes));
    reg.get_gauge("sweep.cell.stream_spilled_records")
        .set(static_cast<double>(w.ditl().stream_spilled_records));
    std::ofstream metrics(cell_dir / "metrics.json", std::ios::trunc);
    if (!metrics) throw std::runtime_error("sweep: cannot write metrics.json for " + c.name);
    reg.write_json(metrics);
    files.push_back("metrics.json");

    *stream_peak = w.ditl().stream_peak_buffered_bytes;
    return files;
}

bool cell_is_done(const manifest_entry& entry, const cell& c, const fs::path& cell_dir) {
    if (entry.hash != c.config_hash) return false;
    return std::all_of(entry.files.begin(), entry.files.end(),
                       [&](const std::string& f) { return fs::exists(cell_dir / f); });
}

} // namespace

sweep_result run_grid(const grid_spec& spec, const std::string& out_dir,
                      const sweep_options& options) {
    const std::vector<cell> cells = expand_cells(spec);
    const fs::path dir{out_dir};
    fs::create_directories(dir);
    const auto previous = read_manifest(dir / manifest_file);

    sweep_result result;
    result.cells.resize(cells.size());
    std::vector<manifest_entry> entries(cells.size());
    std::vector<bool> is_done(cells.size(), false);
    std::vector<std::size_t> to_build;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        result.cells[i].name = cells[i].name;
        result.cells[i].config_hash = cells[i].config_hash;
        const auto it = previous.find(cells[i].name);
        if (it != previous.end() && cell_is_done(it->second, cells[i], dir / cells[i].name)) {
            entries[i] = it->second;
            is_done[i] = true;
            result.cells[i].skipped = true;
            ++result.skipped;
        } else if (options.max_cells == 0 || to_build.size() < options.max_cells) {
            to_build.push_back(i);
        } else {
            ++result.pending;
        }
    }

    engine::thread_pool pool(options.threads);
    // Cells are the parallel unit; a single-cell run gets the full width.
    const int world_threads = to_build.size() == 1 ? options.threads : 1;
    std::mutex mu;  // guards manifest rewrite, result counters, progress
    for (const std::size_t i : to_build) {
        pool.submit([&, i] {
            std::size_t stream_peak = 0;
            auto files = build_cell(cells[i], dir / cells[i].name, world_threads, &stream_peak);
            const std::lock_guard<std::mutex> lock(mu);
            entries[i] = manifest_entry{cells[i].config_hash, std::move(files)};
            is_done[i] = true;
            result.cells[i].built = true;
            ++result.built;
            result.stream_peak_bytes = std::max(result.stream_peak_bytes, stream_peak);
            // Rewrite after every cell: a killed run resumes from here.
            write_manifest(dir, cells, entries, is_done);
            if (options.progress != nullptr) {
                *options.progress << "cell " << cells[i].name << ": built (config "
                                  << hash_hex(cells[i].config_hash) << ")\n";
            }
        });
    }
    pool.wait();

    if (options.progress != nullptr) {
        *options.progress << "sweep: " << cells.size() << " cells (" << result.built
                          << " built, " << result.skipped << " skipped, " << result.pending
                          << " pending)\n";
    }
    return result;
}

} // namespace ac::sweep
