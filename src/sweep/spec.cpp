#include "src/sweep/spec.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <ios>
#include <sstream>

namespace ac::sweep {

namespace {

const char* const known_dims[] = {"peering", "rings", "cache"};

bool known_dim(const std::string& name) {
    return std::find(std::begin(known_dims), std::end(known_dims), name) !=
           std::end(known_dims);
}

[[noreturn]] void fail(int line, const std::string& what) {
    throw spec_error("grid spec line " + std::to_string(line) + ": " + what);
}

/// Tokens become path components of cell directories; keep them boring.
bool name_safe(const std::string& token) {
    if (token.empty()) return false;
    return std::all_of(token.begin(), token.end(), [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
               c == '.' || c == '-';
    });
}

double parse_fraction(const std::string& token, int line) {
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || v < 0.0 || v > 1.0) {
        fail(line, "peering value '" + token + "' is not a fraction in [0,1]");
    }
    return v;
}

/// Applies one dim assignment to a resolved config. `line` <= 0 means the
/// values were already validated at parse time (expand path).
void apply_dim(core::world_config& config, const std::string& dim, const std::string& token,
               int line) {
    if (dim == "peering") {
        config.cdn.eyeball_peering_fraction = parse_fraction(token, line);
    } else if (dim == "rings") {
        char* end = nullptr;
        const long n = std::strtol(token.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || n < 1 ||
            n > static_cast<long>(config.cdn.ring_sizes.size())) {
            fail(line, "rings value '" + token + "' must be 1.." +
                           std::to_string(config.cdn.ring_sizes.size()));
        }
        config.cdn.ring_sizes.resize(static_cast<std::size_t>(n));
    } else if (dim == "cache") {
        if (token == "ideal") {
            config.query_model = dns::ideal_cache(config.query_model);
        } else if (token != "real") {
            fail(line, "cache value '" + token + "' must be real or ideal");
        }
    } else {
        fail(line, "unknown dim '" + dim + "'");
    }
}

} // namespace

std::size_t grid_spec::cell_count() const noexcept {
    std::size_t n = 1;
    for (const auto& d : dims) n *= d.values.size();
    return n;
}

grid_spec parse_grid_spec(std::istream& in) {
    grid_spec spec;
    std::string raw;
    int line = 0;
    while (std::getline(in, raw)) {
        ++line;
        if (const auto hash = raw.find('#'); hash != std::string::npos) raw.resize(hash);
        std::istringstream words(raw);
        std::string directive;
        if (!(words >> directive)) continue;  // blank / comment-only line
        if (directive == "tier") {
            std::string name;
            if (!(words >> name)) fail(line, "tier needs a value");
            const auto tier = core::parse_scale_tier(name);
            if (!tier) fail(line, "unknown tier '" + name + "'");
            spec.tier = *tier;
        } else if (directive == "seed") {
            if (!(words >> spec.seed)) fail(line, "seed needs an integer");
        } else if (directive == "year") {
            int y = 0;
            if (!(words >> y) || (y != 2018 && y != 2020)) {
                fail(line, "year must be 2018 or 2020");
            }
            spec.year = y == 2018 ? core::ditl_year::y2018 : core::ditl_year::y2020;
        } else if (directive == "dim") {
            grid_dimension dim;
            if (!(words >> dim.name)) fail(line, "dim needs a name");
            if (!known_dim(dim.name)) fail(line, "unknown dim '" + dim.name + "'");
            for (const auto& existing : spec.dims) {
                if (existing.name == dim.name) fail(line, "duplicate dim '" + dim.name + "'");
            }
            std::string token;
            while (words >> token) {
                if (!name_safe(token)) fail(line, "value '" + token + "' is not name-safe");
                // Validate eagerly against the tier's base config so a bad
                // spec fails before any cell builds.
                auto probe = core::world_config::for_tier(spec.tier);
                apply_dim(probe, dim.name, token, line);
                dim.values.push_back(token);
            }
            if (dim.values.empty()) fail(line, "dim '" + dim.name + "' needs values");
            spec.dims.push_back(std::move(dim));
        } else {
            fail(line, "unknown directive '" + directive + "'");
        }
        std::string trailing;
        if (words >> trailing) fail(line, "trailing token '" + trailing + "'");
    }
    return spec;
}

grid_spec parse_grid_spec_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw spec_error("grid spec: cannot open " + path);
    return parse_grid_spec(in);
}

std::vector<cell> expand_cells(const grid_spec& spec) {
    const std::size_t total = spec.cell_count();
    std::vector<cell> cells;
    cells.reserve(total);
    for (std::size_t index = 0; index < total; ++index) {
        cell c;
        c.index = index;
        c.config = core::world_config::for_tier(spec.tier);
        c.config.seed = spec.seed;
        c.config.year = spec.year;
        // Row-major decode, last dim fastest — matches nested-loop order.
        std::size_t remainder = index;
        std::size_t radix = total;
        for (const auto& dim : spec.dims) {
            radix /= dim.values.size();
            const std::string& token = dim.values[remainder / radix];
            remainder %= radix;
            c.assignment.emplace_back(dim.name, token);
            apply_dim(c.config, dim.name, token, 0);
            if (!c.name.empty()) c.name += '_';
            c.name += dim.name;
            c.name += '-';
            c.name += token;
        }
        if (c.name.empty()) c.name = "base";
        c.config_hash = hash_config(c.config);
        cells.push_back(std::move(c));
    }
    return cells;
}

std::string describe_config(const core::world_config& c) {
    std::ostringstream out;
    out << std::hexfloat;
    auto f = [&](const char* key, const auto& value) { out << key << '=' << value << '\n'; };
    out << "ac-world-config-v1\n";
    f("regions.north_america", c.regions.north_america);
    f("regions.south_america", c.regions.south_america);
    f("regions.europe", c.regions.europe);
    f("regions.africa", c.regions.africa);
    f("regions.asia", c.regions.asia);
    f("regions.oceania", c.regions.oceania);
    f("regions.antarctica", c.regions.antarctica);
    f("graph.tier1_count", c.graph.tier1_count);
    f("graph.transits_per_continent", c.graph.transits_per_continent);
    f("graph.eyeball_count", c.graph.eyeball_count);
    f("graph.enterprise_count", c.graph.enterprise_count);
    f("graph.public_dns_count", c.graph.public_dns_count);
    f("graph.transit_extra_provider_p", c.graph.transit_extra_provider_p);
    f("graph.transit_peering_p", c.graph.transit_peering_p);
    f("graph.eyeball_multihome_p", c.graph.eyeball_multihome_p);
    f("graph.eyeball_ixp_peering_p", c.graph.eyeball_ixp_peering_p);
    f("graph.eyeball_last_mile_ms_min", c.graph.eyeball_last_mile_ms_min);
    f("graph.eyeball_last_mile_ms_max", c.graph.eyeball_last_mile_ms_max);
    f("users.users_per_weight", c.users.users_per_weight);
    f("users.public_dns_share", c.users.public_dns_share);
    f("users.bind_redundant_share", c.users.bind_redundant_share);
    f("users.bind_fixed_share", c.users.bind_fixed_share);
    f("users.forwarder_share", c.users.forwarder_share);
    f("users.egress_only_ip_p", c.users.egress_only_ip_p);
    f("users.min_resolver_ips", c.users.min_resolver_ips);
    f("users.max_resolver_ips", c.users.max_resolver_ips);
    f("query.tld_base", c.query_model.tld_base);
    f("query.tld_exponent", c.query_model.tld_exponent);
    f("query.max_tlds", c.query_model.max_tlds);
    f("query.ttl_days", c.query_model.ttl_days);
    f("query.refresh_median_bind_redundant", c.query_model.refresh_median_bind_redundant);
    f("query.refresh_median_bind_fixed", c.query_model.refresh_median_bind_fixed);
    f("query.refresh_median_other", c.query_model.refresh_median_other);
    f("query.refresh_sigma", c.query_model.refresh_sigma);
    f("query.chromium_probes_per_user", c.query_model.chromium_probes_per_user);
    f("query.junk_per_user_median", c.query_model.junk_per_user_median);
    f("query.junk_user_exponent", c.query_model.junk_user_exponent);
    f("query.junk_reference_users", c.query_model.junk_reference_users);
    f("query.junk_sigma", c.query_model.junk_sigma);
    f("query.ptr_per_user", c.query_model.ptr_per_user);
    f("query.preference_gamma_lo", c.query_model.preference_gamma_lo);
    f("query.preference_gamma_hi", c.query_model.preference_gamma_hi);
    f("query.preference_uniform_mix", c.query_model.preference_uniform_mix);
    f("query.tcp_share_zero_p", c.query_model.tcp_share_zero_p);
    f("query.tcp_share_median", c.query_model.tcp_share_median);
    f("query.tcp_share_sigma", c.query_model.tcp_share_sigma);
    f("ditl.ipv6_fraction", c.ditl.ipv6_fraction);
    f("ditl.private_fraction", c.ditl.private_fraction);
    f("ditl.spoofed_fraction", c.ditl.spoofed_fraction);
    f("ditl.junk_source_count", c.ditl.junk_source_count);
    f("ditl.junk_ips_per_source", c.ditl.junk_ips_per_source);
    f("ditl.junk_source_median_qpd", c.ditl.junk_source_median_qpd);
    f("ditl.junk_source_sigma", c.ditl.junk_source_sigma);
    f("ditl.min_tcp_samples", c.ditl.min_tcp_samples);
    f("ditl.capture_days", c.ditl.capture_days);
    f("ditl.per_ip_split_share", c.ditl.per_ip_split_share);
    f("ditl.max_buffered_records", c.ditl.max_buffered_records);
    out << "cdn.ring_sizes=";
    for (std::size_t i = 0; i < c.cdn.ring_sizes.size(); ++i) {
        if (i != 0) out << ',';
        out << c.cdn.ring_sizes[i];
    }
    out << '\n';
    f("cdn.asn", c.cdn.asn);
    f("cdn.name", c.cdn.name);
    f("cdn.eyeball_peering_fraction", c.cdn.eyeball_peering_fraction);
    f("cdn.transit_peering_fraction", c.cdn.transit_peering_fraction);
    f("cdn.wan_circuitousness", c.cdn.wan_circuitousness);
    f("cdn.seed", c.cdn.seed);
    f("telemetry.connections_per_user", c.telemetry.connections_per_user);
    f("telemetry.capture_days", c.telemetry.capture_days);
    f("telemetry.min_samples", c.telemetry.min_samples);
    f("telemetry.ring_share_sigma", c.telemetry.ring_share_sigma);
    f("telemetry.fetch_rtt_multiple", c.telemetry.fetch_rtt_multiple);
    f("atlas.probe_count", c.atlas.probe_count);
    f("atlas.europe_bias", c.atlas.europe_bias);
    f("atlas.connectivity_bias", c.atlas.connectivity_bias);
    f("atlas.seed", c.atlas.seed);
    f("geodb.wrong_region_p", c.geodb.wrong_region_p);
    f("geodb.jitter_km", c.geodb.jitter_km);
    f("ip_to_asn_unmapped", c.ip_to_asn_unmapped);
    f("root_zone_tlds", c.root_zone_tlds);
    f("year", static_cast<int>(c.year));
    f("seed", c.seed);
    return std::move(out).str();
}

std::uint64_t hash_config(const core::world_config& config) {
    const std::string text = describe_config(config);
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char ch : text) {
        h ^= static_cast<std::uint8_t>(ch);
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace ac::sweep
