// Sweep grid specs: a tiny text DSL describing a grid of worlds to build.
//
// One directive per line, '#' starts a comment:
//
//   tier small                # base config: small | medium | large (default small)
//   seed 42                   # base world seed
//   year 2018                 # DITL year: 2018 | 2020
//   dim peering 0.3 0.72      # CDN<->eyeball peering density (fraction in [0,1])
//   dim rings 3 5             # deployment size: keep the first N CDN rings
//   dim cache real ideal      # resolver cache behaviour (ideal = once per TTL)
//
// The grid is the cross product of every `dim` line; with no dims the spec
// names a single cell. Cells are named from their assignments in dim order
// ("peering-0.3_rings-5_cache-real"), and each carries a canonical FNV-1a
// digest of its fully resolved `world_config` — the resume key the driver
// stores in the manifest (DESIGN §15).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/core/world.h"

namespace ac::sweep {

/// Parse or validation failure; the message names the offending line.
struct spec_error : std::runtime_error {
    using std::runtime_error::runtime_error;
};

struct grid_dimension {
    std::string name;                 // peering | rings | cache
    std::vector<std::string> values;  // literal spec tokens (cell-name safe)
};

struct grid_spec {
    core::scale_tier tier = core::scale_tier::small;
    std::uint64_t seed = 42;
    core::ditl_year year = core::ditl_year::y2018;
    std::vector<grid_dimension> dims;  // in spec order

    [[nodiscard]] std::size_t cell_count() const noexcept;
};

/// One resolved grid cell: a named, hashable world_config.
struct cell {
    std::size_t index = 0;  // row-major over the dims, last dim fastest
    std::string name;       // "peering-0.3_rings-5" ("base" when no dims)
    std::vector<std::pair<std::string, std::string>> assignment;  // dim -> token
    core::world_config config;
    std::uint64_t config_hash = 0;
};

[[nodiscard]] grid_spec parse_grid_spec(std::istream& in);
[[nodiscard]] grid_spec parse_grid_spec_file(const std::string& path);

/// Expands the cross product into resolved cells (validates every value).
[[nodiscard]] std::vector<cell> expand_cells(const grid_spec& spec);

/// Canonical rendering of every config knob that can change output bytes —
/// doubles in hexfloat so the digest is exact. `threads` is deliberately
/// excluded: thread count never changes a byte, so it must not force re-runs.
[[nodiscard]] std::string describe_config(const core::world_config& config);

/// FNV-1a 64 over `describe_config`.
[[nodiscard]] std::uint64_t hash_config(const core::world_config& config);

} // namespace ac::sweep
