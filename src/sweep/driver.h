// Sweep driver: builds every cell of a grid spec across the engine thread
// pool, writing one snapshot + one ac-metrics-v1 JSON + one figure-CSV
// bundle per cell under `out_dir/<cell-name>/`, and a manifest that makes
// the whole grid resumable — a cell already on disk whose manifest hash
// matches its resolved config (and whose files all exist) is skipped.
//
// Output bytes are a pure function of the spec: cell worlds are built
// through the deterministic engine, per-cell metrics carry only
// deterministic values, and the manifest lists completed cells in cell-index
// order with no timestamps — so a grid is byte-identical at any thread
// count and across kill/resume boundaries (DESIGN §15).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/sweep/spec.h"

namespace ac::sweep {

struct sweep_options {
    /// Cell-level parallelism: 0 = hardware concurrency, 1 = serial. Cells
    /// are the parallel unit: each cell's world builds with one thread
    /// unless the run has exactly one cell to build, which gets the full
    /// width. (Thread counts never change output bytes either way.)
    int threads = 1;
    /// Stop after building this many not-yet-done cells (0 = no limit). The
    /// manifest stays valid, so a later run resumes where this one stopped.
    std::size_t max_cells = 0;
    /// Per-cell progress lines; nullptr = quiet.
    std::ostream* progress = nullptr;
};

struct cell_result {
    std::string name;
    std::uint64_t config_hash = 0;
    bool skipped = false;  // already on disk with a matching hash
    bool built = false;    // built by this run
};

struct sweep_result {
    std::vector<cell_result> cells;  // in cell-index order
    std::size_t built = 0;
    std::size_t skipped = 0;
    std::size_t pending = 0;  // cut short by max_cells; resume later
    /// Max bounded-writer high-water across built cells (0 when every cell
    /// ran materialized or was skipped). Deterministic; gated by bench_sweep.
    std::size_t stream_peak_bytes = 0;
};

/// Runs the grid. Throws spec_error / std::runtime_error on unusable specs
/// or I/O failure; a failed cell leaves the manifest valid for resume.
sweep_result run_grid(const grid_spec& spec, const std::string& out_dir,
                      const sweep_options& options = {});

} // namespace ac::sweep
