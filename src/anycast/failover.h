// Site-failure (DDoS / withdrawal) studies.
//
// Table 1's top reason for root growth is DDoS resilience: capacity and
// catchment behaviour when sites go dark. This module rebuilds a
// deployment's routing state with a subset of sites withdrawn (a BGP
// withdrawal is exactly "the announcement disappears") and measures how
// catchments shift: how much traffic moves, where it lands, and what the
// latency penalty is — the resilience dimension the paper discusses but
// does not measure (§7.3, [58]).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/anycast/deployment.h"
#include "src/population/population.h"

namespace ac::anycast {

/// The routing state of `dep` with `failed_sites` withdrawn. Sites keep
/// their original ids; withdrawn sites simply stop announcing.
class degraded_deployment {
public:
    degraded_deployment(const deployment& dep, std::span<const route::site_id> failed_sites,
                        const topo::as_graph& graph);

    /// Selection against the surviving announcement set.
    [[nodiscard]] std::optional<route::path_result> select(topo::asn_t asn,
                                                           topo::region_id region) const;

    [[nodiscard]] const std::vector<route::site_id>& failed() const noexcept {
        return failed_;
    }
    [[nodiscard]] int surviving_sites() const noexcept { return surviving_; }

    /// Maps a site id in the degraded rib back to the original deployment's
    /// site id.
    [[nodiscard]] route::site_id original_site(route::site_id degraded_id) const {
        return site_map_.at(degraded_id);
    }

private:
    const deployment* dep_;
    std::vector<route::site_id> failed_;
    std::vector<route::site_id> site_map_;  // degraded id -> original id
    std::unique_ptr<route::anycast_rib> rib_;
    int surviving_ = 0;
};

/// Outcome of failing a set of sites under a fixed user population.
struct failover_report {
    int failed_sites = 0;
    double affected_user_share = 0.0;    // users whose site changed
    double stranded_user_share = 0.0;    // users with no route afterwards
    double median_rtt_before_ms = 0.0;   // over affected users
    double median_rtt_after_ms = 0.0;    // over affected users
    /// Load concentration: largest share of *moved* users absorbed by a
    /// single surviving site (the DDoS-cascade risk metric).
    double max_absorbed_share = 0.0;
};

/// Fails `failed_sites` of `dep` and measures the shift over the user base.
[[nodiscard]] failover_report run_failover_study(const deployment& dep,
                                                 std::span<const route::site_id> failed_sites,
                                                 const pop::user_base& users,
                                                 const topo::as_graph& graph);

} // namespace ac::anycast
