#include "src/anycast/deployment.h"

#include <algorithm>
#include "src/netbase/strfmt.h"
#include <limits>
#include <stdexcept>

#include "src/netbase/rng.h"

namespace ac::anycast {

deployment::deployment(std::string name, std::vector<site> sites, const topo::as_graph& graph,
                       const topo::region_table& regions, engine::thread_pool* pool)
    : name_(std::move(name)), sites_(std::move(sites)), regions_(&regions) {
    if (sites_.empty()) throw std::invalid_argument("deployment: needs at least one site");
    std::vector<route::announcement> announcements;
    announcements.reserve(sites_.size());
    for (std::size_t i = 0; i < sites_.size(); ++i) {
        if (sites_[i].id != i) throw std::invalid_argument("deployment: site ids must be dense");
        announcements.push_back(route::announcement{sites_[i].id, sites_[i].host_asn,
                                                    sites_[i].region, sites_[i].scope, {}});
        if (sites_[i].scope == route::announcement_scope::global) ++global_count_;
    }
    rib_ = std::make_unique<route::anycast_rib>(graph, regions, std::move(announcements), pool);
}

double deployment::nearest_global_site_km(const geo::point& p) const {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& s : sites_) {
        if (s.scope != route::announcement_scope::global) continue;
        best = std::min(best, geo::distance_km(p, regions_->at(s.region).location));
    }
    return best;
}

namespace {

// Picks site regions for a deployment. Population-weighted strategies favor
// big metros (one low-latency option near most users, Fig. 1); open hosting
// scatters almost uniformly (volunteer hosts are wherever volunteers are).
std::vector<topo::region_id> pick_site_regions(const topo::region_table& regions, int count,
                                               bool population_weighted, rand::rng& gen) {
    std::vector<double> weights;
    weights.reserve(regions.size());
    for (const auto& r : regions.all()) {
        // Antarctica hosts no deployment sites.
        const double w = r.cont == topo::continent::antarctica
                             ? 0.0
                             : (population_weighted ? r.population_weight
                                                    : 0.2 + 0.1 * r.population_weight);
        weights.push_back(w);
    }
    std::vector<topo::region_id> chosen;
    std::vector<bool> used(regions.size(), false);
    int eligible = 0;
    for (double w : weights) {
        if (w > 0.0) ++eligible;
    }
    const int cap = std::min(count, eligible);
    while (static_cast<int>(chosen.size()) < cap) {
        const std::size_t i = gen.weighted_index(weights);
        if (used[i]) continue;
        used[i] = true;
        weights[i] = 0.0;
        chosen.push_back(regions.all()[i].id);
    }
    return chosen;
}

// A volunteer host at `region`: a transit or eyeball AS present there.
topo::asn_t volunteer_host(const topo::as_graph& graph, topo::region_id region, rand::rng& gen) {
    std::vector<topo::asn_t> candidates;
    for (const auto& as : graph.all()) {
        if (as.role != topo::as_role::transit && as.role != topo::as_role::eyeball) continue;
        if (std::find(as.presence.begin(), as.presence.end(), region) != as.presence.end()) {
            candidates.push_back(as.asn);
        }
    }
    if (candidates.empty()) {
        // No network present in this metro: fall back to any transit.
        candidates = graph.with_role(topo::as_role::transit);
    }
    return candidates[gen.uniform_index(candidates.size())];
}

} // namespace

deployment build_deployment(const deployment_plan& plan, topo::as_graph& graph,
                            const topo::region_table& regions, engine::thread_pool* pool) {
    rand::rng gen{rand::mix_seed(plan.seed, 0xdeb107u)};
    const bool population_weighted = plan.strategy != hosting_strategy::open_hosting;

    auto global_regions = pick_site_regions(regions, plan.global_sites, population_weighted, gen);
    auto local_gen = gen.fork(7);
    auto local_regions = pick_site_regions(regions, plan.local_sites, false, local_gen);

    std::vector<site> sites;
    sites.reserve(global_regions.size() + local_regions.size());

    topo::asn_t dedicated = 0;
    if (plan.strategy != hosting_strategy::open_hosting) {
        if (plan.dedicated_asn == 0) {
            throw std::invalid_argument("build_deployment: dedicated_asn required for strategy");
        }
        dedicated = plan.dedicated_asn;
        topo::content_attachment attach;
        attach.asn = dedicated;
        attach.name = plan.name + "-net";
        attach.organization = plan.name;
        attach.presence = global_regions;
        attach.tier1_providers = 2;
        attach.transit_peering_fraction = plan.transit_peering_fraction;
        attach.eyeball_peering_fraction =
            plan.strategy == hosting_strategy::cdn_partnered ? std::max(plan.eyeball_peering_fraction, 0.35)
                                                             : plan.eyeball_peering_fraction;
        attach.seed = gen.fork(11).seed();
        topo::attach_content_as(graph, regions, attach);
    }

    route::site_id next_id = 0;
    for (topo::region_id r : global_regions) {
        site s;
        s.id = next_id++;
        s.name = plan.name + "-g" + strfmt::zero_padded(s.id, 3);
        s.region = r;
        s.scope = route::announcement_scope::global;
        s.host_asn = dedicated != 0 ? dedicated : volunteer_host(graph, r, gen);
        // IXP-style local peering: eyeballs in the site's metro peer with the
        // volunteer host, giving them a short direct route to the local site.
        if (plan.local_ixp_peering_p > 0.0) {
            for (const auto& as : graph.all()) {
                if (as.role != topo::as_role::eyeball || as.asn == s.host_asn) continue;
                if (std::find(as.presence.begin(), as.presence.end(), r) ==
                    as.presence.end()) {
                    continue;
                }
                if (graph.has_link(as.asn, s.host_asn)) continue;
                if (!gen.chance(plan.local_ixp_peering_p)) continue;
                graph.add_link(as.asn, s.host_asn, topo::as_relationship::peer, {r},
                               gen.uniform(1.1, 1.25));
            }
        }
        sites.push_back(std::move(s));
    }
    for (topo::region_id r : local_regions) {
        site s;
        s.id = next_id++;
        s.name = plan.name + "-l" + strfmt::zero_padded(s.id, 3);
        s.region = r;
        s.scope = route::announcement_scope::local;
        // Local sites are always volunteer-hosted (in-AS service, §2.1).
        auto host_gen = gen.fork(1000 + s.id);
        s.host_asn = volunteer_host(graph, r, host_gen);
        sites.push_back(std::move(s));
    }

    return deployment{plan.name, std::move(sites), graph, regions, pool};
}

catchment_table::catchment_table(const deployment& dep, std::span<const source> sources,
                                 std::uint64_t seed, engine::thread_pool* pool)
    : dep_(&dep) {
    // Map phase: every source's row is computed independently — the RNG is
    // keyed by (seed, source), never by draw order — into its own slot, so
    // chunks can run on any thread without changing a single byte.
    std::vector<std::optional<catchment_row>> computed(sources.size());
    engine::parallel_over(pool, sources.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            const auto& src = sources[i];
            auto primary = dep.rib().select(src.asn, src.region);
            if (!primary) continue;

            catchment_row row;
            row.src = src;
            row.primary = std::move(*primary);

            // Intermediate-AS load balancing occasionally splits a source
            // across two BGP-equal sites (App. B.2): model as a secondary
            // site carrying a small traffic share for ~15% of sources that
            // have alternatives.
            const auto candidates = dep.rib().best_candidates(src.asn);
            if (candidates.size() > 1) {
                rand::rng gen{rand::mix_seed(seed, (std::uint64_t{src.asn} << 16) ^ src.region)};
                if (gen.chance(0.15)) {
                    for (route::site_id alt : candidates) {
                        if (alt == row.primary.site) continue;
                        if (auto alt_path = dep.rib().evaluate(src.asn, src.region, alt)) {
                            row.secondary = std::move(*alt_path);
                            row.secondary_fraction = gen.uniform(0.05, 0.4);
                            break;
                        }
                    }
                }
            }
            computed[i] = std::move(row);
        }
    });

    // Reduce phase: append routable rows in source order (serial runs take
    // the same two-phase path, so the table is identical at any thread count).
    rows_.reserve(sources.size());
    for (auto& maybe_row : computed) {
        if (!maybe_row) continue;
        const auto& src = maybe_row->src;
        const std::uint64_t key = (std::uint64_t{src.asn} << 32) | src.region;
        index_.emplace(key, rows_.size());
        rows_.push_back(std::move(*maybe_row));
    }
}

const catchment_row* catchment_table::find(topo::asn_t asn, topo::region_id region) const {
    const std::uint64_t key = (std::uint64_t{asn} << 32) | region;
    auto it = index_.find(key);
    return it == index_.end() ? nullptr : &rows_[it->second];
}

} // namespace ac::anycast
