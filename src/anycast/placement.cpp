#include "src/anycast/placement.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "src/netbase/geo.h"
#include "src/netbase/rng.h"

namespace ac::anycast {

namespace {

struct user_point {
    geo::point location;
    double users;
};

std::vector<user_point> collect_users(const pop::user_base& users,
                                      const topo::region_table& regions) {
    // Aggregate user mass per region (AS identity is irrelevant to distance).
    std::vector<double> mass(regions.size(), 0.0);
    for (const auto& loc : users.locations()) mass[loc.region] += loc.users;
    std::vector<user_point> out;
    out.reserve(regions.size());
    for (std::size_t r = 0; r < regions.size(); ++r) {
        if (mass[r] > 0.0) out.push_back(user_point{regions.all()[r].location, mass[r]});
    }
    return out;
}

} // namespace

std::vector<topo::region_id> greedy_placement(const pop::user_base& users,
                                              const topo::region_table& regions, int count) {
    if (count <= 0) return {};
    const auto points = collect_users(users, regions);
    if (points.empty()) throw std::invalid_argument("greedy_placement: no users");

    std::vector<topo::region_id> chosen;
    std::vector<bool> used(regions.size(), false);
    // Current distance from each user point to its nearest chosen site.
    std::vector<double> nearest(points.size(), std::numeric_limits<double>::infinity());

    // Distance cache: candidate region x user point would be 508 x 508; the
    // greedy loop touches each pair at most `count` times, so recompute on
    // demand — simpler and still fast at this scale.
    for (int k = 0; k < count && static_cast<std::size_t>(k) < regions.size(); ++k) {
        topo::region_id best_region = 0;
        double best_objective = std::numeric_limits<double>::infinity();
        for (const auto& candidate : regions.all()) {
            if (used[candidate.id]) continue;
            if (candidate.cont == topo::continent::antarctica) continue;
            double objective = 0.0;
            for (std::size_t i = 0; i < points.size(); ++i) {
                const double d = std::min(
                    nearest[i], geo::distance_km(points[i].location, candidate.location));
                objective += d * points[i].users;
            }
            if (objective < best_objective) {
                best_objective = objective;
                best_region = candidate.id;
            }
        }
        used[best_region] = true;
        chosen.push_back(best_region);
        const auto site_loc = regions.at(best_region).location;
        for (std::size_t i = 0; i < points.size(); ++i) {
            nearest[i] = std::min(nearest[i], geo::distance_km(points[i].location, site_loc));
        }
    }
    return chosen;
}

std::vector<topo::region_id> random_placement(const topo::region_table& regions, int count,
                                              std::uint64_t seed) {
    rand::rng gen{rand::mix_seed(seed, 0x91aceull)};
    std::vector<topo::region_id> pool;
    for (const auto& r : regions.all()) {
        if (r.cont != topo::continent::antarctica) pool.push_back(r.id);
    }
    gen.shuffle(pool);
    pool.resize(std::min<std::size_t>(static_cast<std::size_t>(std::max(count, 0)), pool.size()));
    return pool;
}

double mean_user_distance_km(const pop::user_base& users, const topo::region_table& regions,
                             std::span<const topo::region_id> sites) {
    if (sites.empty()) throw std::invalid_argument("mean_user_distance_km: no sites");
    double weighted = 0.0;
    double total = 0.0;
    for (const auto& loc : users.locations()) {
        const auto p = regions.at(loc.region).location;
        double nearest = std::numeric_limits<double>::infinity();
        for (topo::region_id s : sites) {
            nearest = std::min(nearest, geo::distance_km(p, regions.at(s).location));
        }
        weighted += nearest * loc.users;
        total += loc.users;
    }
    return total > 0.0 ? weighted / total : 0.0;
}

} // namespace ac::anycast
