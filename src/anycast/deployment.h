// Anycast deployments: named sets of sites sharing one anycast prefix, plus
// catchment computation (which source picks which site, and at what cost).
//
// Deployment *strategy* is the study's independent variable: root letters
// differ in size and in how sites are hosted (volunteer/open hosting vs
// CDN-partnered vs a couple of well-connected sites), and Microsoft's rings
// differ only in size while sharing a centrally engineered, heavily peered
// host network. Builders for these strategies live here.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/routing/bgp.h"
#include "src/topology/as_graph.h"
#include "src/topology/generator.h"
#include "src/topology/region.h"

namespace ac::anycast {

struct site {
    route::site_id id = 0;
    std::string name;
    topo::asn_t host_asn = 0;
    topo::region_id region = 0;
    route::announcement_scope scope = route::announcement_scope::global;
};

/// An anycast deployment with its computed routing state.
class deployment {
public:
    deployment(std::string name, std::vector<site> sites, const topo::as_graph& graph,
               const topo::region_table& regions, engine::thread_pool* pool = nullptr);

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const std::vector<site>& sites() const noexcept { return sites_; }
    [[nodiscard]] const route::anycast_rib& rib() const noexcept { return *rib_; }
    /// Mutable routing state, for scenario-driven announce/withdraw events
    /// (src/scenario). The site records themselves stay fixed — events only
    /// change what the RIB announces.
    [[nodiscard]] route::anycast_rib& mutable_rib() noexcept { return *rib_; }
    [[nodiscard]] const topo::region_table& regions() const noexcept { return *regions_; }

    [[nodiscard]] int global_site_count() const noexcept { return global_count_; }
    [[nodiscard]] int total_site_count() const noexcept { return static_cast<int>(sites_.size()); }

    /// Great-circle distance (km) from `p` to the nearest *global* site —
    /// the min_k d(R, j_k) term of Eq. 1 and Eq. 2 (§3.1 considers global
    /// sites only, since local-site reachability is unknown).
    [[nodiscard]] double nearest_global_site_km(const geo::point& p) const;

    /// The site record for a site id.
    [[nodiscard]] const site& site_at(route::site_id id) const { return sites_.at(id); }

private:
    std::string name_;
    std::vector<site> sites_;
    const topo::region_table* regions_;
    std::unique_ptr<route::anycast_rib> rib_;
    int global_count_ = 0;
};

/// How sites choose their locations and host networks.
enum class hosting_strategy : std::uint8_t {
    /// Open/volunteer hosting (K/L-root style): sites land in essentially
    /// random regions (weak population bias) and are hosted inside existing
    /// volunteer networks — whatever transit or eyeball AS is around.
    open_hosting,
    /// Operator-run deployment: population-weighted placement, hosted on a
    /// single dedicated network with modest transit-level connectivity.
    operator_run,
    /// CDN-partnered (F-root/Cloudflare style): population-weighted
    /// placement on a heavily peered content network.
    cdn_partnered,
};

struct deployment_plan {
    std::string name;
    hosting_strategy strategy = hosting_strategy::operator_run;
    int global_sites = 5;
    int local_sites = 0;
    topo::asn_t dedicated_asn = 0;      // used by operator_run / cdn_partnered
    double eyeball_peering_fraction = 0.0;  // dedicated network's direct peering
    double transit_peering_fraction = 0.2;
    /// Open-hosting sites often sit at IXPs (PCH-style): chance that each
    /// same-metro eyeball peers directly with a volunteer site's host.
    double local_ixp_peering_p = 0.0;
    std::uint64_t seed = 1;
};

/// Builds a deployment per `plan`, creating and attaching a dedicated host
/// network when the strategy needs one. Mutates `graph`. A non-serial `pool`
/// parallelizes per-site route propagation.
[[nodiscard]] deployment build_deployment(const deployment_plan& plan, topo::as_graph& graph,
                                          const topo::region_table& regions,
                                          engine::thread_pool* pool = nullptr);

/// A traffic source: one <region, AS> location (§2.2's user granularity).
struct source {
    topo::asn_t asn = 0;
    topo::region_id region = 0;
};

/// One catchment row: where a source's traffic lands and at what cost.
struct catchment_row {
    source src;
    route::path_result primary;
    /// Secondary site seen by a minority of the source's traffic, when
    /// intermediate-AS load balancing splits it (App. B.2 observes ~<20% of
    /// /24s see more than one site; most splits are small).
    std::optional<route::path_result> secondary;
    double secondary_fraction = 0.0;
};

/// Catchments for a deployment over a set of sources. Sources with no route
/// to any site are skipped (they do not appear in the table).
class catchment_table {
public:
    /// Row computation is keyed per source (seed mixed with the source's
    /// <AS, region>), so a non-serial `pool` chunks sources across threads
    /// and still yields byte-identical rows in the same order.
    catchment_table(const deployment& dep, std::span<const source> sources, std::uint64_t seed,
                    engine::thread_pool* pool = nullptr);

    [[nodiscard]] const std::vector<catchment_row>& rows() const noexcept { return rows_; }
    [[nodiscard]] const catchment_row* find(topo::asn_t asn, topo::region_id region) const;
    [[nodiscard]] const deployment& dep() const noexcept { return *dep_; }

private:
    const deployment* dep_;
    std::vector<catchment_row> rows_;
    std::unordered_map<std::uint64_t, std::size_t> index_;
};

} // namespace ac::anycast
