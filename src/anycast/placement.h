// Site-placement strategies beyond the paper's observed ones.
//
// §7.2 ends with "there is still room for latency optimization in anycast
// deployments, which is an active area of research [43, 47, 82]". This
// module provides the optimization baseline those papers target: greedy
// latency-optimal placement (classic k-median on the user mass), plus a
// random baseline, so ablation benches can ask how much of the CDN's
// advantage is *placement* vs *peering*.
#pragma once

#include <cstdint>
#include <vector>

#include "src/population/population.h"
#include "src/topology/region.h"

namespace ac::anycast {

/// Greedy k-median placement: repeatedly adds the region that most reduces
/// total user-weighted distance to the nearest chosen site. Deterministic.
/// Returns `count` region ids in selection order (prefixes are themselves
/// greedy placements, so rings nest for free).
[[nodiscard]] std::vector<topo::region_id> greedy_placement(
    const pop::user_base& users, const topo::region_table& regions, int count);

/// Uniform-random placement baseline (no population weighting at all).
[[nodiscard]] std::vector<topo::region_id> random_placement(const topo::region_table& regions,
                                                            int count, std::uint64_t seed);

/// Mean user-weighted distance (km) from users to their nearest site in
/// `sites` — the k-median objective both strategies are scored by.
[[nodiscard]] double mean_user_distance_km(const pop::user_base& users,
                                           const topo::region_table& regions,
                                           std::span<const topo::region_id> sites);

} // namespace ac::anycast
