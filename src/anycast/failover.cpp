#include "src/anycast/failover.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>


namespace ac::anycast {

degraded_deployment::degraded_deployment(const deployment& dep,
                                         std::span<const route::site_id> failed_sites,
                                         const topo::as_graph& graph)
    : dep_(&dep), failed_(failed_sites.begin(), failed_sites.end()) {
    std::unordered_set<route::site_id> down(failed_.begin(), failed_.end());
    std::vector<route::announcement> announcements;
    for (const auto& s : dep.sites()) {
        if (down.contains(s.id)) continue;
        const auto degraded_id = static_cast<route::site_id>(site_map_.size());
        site_map_.push_back(s.id);
        announcements.push_back(
            route::announcement{degraded_id, s.host_asn, s.region, s.scope, {}});
    }
    surviving_ = static_cast<int>(site_map_.size());
    if (surviving_ > 0) {
        rib_ = std::make_unique<route::anycast_rib>(graph, dep.regions(),
                                                    std::move(announcements));
    }
}

std::optional<route::path_result> degraded_deployment::select(topo::asn_t asn,
                                                              topo::region_id region) const {
    if (rib_ == nullptr) return std::nullopt;
    auto path = rib_->select(asn, region);
    if (path) path->site = site_map_[path->site];
    return path;
}

failover_report run_failover_study(const deployment& dep,
                                   std::span<const route::site_id> failed_sites,
                                   const pop::user_base& users,
                                   const topo::as_graph& graph) {
    const degraded_deployment degraded{dep, failed_sites, graph};

    failover_report report;
    report.failed_sites = static_cast<int>(failed_sites.size());

    // (value, weight) samples; ac_analysis sits above this library in the
    // dependency order, so the weighted median is computed locally.
    std::vector<std::pair<double, double>> rtt_before;
    std::vector<std::pair<double, double>> rtt_after;
    std::unordered_map<route::site_id, double> absorbed;  // moved users per new site
    double total_users = 0.0;
    double affected = 0.0;
    double stranded = 0.0;
    double moved_total = 0.0;

    for (const auto& loc : users.locations()) {
        total_users += loc.users;
        const auto before = dep.rib().select(loc.asn, loc.region);
        if (!before) continue;  // unreachable even before the failure
        const auto after = degraded.select(loc.asn, loc.region);
        if (!after) {
            stranded += loc.users;
            continue;
        }
        if (after->site == before->site) continue;
        affected += loc.users;
        moved_total += loc.users;
        absorbed[after->site] += loc.users;
        rtt_before.emplace_back(before->rtt_ms, loc.users);
        rtt_after.emplace_back(after->rtt_ms, loc.users);
    }

    if (total_users > 0.0) {
        report.affected_user_share = affected / total_users;
        report.stranded_user_share = stranded / total_users;
    }
    auto weighted_median = [](std::vector<std::pair<double, double>> samples) {
        if (samples.empty()) return 0.0;
        std::sort(samples.begin(), samples.end());
        double total = 0.0;
        for (const auto& [v, w] : samples) total += w;
        double cumulative = 0.0;
        for (const auto& [v, w] : samples) {
            cumulative += w;
            if (cumulative >= total / 2.0) return v;
        }
        return samples.back().first;
    };
    report.median_rtt_before_ms = weighted_median(std::move(rtt_before));
    report.median_rtt_after_ms = weighted_median(std::move(rtt_after));
    for (const auto& [site, moved] : absorbed) {
        report.max_absorbed_share =
            std::max(report.max_absorbed_share, moved_total > 0.0 ? moved / moved_total : 0.0);
    }
    return report;
}

} // namespace ac::anycast
