// BGP-style anycast route computation.
//
// For each anycast site (an announcement from a host AS at a region), routes
// propagate through the AS graph under standard Gao-Rexford policy:
//
//   * export: customer-learned routes go to everyone; peer- and
//     provider-learned routes go only to customers (valley-free);
//     `local` scope announcements reach direct neighbors only (§2.1's
//     local root sites, implemented by limiting BGP propagation).
//   * selection: local-preference by relationship (customer > peer >
//     provider), then shortest AS path — BGP's top criteria as discussed in
//     §7.1 — then, among equal candidates, hot-potato/early-exit chosen at
//     evaluation time per source region (lowest IGP cost, §7.1).
//
// Latency is *derived from the chosen path's geography*: the evaluator walks
// the AS path hop by hop, picking at each inter-AS link the interconnection
// point nearest the current position (early exit) and accumulating
// great-circle distance scaled by the link's circuitousness. Inflation is
// therefore an emergent property of policy routing over the synthetic graph,
// never an injected quantity.
//
// Route selection is the fast path of the whole system (every figure funnels
// through `select`), so the RIB is built for O(1)-amortized queries
// (DESIGN §8):
//
//   * the route matrix is a flat struct-of-arrays (site-major), not a
//     vector-of-vectors;
//   * a per-AS best-route index (best class, best length, CSR candidate
//     lists, direct-route flag) is precomputed once after propagation, so
//     `best_candidates` and `has_direct_route` never rescan site tables;
//   * all geographic terms come from precomputed tables — the region-pair
//     distance matrix (`topo::region_table::distance_km`) and a per-link
//     nearest-interconnect table — no haversine trig at query time;
//   * `select` results are memoized in a sharded, lazily-filled cache.
//     Selection is a pure function of (asn, region), so cached and uncached
//     results are bit-identical, and concurrent fills are race-safe: any
//     thread that computes a key computes the same bytes, and the first
//     insert wins.
//
// The RIB is *mutable* (DESIGN §11): per-source `announce`/`withdraw` entry
// points re-converge incrementally. Because every site owns a disjoint route
// row, an event only rewrites that one row; the per-AS best-route index is
// then fixed up for exactly the ASes whose row entry changed (the event's
// frontier), and only the select-cache shards holding those ASes are
// invalidated. Nothing else — other rows, the geo tables, untouched index
// slots, untouched cache shards — is rebuilt. A `shared_mutex` makes
// mutation safe against concurrent selects: readers see either the pre- or
// the post-event state, never a torn one, and the post-event state is
// byte-identical to a from-scratch rebuild with the same announcement set.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/engine/thread_pool.h"
#include "src/topology/addressing.h"
#include "src/topology/as_graph.h"
#include "src/topology/region.h"

namespace ac::route {

using site_id = std::uint32_t;

enum class announcement_scope : std::uint8_t {
    global,  // normal propagation
    local,   // direct neighbors only (no re-export)
};

/// One anycast site's BGP announcement.
struct announcement {
    site_id site = 0;
    topo::asn_t origin_asn = 0;
    topo::region_id origin_region = 0;
    announcement_scope scope = announcement_scope::global;
    /// Traffic engineering (§7.1): neighbors the origin does NOT announce
    /// this site to — "not announcing to particular ASes at particular
    /// peering points" when they make poor routing decisions. Those
    /// neighbors can still learn the site transitively through others.
    std::vector<topo::asn_t> suppressed_neighbors;
    /// AS-path prepending (§7.1's other TE lever): the origin announces an
    /// artificially lengthened path, making this site lose path-length
    /// tie-breaks everywhere without withdrawing it.
    std::uint8_t prepend = 0;
    /// A withdrawn announcement defines the site (it keeps its dense id and
    /// its RTT-jitter identity) but contributes no routes until `announce`
    /// re-activates it. This is how scenario timelines express drained
    /// sites without renumbering — renumbering would change output bytes.
    bool withdrawn = false;
};

/// Route class in local-preference order (smaller value = more preferred).
enum class route_class : std::uint8_t {
    origin = 0,    // the AS itself originates the prefix
    customer = 1,  // learned from a customer
    peer = 2,      // learned from a peer
    provider = 3,  // learned from a provider
    none = 4,
};

/// The best route an AS holds toward one specific site.
struct site_route {
    route_class cls = route_class::none;
    std::uint8_t path_len = 0;          // number of ASes on the path, incl. both ends
    topo::asn_t next_hop = 0;           // 0 at the origin
    std::uint32_t link_index = 0;       // link to next_hop (valid unless origin)

    friend bool operator==(const site_route&, const site_route&) = default;
};

/// A fully evaluated path from a source <region, AS> to a site.
struct path_result {
    site_id site = 0;
    std::vector<topo::asn_t> as_path;   // source AS first, origin AS last
    double rtt_ms = 0.0;                // steady-state (median) round-trip time
    double path_km = 0.0;               // one-way geographic distance travelled
    double direct_km = 0.0;             // great-circle source-to-site distance

    friend bool operator==(const path_result&, const path_result&) = default;
};

/// One <AS, region> traffic source, for bulk route evaluation.
struct source_key {
    topo::asn_t asn = 0;
    topo::region_id region = 0;
};

/// Routing state for one anycast prefix (one deployment or ring).
class anycast_rib {
public:
    /// With a non-serial `pool`, per-site propagation and the fast-path index
    /// build run in parallel (each site owns a disjoint matrix row and each
    /// AS owns its index slot, so the result is schedule-free).
    anycast_rib(const topo::as_graph& graph, const topo::region_table& regions,
                std::vector<announcement> announcements, engine::thread_pool* pool = nullptr);

    /// Work done by one incremental re-convergence (announce or withdraw).
    struct reconverge_stats {
        std::size_t ases_touched = 0;              // index slots recomputed
        std::size_t cache_entries_invalidated = 0; // memoized selects dropped
        std::size_t cache_shards_visited = 0;      // shards that held them
    };

    /// Withdraws `site`'s announcement and re-converges incrementally:
    /// clears the site's route row, recomputes the best-route index for
    /// exactly the ASes that held a route to it, and invalidates only the
    /// select-cache shards containing those ASes. Every other site's routes
    /// are untouched (per-site rows are independent). No-op on an already
    /// withdrawn site. Thread-safe against concurrent selects; afterwards
    /// `select` is byte-identical to a from-scratch rebuild without the
    /// site. Throws std::out_of_range on an unknown site.
    reconverge_stats withdraw(site_id site);

    /// (Re-)announces a site and re-converges incrementally. `a.site` must
    /// be an existing site id (re-announce: scope/prepend/suppression/origin
    /// may all change) or exactly `site_count()` (a brand-new site, whose
    /// row is appended). The changed row is re-propagated from scratch and
    /// the index/cache fixed up for the union of ASes that held the old
    /// route or hold the new one. Throws std::invalid_argument on an
    /// unknown origin ASN or a non-dense site id.
    reconverge_stats announce(announcement a);

    /// True if `site` is currently withdrawn (no routes).
    [[nodiscard]] bool is_withdrawn(site_id site) const;

    /// Total sites this RIB knows (withdrawn ones included).
    [[nodiscard]] std::size_t site_count() const noexcept { return announcements_.size(); }

    /// Sites currently announced.
    [[nodiscard]] std::size_t active_site_count() const;

    /// Sites for which `asn` holds any route, restricted to the best
    /// (class, path length) — BGP's deterministic criteria. Hot-potato
    /// resolution among these happens per region in `select`. O(1) lookup
    /// into the precomputed best-route index.
    [[nodiscard]] std::vector<site_id> best_candidates(topo::asn_t asn) const;

    /// The route `asn` holds toward `site`, if any.
    [[nodiscard]] std::optional<site_route> route_toward(topo::asn_t asn, site_id site) const;

    /// Evaluates the concrete path from <asn, region> to `site`, walking the
    /// AS path geographically. Returns nullopt if the AS has no route.
    [[nodiscard]] std::optional<path_result> evaluate(topo::asn_t asn, topo::region_id region,
                                                      site_id site) const;

    /// Full selection for a source <region, AS>: picks among best_candidates
    /// by lowest first-segment IGP distance (early exit), returning the
    /// evaluated path. Returns nullopt if the AS has no route at all.
    /// Memoized: repeat queries for the same (asn, region) are cache hits.
    /// Thread-safe, and byte-identical at any thread count (selection is
    /// pure, so every fill of a key stores the same value).
    [[nodiscard]] std::optional<path_result> select(topo::asn_t asn, topo::region_id region) const;

    /// `select` without the memoization layer: always recomputes, never reads
    /// or writes the cache. Differential-testing and cold-benchmark surface.
    [[nodiscard]] std::optional<path_result> select_uncached(topo::asn_t asn,
                                                             topo::region_id region) const;

    /// Pre-fast-path reference implementation: rescans every site's route
    /// row per call and evaluates hot-potato geometry with on-the-fly
    /// haversine instead of the precomputed tables. Kept so tests can assert
    /// the fast path is bit-identical and benchmarks can measure the win.
    [[nodiscard]] std::optional<path_result> select_reference(topo::asn_t asn,
                                                              topo::region_id region) const;

    /// Bulk `select` over many sources, chunked across the pool (inline when
    /// `pool` is null or serial). Result i corresponds to sources[i];
    /// evaluation is stateless per source, so output is thread-count
    /// independent.
    [[nodiscard]] std::vector<std::optional<path_result>> select_many(
        std::span<const source_key> sources, engine::thread_pool* pool = nullptr) const;

    /// True if this AS reaches the deployment through a route learned
    /// directly from the origin AS (a "2 AS" path in Fig. 6a terms).
    /// O(1) lookup into the precomputed per-AS flag.
    [[nodiscard]] bool has_direct_route(topo::asn_t asn) const;

    [[nodiscard]] const std::vector<announcement>& announcements() const noexcept {
        return announcements_;
    }

    /// ASNs this RIB holds routes for (the graph snapshot at construction;
    /// ASes attached to the graph later are unknown to this RIB).
    [[nodiscard]] std::span<const topo::asn_t> known_asns() const noexcept { return asns_; }

    /// Read-only struct-of-arrays view over one site's route row
    /// (src/table/column.h-style spans; position = dense AS index, aligned
    /// with known_asns()). `next_index` is the dense index of the next hop,
    /// or `no_next_hop` at the origin and for absent routes.
    struct site_route_view {
        std::span<const std::uint8_t> cls;        // route_class values
        std::span<const std::uint8_t> path_len;
        std::span<const std::uint32_t> next_index;
        std::span<const std::uint32_t> link_index;
    };
    static constexpr std::uint32_t no_next_hop = std::numeric_limits<std::uint32_t>::max();
    [[nodiscard]] site_route_view site_routes(site_id site) const;

    /// Memoization counters (monotone; relaxed atomics). Under concurrent
    /// fills `misses` counts computations, which can slightly exceed the
    /// number of distinct keys when two threads race on the same key.
    /// Post-freeze lookups are counted separately (`frozen_hits` /
    /// `frozen_misses`), so the sharded counters keep describing the
    /// mutex-guarded path alone: a frozen miss that falls through to the
    /// shards is counted on both layers.
    struct cache_stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t invalidations = 0;  // entries dropped by announce/withdraw
        bool frozen = false;              // a sealed table is currently published
        std::uint64_t frozen_hits = 0;    // lookups answered by the sealed table
        std::uint64_t frozen_misses = 0;  // lookups that fell through to the shards

        /// Hit fraction over all lookups; 0.0 before the first lookup (the
        /// zero-query case must not divide by zero).
        [[nodiscard]] double hit_rate() const noexcept {
            const std::uint64_t lookups = hits + misses;
            return lookups == 0 ? 0.0
                                : static_cast<double>(hits) / static_cast<double>(lookups);
        }
    };
    [[nodiscard]] cache_stats select_cache_stats() const noexcept {
        return {cache_hits_.load(std::memory_order_relaxed),
                cache_misses_.load(std::memory_order_relaxed),
                cache_invalidations_.load(std::memory_order_relaxed),
                frozen_.load(std::memory_order_acquire) != nullptr,
                frozen_hits_.load(std::memory_order_relaxed),
                frozen_misses_.load(std::memory_order_relaxed)};
    }

    /// Seals the selects currently memoized in the sharded cache into an
    /// immutable open-addressing table and publishes it, making subsequent
    /// `select` calls for sealed keys wait-free: no shard mutex, no
    /// `topo_mutex_` shared lock, just a probe over const arrays. Returns
    /// the number of entries sealed. Keys that were never warmed fall
    /// through to the normal locked path (counted as `frozen_misses`).
    ///
    /// Intended for read-only serving (`acctx serve`): warm the cache with
    /// `select_many` over the query population, then freeze. Any later
    /// `announce`/`withdraw`/`clear_select_cache` unpublishes the table
    /// (stats report frozen = false again); the sealed storage is retired,
    /// not freed, so in-flight wait-free probes stay valid — a concurrent
    /// reader may observe the pre-event selection, which is a consistent
    /// (never torn) historical state. Not safe to call concurrently with
    /// itself; calling again re-seals the current shard contents.
    std::size_t freeze_select_cache();

    /// Wait-free probe of the frozen table: returns a pointer to the sealed
    /// result (valid until the RIB is destroyed — retired tables are kept),
    /// or nullptr when nothing is frozen or the key was not sealed. Never
    /// locks, never allocates, never copies. Counts frozen_hits only (a
    /// nullptr return is not counted; use `select` for fall-through).
    [[nodiscard]] const std::optional<path_result>* select_frozen(
        topo::asn_t asn, topo::region_id region) const noexcept;

    /// Empties every select-cache shard (counters are left alone). Makes
    /// subsequent invalidation work counts a pure function of the queries
    /// run since, independent of prior process history — the scenario
    /// driver calls this so its per-step work accounting is reproducible
    /// whether the world came from a live build or a snapshot.
    void clear_select_cache();

private:
    void propagate(const announcement& a);
    void build_fast_path(engine::thread_pool* pool);
    /// Recomputes one AS's best (class, len), direct flag, and candidate
    /// list after a row changed, writing candidates into the overlay. Same
    /// scan order and comparisons as the bulk build, so the result is
    /// byte-identical to a from-scratch index.
    void recompute_as_index(std::size_t as);
    /// Clears `site`'s route row, marking every AS that held a route in
    /// `touched` (bitmap by dense index).
    void clear_row(site_id site, std::vector<std::uint8_t>& touched);
    /// Drops memoized selects for the touched ASes, visiting only the cache
    /// shards that can hold them. Returns (entries erased, shards visited).
    std::pair<std::size_t, std::size_t> invalidate_cache(
        const std::vector<std::uint8_t>& touched);
    /// Index fix-up + cache invalidation for a touched set; fills `out`.
    void reconverge_touched(const std::vector<std::uint8_t>& touched, reconverge_stats& out);
    [[nodiscard]] std::size_t as_index(topo::asn_t asn) const;
    [[nodiscard]] std::size_t cell(site_id site, std::size_t as) const noexcept {
        return static_cast<std::size_t>(site) * as_count_ + as;
    }
    [[nodiscard]] std::span<const site_id> candidate_span(std::size_t as) const noexcept {
        if (!overlaid_.empty() && overlaid_[as]) {
            return std::span<const site_id>{overlay_[as]};
        }
        return std::span<const site_id>{cand_sites_}.subspan(
            cand_begin_[as], cand_begin_[as + 1] - cand_begin_[as]);
    }
    [[nodiscard]] std::optional<path_result> select_indexed(std::size_t as, topo::asn_t asn,
                                                            topo::region_id region) const;
    [[nodiscard]] std::optional<path_result> evaluate_indexed(std::size_t as, topo::asn_t asn,
                                                              topo::region_id region,
                                                              site_id site) const;

    const topo::as_graph* graph_;
    const topo::region_table* regions_;
    std::vector<announcement> announcements_;
    std::vector<topo::asn_t> asns_;  // dense index -> asn (graph snapshot)
    std::size_t as_count_ = 0;
    std::size_t link_count_ = 0;  // graph link snapshot at construction
    std::vector<std::uint8_t> withdrawn_;  // per site: currently not announced

    // Reader/writer gate for mutation: every query path holds it shared,
    // announce/withdraw hold it exclusively. Selection under a shared lock
    // is unchanged bytes; the lock only serializes against re-convergence.
    mutable std::shared_mutex topo_mutex_;

    // Route matrix, struct-of-arrays, site-major: entry for (site, as) lives
    // at site * as_count_ + as in each column. Dense because every AS usually
    // holds a route to every globally announced site.
    std::vector<std::uint8_t> cls_;        // route_class
    std::vector<std::uint8_t> len_;        // AS-path length
    std::vector<std::uint32_t> next_idx_;  // dense index of next hop (no_next_hop at origin)
    std::vector<std::uint32_t> link_;      // link to next hop

    // Per-AS best-route index, precomputed once after propagation.
    std::vector<std::uint8_t> best_cls_;
    std::vector<std::uint8_t> best_len_;
    std::vector<std::uint32_t> cand_begin_;  // CSR offsets into cand_sites_, size as_count_+1
    std::vector<site_id> cand_sites_;        // candidate sites, ascending per AS
    std::vector<std::uint8_t> direct_;       // has_direct_route flags

    // Mutation overlay: a touched AS's candidate list moves out of the CSR
    // (whose offsets cannot shrink or grow in place) into its own vector.
    // Empty until the first announce/withdraw, so the static fast path pays
    // one vector-empty test. candidate_span prefers the overlay when set.
    std::vector<std::uint8_t> overlaid_;         // per dense AS index
    std::vector<std::vector<site_id>> overlay_;  // valid where overlaid_[i]

    // Per-link nearest-interconnect table: entry (link, region) is the id of
    // the link's interconnect region nearest that source region, resolving
    // early-exit geometry to one lookup + one distance-matrix read.
    std::vector<topo::region_id> nearest_interconnect_;  // link-major, stride = region count
    std::size_t region_count_ = 0;

    // Sharded select memoization, keyed by (asn << 32) | region. Mutable:
    // the cache is an observably-pure accelerator of const queries. The
    // shard is picked from the ASN alone so that invalidating one AS visits
    // exactly one shard (region-mixed sharding would smear an AS's entries
    // across every shard and force full-cache scans on every event).
    static constexpr std::size_t cache_shard_count = 64;  // power of two
    [[nodiscard]] static constexpr std::size_t shard_of(topo::asn_t asn) noexcept {
        return (std::uint64_t{asn} * 0x9e3779b97f4a7c15ULL) >> 58;
    }
    struct cache_shard {
        std::mutex mutex;
        std::unordered_map<std::uint64_t, std::optional<path_result>> entries;
    };
    mutable std::array<cache_shard, cache_shard_count> cache_shards_;
    mutable std::atomic<std::uint64_t> cache_hits_{0};
    mutable std::atomic<std::uint64_t> cache_misses_{0};
    mutable std::atomic<std::uint64_t> cache_invalidations_{0};

    // Frozen select cache: an immutable open-addressing table (linear
    // probing, load factor <= 0.5, power-of-two capacity) sealed from the
    // shard contents by freeze_select_cache(). Readers probe it before any
    // lock; the published pointer is the only synchronization (release
    // store on publish, acquire load on probe). Unpublishing (mutation,
    // clear) retires the table into retired_frozen_ instead of freeing it,
    // so a reader that loaded the pointer can finish its probe without any
    // reclamation protocol — freezes are rare (once per serving process),
    // so the retained storage is bounded and tiny.
    struct frozen_cache {
        std::vector<std::uint64_t> keys;                  // capacity slots
        std::vector<std::uint8_t> occupied;               // 1 = slot holds a key
        std::vector<std::optional<path_result>> values;   // aligned with keys
        std::uint64_t mask = 0;                           // capacity - 1
    };
    void unpublish_frozen();  // callers hold the exclusive topo lock
    mutable std::atomic<const frozen_cache*> frozen_{nullptr};
    std::vector<std::unique_ptr<frozen_cache>> retired_frozen_;
    mutable std::atomic<std::uint64_t> frozen_hits_{0};
    mutable std::atomic<std::uint64_t> frozen_misses_{0};
};

/// Per-hop router processing added to the propagation delay, ms (round trip).
inline constexpr double per_hop_overhead_ms = 0.25;

/// Deterministic steady-state RTT jitter bound applied per (source, site).
inline constexpr double rtt_jitter_sigma = 0.04;

} // namespace ac::route
