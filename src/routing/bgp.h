// BGP-style anycast route computation.
//
// For each anycast site (an announcement from a host AS at a region), routes
// propagate through the AS graph under standard Gao-Rexford policy:
//
//   * export: customer-learned routes go to everyone; peer- and
//     provider-learned routes go only to customers (valley-free);
//     `local` scope announcements reach direct neighbors only (§2.1's
//     local root sites, implemented by limiting BGP propagation).
//   * selection: local-preference by relationship (customer > peer >
//     provider), then shortest AS path — BGP's top criteria as discussed in
//     §7.1 — then, among equal candidates, hot-potato/early-exit chosen at
//     evaluation time per source region (lowest IGP cost, §7.1).
//
// Latency is *derived from the chosen path's geography*: the evaluator walks
// the AS path hop by hop, picking at each inter-AS link the interconnection
// point nearest the current position (early exit) and accumulating
// great-circle distance scaled by the link's circuitousness. Inflation is
// therefore an emergent property of policy routing over the synthetic graph,
// never an injected quantity.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "src/engine/thread_pool.h"
#include "src/topology/addressing.h"
#include "src/topology/as_graph.h"
#include "src/topology/region.h"

namespace ac::route {

using site_id = std::uint32_t;

enum class announcement_scope : std::uint8_t {
    global,  // normal propagation
    local,   // direct neighbors only (no re-export)
};

/// One anycast site's BGP announcement.
struct announcement {
    site_id site = 0;
    topo::asn_t origin_asn = 0;
    topo::region_id origin_region = 0;
    announcement_scope scope = announcement_scope::global;
    /// Traffic engineering (§7.1): neighbors the origin does NOT announce
    /// this site to — "not announcing to particular ASes at particular
    /// peering points" when they make poor routing decisions. Those
    /// neighbors can still learn the site transitively through others.
    std::vector<topo::asn_t> suppressed_neighbors;
};

/// Route class in local-preference order (smaller value = more preferred).
enum class route_class : std::uint8_t {
    origin = 0,    // the AS itself originates the prefix
    customer = 1,  // learned from a customer
    peer = 2,      // learned from a peer
    provider = 3,  // learned from a provider
    none = 4,
};

/// The best route an AS holds toward one specific site.
struct site_route {
    route_class cls = route_class::none;
    std::uint8_t path_len = 0;          // number of ASes on the path, incl. both ends
    topo::asn_t next_hop = 0;           // 0 at the origin
    std::uint32_t link_index = 0;       // link to next_hop (valid unless origin)
};

/// A fully evaluated path from a source <region, AS> to a site.
struct path_result {
    site_id site = 0;
    std::vector<topo::asn_t> as_path;   // source AS first, origin AS last
    double rtt_ms = 0.0;                // steady-state (median) round-trip time
    double path_km = 0.0;               // one-way geographic distance travelled
    double direct_km = 0.0;             // great-circle source-to-site distance
};

/// One <AS, region> traffic source, for bulk route evaluation.
struct source_key {
    topo::asn_t asn = 0;
    topo::region_id region = 0;
};

/// Routing state for one anycast prefix (one deployment or ring).
class anycast_rib {
public:
    /// With a non-serial `pool`, per-site propagation runs in parallel (each
    /// site owns a disjoint route table, so the result is schedule-free).
    anycast_rib(const topo::as_graph& graph, const topo::region_table& regions,
                std::vector<announcement> announcements, engine::thread_pool* pool = nullptr);

    /// Sites for which `asn` holds any route, restricted to the best
    /// (class, path length) — BGP's deterministic criteria. Hot-potato
    /// resolution among these happens per region in `select`.
    [[nodiscard]] std::vector<site_id> best_candidates(topo::asn_t asn) const;

    /// The route `asn` holds toward `site`, if any.
    [[nodiscard]] std::optional<site_route> route_toward(topo::asn_t asn, site_id site) const;

    /// Evaluates the concrete path from <asn, region> to `site`, walking the
    /// AS path geographically. Returns nullopt if the AS has no route.
    [[nodiscard]] std::optional<path_result> evaluate(topo::asn_t asn, topo::region_id region,
                                                      site_id site) const;

    /// Full selection for a source <region, AS>: picks among best_candidates
    /// by lowest first-segment IGP distance (early exit), returning the
    /// evaluated path. Returns nullopt if the AS has no route at all.
    [[nodiscard]] std::optional<path_result> select(topo::asn_t asn, topo::region_id region) const;

    /// Bulk `select` over many sources, chunked across the pool (inline when
    /// `pool` is null or serial). Result i corresponds to sources[i];
    /// evaluation is stateless per source, so output is thread-count
    /// independent.
    [[nodiscard]] std::vector<std::optional<path_result>> select_many(
        std::span<const source_key> sources, engine::thread_pool* pool = nullptr) const;

    /// True if this AS reaches the deployment through a route learned
    /// directly from the origin AS (a "2 AS" path in Fig. 6a terms).
    [[nodiscard]] bool has_direct_route(topo::asn_t asn) const;

    [[nodiscard]] const std::vector<announcement>& announcements() const noexcept {
        return announcements_;
    }

    /// ASNs this RIB holds routes for (the graph snapshot at construction;
    /// ASes attached to the graph later are unknown to this RIB).
    [[nodiscard]] std::span<const topo::asn_t> known_asns() const noexcept { return asns_; }

private:
    void propagate(const announcement& a);
    [[nodiscard]] std::size_t as_index(topo::asn_t asn) const;

    const topo::as_graph* graph_;
    const topo::region_table* regions_;
    std::vector<announcement> announcements_;
    // routes_[site][as_index] — dense per site because every AS usually
    // holds a route to every globally announced site.
    std::vector<std::vector<site_route>> routes_;
    std::vector<topo::asn_t> asns_;                 // index -> asn
    std::unordered_map<topo::asn_t, std::size_t> index_;  // asn -> index
};

/// Per-hop router processing added to the propagation delay, ms (round trip).
inline constexpr double per_hop_overhead_ms = 0.25;

/// Deterministic steady-state RTT jitter bound applied per (source, site).
inline constexpr double rtt_jitter_sigma = 0.04;

} // namespace ac::route
