#include "src/routing/bgp.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <unordered_set>

#include "src/netbase/geo.h"
#include "src/netbase/rng.h"

namespace ac::route {

namespace {

bool better(route_class cls, std::uint8_t len, const site_route& incumbent) {
    if (cls != incumbent.cls) return cls < incumbent.cls;
    return len < incumbent.path_len;
}

} // namespace

anycast_rib::anycast_rib(const topo::as_graph& graph, const topo::region_table& regions,
                         std::vector<announcement> announcements, engine::thread_pool* pool)
    : graph_(&graph), regions_(&regions), announcements_(std::move(announcements)) {
    asns_.reserve(graph.as_count());
    for (const auto& as : graph.all()) {
        index_.emplace(as.asn, asns_.size());
        asns_.push_back(as.asn);
    }
    routes_.resize(announcements_.size());
    std::unordered_set<site_id> seen_sites;
    for (const auto& a : announcements_) {
        if (!graph.has_as(a.origin_asn)) {
            throw std::invalid_argument("anycast_rib: announcement from unknown ASN");
        }
        if (a.site >= announcements_.size()) {
            throw std::invalid_argument("anycast_rib: site ids must be dense [0, n)");
        }
        routes_[a.site].assign(asns_.size(), site_route{});
        seen_sites.insert(a.site);
    }
    // Each site's propagation writes only its own table, so sites are
    // independent work items — unless two announcements share a site id, in
    // which case only the serial order is well-defined.
    if (seen_sites.size() == announcements_.size()) {
        engine::parallel_over(pool, announcements_.size(),
                              [this](std::size_t begin, std::size_t end) {
                                  for (std::size_t i = begin; i < end; ++i) {
                                      propagate(announcements_[i]);
                                  }
                              });
    } else {
        for (const auto& a : announcements_) propagate(a);
    }
}

void anycast_rib::propagate(const announcement& a) {
    auto& table = routes_[a.site];
    const std::size_t origin = as_index(a.origin_asn);
    table[origin] = site_route{route_class::origin, 1, 0, 0};

    const std::unordered_set<topo::asn_t> suppressed(a.suppressed_neighbors.begin(),
                                                     a.suppressed_neighbors.end());

    if (a.scope == announcement_scope::local) {
        // Local sites: announced to direct neighbors with no re-export.
        for (const auto& nb : graph_->neighbors(a.origin_asn)) {
            if (suppressed.contains(nb.neighbor)) continue;
            const std::size_t i = as_index(nb.neighbor);
            // Relationship seen from the *neighbor*: it learned the route
            // from `origin`, which is its customer/peer/provider.
            const route_class cls = [&] {
                switch (nb.relationship) {
                    // nb.relationship is from origin's perspective.
                    case topo::as_relationship::provider: return route_class::customer;
                    case topo::as_relationship::customer: return route_class::provider;
                    case topo::as_relationship::peer: return route_class::peer;
                }
                return route_class::none;
            }();
            if (better(cls, 2, table[i])) {
                table[i] = site_route{cls, 2, a.origin_asn, nb.link_index};
            }
        }
        return;
    }

    // Phase 1: customer routes climb provider links (origin -> its providers
    // -> their providers ...). BFS by path length.
    {
        std::queue<std::size_t> frontier;
        frontier.push(origin);
        while (!frontier.empty()) {
            const std::size_t cur = frontier.front();
            frontier.pop();
            const auto cur_len = table[cur].path_len;
            for (const auto& nb : graph_->neighbors(asns_[cur])) {
                if (nb.relationship != topo::as_relationship::provider) continue;
                if (cur == origin && suppressed.contains(nb.neighbor)) continue;
                const std::size_t i = as_index(nb.neighbor);
                const auto len = static_cast<std::uint8_t>(cur_len + 1);
                if (better(route_class::customer, len, table[i])) {
                    table[i] = site_route{route_class::customer, len, asns_[cur], nb.link_index};
                    frontier.push(i);
                }
            }
        }
    }

    // Phase 2: one peer hop from any AS holding an origin/customer route.
    // Peer routes are not re-exported to peers or providers.
    {
        std::vector<std::pair<std::size_t, site_route>> pending;
        for (std::size_t cur = 0; cur < asns_.size(); ++cur) {
            if (table[cur].cls != route_class::origin && table[cur].cls != route_class::customer) {
                continue;
            }
            for (const auto& nb : graph_->neighbors(asns_[cur])) {
                if (nb.relationship != topo::as_relationship::peer) continue;
                if (cur == origin && suppressed.contains(nb.neighbor)) continue;
                const std::size_t i = as_index(nb.neighbor);
                const auto len = static_cast<std::uint8_t>(table[cur].path_len + 1);
                pending.emplace_back(
                    i, site_route{route_class::peer, len, asns_[cur], nb.link_index});
            }
        }
        for (const auto& [i, candidate] : pending) {
            if (better(candidate.cls, candidate.path_len, table[i])) table[i] = candidate;
        }
    }

    // Phase 3: provider routes descend customer links from any AS holding a
    // route. Dijkstra-style because lengths must stay minimal per class.
    {
        using item = std::pair<std::uint8_t, std::size_t>;  // (len at customer, index)
        std::priority_queue<item, std::vector<item>, std::greater<>> heap;
        for (std::size_t cur = 0; cur < asns_.size(); ++cur) {
            if (table[cur].cls == route_class::none) continue;
            heap.emplace(static_cast<std::uint8_t>(table[cur].path_len + 1), cur);
        }
        while (!heap.empty()) {
            const auto [len, cur] = heap.top();
            heap.pop();
            if (static_cast<std::uint8_t>(table[cur].path_len + 1) != len) continue;  // stale
            for (const auto& nb : graph_->neighbors(asns_[cur])) {
                if (nb.relationship != topo::as_relationship::customer) continue;
                if (cur == origin && suppressed.contains(nb.neighbor)) continue;
                const std::size_t i = as_index(nb.neighbor);
                if (better(route_class::provider, len, table[i])) {
                    table[i] = site_route{route_class::provider, len, asns_[cur], nb.link_index};
                    heap.emplace(static_cast<std::uint8_t>(len + 1), i);
                }
            }
        }
    }
}

std::vector<site_id> anycast_rib::best_candidates(topo::asn_t asn) const {
    const std::size_t i = as_index(asn);
    route_class best_cls = route_class::none;
    std::uint8_t best_len = std::numeric_limits<std::uint8_t>::max();
    for (const auto& table : routes_) {
        const auto& r = table[i];
        if (r.cls == route_class::none) continue;
        if (r.cls < best_cls || (r.cls == best_cls && r.path_len < best_len)) {
            best_cls = r.cls;
            best_len = r.path_len;
        }
    }
    std::vector<site_id> out;
    if (best_cls == route_class::none) return out;
    for (site_id s = 0; s < routes_.size(); ++s) {
        const auto& r = routes_[s][i];
        if (r.cls == best_cls && r.path_len == best_len) out.push_back(s);
    }
    return out;
}

std::optional<site_route> anycast_rib::route_toward(topo::asn_t asn, site_id site) const {
    const auto& r = routes_.at(site)[as_index(asn)];
    if (r.cls == route_class::none) return std::nullopt;
    return r;
}

std::optional<path_result> anycast_rib::evaluate(topo::asn_t asn, topo::region_id region,
                                                 site_id site) const {
    const auto& table = routes_.at(site);
    std::size_t cur = as_index(asn);
    if (table[cur].cls == route_class::none) return std::nullopt;

    const auto& a = announcements_[site];
    const geo::point site_loc = regions_->at(a.origin_region).location;
    const geo::point source_loc = regions_->at(region).location;

    path_result result;
    result.site = site;
    result.direct_km = geo::distance_km(source_loc, site_loc);

    geo::point here = source_loc;
    double weighted_km = 0.0;  // distance already scaled by circuitousness
    int hops = 0;

    while (table[cur].cls != route_class::origin) {
        result.as_path.push_back(asns_[cur]);
        const auto& link = graph_->link(table[cur].link_index);
        // Early exit: cross to the next AS at the interconnection point
        // nearest our current position.
        const auto& points = link.interconnect_regions;
        topo::region_id best_region = points.front();
        double best_km = std::numeric_limits<double>::infinity();
        for (topo::region_id p : points) {
            const double d = geo::distance_km(here, regions_->at(p).location);
            if (d < best_km) {
                best_km = d;
                best_region = p;
            }
        }
        result.path_km += best_km;
        weighted_km += best_km * link.circuitousness;
        here = regions_->at(best_region).location;
        ++hops;
        cur = as_index(table[cur].next_hop);
    }
    result.as_path.push_back(asns_[cur]);

    // Final intra-origin segment to the site itself.
    const double tail_km = geo::distance_km(here, site_loc);
    result.path_km += tail_km;
    weighted_km += tail_km * 1.2;

    const auto& source_as = graph_->at(asn);
    double rtt = geo::round_trip_fiber_ms(weighted_km);
    rtt += source_as.last_mile_ms;
    rtt += per_hop_overhead_ms * static_cast<double>(hops + 1);
    // Small deterministic steady-state jitter keyed by (source, site): two
    // different <region, AS> sources never see byte-identical medians.
    rand::rng jitter{rand::mix_seed(0x777ee1ULL, (std::uint64_t{asn} << 20) ^ region,
                                    (std::uint64_t{a.origin_asn} << 16) ^ site)};
    rtt *= std::exp(jitter.normal(0.0, rtt_jitter_sigma));
    result.rtt_ms = rtt;
    return result;
}

std::optional<path_result> anycast_rib::select(topo::asn_t asn, topo::region_id region) const {
    const auto candidates = best_candidates(asn);
    if (candidates.empty()) return std::nullopt;

    // Hot potato: among BGP-equal candidates, pick the one whose first
    // egress/interconnect is nearest the source region (lowest IGP cost).
    const geo::point source_loc = regions_->at(region).location;
    const std::size_t i = as_index(asn);
    site_id best_site = candidates.front();
    double best_first_km = std::numeric_limits<double>::infinity();
    for (site_id s : candidates) {
        const auto& r = routes_[s][i];
        double first_km = 0.0;
        if (r.cls == route_class::origin) {
            first_km = geo::distance_km(source_loc,
                                        regions_->at(announcements_[s].origin_region).location);
        } else {
            const auto& link = graph_->link(r.link_index);
            first_km = std::numeric_limits<double>::infinity();
            for (topo::region_id p : link.interconnect_regions) {
                first_km = std::min(first_km, geo::distance_km(source_loc, regions_->at(p).location));
            }
            // Among several direct routes into the origin AS, BGP then falls
            // to nearest egress; collocated sites make the egress also the
            // nearest site (§7.1). Approximate by adding the origin-internal
            // distance from that egress to the site.
            const auto& site_loc = regions_->at(announcements_[s].origin_region).location;
            double egress_to_site = std::numeric_limits<double>::infinity();
            for (topo::region_id p : link.interconnect_regions) {
                egress_to_site = std::min(
                    egress_to_site, geo::distance_km(regions_->at(p).location, site_loc));
            }
            first_km += 0.25 * egress_to_site;  // IGP cost beyond the edge is discounted
        }
        if (first_km < best_first_km) {
            best_first_km = first_km;
            best_site = s;
        }
    }
    return evaluate(asn, region, best_site);
}

std::vector<std::optional<path_result>> anycast_rib::select_many(
    std::span<const source_key> sources, engine::thread_pool* pool) const {
    std::vector<std::optional<path_result>> out(sources.size());
    engine::parallel_over(pool, sources.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            out[i] = select(sources[i].asn, sources[i].region);
        }
    });
    return out;
}

bool anycast_rib::has_direct_route(topo::asn_t asn) const {
    const std::size_t i = as_index(asn);
    for (const auto& table : routes_) {
        const auto& r = table[i];
        if (r.cls != route_class::none && r.path_len <= 2) return true;
    }
    return false;
}

std::size_t anycast_rib::as_index(topo::asn_t asn) const {
    auto it = index_.find(asn);
    if (it == index_.end()) throw std::out_of_range("anycast_rib: unknown ASN");
    return it->second;
}

} // namespace ac::route
