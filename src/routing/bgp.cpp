#include "src/routing/bgp.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>
#include <utility>

#include "src/netbase/geo.h"
#include "src/netbase/rng.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace ac::route {

namespace {

/// Process-wide select-cache counters, resolved once (the registry lookup
/// takes a lock; the per-call path must stay at one relaxed add).
obs::counter& select_hit_counter() {
    static obs::counter& c = obs::registry::global().get_counter("route.select_cache.hits");
    return c;
}
obs::counter& select_miss_counter() {
    static obs::counter& c = obs::registry::global().get_counter("route.select_cache.misses");
    return c;
}
obs::counter& select_invalidation_counter() {
    static obs::counter& c =
        obs::registry::global().get_counter("route.select_cache.invalidations");
    return c;
}

/// Frozen-table counters: post-freeze lookups are accounted separately from
/// the sharded cache so serving dashboards can see the wait-free hit rate.
obs::counter& frozen_hit_counter() {
    static obs::counter& c =
        obs::registry::global().get_counter("route.select_cache.frozen_hits");
    return c;
}
obs::counter& frozen_miss_counter() {
    static obs::counter& c =
        obs::registry::global().get_counter("route.select_cache.frozen_misses");
    return c;
}
obs::counter& freeze_counter() {
    static obs::counter& c = obs::registry::global().get_counter("route.select_cache.freezes");
    return c;
}

/// Slot hash for the frozen open-addressing table. Collision quality only
/// affects probe length, never results (lookups compare full keys).
[[nodiscard]] constexpr std::uint64_t frozen_mix(std::uint64_t key) noexcept {
    std::uint64_t mix = key * 0x9e3779b97f4a7c15ULL;
    mix ^= mix >> 29;
    return mix;
}

/// Incremental re-convergence work counters (DESIGN §11): how many events
/// ran, how many per-AS index slots they recomputed, and how many cache
/// shards they had to visit.
obs::counter& reconverge_event_counter() {
    static obs::counter& c = obs::registry::global().get_counter("route.reconverge.events");
    return c;
}
obs::counter& reconverge_ases_counter() {
    static obs::counter& c =
        obs::registry::global().get_counter("route.reconverge.ases_touched");
    return c;
}
obs::counter& reconverge_shards_counter() {
    static obs::counter& c =
        obs::registry::global().get_counter("route.reconverge.cache_shards_visited");
    return c;
}

bool better(route_class cls, std::uint8_t len, route_class incumbent_cls,
            std::uint8_t incumbent_len) {
    if (cls != incumbent_cls) return cls < incumbent_cls;
    return len < incumbent_len;
}

/// Reusable propagation buffers. One instance per worker thread, reused
/// across announcements and RIBs, so propagate() performs no per-call heap
/// allocation once the buffers are warm.
struct propagate_scratch {
    std::vector<std::uint8_t> suppressed;  // flag per dense AS index
    std::vector<std::uint32_t> marks;      // set flags, cleared after each call
    std::vector<std::uint32_t> frontier;   // phase-1 BFS queue (head walks it)
    struct pending_route {
        std::uint32_t index = 0;
        std::uint8_t len = 0;
        std::uint32_t next = 0;
        std::uint32_t link = 0;
    };
    std::vector<pending_route> pending;    // phase-2 staging
    std::vector<std::pair<std::uint8_t, std::uint32_t>> heap;  // phase-3 (len, index)
};

propagate_scratch& local_scratch(std::size_t as_count) {
    static thread_local propagate_scratch sc;
    if (sc.suppressed.size() < as_count) sc.suppressed.resize(as_count, 0);
    // Defensive: if a previous call unwound mid-propagation, clear its marks.
    for (const std::uint32_t i : sc.marks) sc.suppressed[i] = 0;
    sc.marks.clear();
    return sc;
}

} // namespace

anycast_rib::anycast_rib(const topo::as_graph& graph, const topo::region_table& regions,
                         std::vector<announcement> announcements, engine::thread_pool* pool)
    : graph_(&graph), regions_(&regions), announcements_(std::move(announcements)) {
    asns_.reserve(graph.as_count());
    for (const auto& as : graph.all()) asns_.push_back(as.asn);
    as_count_ = asns_.size();
    region_count_ = regions.size();
    link_count_ = graph.link_count();

    const std::size_t cells = announcements_.size() * as_count_;
    cls_.assign(cells, static_cast<std::uint8_t>(route_class::none));
    len_.assign(cells, 0);
    next_idx_.assign(cells, no_next_hop);
    link_.assign(cells, 0);

    bool unique_sites = true;
    std::vector<std::uint8_t> seen(announcements_.size(), 0);
    withdrawn_.assign(announcements_.size(), 0);
    for (const auto& a : announcements_) {
        if (!graph.has_as(a.origin_asn)) {
            throw std::invalid_argument("anycast_rib: announcement from unknown ASN");
        }
        if (a.site >= announcements_.size()) {
            throw std::invalid_argument("anycast_rib: site ids must be dense [0, n)");
        }
        if (seen[a.site]) unique_sites = false;
        seen[a.site] = 1;
        if (a.withdrawn) withdrawn_[a.site] = 1;
    }
    // Each site's propagation writes only its own matrix row, so sites are
    // independent work items — unless two announcements share a site id, in
    // which case only the serial order is well-defined. Per-site work is
    // heavy (a full graph traversal), so grain 1 keeps full fan-out despite
    // the pool's inline threshold for small auto-grain ranges.
    {
        obs::span propagation_span{"bgp/propagate_all"};
        propagation_span.set_items(announcements_.size());
        if (unique_sites) {
            engine::parallel_over(
                pool, announcements_.size(),
                [this](std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) {
                        if (!announcements_[i].withdrawn) propagate(announcements_[i]);
                    }
                },
                /*grain=*/1);
        } else {
            for (const auto& a : announcements_) {
                if (!a.withdrawn) propagate(a);
            }
        }
    }

    {
        obs::span index_span{"bgp/build_fast_path"};
        index_span.set_items(as_count_);
        build_fast_path(pool);
    }
}

void anycast_rib::propagate(const announcement& a) {
    obs::span propagate_span{"bgp/propagate_site"};
    propagate_span.set_items(as_count_);
    propagate_scratch& sc = local_scratch(as_count_);
    const std::size_t base = static_cast<std::size_t>(a.site) * as_count_;
    const std::size_t origin = graph_->dense_index(a.origin_asn);

    const auto cls_at = [&](std::size_t i) { return static_cast<route_class>(cls_[base + i]); };
    const auto is_better = [&](route_class c, std::uint8_t l, std::size_t i) {
        return better(c, l, cls_at(i), len_[base + i]);
    };
    const auto set = [&](std::size_t i, route_class c, std::uint8_t l, std::uint32_t next,
                         std::uint32_t link) {
        cls_[base + i] = static_cast<std::uint8_t>(c);
        len_[base + i] = l;
        next_idx_[base + i] = next;
        link_[base + i] = link;
    };

    // Guard for announce() after the underlying graph grew (later deployments
    // attach host networks): neighbors/links beyond this RIB's construction
    // snapshot do not exist in the matrix and must be skipped. At build time
    // every index is in range, so these tests never fire then.
    const auto in_snapshot = [&](const auto& nb) {
        return nb.neighbor_index < as_count_ && nb.link_index < link_count_;
    };

    // AS-path prepending seeds the origin row longer; every propagated length
    // below is relative to it, so the whole tree inherits the penalty.
    const auto origin_len = static_cast<std::uint8_t>(1 + a.prepend);
    set(origin, route_class::origin, origin_len, no_next_hop, 0);

    for (const topo::asn_t s : a.suppressed_neighbors) {
        const std::size_t i = graph_->find_index(s);
        if (i == topo::as_graph::npos || i >= as_count_) continue;
        if (!sc.suppressed[i]) {
            sc.suppressed[i] = 1;
            sc.marks.push_back(static_cast<std::uint32_t>(i));
        }
    }

    if (a.scope == announcement_scope::local) {
        // Local sites: announced to direct neighbors with no re-export.
        for (const auto& nb : graph_->neighbors_at(origin)) {
            if (!in_snapshot(nb)) continue;
            if (sc.suppressed[nb.neighbor_index]) continue;
            // Relationship seen from the *neighbor*: it learned the route
            // from `origin`, which is its customer/peer/provider.
            const route_class cls = [&] {
                switch (nb.relationship) {
                    // nb.relationship is from origin's perspective.
                    case topo::as_relationship::provider: return route_class::customer;
                    case topo::as_relationship::customer: return route_class::provider;
                    case topo::as_relationship::peer: return route_class::peer;
                }
                return route_class::none;
            }();
            const auto len = static_cast<std::uint8_t>(origin_len + 1);
            if (is_better(cls, len, nb.neighbor_index)) {
                set(nb.neighbor_index, cls, len, static_cast<std::uint32_t>(origin),
                    nb.link_index);
            }
        }
        for (const std::uint32_t i : sc.marks) sc.suppressed[i] = 0;
        sc.marks.clear();
        return;
    }

    // Phase 1: customer routes climb provider links (origin -> its providers
    // -> their providers ...). BFS by path length.
    {
        sc.frontier.clear();
        sc.frontier.push_back(static_cast<std::uint32_t>(origin));
        for (std::size_t head = 0; head < sc.frontier.size(); ++head) {
            const std::size_t cur = sc.frontier[head];
            const auto cur_len = len_[base + cur];
            for (const auto& nb : graph_->neighbors_at(cur)) {
                if (nb.relationship != topo::as_relationship::provider) continue;
                if (!in_snapshot(nb)) continue;
                if (cur == origin && sc.suppressed[nb.neighbor_index]) continue;
                const std::size_t i = nb.neighbor_index;
                const auto len = static_cast<std::uint8_t>(cur_len + 1);
                if (is_better(route_class::customer, len, i)) {
                    set(i, route_class::customer, len, static_cast<std::uint32_t>(cur),
                        nb.link_index);
                    sc.frontier.push_back(nb.neighbor_index);
                }
            }
        }
    }

    // Phase 2: one peer hop from any AS holding an origin/customer route.
    // Peer routes are not re-exported to peers or providers.
    {
        sc.pending.clear();
        for (std::size_t cur = 0; cur < as_count_; ++cur) {
            if (cls_at(cur) != route_class::origin && cls_at(cur) != route_class::customer) {
                continue;
            }
            for (const auto& nb : graph_->neighbors_at(cur)) {
                if (nb.relationship != topo::as_relationship::peer) continue;
                if (!in_snapshot(nb)) continue;
                if (cur == origin && sc.suppressed[nb.neighbor_index]) continue;
                const auto len = static_cast<std::uint8_t>(len_[base + cur] + 1);
                sc.pending.push_back(propagate_scratch::pending_route{
                    nb.neighbor_index, len, static_cast<std::uint32_t>(cur), nb.link_index});
            }
        }
        for (const auto& p : sc.pending) {
            if (is_better(route_class::peer, p.len, p.index)) {
                set(p.index, route_class::peer, p.len, p.next, p.link);
            }
        }
    }

    // Phase 3: provider routes descend customer links from any AS holding a
    // route. Dijkstra-style because lengths must stay minimal per class.
    // The scratch heap replays std::priority_queue's push/pop sequence
    // exactly, so pop order (and thus tie resolution) is unchanged.
    {
        sc.heap.clear();
        const auto heap_push = [&](std::uint8_t len, std::uint32_t index) {
            sc.heap.emplace_back(len, index);
            std::push_heap(sc.heap.begin(), sc.heap.end(), std::greater<>{});
        };
        for (std::size_t cur = 0; cur < as_count_; ++cur) {
            if (cls_at(cur) == route_class::none) continue;
            heap_push(static_cast<std::uint8_t>(len_[base + cur] + 1),
                      static_cast<std::uint32_t>(cur));
        }
        while (!sc.heap.empty()) {
            std::pop_heap(sc.heap.begin(), sc.heap.end(), std::greater<>{});
            const auto [len, cur] = sc.heap.back();
            sc.heap.pop_back();
            if (static_cast<std::uint8_t>(len_[base + cur] + 1) != len) continue;  // stale
            for (const auto& nb : graph_->neighbors_at(cur)) {
                if (nb.relationship != topo::as_relationship::customer) continue;
                if (!in_snapshot(nb)) continue;
                if (cur == origin && sc.suppressed[nb.neighbor_index]) continue;
                if (is_better(route_class::provider, len, nb.neighbor_index)) {
                    set(nb.neighbor_index, route_class::provider, len, cur, nb.link_index);
                    heap_push(static_cast<std::uint8_t>(len + 1), nb.neighbor_index);
                }
            }
        }
    }

    for (const std::uint32_t i : sc.marks) sc.suppressed[i] = 0;
    sc.marks.clear();
}

void anycast_rib::build_fast_path(engine::thread_pool* pool) {
    const std::size_t sites = announcements_.size();
    best_cls_.assign(as_count_, static_cast<std::uint8_t>(route_class::none));
    best_len_.assign(as_count_, std::numeric_limits<std::uint8_t>::max());
    direct_.assign(as_count_, 0);
    cand_begin_.assign(as_count_ + 1, 0);
    std::vector<std::uint32_t> counts(as_count_, 0);

    // Pass A: per-AS best (class, length), direct flag, candidate count.
    engine::parallel_over(pool, as_count_, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            route_class best = route_class::none;
            std::uint8_t best_len = std::numeric_limits<std::uint8_t>::max();
            std::uint8_t direct = 0;
            for (std::size_t s = 0; s < sites; ++s) {
                const auto c = static_cast<route_class>(cls_[cell(static_cast<site_id>(s), i)]);
                if (c == route_class::none) continue;
                const std::uint8_t l = len_[cell(static_cast<site_id>(s), i)];
                if (l <= 2) direct = 1;
                if (c < best || (c == best && l < best_len)) {
                    best = c;
                    best_len = l;
                }
            }
            std::uint32_t count = 0;
            if (best != route_class::none) {
                for (std::size_t s = 0; s < sites; ++s) {
                    const std::size_t c = cell(static_cast<site_id>(s), i);
                    if (static_cast<route_class>(cls_[c]) == best && len_[c] == best_len) {
                        ++count;
                    }
                }
            }
            best_cls_[i] = static_cast<std::uint8_t>(best);
            best_len_[i] = best_len;
            direct_[i] = direct;
            counts[i] = count;
        }
    });

    for (std::size_t i = 0; i < as_count_; ++i) cand_begin_[i + 1] = cand_begin_[i] + counts[i];
    cand_sites_.resize(cand_begin_[as_count_]);

    // Pass B: fill CSR candidate lists (sites ascending, as the pre-index
    // best_candidates scan produced them).
    engine::parallel_over(pool, as_count_, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            const auto best = static_cast<route_class>(best_cls_[i]);
            if (best == route_class::none) continue;
            std::uint32_t k = cand_begin_[i];
            for (std::size_t s = 0; s < sites; ++s) {
                const std::size_t c = cell(static_cast<site_id>(s), i);
                if (static_cast<route_class>(cls_[c]) == best && len_[c] == best_len_[i]) {
                    cand_sites_[k++] = static_cast<site_id>(s);
                }
            }
        }
    });

    // Per-link nearest interconnect, resolving every early-exit min-distance
    // scan in evaluate()/select() to a single lookup. Same iteration order
    // and strict-less comparison as the scans it replaces, over the same
    // distance-matrix values, so the chosen region is identical.
    const std::size_t links = graph_->link_count();
    nearest_interconnect_.resize(links * region_count_);
    engine::parallel_over(pool, links, [&](std::size_t begin, std::size_t end) {
        for (std::size_t l = begin; l < end; ++l) {
            const auto& link = graph_->link(static_cast<std::uint32_t>(l));
            for (std::size_t r = 0; r < region_count_; ++r) {
                topo::region_id best_p = link.interconnect_regions.front();
                double best_km = std::numeric_limits<double>::infinity();
                for (const topo::region_id p : link.interconnect_regions) {
                    const double d = regions_->distance_km(static_cast<topo::region_id>(r), p);
                    if (d < best_km) {
                        best_km = d;
                        best_p = p;
                    }
                }
                nearest_interconnect_[l * region_count_ + r] = best_p;
            }
        }
    });
}

std::vector<site_id> anycast_rib::best_candidates(topo::asn_t asn) const {
    std::shared_lock lock{topo_mutex_};
    const auto span = candidate_span(as_index(asn));
    return std::vector<site_id>(span.begin(), span.end());
}

std::optional<site_route> anycast_rib::route_toward(topo::asn_t asn, site_id site) const {
    std::shared_lock lock{topo_mutex_};
    if (site >= announcements_.size()) {
        throw std::out_of_range("anycast_rib: unknown site");
    }
    const std::size_t c = cell(site, as_index(asn));
    if (static_cast<route_class>(cls_[c]) == route_class::none) return std::nullopt;
    site_route r;
    r.cls = static_cast<route_class>(cls_[c]);
    r.path_len = len_[c];
    r.next_hop = next_idx_[c] == no_next_hop ? 0 : asns_[next_idx_[c]];
    r.link_index = link_[c];
    return r;
}

anycast_rib::site_route_view anycast_rib::site_routes(site_id site) const {
    std::shared_lock lock{topo_mutex_};
    if (site >= announcements_.size()) {
        throw std::out_of_range("anycast_rib: unknown site");
    }
    const std::size_t base = cell(site, 0);
    return site_route_view{
        std::span<const std::uint8_t>{cls_}.subspan(base, as_count_),
        std::span<const std::uint8_t>{len_}.subspan(base, as_count_),
        std::span<const std::uint32_t>{next_idx_}.subspan(base, as_count_),
        std::span<const std::uint32_t>{link_}.subspan(base, as_count_),
    };
}

std::optional<path_result> anycast_rib::evaluate(topo::asn_t asn, topo::region_id region,
                                                 site_id site) const {
    std::shared_lock lock{topo_mutex_};
    if (site >= announcements_.size()) {
        throw std::out_of_range("anycast_rib: unknown site");
    }
    return evaluate_indexed(as_index(asn), asn, region, site);
}

std::optional<path_result> anycast_rib::evaluate_indexed(std::size_t as, topo::asn_t asn,
                                                         topo::region_id region,
                                                         site_id site) const {
    std::size_t cur = as;
    if (static_cast<route_class>(cls_[cell(site, cur)]) == route_class::none) {
        return std::nullopt;
    }
    (void)regions_->at(region);  // bounds check, as the pre-table code had

    const auto& a = announcements_[site];
    path_result result;
    result.site = site;
    result.direct_km = regions_->distance_km(region, a.origin_region);

    topo::region_id here = region;
    double weighted_km = 0.0;  // distance already scaled by circuitousness
    int hops = 0;

    while (static_cast<route_class>(cls_[cell(site, cur)]) != route_class::origin) {
        result.as_path.push_back(asns_[cur]);
        const std::uint32_t l = link_[cell(site, cur)];
        // Early exit: cross to the next AS at the interconnection point
        // nearest our current position (precomputed per link).
        const topo::region_id best_region = nearest_interconnect_[l * region_count_ + here];
        const double best_km = regions_->distance_km(here, best_region);
        result.path_km += best_km;
        weighted_km += best_km * graph_->link(l).circuitousness;
        here = best_region;
        ++hops;
        cur = next_idx_[cell(site, cur)];
    }
    result.as_path.push_back(asns_[cur]);

    // Final intra-origin segment to the site itself.
    const double tail_km = regions_->distance_km(here, a.origin_region);
    result.path_km += tail_km;
    weighted_km += tail_km * 1.2;

    const auto& source_as = graph_->at_index(as);
    double rtt = geo::round_trip_fiber_ms(weighted_km);
    rtt += source_as.last_mile_ms;
    rtt += per_hop_overhead_ms * static_cast<double>(hops + 1);
    // Small deterministic steady-state jitter keyed by (source, site): two
    // different <region, AS> sources never see byte-identical medians.
    rand::rng jitter{rand::mix_seed(0x777ee1ULL, (std::uint64_t{asn} << 20) ^ region,
                                    (std::uint64_t{a.origin_asn} << 16) ^ site)};
    rtt *= std::exp(jitter.normal(0.0, rtt_jitter_sigma));
    result.rtt_ms = rtt;
    return result;
}

std::optional<path_result> anycast_rib::select_indexed(std::size_t as, topo::asn_t asn,
                                                       topo::region_id region) const {
    const auto candidates = candidate_span(as);
    // Hot potato: among BGP-equal candidates, pick the one whose first
    // egress/interconnect is nearest the source region (lowest IGP cost).
    (void)regions_->at(region);  // bounds check, as the pre-table code had
    site_id best_site = candidates.front();
    double best_first_km = std::numeric_limits<double>::infinity();
    for (const site_id s : candidates) {
        const std::size_t c = cell(s, as);
        double first_km = 0.0;
        if (static_cast<route_class>(cls_[c]) == route_class::origin) {
            first_km = regions_->distance_km(region, announcements_[s].origin_region);
        } else {
            const std::uint32_t l = link_[c];
            first_km = regions_->distance_km(region,
                                             nearest_interconnect_[l * region_count_ + region]);
            // Among several direct routes into the origin AS, BGP then falls
            // to nearest egress; collocated sites make the egress also the
            // nearest site (§7.1). Approximate by adding the origin-internal
            // distance from that egress to the site.
            const topo::region_id site_region = announcements_[s].origin_region;
            const topo::region_id nearest_to_site =
                nearest_interconnect_[l * region_count_ + site_region];
            const double egress_to_site = regions_->distance_km(nearest_to_site, site_region);
            first_km += 0.25 * egress_to_site;  // IGP cost beyond the edge is discounted
        }
        if (first_km < best_first_km) {
            best_first_km = first_km;
            best_site = s;
        }
    }
    return evaluate_indexed(as, asn, region, best_site);
}

std::optional<path_result> anycast_rib::select(topo::asn_t asn, topo::region_id region) const {
    // Wait-free fast path first: a sealed key is answered straight from the
    // frozen table — no shard mutex, no topo gate. Keys that were never
    // warmed (or an unfrozen RIB) fall through to the locked path below.
    if (const auto* sealed = select_frozen(asn, region)) {
        return *sealed;
    }
    if (frozen_.load(std::memory_order_acquire) != nullptr) {
        frozen_misses_.fetch_add(1, std::memory_order_relaxed);
        frozen_miss_counter().add(1);
    }

    // Shared (reader) side of the topology gate: any number of selects run
    // concurrently; announce/withdraw take the exclusive side, so a select
    // never observes a half-reconverged matrix. Lock order is topo gate →
    // cache shard, matching invalidate_cache under the writer.
    std::shared_lock lock{topo_mutex_};
    const std::size_t as = as_index(asn);
    if (candidate_span(as).empty()) return std::nullopt;

    const std::uint64_t key = (std::uint64_t{asn} << 32) | region;
    cache_shard& shard = cache_shards_[shard_of(asn)];
    {
        std::lock_guard lock{shard.mutex};
        if (const auto it = shard.entries.find(key); it != shard.entries.end()) {
            cache_hits_.fetch_add(1, std::memory_order_relaxed);
            select_hit_counter().add(1);
            return it->second;
        }
    }
    // Compute outside the lock: a racing thread may duplicate the work, but
    // selection is pure, so both compute identical bytes and the first
    // emplace wins — the cache never changes an output.
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    select_miss_counter().add(1);
    auto result = select_indexed(as, asn, region);
    {
        std::lock_guard lock{shard.mutex};
        shard.entries.emplace(key, result);
    }
    return result;
}

const std::optional<path_result>* anycast_rib::select_frozen(
    topo::asn_t asn, topo::region_id region) const noexcept {
    const frozen_cache* f = frozen_.load(std::memory_order_acquire);
    if (f == nullptr) return nullptr;
    const std::uint64_t key = (std::uint64_t{asn} << 32) | region;
    std::uint64_t slot = frozen_mix(key) & f->mask;
    while (f->occupied[slot] != 0) {
        if (f->keys[slot] == key) {
            frozen_hits_.fetch_add(1, std::memory_order_relaxed);
            frozen_hit_counter().add(1);
            return &f->values[slot];
        }
        slot = (slot + 1) & f->mask;
    }
    return nullptr;
}

std::size_t anycast_rib::freeze_select_cache() {
    obs::span freeze_span{"bgp/freeze_select_cache"};
    // Writer on the topo gate: no select can be mid-fill while the shards
    // are walked, and re-freezing retires the previously published table.
    std::unique_lock lock{topo_mutex_};
    unpublish_frozen();

    std::size_t entries = 0;
    for (auto& shard : cache_shards_) {
        std::lock_guard shard_lock{shard.mutex};
        entries += shard.entries.size();
    }
    auto table = std::make_unique<frozen_cache>();
    std::uint64_t capacity = 1;
    while (capacity < entries * 2 + 1) capacity <<= 1;
    table->keys.assign(capacity, 0);
    table->occupied.assign(capacity, 0);
    table->values.assign(capacity, std::nullopt);
    table->mask = capacity - 1;
    for (auto& shard : cache_shards_) {
        std::lock_guard shard_lock{shard.mutex};
        for (const auto& [key, value] : shard.entries) {
            std::uint64_t slot = frozen_mix(key) & table->mask;
            while (table->occupied[slot] != 0) slot = (slot + 1) & table->mask;
            table->keys[slot] = key;
            table->values[slot] = value;
            table->occupied[slot] = 1;
        }
    }
    const frozen_cache* published = table.get();
    retired_frozen_.push_back(std::move(table));
    frozen_.store(published, std::memory_order_release);
    freeze_counter().add(1);
    freeze_span.set_items(entries);
    return entries;
}

void anycast_rib::unpublish_frozen() {
    // The table stays owned by retired_frozen_ so in-flight wait-free
    // probes (which never take the topo gate) can finish against it.
    frozen_.store(nullptr, std::memory_order_release);
}

std::optional<path_result> anycast_rib::select_uncached(topo::asn_t asn,
                                                        topo::region_id region) const {
    std::shared_lock lock{topo_mutex_};
    const std::size_t as = as_index(asn);
    if (candidate_span(as).empty()) return std::nullopt;
    return select_indexed(as, asn, region);
}

std::optional<path_result> anycast_rib::select_reference(topo::asn_t asn,
                                                         topo::region_id region) const {
    std::shared_lock lock{topo_mutex_};
    // Pre-index candidate scan: walk every site's route row for this AS.
    const std::size_t i = as_index(asn);
    route_class best_cls = route_class::none;
    std::uint8_t best_len = std::numeric_limits<std::uint8_t>::max();
    for (std::size_t s = 0; s < announcements_.size(); ++s) {
        const std::size_t c = cell(static_cast<site_id>(s), i);
        const auto cls = static_cast<route_class>(cls_[c]);
        if (cls == route_class::none) continue;
        if (cls < best_cls || (cls == best_cls && len_[c] < best_len)) {
            best_cls = cls;
            best_len = len_[c];
        }
    }
    if (best_cls == route_class::none) return std::nullopt;
    std::vector<site_id> candidates;
    for (std::size_t s = 0; s < announcements_.size(); ++s) {
        const std::size_t c = cell(static_cast<site_id>(s), i);
        if (static_cast<route_class>(cls_[c]) == best_cls && len_[c] == best_len) {
            candidates.push_back(static_cast<site_id>(s));
        }
    }

    // Pre-table hot potato: on-the-fly haversine over interconnect points.
    const geo::point source_loc = regions_->at(region).location;
    site_id best_site = candidates.front();
    double best_first_km = std::numeric_limits<double>::infinity();
    for (const site_id s : candidates) {
        const std::size_t c = cell(s, i);
        double first_km = 0.0;
        if (static_cast<route_class>(cls_[c]) == route_class::origin) {
            first_km = geo::distance_km(
                source_loc, regions_->at(announcements_[s].origin_region).location);
        } else {
            const auto& link = graph_->link(link_[c]);
            first_km = std::numeric_limits<double>::infinity();
            for (const topo::region_id p : link.interconnect_regions) {
                first_km =
                    std::min(first_km, geo::distance_km(source_loc, regions_->at(p).location));
            }
            const auto& site_loc = regions_->at(announcements_[s].origin_region).location;
            double egress_to_site = std::numeric_limits<double>::infinity();
            for (const topo::region_id p : link.interconnect_regions) {
                egress_to_site = std::min(
                    egress_to_site, geo::distance_km(regions_->at(p).location, site_loc));
            }
            first_km += 0.25 * egress_to_site;
        }
        if (first_km < best_first_km) {
            best_first_km = first_km;
            best_site = s;
        }
    }
    return evaluate_indexed(i, asn, region, best_site);
}

std::vector<std::optional<path_result>> anycast_rib::select_many(
    std::span<const source_key> sources, engine::thread_pool* pool) const {
    obs::span many_span{"bgp/select_many"};
    many_span.set_items(sources.size());
    std::vector<std::optional<path_result>> out(sources.size());
    engine::parallel_over(pool, sources.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            out[i] = select(sources[i].asn, sources[i].region);
        }
    });
    return out;
}

bool anycast_rib::has_direct_route(topo::asn_t asn) const {
    std::shared_lock lock{topo_mutex_};
    return direct_[as_index(asn)] != 0;
}

std::size_t anycast_rib::as_index(topo::asn_t asn) const {
    const std::size_t i = graph_->find_index(asn);
    if (i == topo::as_graph::npos || i >= as_count_) {
        throw std::out_of_range("anycast_rib: unknown ASN");
    }
    return i;
}

// ---------------------------------------------------------------------------
// Mutation: per-source withdraw/announce with incremental re-convergence.
// ---------------------------------------------------------------------------

anycast_rib::reconverge_stats anycast_rib::withdraw(site_id site) {
    obs::span event_span{"bgp/withdraw"};
    reconverge_stats stats;
    std::unique_lock lock{topo_mutex_};
    unpublish_frozen();
    if (site >= announcements_.size()) {
        throw std::out_of_range("anycast_rib: unknown site");
    }
    if (withdrawn_[site]) return stats;  // idempotent: already out of the RIB

    // A site's routes live in exactly one matrix row, so a withdrawal never
    // needs re-propagation: clearing the row and repairing the per-AS index
    // for the ASes that held a route to it is the complete fix.
    std::vector<std::uint8_t> touched(as_count_, 0);
    clear_row(site, touched);
    withdrawn_[site] = 1;
    announcements_[site].withdrawn = true;
    reconverge_touched(touched, stats);
    event_span.set_items(stats.ases_touched);
    return stats;
}

anycast_rib::reconverge_stats anycast_rib::announce(announcement a) {
    obs::span event_span{"bgp/announce"};
    reconverge_stats stats;
    std::unique_lock lock{topo_mutex_};
    unpublish_frozen();
    const std::size_t origin = graph_->find_index(a.origin_asn);
    if (origin == topo::as_graph::npos || origin >= as_count_) {
        throw std::invalid_argument("anycast_rib: announcement from unknown ASN");
    }
    if (a.site > announcements_.size()) {
        throw std::invalid_argument("anycast_rib: site ids must be dense [0, n)");
    }
    a.withdrawn = false;

    std::vector<std::uint8_t> touched(as_count_, 0);
    if (a.site == announcements_.size()) {
        // New site: append a fresh matrix row.
        cls_.resize(cls_.size() + as_count_, static_cast<std::uint8_t>(route_class::none));
        len_.resize(len_.size() + as_count_, 0);
        next_idx_.resize(next_idx_.size() + as_count_, no_next_hop);
        link_.resize(link_.size() + as_count_, 0);
        announcements_.push_back(a);
        withdrawn_.push_back(0);
    } else {
        // Re-announce (possibly with new parameters): the old row's routes
        // are stale either way, so clear first and re-propagate from scratch.
        clear_row(a.site, touched);
        announcements_[a.site] = a;
        withdrawn_[a.site] = 0;
    }
    propagate(announcements_[a.site]);

    // Everything the new row reached joins the touched frontier.
    const std::size_t base = cell(a.site, 0);
    for (std::size_t i = 0; i < as_count_; ++i) {
        if (static_cast<route_class>(cls_[base + i]) != route_class::none) touched[i] = 1;
    }
    reconverge_touched(touched, stats);
    event_span.set_items(stats.ases_touched);
    return stats;
}

bool anycast_rib::is_withdrawn(site_id site) const {
    std::shared_lock lock{topo_mutex_};
    if (site >= announcements_.size()) {
        throw std::out_of_range("anycast_rib: unknown site");
    }
    return withdrawn_[site] != 0;
}

std::size_t anycast_rib::active_site_count() const {
    std::shared_lock lock{topo_mutex_};
    std::size_t n = 0;
    for (const std::uint8_t w : withdrawn_) n += (w == 0);
    return n;
}

void anycast_rib::clear_row(site_id site, std::vector<std::uint8_t>& touched) {
    const std::size_t base = cell(site, 0);
    for (std::size_t i = 0; i < as_count_; ++i) {
        if (static_cast<route_class>(cls_[base + i]) == route_class::none) continue;
        touched[i] = 1;
        cls_[base + i] = static_cast<std::uint8_t>(route_class::none);
        len_[base + i] = 0;
        next_idx_[base + i] = no_next_hop;
        link_[base + i] = 0;
    }
}

void anycast_rib::recompute_as_index(std::size_t as) {
    // Same scan order and comparisons as build_fast_path passes A and B, so
    // the recomputed candidate list is byte-identical to a full rebuild's.
    const std::size_t sites = announcements_.size();
    route_class best = route_class::none;
    std::uint8_t best_len = std::numeric_limits<std::uint8_t>::max();
    std::uint8_t direct = 0;
    for (std::size_t s = 0; s < sites; ++s) {
        const auto c = static_cast<route_class>(cls_[cell(static_cast<site_id>(s), as)]);
        if (c == route_class::none) continue;
        const std::uint8_t l = len_[cell(static_cast<site_id>(s), as)];
        if (l <= 2) direct = 1;
        if (c < best || (c == best && l < best_len)) {
            best = c;
            best_len = l;
        }
    }
    best_cls_[as] = static_cast<std::uint8_t>(best);
    best_len_[as] = best_len;
    direct_[as] = direct;

    overlay_[as].clear();
    overlaid_[as] = 1;
    if (best == route_class::none) return;
    for (std::size_t s = 0; s < sites; ++s) {
        const std::size_t c = cell(static_cast<site_id>(s), as);
        if (static_cast<route_class>(cls_[c]) == best && len_[c] == best_len) {
            overlay_[as].push_back(static_cast<site_id>(s));
        }
    }
}

void anycast_rib::clear_select_cache() {
    // Writer on the topo gate so no select can be filling a shard while it
    // drops (same lock order as invalidate_cache: topo gate, then shard).
    std::unique_lock lock{topo_mutex_};
    unpublish_frozen();
    for (auto& shard : cache_shards_) {
        std::lock_guard shard_lock{shard.mutex};
        shard.entries.clear();
    }
}

std::pair<std::size_t, std::size_t> anycast_rib::invalidate_cache(
    const std::vector<std::uint8_t>& touched) {
    static_assert(cache_shard_count == 64, "dirty mask below is a uint64");
    std::uint64_t dirty = 0;
    for (std::size_t i = 0; i < as_count_; ++i) {
        if (touched[i]) dirty |= std::uint64_t{1} << shard_of(asns_[i]);
    }
    std::size_t erased = 0;
    std::size_t visited = 0;
    for (std::size_t s = 0; s < cache_shard_count; ++s) {
        if (((dirty >> s) & 1) == 0) continue;
        ++visited;
        std::lock_guard shard_lock{cache_shards_[s].mutex};
        erased += std::erase_if(cache_shards_[s].entries, [&](const auto& kv) {
            const auto asn = static_cast<topo::asn_t>(kv.first >> 32);
            const std::size_t i = graph_->find_index(asn);
            return i != topo::as_graph::npos && i < as_count_ && touched[i] != 0;
        });
    }
    return {erased, visited};
}

void anycast_rib::reconverge_touched(const std::vector<std::uint8_t>& touched,
                                     reconverge_stats& out) {
    obs::span reconverge_span{"bgp/reconverge"};
    if (overlaid_.empty()) {
        // First mutation on this RIB: activate the overlay layer. The CSR
        // arrays stay frozen as the pristine-AS fallback.
        overlaid_.assign(as_count_, 0);
        overlay_.resize(as_count_);
    }
    for (std::size_t i = 0; i < as_count_; ++i) {
        if (!touched[i]) continue;
        recompute_as_index(i);
        ++out.ases_touched;
    }
    const auto [erased, visited] = invalidate_cache(touched);
    out.cache_entries_invalidated = erased;
    out.cache_shards_visited = visited;
    cache_invalidations_.fetch_add(erased, std::memory_order_relaxed);

    reconverge_span.set_items(out.ases_touched);
    reconverge_event_counter().add(1);
    reconverge_ases_counter().add(out.ases_touched);
    reconverge_shards_counter().add(visited);
    select_invalidation_counter().add(erased);
}

} // namespace ac::route
