#include "src/netbase/strfmt.h"

#include <cmath>
#include <cstdio>

namespace ac::strfmt {

std::string fixed(double value, int decimals) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
    return buffer;
}

} // namespace ac::strfmt
