#include "src/netbase/geo.h"

#include <numbers>

namespace ac::geo {

namespace {

constexpr double deg_to_rad = std::numbers::pi / 180.0;
constexpr double rad_to_deg = 180.0 / std::numbers::pi;

} // namespace

double distance_km(const point& a, const point& b) noexcept {
    const double lat1 = a.lat_deg * deg_to_rad;
    const double lat2 = b.lat_deg * deg_to_rad;
    const double dlat = (b.lat_deg - a.lat_deg) * deg_to_rad;
    const double dlon = (b.lon_deg - a.lon_deg) * deg_to_rad;

    const double sin_dlat = std::sin(dlat / 2.0);
    const double sin_dlon = std::sin(dlon / 2.0);
    const double h = sin_dlat * sin_dlat + std::cos(lat1) * std::cos(lat2) * sin_dlon * sin_dlon;
    // Clamp for numeric safety before asin.
    const double root = std::sqrt(h < 0.0 ? 0.0 : (h > 1.0 ? 1.0 : h));
    return 2.0 * earth_radius_km * std::asin(root);
}

distance_table::distance_table(std::span<const point> points) : count_(points.size()) {
    km_.resize(count_ * count_);
    for (std::size_t a = 0; a < count_; ++a) {
        for (std::size_t b = 0; b < count_; ++b) {
            km_[a * count_ + b] = geo::distance_km(points[a], points[b]);
        }
    }
}

point destination(const point& origin, double bearing_deg, double distance_km) noexcept {
    const double lat1 = origin.lat_deg * deg_to_rad;
    const double lon1 = origin.lon_deg * deg_to_rad;
    const double bearing = bearing_deg * deg_to_rad;
    const double angular = distance_km / earth_radius_km;

    const double lat2 = std::asin(std::sin(lat1) * std::cos(angular) +
                                  std::cos(lat1) * std::sin(angular) * std::cos(bearing));
    const double lon2 =
        lon1 + std::atan2(std::sin(bearing) * std::sin(angular) * std::cos(lat1),
                          std::cos(angular) - std::sin(lat1) * std::sin(lat2));

    double lon_deg = lon2 * rad_to_deg;
    // Normalize longitude to [-180, 180).
    while (lon_deg >= 180.0) lon_deg -= 360.0;
    while (lon_deg < -180.0) lon_deg += 360.0;
    return point{lat2 * rad_to_deg, lon_deg};
}

point midpoint(const point& a, const point& b) noexcept {
    const double lat1 = a.lat_deg * deg_to_rad;
    const double lon1 = a.lon_deg * deg_to_rad;
    const double lat2 = b.lat_deg * deg_to_rad;
    const double dlon = (b.lon_deg - a.lon_deg) * deg_to_rad;

    const double bx = std::cos(lat2) * std::cos(dlon);
    const double by = std::cos(lat2) * std::sin(dlon);
    const double lat3 = std::atan2(std::sin(lat1) + std::sin(lat2),
                                   std::sqrt((std::cos(lat1) + bx) * (std::cos(lat1) + bx) + by * by));
    const double lon3 = lon1 + std::atan2(by, std::cos(lat1) + bx);

    double lon_deg = lon3 * rad_to_deg;
    while (lon_deg >= 180.0) lon_deg -= 360.0;
    while (lon_deg < -180.0) lon_deg += 360.0;
    return point{lat3 * rad_to_deg, lon_deg};
}

} // namespace ac::geo
