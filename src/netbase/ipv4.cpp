#include "src/netbase/ipv4.h"

#include <array>
#include <charconv>

namespace ac::net {

namespace {

// Parses a decimal integer in [0, max_value] from the front of `text`,
// advancing it past the consumed digits. Returns nullopt on failure.
std::optional<std::uint32_t> parse_component(std::string_view& text, std::uint32_t max_value) {
    std::uint32_t value = 0;
    const char* begin = text.data();
    const char* end = text.data() + text.size();
    auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr == begin || value > max_value) return std::nullopt;
    // Reject leading zeros such as "01" (ambiguous octal in many tools).
    if (ptr - begin > 1 && *begin == '0') return std::nullopt;
    text.remove_prefix(static_cast<std::size_t>(ptr - begin));
    return value;
}

bool consume(std::string_view& text, char expected) {
    if (text.empty() || text.front() != expected) return false;
    text.remove_prefix(1);
    return true;
}

} // namespace

std::optional<ipv4_addr> ipv4_addr::parse(std::string_view text) {
    std::array<std::uint32_t, 4> octets{};
    for (int i = 0; i < 4; ++i) {
        if (i > 0 && !consume(text, '.')) return std::nullopt;
        auto octet = parse_component(text, 255);
        if (!octet) return std::nullopt;
        octets[static_cast<std::size_t>(i)] = *octet;
    }
    if (!text.empty()) return std::nullopt;
    return ipv4_addr{static_cast<std::uint8_t>(octets[0]), static_cast<std::uint8_t>(octets[1]),
                     static_cast<std::uint8_t>(octets[2]), static_cast<std::uint8_t>(octets[3])};
}

std::string ipv4_addr::to_string() const {
    std::string out;
    out.reserve(15);
    for (int i = 0; i < 4; ++i) {
        if (i > 0) out.push_back('.');
        out += std::to_string(octet(i));
    }
    return out;
}

std::optional<ipv4_prefix> ipv4_prefix::parse(std::string_view text) {
    auto slash = text.find('/');
    if (slash == std::string_view::npos) return std::nullopt;
    auto addr = ipv4_addr::parse(text.substr(0, slash));
    if (!addr) return std::nullopt;
    std::string_view len_text = text.substr(slash + 1);
    auto length = parse_component(len_text, 32);
    if (!length || !len_text.empty()) return std::nullopt;
    return ipv4_prefix{*addr, static_cast<int>(*length)};
}

std::string ipv4_prefix::to_string() const {
    return base_.to_string() + "/" + std::to_string(length_);
}

bool is_private_or_reserved(ipv4_addr addr) noexcept {
    static constexpr std::array ranges = {
        ipv4_prefix{ipv4_addr{0, 0, 0, 0}, 8},        // "this" network
        ipv4_prefix{ipv4_addr{10, 0, 0, 0}, 8},       // RFC 1918
        ipv4_prefix{ipv4_addr{100, 64, 0, 0}, 10},    // CGNAT
        ipv4_prefix{ipv4_addr{127, 0, 0, 0}, 8},      // loopback
        ipv4_prefix{ipv4_addr{169, 254, 0, 0}, 16},   // link local
        ipv4_prefix{ipv4_addr{172, 16, 0, 0}, 12},    // RFC 1918
        ipv4_prefix{ipv4_addr{192, 0, 2, 0}, 24},     // TEST-NET-1
        ipv4_prefix{ipv4_addr{192, 168, 0, 0}, 16},   // RFC 1918
        ipv4_prefix{ipv4_addr{198, 18, 0, 0}, 15},    // benchmarking
        ipv4_prefix{ipv4_addr{198, 51, 100, 0}, 24},  // TEST-NET-2
        ipv4_prefix{ipv4_addr{203, 0, 113, 0}, 24},   // TEST-NET-3
        ipv4_prefix{ipv4_addr{224, 0, 0, 0}, 4},      // multicast
        ipv4_prefix{ipv4_addr{240, 0, 0, 0}, 4},      // reserved
    };
    for (const auto& range : ranges) {
        if (range.contains(addr)) return true;
    }
    return false;
}

} // namespace ac::net
