// Spherical geometry and propagation-latency bounds.
//
// The paper's inflation metrics (Eq. 1, Eq. 2) are expressed in terms of
// great-circle distance scaled by the speed of light in fiber. Both the
// 2/c_f round-trip conversion of Eq. 1 and the (3/2)-slack lower bound of
// Eq. 2 live here so every consumer uses identical constants.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace ac::geo {

/// Mean Earth radius, km.
inline constexpr double earth_radius_km = 6371.0;

/// Speed of light in vacuum, km per millisecond.
inline constexpr double c_vacuum_km_per_ms = 299.792458;

/// Speed of light in fiber (refractive index ~1.468), km per millisecond.
/// The paper's c_f.
inline constexpr double c_fiber_km_per_ms = c_vacuum_km_per_ms / 1.468;

/// A point on the Earth's surface, degrees.
struct point {
    double lat_deg = 0.0;
    double lon_deg = 0.0;

    friend constexpr bool operator==(const point&, const point&) = default;
};

/// Great-circle distance in kilometres (haversine).
[[nodiscard]] double distance_km(const point& a, const point& b) noexcept;

/// One-way propagation delay along the great circle at fiber speed, ms.
[[nodiscard]] inline double one_way_fiber_ms(double distance_km) noexcept {
    return distance_km / c_fiber_km_per_ms;
}

/// Round-trip propagation delay at fiber speed, ms: the 2/c_f scaling of
/// Eq. 1 applied to a distance.
[[nodiscard]] inline double round_trip_fiber_ms(double distance_km) noexcept {
    return 2.0 * distance_km / c_fiber_km_per_ms;
}

/// The paper's "optimal" achievable RTT used in Eq. 2: routes rarely beat
/// great-circle distance divided by (2/3)c_f [46], i.e. RTT >= 3*2*d / (2*c_f).
[[nodiscard]] inline double best_case_rtt_ms(double distance_km) noexcept {
    return 3.0 * 2.0 * distance_km / (2.0 * c_fiber_km_per_ms);
}

/// Inverse of round_trip_fiber_ms: km of one-way distance corresponding to a
/// round-trip time. Used to convert "ms of geographic inflation" back to km
/// for axis labelling (the paper writes 20 ms ~ 2,000 km).
[[nodiscard]] inline double rtt_ms_to_km(double rtt_ms) noexcept {
    return rtt_ms * c_fiber_km_per_ms / 2.0;
}

/// Dense all-pairs great-circle distance table over a fixed point set.
///
/// Entry (a, b) holds exactly `distance_km(points[a], points[b])`, so
/// consumers replacing on-the-fly haversine calls with lookups stay
/// bit-identical (the routing fast path depends on this — DESIGN §8).
class distance_table {
public:
    distance_table() = default;
    explicit distance_table(std::span<const point> points);

    [[nodiscard]] double between(std::size_t a, std::size_t b) const noexcept {
        return km_[a * count_ + b];
    }
    [[nodiscard]] std::size_t size() const noexcept { return count_; }
    [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

private:
    std::size_t count_ = 0;
    std::vector<double> km_;  // row-major, count_ x count_
};

/// Destination point reached by travelling `distance_km` from `origin` on the
/// initial bearing `bearing_deg` (great-circle forward problem). Used by the
/// synthetic world builder to scatter sites/users around metro centres.
[[nodiscard]] point destination(const point& origin, double bearing_deg, double distance_km) noexcept;

/// Geographic midpoint of two points along the great circle.
[[nodiscard]] point midpoint(const point& a, const point& b) noexcept;

} // namespace ac::geo
