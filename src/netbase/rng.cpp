#include "src/netbase/rng.h"

#include <bit>
#include <cmath>
#include <numbers>

namespace ac::rand {

rng::rng(std::uint64_t seed) noexcept : seed_(seed) {
    std::uint64_t s = seed;
    for (auto& word : state_) {
        s = splitmix64(s);
        word = s;
    }
}

rng::result_type rng::next() noexcept {
    const std::uint64_t result = std::rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = std::rotl(state_[3], 45);
    return result;
}

double rng::uniform() noexcept {
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double rng::uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
}

std::uint64_t rng::uniform_index(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection method for unbiased bounded draws.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
    auto low = static_cast<std::uint64_t>(m);
    if (low < n) {
        const std::uint64_t threshold = -n % n;
        while (low < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
            low = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_index(span));
}

bool rng::chance(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
}

double rng::normal() noexcept {
    // Box-Muller; u1 nudged away from zero to keep log finite.
    const double u1 = 1.0 - uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double rng::normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
}

double rng::lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
}

double rng::exponential(double lambda) noexcept {
    return -std::log(1.0 - uniform()) / lambda;
}

double rng::pareto(double x_m, double alpha) noexcept {
    return x_m / std::pow(1.0 - uniform(), 1.0 / alpha);
}

std::uint64_t rng::poisson(double mean) noexcept {
    if (mean <= 0.0) return 0;
    if (mean > 64.0) {
        const double draw = normal(mean, std::sqrt(mean));
        return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
    }
    const double limit = std::exp(-mean);
    std::uint64_t count = 0;
    double product = uniform();
    while (product > limit) {
        ++count;
        product *= uniform();
    }
    return count;
}

std::size_t rng::weighted_index(std::span<const double> weights) noexcept {
    double total = 0.0;
    for (double w : weights) total += w;
    double target = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        target -= weights[i];
        if (target < 0.0) return i;
    }
    return weights.size() - 1;
}

} // namespace ac::rand
