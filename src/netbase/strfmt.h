// Minimal string formatting helpers (the toolchain predates <format>).
#pragma once

#include <string>

namespace ac::strfmt {

/// Decimal rendering of `value` left-padded with zeros to `width` digits.
[[nodiscard]] inline std::string zero_padded(long long value, int width) {
    std::string digits = std::to_string(value < 0 ? -value : value);
    std::string out;
    if (value < 0) out.push_back('-');
    for (int i = static_cast<int>(digits.size()); i < width; ++i) out.push_back('0');
    out += digits;
    return out;
}

/// "prefix-000i" style identifier.
[[nodiscard]] inline std::string indexed_name(std::string_view prefix, long long index,
                                              int width = 3) {
    std::string out{prefix};
    out.push_back('-');
    out += zero_padded(index, width);
    return out;
}

/// Fixed-point rendering with `decimals` fractional digits (no locale).
[[nodiscard]] std::string fixed(double value, int decimals);

} // namespace ac::strfmt
