// IPv4 address and prefix value types.
//
// The analysis pipeline keys almost everything by /24 (the paper aggregates
// DITL query volumes and CDN user counts by resolver /24 — §2.1, App. B.2),
// so /24 extraction is a first-class operation here.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace ac::net {

/// An IPv4 address as a host-order 32-bit value.
class ipv4_addr {
public:
    constexpr ipv4_addr() = default;
    constexpr explicit ipv4_addr(std::uint32_t value) noexcept : value_(value) {}
    constexpr ipv4_addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) noexcept
        : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                 (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

    [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }
    [[nodiscard]] constexpr std::uint8_t octet(int i) const noexcept {
        return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
    }

    /// Parses dotted-quad notation; returns nullopt on malformed input.
    [[nodiscard]] static std::optional<ipv4_addr> parse(std::string_view text);

    [[nodiscard]] std::string to_string() const;

    constexpr auto operator<=>(const ipv4_addr&) const = default;

private:
    std::uint32_t value_ = 0;
};

/// A CIDR prefix: base address plus prefix length in [0, 32].
class ipv4_prefix {
public:
    constexpr ipv4_prefix() = default;
    /// Construction canonicalizes: host bits of `base` are cleared.
    constexpr ipv4_prefix(ipv4_addr base, int length) noexcept
        : base_(ipv4_addr{length == 0 ? 0u : (base.value() & mask_for(length))}),
          length_(length) {}

    [[nodiscard]] constexpr ipv4_addr base() const noexcept { return base_; }
    [[nodiscard]] constexpr int length() const noexcept { return length_; }
    [[nodiscard]] constexpr std::uint32_t mask() const noexcept { return length_ == 0 ? 0u : mask_for(length_); }

    [[nodiscard]] constexpr bool contains(ipv4_addr addr) const noexcept {
        return (addr.value() & mask()) == base_.value();
    }
    [[nodiscard]] constexpr bool contains(const ipv4_prefix& other) const noexcept {
        return length_ <= other.length_ && contains(other.base_);
    }
    /// Number of addresses covered by this prefix.
    [[nodiscard]] constexpr std::uint64_t size() const noexcept {
        return std::uint64_t{1} << (32 - length_);
    }
    /// The i-th address within the prefix (no bounds check beyond size()).
    [[nodiscard]] constexpr ipv4_addr address_at(std::uint64_t i) const noexcept {
        return ipv4_addr{static_cast<std::uint32_t>(base_.value() + i)};
    }

    /// Parses "a.b.c.d/len"; returns nullopt on malformed input.
    [[nodiscard]] static std::optional<ipv4_prefix> parse(std::string_view text);

    [[nodiscard]] std::string to_string() const;

    constexpr auto operator<=>(const ipv4_prefix&) const = default;

private:
    static constexpr std::uint32_t mask_for(int length) noexcept {
        return length == 0 ? 0u : ~std::uint32_t{0} << (32 - length);
    }
    ipv4_addr base_;
    int length_ = 0;
};

/// Key type for /24 aggregation: the upper 24 bits of an address.
/// The paper refers to these aggregates simply as "recursives" (§2.1).
class slash24 {
public:
    constexpr slash24() = default;
    constexpr explicit slash24(ipv4_addr addr) noexcept : key_(addr.value() >> 8) {}

    [[nodiscard]] constexpr std::uint32_t key() const noexcept { return key_; }
    [[nodiscard]] constexpr ipv4_prefix prefix() const noexcept {
        return ipv4_prefix{ipv4_addr{key_ << 8}, 24};
    }
    [[nodiscard]] std::string to_string() const { return prefix().to_string(); }

    constexpr auto operator<=>(const slash24&) const = default;

private:
    std::uint32_t key_ = 0;
};

/// True if `addr` falls in IANA special-purpose (private/reserved) space.
/// The paper removes queries from private space — 7% of DITL volume (§2.1).
[[nodiscard]] bool is_private_or_reserved(ipv4_addr addr) noexcept;

} // namespace ac::net

template <>
struct std::hash<ac::net::ipv4_addr> {
    std::size_t operator()(const ac::net::ipv4_addr& a) const noexcept {
        return std::hash<std::uint32_t>{}(a.value());
    }
};

template <>
struct std::hash<ac::net::slash24> {
    std::size_t operator()(const ac::net::slash24& s) const noexcept {
        return std::hash<std::uint32_t>{}(s.key());
    }
};

template <>
struct std::hash<ac::net::ipv4_prefix> {
    std::size_t operator()(const ac::net::ipv4_prefix& p) const noexcept {
        return std::hash<std::uint64_t>{}(
            (std::uint64_t{p.base().value()} << 6) | static_cast<std::uint64_t>(p.length()));
    }
};
