// Deterministic pseudo-randomness for the simulation.
//
// Every stochastic component of the synthetic world takes an `rng` (or a seed
// used to build one), so whole experiments are reproducible bit-for-bit.
// splitmix64 seeds xoshiro256++, which supplies the stream.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ac::rand {

/// splitmix64: used for seeding and for stateless hashing of ids into
/// per-entity sub-seeds (so adding entities does not shift others' draws).
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// Mixes several values into one sub-seed.
[[nodiscard]] constexpr std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b,
                                               std::uint64_t c = 0) noexcept {
    return splitmix64(splitmix64(splitmix64(a) ^ b) ^ c);
}

/// xoshiro256++ generator.
class rng {
public:
    using result_type = std::uint64_t;

    explicit rng(std::uint64_t seed) noexcept;

    [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
    [[nodiscard]] static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

    result_type operator()() noexcept { return next(); }
    result_type next() noexcept;

    /// Uniform double in [0, 1).
    [[nodiscard]] double uniform() noexcept;
    /// Uniform double in [lo, hi).
    [[nodiscard]] double uniform(double lo, double hi) noexcept;
    /// Uniform integer in [0, n). n must be > 0.
    [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n) noexcept;
    /// Uniform integer in [lo, hi] inclusive.
    [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
    /// Bernoulli draw.
    [[nodiscard]] bool chance(double p) noexcept;
    /// Standard normal via Box-Muller (no cached spare: keeps draws countable).
    [[nodiscard]] double normal() noexcept;
    [[nodiscard]] double normal(double mean, double stddev) noexcept;
    /// Log-normal with the given parameters of the underlying normal.
    [[nodiscard]] double lognormal(double mu, double sigma) noexcept;
    /// Exponential with rate lambda (> 0).
    [[nodiscard]] double exponential(double lambda) noexcept;
    /// Pareto (type I) with scale x_m > 0 and shape alpha > 0. Heavy-tailed
    /// draws model user-population and query-volume skew.
    [[nodiscard]] double pareto(double x_m, double alpha) noexcept;
    /// Poisson-distributed count with the given mean (Knuth for small means,
    /// normal approximation above 64).
    [[nodiscard]] std::uint64_t poisson(double mean) noexcept;
    /// Index into a non-empty weight vector, proportional to weight.
    [[nodiscard]] std::size_t weighted_index(std::span<const double> weights) noexcept;

    /// Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& items) noexcept {
        for (std::size_t i = items.size(); i > 1; --i) {
            using std::swap;
            swap(items[i - 1], items[uniform_index(i)]);
        }
    }

    /// A child generator whose stream is independent of draws made on this
    /// one: keyed by (original seed, tag), not by generator state.
    [[nodiscard]] rng fork(std::uint64_t tag) const noexcept {
        return rng{mix_seed(seed_, tag)};
    }

    [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

private:
    std::uint64_t seed_;
    std::uint64_t state_[4];
};

} // namespace ac::rand
