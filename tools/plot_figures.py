#!/usr/bin/env python3
"""Plot the paper's figures from `acctx report` CSV output.

Usage:
    build/tools/acctx report --out figures/
    python3 tools/plot_figures.py figures/ [--out plots/]

Produces one PNG per figure, mirroring the paper's presentation (CDF axes
for Figs. 2/3/5, stacked shares for Fig. 6a, scatter for Fig. 7a, coverage
curves for Fig. 7b). Requires matplotlib.
"""

import argparse
import csv
import pathlib
import sys
from collections import defaultdict

try:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
except ImportError:  # pragma: no cover - environment without matplotlib
    sys.stderr.write("plot_figures.py requires matplotlib (pip install matplotlib)\n")
    sys.exit(1)


def read_series(path, x_col, y_col, series_col):
    """CSV -> {series: ([x], [y])}, preserving row order."""
    series = defaultdict(lambda: ([], []))
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            xs, ys = series[row[series_col]]
            xs.append(float(row[x_col]))
            ys.append(float(row[y_col]))
    return series


def plot_cdf(path, out, title, xlabel, xlim=None, logx=False):
    series = read_series(path, x_col=path_columns(path)[1], y_col="cdf",
                         series_col=path_columns(path)[0])
    fig, ax = plt.subplots(figsize=(7, 4.5))
    for name, (xs, ys) in sorted(series.items()):
        ax.plot(xs, ys, label=name, linewidth=1.4)
    ax.set_xlabel(xlabel)
    ax.set_ylabel("CDF of users")
    ax.set_title(title)
    ax.set_ylim(0, 1)
    if xlim:
        ax.set_xlim(*xlim)
    if logx:
        ax.set_xscale("log")
    ax.grid(alpha=0.3)
    ax.legend(fontsize=7, ncol=2)
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    plt.close(fig)


def path_columns(path):
    with open(path, newline="") as handle:
        header = next(csv.reader(handle))
    return header


def plot_fig06a(path, out):
    rows = defaultdict(dict)
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            rows[row["destination"]][row["bucket"]] = float(row["share"])
    destinations = list(rows)
    buckets = ["2", "3", "4", "5+"]
    fig, ax = plt.subplots(figsize=(8, 4.5))
    bottoms = [0.0] * len(destinations)
    for bucket in buckets:
        values = [rows[d].get(bucket, 0.0) for d in destinations]
        ax.bar(destinations, values, bottom=bottoms, label=f"{bucket} ASes")
        bottoms = [b + v for b, v in zip(bottoms, values)]
    ax.set_ylabel("share of probe locations")
    ax.set_title("Fig. 6a: AS path lengths")
    ax.legend(fontsize=8)
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    plt.close(fig)


def plot_fig07a(path, out):
    fig, ax_lat = plt.subplots(figsize=(7, 4.5))
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            sites = int(row["sites"])
            ax_lat.scatter(sites, float(row["median_ms"]), color="tab:blue", s=18)
            ax_lat.annotate(row["deployment"], (sites, float(row["median_ms"])),
                            fontsize=6, xytext=(3, 3), textcoords="offset points")
    ax_lat.set_xlabel("global sites")
    ax_lat.set_ylabel("median probe latency (ms)")
    ax_lat.set_title("Fig. 7a: deployment size vs latency")
    ax_lat.grid(alpha=0.3)
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    plt.close(fig)


def plot_fig07b(path, out):
    series = read_series(path, x_col="radius_km", y_col="covered_fraction",
                         series_col="deployment")
    fig, ax = plt.subplots(figsize=(7, 4.5))
    for name, (xs, ys) in sorted(series.items()):
        ax.plot(xs, ys, label=name, linewidth=1.2)
    ax.set_xlabel("coverage radius (km)")
    ax.set_ylabel("share of users covered")
    ax.set_title("Fig. 7b: coverage")
    ax.set_ylim(0, 1.02)
    ax.grid(alpha=0.3)
    ax.legend(fontsize=6, ncol=2)
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    plt.close(fig)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csv_dir", type=pathlib.Path)
    parser.add_argument("--out", type=pathlib.Path, default=pathlib.Path("plots"))
    args = parser.parse_args()
    args.out.mkdir(parents=True, exist_ok=True)

    jobs = [
        ("fig02a_root_geographic_inflation.csv",
         lambda p, o: plot_cdf(p, o, "Fig. 2a: geographic inflation per root query",
                               "inflation (ms)", xlim=(0, 150))),
        ("fig02b_root_latency_inflation.csv",
         lambda p, o: plot_cdf(p, o, "Fig. 2b: latency inflation per root query",
                               "inflation (ms)", xlim=(0, 200))),
        ("fig03_queries_per_user.csv",
         lambda p, o: plot_cdf(p, o, "Fig. 3: root queries per user per day",
                               "queries / user / day", logx=True)),
        ("fig05a_cdn_geographic_inflation.csv",
         lambda p, o: plot_cdf(p, o, "Fig. 5a: CDN geographic inflation per RTT",
                               "inflation (ms)", xlim=(0, 40))),
        ("fig05b_cdn_latency_inflation.csv",
         lambda p, o: plot_cdf(p, o, "Fig. 5b: CDN latency inflation per RTT",
                               "inflation (ms)", xlim=(0, 200))),
        ("fig06a_as_path_lengths.csv", plot_fig06a),
        ("fig07a_size_latency_efficiency.csv", plot_fig07a),
        ("fig07b_coverage.csv", plot_fig07b),
    ]
    written = []
    for name, plot in jobs:
        source = args.csv_dir / name
        if not source.exists():
            sys.stderr.write(f"skipping missing {source}\n")
            continue
        target = args.out / (name.replace(".csv", ".png"))
        plot(source, target)
        written.append(target)
    for target in written:
        print(f"wrote {target}")


if __name__ == "__main__":
    main()
